#!/usr/bin/env python3
"""A live EGOIST deployment in simulation: epochs, re-wiring, and overheads.

This example mirrors the paper's PlanetLab prototype more closely than the
quickstart: it runs the epoch-driven engine with ping-based delay
measurements that drift over time, shows how the re-wiring rate settles
after start-up (Fig. 3), compares BR with the BR(eps) threshold variant —
both deployments advancing in lockstep through :class:`EngineBatch` —
and prints the Section 4.3 overhead accounting for the deployment.

Run with::

    python examples/planetlab_overlay.py [n] [k] [epochs]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.core.engine_batch import EngineBatch, EngineSpec
from repro.core.overhead import overhead_report
from repro.core.policies import BestResponsePolicy
from repro.core.providers import DelayMetricProvider
from repro.netsim.planetlab import synthetic_planetlab
from repro.util.rng import spawn_generators


def main(n: int = 30, k: int = 4, epochs: int = 12, seed: int = 2008) -> None:
    space, _nodes = synthetic_planetlab(n, seed=seed)

    print(f"Simulating an EGOIST deployment: n = {n}, k = {k}, T = 60 s, {epochs} epochs\n")

    # BR and BR(0.1) as two lockstep deployments of one engine batch.
    streams = spawn_generators(np.random.default_rng(seed), 2)
    specs = [
        EngineSpec(
            label=label,
            provider=DelayMetricProvider(
                space, estimator="ping", drift_relative_std=0.02, seed=stream
            ),
            policy=BestResponsePolicy(),
            k=k,
            epoch_length=60.0,
            announce_interval=20.0,
            epsilon=epsilon,
            seed=stream,
        )
        for (label, epsilon), stream in zip((("BR", 0.0), ("BR(0.1)", 0.10)), streams)
    ]
    history_br, history_eps = EngineBatch(specs).run(epochs)

    print(f"{'epoch':>5} {'BR re-wirings':>15} {'BR(0.1) re-wirings':>20} {'BR mean cost (ms)':>19}")
    for record_br, record_eps in zip(history_br.records, history_eps.records):
        print(
            f"{record_br.epoch:>5} {record_br.rewirings:>15} "
            f"{record_eps.rewirings:>20} {record_br.mean_cost:>19.1f}"
        )

    print(
        f"\nSteady-state mean cost:     BR = {history_br.steady_state_mean_cost():.1f} ms, "
        f"BR(0.1) = {history_eps.steady_state_mean_cost():.1f} ms"
    )
    rewires_br = np.mean(history_br.rewirings_per_epoch()[1:])
    rewires_eps = np.mean(history_eps.rewirings_per_epoch()[1:])
    print(
        f"Mean re-wirings per epoch:  BR = {rewires_br:.1f}, BR(0.1) = {rewires_eps:.1f} "
        "(the threshold variant trades a little cost for far fewer re-wirings)\n"
    )

    report = overhead_report(n, k)
    print("Per-node maintenance overhead (Section 4.3):")
    print(f"  active ping measurements : {report.ping_bps:8.1f} bps")
    print(f"  coordinate alternative   : {report.coordinate_bps:8.1f} bps")
    print(f"  link-state protocol      : {report.linkstate_bps:8.1f} bps")
    print(
        f"  monitored links          : {report.monitored_links} "
        f"(full mesh would monitor {report.fullmesh_monitored_links}; "
        f"{report.scalability_gain:.1f}x saving)"
    )


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:4]]
    main(*args)
