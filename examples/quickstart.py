#!/usr/bin/env python3
"""Quickstart: build a small EGOIST overlay and compare wiring policies.

This is the 60-second tour of the library:

1. generate a synthetic PlanetLab-like delay space,
2. build one overlay per neighbour-selection policy (k-Random, k-Regular,
   k-Closest, Best-Response, and the full-mesh bound),
3. report each policy's mean routing cost and its ratio to Best-Response —
   the comparison behind Fig. 1 of the paper.

Run with::

    python examples/quickstart.py [n] [k]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.core.cost import DelayMetric
from repro.core.policies import STANDARD_POLICIES, build_overlay
from repro.netsim.planetlab import synthetic_planetlab


def main(n: int = 30, k: int = 4, seed: int = 2008) -> None:
    print(f"Building a {n}-node EGOIST overlay with k = {k} neighbours per node\n")

    # 1. The substrate: a synthetic PlanetLab-like delay space.
    space, nodes = synthetic_planetlab(n, seed=seed)
    regions = {}
    for node in nodes:
        regions[node.region.value] = regions.get(node.region.value, 0) + 1
    print("Synthetic deployment:", ", ".join(f"{r}: {c}" for r, c in sorted(regions.items())))
    print(f"Mean pairwise one-way delay: {space.mean_delay():.1f} ms\n")

    # 2. One overlay per policy, all wired from the same measured delays.
    metric = DelayMetric(space.matrix)
    costs = {}
    for name, policy in STANDARD_POLICIES.items():
        budget = n - 1 if name == "full-mesh" else k
        wiring = build_overlay(policy, metric, budget, rng=seed, br_rounds=3)
        graph = wiring.to_graph()
        per_node = metric.all_node_costs(graph)
        costs[name] = float(np.mean(list(per_node.values())))

    # 3. Report, normalised by Best-Response as in the paper's figures.
    br = costs["best-response"]
    print(f"{'policy':<15} {'mean cost (ms)':>15} {'cost / BR':>12}")
    for name, value in sorted(costs.items(), key=lambda kv: kv[1]):
        print(f"{name:<15} {value:>15.1f} {value / br:>12.2f}")

    print(
        "\nBest-Response beats every empirical heuristic and approaches the "
        "full-mesh bound while monitoring only n*k links."
    )


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:3]]
    main(*args)
