#!/usr/bin/env python3
"""Quickstart: build a small EGOIST overlay and compare wiring policies.

This is the 60-second tour of the library, driven through the unified
Scenario API:

1. describe the workload as a declarative :class:`ScenarioSpec` — a
   synthetic PlanetLab-like delay substrate, one overlay per
   neighbour-selection policy (k-Random, k-Regular, k-Closest,
   Best-Response, and the full-mesh bound) at a common budget k,
2. realise it with :class:`SimulationSession` (the whole policy grid
   builds in lockstep through the batched deployment kernels),
3. report each policy's mean routing cost and its ratio to Best-Response —
   the comparison behind Fig. 1 of the paper.

Run with::

    python examples/quickstart.py [n] [k]
"""

from __future__ import annotations

import sys

from repro.netsim.planetlab import synthetic_planetlab
from repro.scenario import ScenarioSpec, SimulationSession


def main(n: int = 30, k: int = 4, seed: int = 2008) -> None:
    print(f"Building a {n}-node EGOIST overlay with k = {k} neighbours per node\n")

    # 1. Peek at the substrate the scenario will generate (same seed).
    space, nodes = synthetic_planetlab(n, seed=seed)
    regions = {}
    for node in nodes:
        regions[node.region.value] = regions.get(node.region.value, 0) + 1
    print("Synthetic deployment:", ", ".join(f"{r}: {c}" for r, c in sorted(regions.items())))
    print(f"Mean pairwise one-way delay: {space.mean_delay():.1f} ms\n")

    # 2. One declarative scenario: every policy at budget k over the true
    #    delay metric, full mesh included as the RON-like bound.
    spec = ScenarioSpec(
        experiment="fig1-delay-ping",
        n=n,
        k_grid=(k,),
        metric="delay-true",
        br_rounds=3,
        seed=seed,
        params={"include_full_mesh": True},
    )
    result = SimulationSession(spec).run()

    # 3. Report, normalised by Best-Response as in the paper's figures.
    costs = {
        label[: -len(" (raw)")]: series.y[0]
        for label, series in result.series.items()
        if label.endswith(" (raw)")
    }
    br = costs["best-response"]
    print(f"{'policy':<15} {'mean cost (ms)':>15} {'cost / BR':>12}")
    for name, value in sorted(costs.items(), key=lambda kv: kv[1]):
        print(f"{name:<15} {value:>15.1f} {value / br:>12.2f}")

    print(
        "\nBest-Response beats every empirical heuristic and approaches the "
        "full-mesh bound while monitoring only n*k links."
    )
    print(
        "(One ScenarioSpec made this table — spec.save('scenario.json') and "
        "`python -m repro.cli run --spec scenario.json` reproduce it.)"
    )


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:3]]
    main(*args)
