#!/usr/bin/env python3
"""Churn resilience: plain BR versus HybridBR under increasing churn.

Reproduces the question behind Fig. 2 (right): when is it worth donating
k2 links to a connectivity backbone?  The example sweeps the churn rate,
runs every (churn rate, policy) engine deployment in lockstep through
the :class:`EngineBatch` subsystem, and prints the efficiency metric —
showing that at PlanetLab-like churn plain BR wins, while at very high
churn HybridBR's backbone pays off.

Run with::

    python examples/churn_resilience.py [n] [k]
"""

from __future__ import annotations

import sys

from repro.churn.metrics import expected_healing_time
from repro.churn.models import parametrized_churn
from repro.core.engine_batch import EngineBatch, EngineSpec
from repro.core.hybrid import HybridBRPolicy
from repro.core.policies import BestResponsePolicy, KRandomPolicy
from repro.core.providers import DelayMetricProvider
from repro.netsim.planetlab import synthetic_planetlab
from repro.util.rng import spawn_generators

import numpy as np

CHURN_RATES = (1e-4, 1e-3, 1e-2, 1e-1)


def main(n: int = 24, k: int = 5, epochs: int = 10, seed: int = 2008) -> None:
    space, _nodes = synthetic_planetlab(n, seed=seed)
    horizon = epochs * 60.0
    policies = {
        "best-response": BestResponsePolicy(),
        "hybrid-br (k2=2)": HybridBRPolicy(k2=2),
        "k-random": KRandomPolicy(),
    }

    print(f"Churn resilience on a {n}-node overlay, k = {k}, T = 60 s")
    print(
        f"(BR heals disconnections in O(T/n) = {expected_healing_time(60.0, n):.1f} s "
        "on average, which is why it tolerates moderate churn without help)\n"
    )
    header = f"{'churn rate':>12} " + " ".join(f"{name:>18}" for name in policies)
    print(header)

    # One engine deployment per (churn rate, policy); the whole grid
    # advances epoch by epoch in one lockstep batch.
    rng = np.random.default_rng(seed)
    schedules = [parametrized_churn(n, horizon, rate, seed=seed) for rate in CHURN_RATES]
    cells = [
        (rate, churn, name)
        for rate, churn in zip(CHURN_RATES, schedules)
        for name in policies
    ]
    streams = spawn_generators(rng, len(cells))
    specs = [
        EngineSpec(
            label=f"{name}@{rate:g}",
            provider=DelayMetricProvider(space, estimator="true", seed=stream),
            policy=policies[name],
            k=k,
            churn=churn,
            compute_efficiency=True,
            seed=stream,
        )
        for (rate, churn, name), stream in zip(cells, streams)
    ]
    histories = EngineBatch(specs).run(epochs)

    for index, rate in enumerate(CHURN_RATES):
        base = index * len(policies)
        row = [f"{rate:>12.0e}"]
        for offset in range(len(policies)):
            eff = histories[base + offset].steady_state_efficiency(warmup_fraction=0.3)
            row.append(f"{eff:>18.4f}")
        print(" ".join(row))

    print(
        "\nEfficiency is the paper's metric: mean of 1/distance over reachable "
        "destinations (0 when disconnected).  As churn grows towards one event "
        "per O(T/n) seconds, HybridBR's donated backbone becomes worthwhile."
    )


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:3]]
    main(*args)
