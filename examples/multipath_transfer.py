#!/usr/bin/env python3
"""Application demo: multipath file transfer and real-time redirection.

Section 6 of the paper sketches two applications of EGOIST's redirection
infrastructure.  This example builds a bandwidth-based overlay over a
multihomed AS topology and shows, for a few source-target pairs:

* the rate of the single direct IP path (subject to the per-session rate
  cap at the source AS's peering point),
* the aggregate rate of opening one session per first-hop EGOIST
  neighbour (Fig. 10's "parallel connections" curve),
* the max-flow ceiling when every peer allows redirection, and
* the number of disjoint overlay paths available for redundant real-time
  delivery (Fig. 11).

Run with::

    python examples/multipath_transfer.py [n] [k]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.apps.multipath import MultipathTransferApp
from repro.apps.realtime import RealTimeRedirectionApp
from repro.core.cost import BandwidthMetric
from repro.core.policies import BestResponsePolicy, build_overlay
from repro.netsim.autonomous_systems import ASTopology
from repro.netsim.bandwidth import BandwidthModel


def main(n: int = 30, k: int = 5, seed: int = 2008) -> None:
    rng = np.random.default_rng(seed)
    bandwidth = BandwidthModel(n, seed=rng)
    as_topology = ASTopology(n, seed=rng)
    print(f"AS topology: {as_topology.describe()}\n")

    metric = BandwidthMetric(bandwidth.matrix())
    overlay = build_overlay(BestResponsePolicy(), metric, k, rng=rng, br_rounds=3)
    transfer = MultipathTransferApp(overlay, bandwidth, as_topology)
    realtime = RealTimeRedirectionApp(overlay)

    pairs = []
    while len(pairs) < 6:
        src, dst = rng.integers(0, n, size=2)
        if src != dst:
            pairs.append((int(src), int(dst)))

    print(
        f"{'pair':>9} {'direct (Mbps)':>14} {'multipath (Mbps)':>17} "
        f"{'gain':>6} {'max-flow gain':>14} {'disjoint paths':>15}"
    )
    for src, dst in pairs:
        plan = transfer.plan(src, dst)
        disjoint = realtime.disjoint_path_count(src, dst)
        print(
            f"{src:>4}->{dst:<4} {plan.direct_rate_mbps:>14.2f} "
            f"{plan.aggregate_rate_mbps:>17.2f} {plan.gain:>6.2f} "
            f"{plan.maxflow_gain:>14.2f} {disjoint:>15}"
        )

    # A closer look at one transfer and one stream.
    src, dst = pairs[0]
    plan = transfer.plan(src, dst)
    print(f"\nSession breakdown for {src} -> {dst}:")
    for session in plan.sessions:
        print(
            f"  via neighbour {session.first_hop:>3}: {session.rate_mbps:6.2f} Mbps "
            f"(egress peering link {session.egress_link_id})"
        )

    stream = realtime.plan(src, dst)
    print(f"\nReal-time redundancy for {src} -> {dst}: {stream.redundancy} disjoint paths")
    for path, delay in zip(stream.paths, stream.path_delays_ms):
        print(f"  {' -> '.join(map(str, path))}  ({delay:.1f} ms)")
    if stream.redundancy:
        print(
            f"  survival probability with 10% per-path loss: "
            f"{stream.loss_survival_probability(0.1):.3f}"
        )


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:3]]
    main(*args)
