#!/usr/bin/env python3
"""Scaling EGOIST with sampling: a newcomer joins a large overlay.

Reproduces the Section 5 scenario (Figs. 5-8): an overlay is grown
incrementally under a base wiring strategy, and a newcomer then computes
its best response using only a small sample of the residual graph —
unbiased random sampling versus topology-based biased sampling (BRtp).

Run with::

    python examples/scaling_sampling.py [n] [k] [base_policy]

where ``base_policy`` is one of best-response, k-random, k-regular,
k-closest.
"""

from __future__ import annotations

import sys

import numpy as np

from repro.core.best_response import WiringEvaluator
from repro.core.cost import DelayMetric
from repro.core.sampling import (
    random_sample,
    sampled_best_response,
    sampling_message_cost,
    topology_biased_sample,
)
from repro.experiments.sampling_exp import incremental_overlay
from repro.netsim.planetlab import synthetic_planetlab_trace

SAMPLE_SIZES = (6, 10, 14, 20)


def main(n: int = 150, k: int = 3, base_policy: str = "best-response", seed: int = 2008) -> None:
    rng = np.random.default_rng(seed)
    print(f"Growing a {n}-node overlay incrementally under '{base_policy}' (k = {k})...")
    space = synthetic_planetlab_trace(n, seed=rng)
    metric = DelayMetric(space.matrix)
    newcomer = n - 1
    existing = [v for v in range(n) if v != newcomer]
    base = incremental_overlay(metric, k, base_policy, nodes=existing, rng=rng)
    residual = base.to_graph(active=existing)

    evaluator = WiringEvaluator(
        newcomer, metric, residual, candidates=existing, destinations=existing
    )
    reference = sampled_best_response(newcomer, metric, residual, k, existing, rng=rng)
    reference_cost = evaluator.evaluate(reference.neighbors)
    print(f"Newcomer's BR cost with the full residual graph: {reference_cost:.1f} ms\n")

    print(f"{'sample size m':>14} {'BR random sampling':>20} {'BRtp (r=2)':>12} {'walk messages':>14}")
    for m in SAMPLE_SIZES:
        uniform = random_sample(existing, m, rng=rng)
        br_uniform = sampled_best_response(newcomer, metric, residual, k, uniform, rng=rng)
        cost_uniform = evaluator.evaluate(br_uniform.neighbors) / reference_cost

        biased = topology_biased_sample(
            newcomer, metric, residual, m, oversample=3, radius=2,
            candidates=existing, rng=rng,
        )
        br_biased = sampled_best_response(newcomer, metric, residual, k, biased, rng=rng)
        cost_biased = evaluator.evaluate(br_biased.neighbors) / reference_cost

        messages = sampling_message_cost(3 * m, n, k)
        print(f"{m:>14} {cost_uniform:>20.3f} {cost_biased:>12.3f} {messages:>14.0f}")

    print(
        "\nCosts are normalised by BR over the full residual graph: even with a "
        "sample of a few percent of the overlay, the newcomer's cost stays close "
        "to 1, and topology-biased sampling needs smaller samples to get there."
    )


if __name__ == "__main__":
    argv = sys.argv[1:]
    n = int(argv[0]) if len(argv) > 0 else 150
    k = int(argv[1]) if len(argv) > 1 else 3
    base = argv[2] if len(argv) > 2 else "best-response"
    main(n, k, base)
