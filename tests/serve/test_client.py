"""Client-side robustness: backoff, busy retries, idempotency classification.

A scripted unix-socket server answers each request from a fixed action
list (``ok`` / ``busy`` / ``drop`` the connection), so every retry path
is exercised deterministically — no timing races, no real overlay.
"""

from __future__ import annotations

import json
import os
import random
import socket
import tempfile
import threading

import pytest

from repro.serve.client import (
    BACKOFF_BASE,
    BACKOFF_CAP,
    RetryBudgetExceeded,
    ServeClient,
    backoff_delay,
)
from repro.util.validation import ValidationError


class TestBackoff:
    def test_delay_is_bounded_by_the_envelope(self):
        rng = random.Random(0)
        for attempt in range(12):
            envelope = min(BACKOFF_CAP, BACKOFF_BASE * 2.0**attempt)
            for _ in range(20):
                delay = backoff_delay(attempt, rng=rng)
                assert 0.0 <= delay <= envelope

    def test_envelope_doubles_then_caps(self):
        # Full jitter: the *maximum* delay doubles per attempt until the cap.
        rng = random.Random(1)
        maxima = []
        for attempt in range(10):
            maxima.append(max(backoff_delay(attempt, rng=rng) for _ in range(400)))
        assert maxima[1] > maxima[0]
        assert all(m <= BACKOFF_CAP for m in maxima)
        assert maxima[-1] > BACKOFF_CAP * 0.8  # the cap is actually reachable

    def test_jitter_is_seedable(self):
        a = [backoff_delay(n, rng=random.Random(7)) for n in range(5)]
        b = [backoff_delay(n, rng=random.Random(7)) for n in range(5)]
        assert a == b


class _ScriptedServer:
    """A protocol-shaped unix-socket server driven by an action list.

    Actions are consumed one per request: ``ok`` answers success,
    ``busy`` answers the retryable shed error, ``drop`` closes the
    connection without replying (a mid-flight failure).
    """

    def __init__(self, actions):
        self.actions = list(actions)
        self.requests = []
        directory = tempfile.mkdtemp(prefix="scripted-", dir="/tmp")
        self.path = os.path.join(directory, "s.sock")
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.bind(self.path)
        self._sock.listen(8)
        self._sock.settimeout(0.1)
        self._closing = False
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        while not self._closing:
            try:
                conn, _addr = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            with conn:
                conn.settimeout(5.0)
                # Close the reader explicitly on exit: it holds a reference
                # to the socket, and a "drop" must reach the client as an
                # immediate EOF, not a lingering open fd.
                with conn.makefile("rb") as reader:
                    self._converse(conn, reader)

    def _converse(self, conn, reader):
        while True:
            try:
                line = reader.readline()
            except (socket.timeout, OSError):
                return
            if not line:
                return
            request = json.loads(line)
            self.requests.append(request)
            action = self.actions.pop(0) if self.actions else "ok"
            if action == "drop":
                return
            if action == "busy":
                reply = {
                    "ok": False,
                    "id": request.get("id"),
                    "error": "busy",
                    "message": "request queue is full",
                }
            else:
                reply = {
                    "ok": True,
                    "id": request.get("id"),
                    "op": request.get("op"),
                }
            conn.sendall((json.dumps(reply) + "\n").encode())

    def close(self):
        self._closing = True
        self._thread.join(timeout=5)
        self._sock.close()


@pytest.fixture
def scripted():
    servers = []

    def factory(actions):
        server = _ScriptedServer(actions)
        servers.append(server)
        return server

    yield factory
    for server in servers:
        server.close()


def _client(server, **overrides):
    options = dict(socket_path=server.path, timeout=5.0, retry_seed=3)
    options.update(overrides)
    return ServeClient(**options)


class TestRetries:
    def test_busy_is_retried_until_admitted(self, scripted):
        server = scripted(["busy", "busy", "ok"])
        with _client(server) as client:
            reply = client.request("stats")
            assert reply["ok"] is True
        assert client.sheds_seen == 2
        assert client.retried == 1
        assert [r["op"] for r in server.requests] == ["stats", "stats", "stats"]

    def test_dropped_connection_retries_idempotent_requests(self, scripted):
        server = scripted(["drop", "ok"])
        with _client(server) as client:
            reply = client.step(expect=0)
            assert reply["ok"] is True
        # Same request resent on a fresh connection, not re-composed.
        assert [r.get("expect") for r in server.requests] == [0, 0]

    def test_mid_flight_failure_refuses_non_idempotent_retry(self, scripted):
        server = scripted(["drop"])
        with _client(server) as client:
            with pytest.raises(ValidationError, match="not idempotent"):
                client.request("step")
        assert len(server.requests) == 1  # never resent

    def test_retry_budget_is_bounded(self, scripted):
        server = scripted(["busy"] * 3)
        with _client(server, max_retries=2) as client:
            with pytest.raises(RetryBudgetExceeded, match="after 3 attempt"):
                client.request("stats")
        assert client.sheds_seen == 3

    def test_deadline_stops_the_retry_loop(self, scripted):
        server = scripted(["busy"] * 50)
        with _client(server, max_retries=50) as client:
            with pytest.raises(RetryBudgetExceeded, match="deadline"):
                client.request("stats", deadline=0.05)

    def test_zero_retries_restores_fail_fast(self, scripted):
        server = scripted(["busy"])
        with _client(server, max_retries=0) as client:
            with pytest.raises(RetryBudgetExceeded):
                client.request("stats")


class TestIdempotencyClassification:
    def test_mutate_helper_always_carries_an_idem_key(self, scripted):
        server = scripted(["ok", "ok"])
        with _client(server) as client:
            client.mutate({"kind": "drift", "steps": 1})
            client.mutate({"kind": "drift", "steps": 1}, idem="mine")
        first, second = server.requests
        assert isinstance(first["idem"], str) and first["idem"]
        assert second["idem"] == "mine"
        assert first["idem"] != second["idem"]

    def test_bare_mutate_is_not_retried_mid_flight(self, scripted):
        server = scripted(["drop"])
        with _client(server) as client:
            with pytest.raises(ValidationError, match="idem"):
                client.request("mutate", mutation={"kind": "drift", "steps": 1})
        assert len(server.requests) == 1

    def test_mutate_with_idem_is_retried(self, scripted):
        server = scripted(["drop", "ok"])
        with _client(server) as client:
            reply = client.request(
                "mutate", mutation={"kind": "drift", "steps": 1}, idem="retry-me"
            )
            assert reply["ok"] is True
        assert [r["idem"] for r in server.requests] == ["retry-me", "retry-me"]

    def test_shutdown_fails_fast_on_a_dead_server(self, scripted):
        server = scripted(["drop"])
        with _client(server) as client:
            with pytest.raises(ValidationError):
                client.shutdown()
        assert len(server.requests) == 1
