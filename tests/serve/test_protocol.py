"""The newline-delimited JSON wire format."""

import json

import pytest

from repro.serve.protocol import (
    OPS,
    ProtocolError,
    encode,
    error_response,
    parse_request,
    response,
)


class TestParseRequest:
    def test_accepts_every_op(self):
        for op in OPS:
            assert parse_request(json.dumps({"op": op}))["op"] == op

    def test_accepts_bytes(self):
        assert parse_request(b'{"op": "stats"}')["op"] == "stats"

    def test_rejects_bad_json(self):
        with pytest.raises(ProtocolError):
            parse_request(b"{nope")

    def test_rejects_non_object(self):
        with pytest.raises(ProtocolError):
            parse_request(b'["lookup"]')

    def test_rejects_unknown_op(self):
        with pytest.raises(ProtocolError):
            parse_request(b'{"op": "teleport"}')

    def test_rejects_missing_op(self):
        with pytest.raises(ProtocolError):
            parse_request(b'{"src": 1}')

    def test_rejects_non_scalar_id(self):
        with pytest.raises(ProtocolError):
            parse_request(b'{"op": "stats", "id": {"nested": true}}')

    def test_rejects_non_utf8(self):
        with pytest.raises(ProtocolError):
            parse_request(b'\xff\xfe{"op": "stats"}')


class TestEncode:
    def test_newline_framed_compact_json(self):
        line = encode({"ok": True, "value": 1.5})
        assert line.endswith(b"\n")
        assert b" " not in line
        assert json.loads(line) == {"ok": True, "value": 1.5}

    def test_rejects_non_finite_floats(self):
        # Non-finite values must be folded through the codec upstream.
        with pytest.raises(ValueError):
            encode({"ok": True, "value": float("nan")})


class TestResponses:
    def test_response_echoes_id(self):
        assert response(7, value=1) == {"ok": True, "id": 7, "value": 1}
        assert response(None, value=1) == {"ok": True, "value": 1}

    def test_error_response(self):
        message = error_response("abc", "bad-request", "nope")
        assert message == {
            "ok": False,
            "error": "bad-request",
            "message": "nope",
            "id": "abc",
        }
