"""The --supervise restart loop: backoff, give-up, graceful stop."""

from __future__ import annotations

import os
import signal
import sys
import threading
import time

import pytest

from repro.serve.supervise import Supervisor, serve_command
from repro.util.validation import ValidationError

#: A child that exits with the code given in argv[1] (default 0).
_EXIT = [sys.executable, "-c", "import sys; sys.exit(int(sys.argv[1]))"]

#: A child that sleeps until SIGTERM, then exits with the given code.
_DRAIN = [
    sys.executable,
    "-c",
    (
        "import signal, sys, time\n"
        "code = int(sys.argv[1])\n"
        "signal.signal(signal.SIGTERM, lambda *a: sys.exit(code))\n"
        "while True:\n"
        "    time.sleep(0.05)\n"
    ),
]


def _supervisor(command, **overrides):
    options = dict(backoff_base=0.01, backoff_cap=0.04, stable_after=30.0)
    options.update(overrides)
    return Supervisor(command, **options)


class TestRestartLoop:
    def test_clean_exit_stops_immediately(self):
        supervisor = _supervisor(_EXIT + ["0"])
        report = supervisor.run()
        assert report.starts == 1
        assert report.restarts == 0
        assert report.stopped_clean
        assert report.last_exit_code == 0
        assert "stop=clean" in report.summary()

    def test_crashes_restart_until_the_budget_runs_out(self):
        supervisor = _supervisor(_EXIT + ["3"], max_restarts=2)
        report = supervisor.run()
        assert report.gave_up
        assert report.starts == 3  # the first start + two restarts
        assert report.restarts == 3
        assert report.exit_codes == [3, 3, 3]
        assert "stop=gave-up" in report.summary()

    def test_backoff_doubles_between_fast_crashes(self):
        supervisor = _supervisor(
            _EXIT + ["1"], backoff_base=0.05, backoff_cap=1.0, max_restarts=3
        )
        started = time.monotonic()
        supervisor.run()
        elapsed = time.monotonic() - started
        # Sleeps of 0.05 + 0.10 + 0.20 separate the four starts.
        assert elapsed >= 0.35

    def test_on_spawn_sees_every_child(self):
        pids = []
        supervisor = _supervisor(
            _EXIT + ["2"], max_restarts=1, on_spawn=lambda child: pids.append(child.pid)
        )
        supervisor.run()
        assert len(pids) == 2
        assert pids[0] != pids[1]

    def test_sigkilled_child_is_restarted(self, tmp_path):
        marker = tmp_path / "alive"
        touch_then_sleep = [
            sys.executable,
            "-c",
            (
                "import pathlib, sys, time\n"
                f"path = pathlib.Path({str(marker)!r})\n"
                "if path.exists():\n"
                "    sys.exit(0)\n"  # second life: exit clean
                "path.touch()\n"
                "time.sleep(60)\n"
            ),
        ]
        children = []
        supervisor = _supervisor(touch_then_sleep, on_spawn=children.append)

        def _kill_when_alive():
            while not marker.exists():
                time.sleep(0.01)
            os.kill(children[0].pid, signal.SIGKILL)

        killer = threading.Thread(target=_kill_when_alive)
        killer.start()
        report = supervisor.run()
        killer.join(timeout=10)
        assert report.exit_codes[0] == -signal.SIGKILL
        assert report.restarts == 1
        assert report.stopped_clean


class TestGracefulStop:
    def test_request_stop_terminates_the_child(self):
        supervisor = _supervisor(_DRAIN + ["0"])
        stopper = threading.Timer(0.3, supervisor.request_stop)
        stopper.start()
        report = supervisor.run()
        stopper.join()
        # SIGTERM reached the child, which drained and exited clean.
        assert report.stopped_clean
        assert report.restarts == 0

    def test_stop_during_backoff_does_not_respawn(self):
        supervisor = _supervisor(_EXIT + ["1"], backoff_base=0.5, backoff_cap=0.5)
        stopper = threading.Timer(0.2, supervisor.request_stop)
        stopper.start()
        report = supervisor.run()
        stopper.join()
        assert report.starts == 1

    def test_nonzero_exit_after_stop_request_is_not_a_crash(self):
        supervisor = _supervisor(_DRAIN + ["17"])
        stopper = threading.Timer(0.3, supervisor.request_stop)
        stopper.start()
        report = supervisor.run()
        stopper.join()
        assert report.restarts == 0
        assert not report.gave_up
        assert report.last_exit_code == 17
        assert "stop=signal" in report.summary()


class TestValidation:
    def test_empty_command_is_rejected(self):
        with pytest.raises(ValidationError, match="non-empty command"):
            Supervisor([])

    def test_backoff_envelope_is_sanity_checked(self):
        with pytest.raises(ValidationError, match="backoff"):
            Supervisor(_EXIT + ["0"], backoff_base=1.0, backoff_cap=0.5)


class TestServeCommand:
    def test_strips_supervision_flags_only(self):
        argv = [
            "serve",
            "--spec",
            "scenario.json",
            "--supervise",
            "--restart-backoff",
            "0.5",
            "--max-restarts=4",
            "--log",
            "serve.jsonl",
            "--restart-cap",
            "2.0",
        ]
        command = serve_command(argv)
        assert command[:3] == [sys.executable, "-m", "repro.cli"]
        assert command[3:] == [
            "serve",
            "--spec",
            "scenario.json",
            "--log",
            "serve.jsonl",
        ]

    def test_plain_argv_passes_through(self):
        argv = ["serve", "--spec", "s.json", "--checkpoint-every", "3"]
        assert serve_command(argv)[3:] == argv
