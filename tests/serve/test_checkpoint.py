"""Checkpoint envelope round-trips, validation, and retention."""

from __future__ import annotations

import base64
import json
import os

import pytest

from repro.serve.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointManager,
    checkpoint_name,
)
from repro.util.validation import ValidationError


def _write(manager, *, epochs=3, segment=1, session=None, **overrides):
    return manager.write(
        session if session is not None else {"rng": [1, 2, 3]},
        spec=overrides.pop("spec", {"experiment": "live-overlay"}),
        batched=overrides.pop("batched", True),
        epochs_completed=epochs,
        segment=segment,
        **overrides,
    )


def _tamper(directory, name, mutate):
    path = os.path.join(directory, name)
    with open(path) as handle:
        envelope = json.load(handle)
    mutate(envelope)
    with open(path, "w") as handle:
        json.dump(envelope, handle)


class TestRoundTrip:
    def test_write_load_round_trips_all_fields(self, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        name = _write(
            manager,
            epochs=5,
            segment=2,
            session={"state": 42},
            epoch_digests={4: "abcd", 5: "ef01"},
            dedupe={"client-1": 3},
        )
        assert name == checkpoint_name(5, 2)
        state = manager.load(name)
        assert state.session == {"state": 42}
        assert state.spec == {"experiment": "live-overlay"}
        assert state.batched is True
        assert state.epochs_completed == 5
        assert state.segment == 2
        assert state.epoch_digests == {4: "abcd", 5: "ef01"}
        assert state.dedupe == {"client-1": 3}

    def test_names_sort_oldest_first(self, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        _write(manager, epochs=10, segment=3)
        _write(manager, epochs=2, segment=1)
        assert manager.names() == [checkpoint_name(2, 1), checkpoint_name(10, 3)]

    def test_load_missing_raises(self, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        with pytest.raises(ValidationError, match="not found"):
            manager.load(checkpoint_name(1, 1))


class TestValidation:
    def test_schema_mismatch_raises(self, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        name = _write(manager)
        _tamper(
            str(tmp_path),
            name,
            lambda env: env.update(schema=CHECKPOINT_SCHEMA_VERSION + 1),
        )
        with pytest.raises(ValidationError, match="schema"):
            manager.load(name)

    def test_payload_digest_mismatch_raises(self, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        name = _write(manager)
        tampered = base64.b64encode(b"not the pickled session").decode("ascii")
        _tamper(str(tmp_path), name, lambda env: env.update(payload=tampered))
        with pytest.raises(ValidationError, match="integrity digest"):
            manager.load(name)

    def test_latest_skips_corrupt_and_falls_back(self, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        _write(manager, epochs=3, segment=1, session={"epoch": 3})
        newest = _write(manager, epochs=6, segment=2, session={"epoch": 6})
        with open(os.path.join(str(tmp_path), newest), "w") as handle:
            handle.write("{ truncated half-written checkpoi")
        state = manager.latest()
        assert state is not None
        assert state.epochs_completed == 3
        assert state.session == {"epoch": 3}
        assert len(manager.skipped) == 1
        assert newest in manager.skipped[0]

    def test_latest_returns_none_when_empty(self, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        assert manager.latest() is None
        assert manager.skipped == []


class TestRetention:
    def test_prune_keeps_the_newest(self, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        for epochs, segment in [(2, 1), (4, 2), (6, 3), (8, 4)]:
            _write(manager, epochs=epochs, segment=segment)
        removed = manager.prune(2)
        assert removed == [checkpoint_name(2, 1), checkpoint_name(4, 2)]
        assert manager.names() == [checkpoint_name(6, 3), checkpoint_name(8, 4)]

    def test_prune_zero_keeps_everything(self, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        _write(manager, epochs=2, segment=1)
        _write(manager, epochs=4, segment=2)
        assert manager.prune(0) == []
        assert len(manager.names()) == 2

    def test_oldest_segment_tracks_pruning(self, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        assert manager.oldest_segment() is None
        _write(manager, epochs=2, segment=1)
        _write(manager, epochs=4, segment=2)
        assert manager.oldest_segment() == 1
        manager.prune(1)
        assert manager.oldest_segment() == 2
