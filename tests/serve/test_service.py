"""The synchronous service core: lookups, mutations, the event stream."""

import numpy as np
import pytest

from repro.routing.shortest_path import shortest_path_costs_from
from repro.routing.widest_path import widest_path_bandwidths_from
from repro.scenario.spec import ScenarioSpec
from repro.serve.service import OverlayService, ServeError


def _spec(**overrides) -> ScenarioSpec:
    base = dict(
        experiment="live-overlay",
        n=16,
        k_grid=(3,),
        policies=("best-response",),
        metric="delay-ping",
        epochs=3,
        seed=7,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


@pytest.fixture
def service():
    svc = OverlayService(_spec())
    yield svc
    if not svc.closed:
        svc.close()


class TestLookup:
    def test_lookup_before_first_epoch_is_an_error(self, service):
        with pytest.raises(ServeError) as err:
            service.lookup(0, 1)
        assert err.value.code == "no-epoch"

    def test_lookup_is_version_stamped(self, service):
        service.tick()
        result = service.lookup(0, 5)
        assert result["reachable"] is True
        assert result["value"] > 0
        assert result["epoch"] == 0
        assert result["version"] == service.session.engine().wiring.version
        assert result["source"] in ("cache", "sweep")

    def test_lookup_matches_fresh_sweep(self, service):
        service.tick()
        engine = service.session.engine()
        view = engine.last_epoch_view
        graph = engine.wiring.to_graph(active=view.active_list)
        costs = shortest_path_costs_from(graph, 0, disconnection_cost=float("inf"))
        for dst in (3, 7, 11):
            assert service.lookup(0, dst)["value"] == pytest.approx(
                float(costs[dst]), rel=1e-12
            )

    def test_want_path_returns_a_consistent_route(self, service):
        service.tick()
        result = service.lookup(0, 5, want_path=True)
        path = result["path"]
        assert path[0] == 0 and path[-1] == 5
        assert len(path) == len(set(path))

    def test_bandwidth_metric_lookup(self):
        service = OverlayService(_spec(metric="bandwidth"))
        service.tick()
        engine = service.session.engine()
        view = engine.last_epoch_view
        graph = engine.wiring.to_graph(active=view.active_list)
        widths = widest_path_bandwidths_from(graph, 2)
        result = service.lookup(2, 9)
        assert result["value"] == pytest.approx(float(widths[9]), rel=1e-12)
        service.close()

    def test_departed_node_is_unreachable(self, service):
        service.tick()
        service.mutate({"kind": "leave", "nodes": [5]})
        service.tick()
        result = service.lookup(0, 5)
        assert result["value"] is None
        assert result["reachable"] is False

    def test_bad_pairs_rejected(self, service):
        service.tick()
        for src, dst in ((0, 0), (-1, 2), (0, 99), ("x", 1)):
            with pytest.raises(ServeError):
                service.lookup(src, dst)

    def test_unknown_engine_rejected(self, service):
        service.tick()
        with pytest.raises(Exception):
            service.lookup(0, 1, engine="nonesuch")


class TestLookupBatch:
    def test_batch_matches_single_lookups(self, service):
        service.tick()
        pairs = [[0, 5], [0, 7], [3, 4], [5, 0]]
        batch = service.lookup_batch(pairs)
        singles = [service.lookup(s, d)["value"] for s, d in pairs]
        assert batch["values"] == singles
        assert batch["epoch"] == 0

    def test_batch_rejects_malformed_pairs(self, service):
        service.tick()
        with pytest.raises(ServeError):
            service.lookup_batch([[0]])
        with pytest.raises(ServeError):
            service.lookup_batch("not-pairs")

    def test_rows_are_memoized_within_a_version(self, service):
        service.tick()
        service.lookup_batch([[0, d] for d in range(1, 10)])
        sweeps_before = service.counters["rows_from_sweep"]
        cache_before = service.counters["rows_from_cache"]
        service.lookup_batch([[0, d] for d in range(1, 10)])
        assert service.counters["rows_from_sweep"] == sweeps_before
        assert service.counters["rows_from_cache"] == cache_before

    def test_memo_cleared_on_tick(self, service):
        service.tick()
        service.lookup(0, 5)
        rows_before = (
            service.counters["rows_from_sweep"] + service.counters["rows_from_cache"]
        )
        service.tick()
        service.lookup(0, 5)
        assert (
            service.counters["rows_from_sweep"] + service.counters["rows_from_cache"]
            == rows_before + 1
        )


class TestResidualCachePath:
    def test_cache_row_matches_sweep_when_valid(self):
        service = OverlayService(_spec(n=20))
        for _ in range(6):
            service.tick()
        engine = service.session.engine()
        view = engine.last_epoch_view
        graph = engine.wiring.to_graph(active=view.active_list)
        served_from_cache = 0
        for src in view.active_list:
            row = service._cache_row(engine, view, src)
            if row is None:
                continue
            served_from_cache += 1
            sweep = shortest_path_costs_from(
                graph, src, disconnection_cost=float("inf")
            )
            finite = np.isfinite(sweep)
            assert np.allclose(row[finite], sweep[finite], rtol=1e-12)
        # The changelog screen accepts at least the last-stepped node's
        # entry (its own trailing install cannot stale its residual).
        assert served_from_cache >= 1
        service.close()


class TestMutateAndSubscribe:
    def test_mutation_applies_next_epoch(self, service):
        service.tick()
        result = service.mutate({"kind": "leave", "nodes": [3]})
        assert result["applied_epoch"] == 1
        payload = service.tick()
        (record,) = payload["records"].values()
        assert record["active_nodes"] == 15

    def test_failure_event_epoch_defaults_to_next(self, service):
        service.tick()
        service.mutate(
            {"kind": "failure", "event": {"action": "node-down", "nodes": [2]}}
        )
        payload = service.tick()
        (record,) = payload["records"].values()
        assert record["active_nodes"] == 15

    def test_malformed_mutation_rejected(self, service):
        with pytest.raises(Exception):
            service.mutate({"kind": "explode"})
        with pytest.raises(ServeError):
            service.mutate("leave 5")

    def test_subscribers_see_every_tick(self, service):
        seen = []
        service.subscribe(seen.append)
        service.tick()
        service.tick()
        assert [payload["epoch"] for payload in seen] == [0, 1]
        assert all(payload["event"] == "epoch" for payload in seen)
        assert all("digest" in payload and "cache" in payload for payload in seen)
        service.unsubscribe(seen.append)
        service.tick()
        assert len(seen) == 2


class TestLifecycleAndStats:
    def test_snapshot_and_stats(self, service):
        service.tick()
        service.lookup(0, 1)
        snapshot = service.snapshot()
        assert snapshot["epochs_completed"] == 1
        assert snapshot["batched"] is True
        stats = service.stats()
        assert stats["counters"]["lookups"] == 1
        assert stats["counters"]["epochs"] == 1
        assert "hit_rate" in stats["cache"]

    def test_closed_service_refuses_requests(self, service):
        service.tick()
        service.close()
        with pytest.raises(ServeError) as err:
            service.lookup(0, 1)
        assert err.value.code == "closed"
        service.close()  # idempotent
