"""The chaos harness' deterministic plan, schedule, and verdict logic.

The end-to-end SIGKILL runs live in ``repro chaos`` (exercised by CI on
``scenarios/chaos_smoke.json``); these tests pin down the pieces that
make those runs reproducible and the verdict trustworthy.
"""

from __future__ import annotations

import json

import pytest

from repro.scenario.spec import ScenarioSpec
from repro.serve.chaos import (
    ChaosReport,
    ChaosScenario,
    build_plan,
    kill_points,
    run_reference,
)
from repro.util.validation import ValidationError


def _spec(**overrides) -> ScenarioSpec:
    base = dict(
        experiment="live-overlay",
        n=16,
        k_grid=(3,),
        policies=("best-response",),
        metric="delay-ping",
        epochs=3,
        br_rounds=2,
        seed=7,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


def _scenario(**overrides) -> ChaosScenario:
    options = dict(spec=_spec(), seed=5, epochs=8, mutate_every=2, kills=2)
    options.update(overrides)
    return ChaosScenario(**options)


class TestPlan:
    def test_plan_is_deterministic_in_the_seed(self):
        assert build_plan(_scenario()) == build_plan(_scenario())
        assert build_plan(_scenario(seed=6)) != build_plan(_scenario(seed=5))

    def test_every_epoch_gets_an_idempotent_step(self):
        plan = build_plan(_scenario())
        steps = [arg for op, arg in plan if op == "step"]
        assert steps == list(range(8))

    def test_mutations_carry_stable_idem_keys(self):
        plan = build_plan(_scenario())
        idems = [arg["idem"] for op, arg in plan if op == "mutate"]
        assert idems == ["chaos-2", "chaos-4", "chaos-6"]
        for op, arg in plan:
            if op == "mutate":
                assert arg["mutation"]["kind"] in ("drift", "rewire")

    def test_lookup_pairs_stay_inside_the_overlay(self):
        plan = build_plan(_scenario(lookups_per_epoch=5))
        for op, arg in plan:
            if op == "lookup":
                assert len(arg) == 5
                for src, dst in arg:
                    assert src != dst
                    assert 0 <= src < 16 and 0 <= dst < 16


class TestKillPoints:
    def test_kill_points_are_deterministic_and_interior(self):
        scenario = _scenario(kills=3)
        points = kill_points(scenario)
        assert points == kill_points(scenario)
        assert len(points) == 3
        assert points == sorted(set(points))
        # Never after the final step: verification traffic must follow
        # the last recovery.
        assert all(0 <= point < scenario.epochs - 1 for point in points)

    def test_kill_schedule_varies_with_the_seed(self):
        assert kill_points(_scenario(seed=1, kills=4)) != kill_points(
            _scenario(seed=2, kills=4)
        )


class TestScenarioLoad:
    def _write(self, tmp_path, data):
        path = tmp_path / "chaos.json"
        path.write_text(json.dumps(data))
        return str(path)

    def test_inline_scenario_round_trips(self, tmp_path):
        path = self._write(
            tmp_path,
            {"scenario": _spec().to_dict(), "seed": 9, "epochs": 5, "kills": 2},
        )
        scenario = ChaosScenario.load(path)
        assert scenario.spec.n == 16
        assert (scenario.seed, scenario.epochs, scenario.kills) == (9, 5, 2)

    def test_scenario_path_resolves_relative_to_the_file(self, tmp_path):
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(json.dumps(_spec(n=20).to_dict()))
        path = self._write(tmp_path, {"scenario_path": "spec.json", "epochs": 4})
        assert ChaosScenario.load(path).spec.n == 20

    def test_exactly_one_scenario_source(self, tmp_path):
        path = self._write(
            tmp_path,
            {"scenario": _spec().to_dict(), "scenario_path": "spec.json"},
        )
        with pytest.raises(ValidationError, match="exactly one"):
            ChaosScenario.load(path)
        with pytest.raises(ValidationError, match="exactly one"):
            ChaosScenario.load(self._write(tmp_path, {"epochs": 4}))

    def test_unknown_fields_are_rejected(self, tmp_path):
        path = self._write(
            tmp_path, {"scenario": _spec().to_dict(), "sigkills": 3}
        )
        with pytest.raises(ValidationError, match="sigkills"):
            ChaosScenario.load(path)

    def test_kills_must_leave_room_to_recover(self, tmp_path):
        path = self._write(
            tmp_path, {"scenario": _spec().to_dict(), "epochs": 3, "kills": 3}
        )
        with pytest.raises(ValidationError, match="kills"):
            ChaosScenario.load(path)

    def test_checked_in_scenarios_parse(self):
        import os

        here = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        for name in ("chaos_smoke.json", "chaos_quick.json", "chaos_churn.json"):
            scenario = ChaosScenario.load(os.path.join(here, "scenarios", name))
            assert scenario.kills < scenario.epochs
            assert scenario.checkpoint_every >= 1


class TestReference:
    def test_reference_run_is_reproducible(self):
        scenario = _scenario(epochs=4, lookups_per_epoch=3)
        first = run_reference(scenario, batched=True)
        second = run_reference(scenario, batched=True)
        assert first == second
        digests, lookups = first
        assert sorted(digests) == list(range(4))
        assert len(lookups) == 4  # one batch per epoch ...
        assert all(len(batch) == 3 for batch in lookups)  # ... of 3 values

    def test_reference_is_kernel_independent(self):
        scenario = _scenario(epochs=3, lookups_per_epoch=2)
        assert run_reference(scenario, batched=True) == run_reference(
            scenario, batched=False
        )


class TestVerdict:
    def test_ok_requires_zero_loss_and_full_recovery(self):
        report = ChaosReport(kills=3, recoveries=3, epochs=12, replay_ok=True)
        assert report.ok
        assert report.summary().endswith("ok")
        for breaking in (
            dict(lost_mutations=1),
            dict(duplicated_mutations=1),
            dict(digest_mismatches=1),
            dict(lookup_mismatches=2),
            dict(unbounded_recoveries=1),
            dict(replay_ok=False),
            dict(recoveries=2),
        ):
            bad = ChaosReport(kills=3, recoveries=3, epochs=12, replay_ok=True)
            for key, value in breaking.items():
                setattr(bad, key, value)
            assert not bad.ok, breaking
            assert bad.summary().endswith("FAILED")
