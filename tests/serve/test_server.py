"""The asyncio transport, driven through the blocking client."""

import json
import os
import socket
import tempfile

import pytest

from repro.scenario.spec import ScenarioSpec
from repro.serve.client import ServeClient
from repro.serve.server import start_background_server
from repro.serve.service import OverlayService
from repro.util.validation import ValidationError


def _spec(**overrides) -> ScenarioSpec:
    base = dict(
        experiment="live-overlay",
        n=12,
        k_grid=(3,),
        policies=("best-response",),
        metric="delay-ping",
        epochs=2,
        seed=13,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


@pytest.fixture
def endpoint():
    """A served overlay on a unix socket, shut down afterwards."""
    # Unix socket paths are length-limited (~104 bytes): mkdtemp in /tmp.
    sock = os.path.join(tempfile.mkdtemp(prefix="serve-", dir="/tmp"), "ovl.sock")
    service = OverlayService(_spec())
    service.tick()
    thread = start_background_server(service, socket_path=sock)
    yield sock
    if not service.closed:
        try:
            with ServeClient(socket_path=sock, timeout=5) as client:
                client.shutdown()
        except (ValidationError, OSError):
            pass
    thread.join(timeout=10)


class TestRequestResponse:
    def test_lookup_over_the_wire(self, endpoint):
        with ServeClient(socket_path=endpoint) as client:
            reply = client.lookup(0, 5)
            assert reply["ok"] is True
            assert reply["reachable"] is True
            assert reply["epoch"] == 0

    def test_lookup_batch_and_stats(self, endpoint):
        with ServeClient(socket_path=endpoint) as client:
            reply = client.lookup_batch([(0, 5), (1, 7), (2, 3)])
            assert len(reply["values"]) == 3
            stats = client.stats()
            assert stats["counters"]["lookups"] == 3

    def test_snapshot_names_the_deployments(self, endpoint):
        with ServeClient(socket_path=endpoint) as client:
            snapshot = client.snapshot()
            assert snapshot["protocol"] == 1
            assert snapshot["scenario"]["n"] == 12
            (deployment,) = snapshot["deployments"]
            assert deployment["label"] == "best-response@k=3"

    def test_mutate_then_step_commits(self, endpoint):
        with ServeClient(socket_path=endpoint) as client:
            reply = client.mutate({"kind": "leave", "nodes": [4]})
            assert reply["applied_epoch"] == 1
            step = client.step()
            assert step["epoch"] == 1
            lookup = client.lookup(0, 4)
            assert lookup["reachable"] is False

    def test_concurrent_clients_share_the_overlay(self, endpoint):
        with ServeClient(socket_path=endpoint) as a, ServeClient(
            socket_path=endpoint
        ) as b:
            va = a.lookup(0, 5)
            vb = b.lookup(0, 5)
            assert va["value"] == vb["value"]
            assert va["version"] == vb["version"]


class TestMalformedRequests:
    def _raw(self, endpoint, payload: bytes):
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as raw:
            raw.settimeout(10)
            raw.connect(endpoint)
            raw.sendall(payload)
            return json.loads(raw.makefile("rb").readline())

    def test_bad_json_gets_an_error_line(self, endpoint):
        reply = self._raw(endpoint, b"{nope\n")
        assert reply["ok"] is False
        assert reply["error"] == "bad-request"

    def test_unknown_op_gets_an_error_line(self, endpoint):
        reply = self._raw(endpoint, b'{"op": "teleport", "id": 3}\n')
        assert reply["ok"] is False
        assert reply["id"] == 3

    def test_invalid_lookup_arguments(self, endpoint):
        reply = self._raw(endpoint, b'{"op": "lookup", "src": 0, "dst": 0}\n')
        assert reply["ok"] is False
        assert reply["error"] == "bad-request"

    def test_error_keeps_the_connection_usable(self, endpoint):
        with ServeClient(socket_path=endpoint) as client:
            with pytest.raises(ValidationError):
                client.lookup(0, 99)
            assert client.lookup(0, 5)["ok"] is True


class TestSubscribe:
    def test_events_stream_to_subscribers(self, endpoint):
        with ServeClient(socket_path=endpoint) as subscriber, ServeClient(
            socket_path=endpoint
        ) as driver:
            assert subscriber.subscribe()["subscribed"] is True
            driver.step()
            event = subscriber.next_event()
            assert event["event"] == "epoch"
            assert event["epoch"] == 1
            assert "digest" in event
            (record,) = event["records"].values()
            assert record["schema"] == 1
            assert "hit_rate" in event["cache"]

    def test_requests_still_answered_while_subscribed(self, endpoint):
        with ServeClient(socket_path=endpoint) as client:
            client.subscribe()
            client.step()
            reply = client.lookup(0, 5)
            assert reply["ok"] is True
            # The pushed epoch event was buffered aside, not dropped.
            assert client.next_event()["event"] == "epoch"


class TestShutdown:
    def test_shutdown_closes_the_service(self, endpoint):
        with ServeClient(socket_path=endpoint) as client:
            assert client.shutdown()["shutting_down"] is True
        with pytest.raises((ValidationError, OSError)):
            fresh = ServeClient(socket_path=endpoint, timeout=5)
            try:
                fresh.lookup(0, 5)
            finally:
                fresh.close()
