"""Crash recovery: checkpoint restore, bounded replay, kill-at-random-epoch.

The in-process tests simulate a SIGKILL by abandoning a service without
``close()`` — every acknowledged entry is already fsynced, so the log on
disk is exactly what a killed process leaves behind (optionally with a
torn tail appended by hand).  One test kills a real server subprocess to
prove the same protocol holds end-to-end.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.scenario.spec import ScenarioSpec
from repro.serve.client import ServeClient
from repro.serve.replay import replay_log
from repro.serve.service import OverlayService, RecoveryError


def _spec(**overrides) -> ScenarioSpec:
    base = dict(
        experiment="live-overlay",
        n=16,
        k_grid=(3,),
        policies=("best-response",),
        metric="delay-ping",
        epochs=3,
        br_rounds=2,
        seed=7,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


#: Mutations applied when ``epochs_completed`` reaches the key, with the
#: idempotency key each is sent under.  Fixed so interrupted and
#: uninterrupted runs see the same inputs.
_MUTATIONS = {
    1: ({"kind": "drift", "steps": 2}, "idem-epoch-1"),
    3: ({"kind": "rewire", "nodes": [4]}, "idem-epoch-3"),
}

_TOTAL_EPOCHS = 6


def _drive(service: OverlayService, until: int) -> dict:
    """Advance to ``until`` completed epochs, applying the fixed plan."""
    digests = {}
    while service.session.epochs_completed < until:
        done = service.session.epochs_completed
        if done in _MUTATIONS:
            mutation, idem = _MUTATIONS[done]
            service.mutate(dict(mutation), idem=idem)
        payload = service.tick()
        digests[payload["epoch"]] = payload["digest"]
    return digests


def _crash(service: OverlayService) -> None:
    """Abandon the service the way SIGKILL would: no close entry, no seal."""
    service._log.close()
    service._log = None
    service.closed = True


def _reference_digests() -> dict:
    service = OverlayService(_spec())
    try:
        return _drive(service, _TOTAL_EPOCHS)
    finally:
        service.close()


@pytest.fixture(scope="module")
def reference():
    return _reference_digests()


def _crashed_service(tmp_path, *, epochs: int, checkpoint_every: int = 2):
    log = str(tmp_path / "serve.jsonl")
    ckpt = str(tmp_path / "checkpoints")
    service = OverlayService(
        _spec(),
        log_path=log,
        checkpoint_dir=ckpt,
        checkpoint_every=checkpoint_every,
    )
    digests = _drive(service, epochs)
    _crash(service)
    return log, ckpt, digests


class TestRecover:
    def test_recovery_restores_epochs_and_digests(self, tmp_path, reference):
        log, ckpt, digests = _crashed_service(tmp_path, epochs=5)
        service = OverlayService.recover(log, checkpoint_dir=ckpt, checkpoint_every=2)
        try:
            assert service.session.epochs_completed == 5
            report = service.last_recovery
            assert report is not None
            assert report.checkpoint_epochs == 4
            assert report.replayed_epochs == 1
            assert report.bounded
            assert "bounded=yes" in report.summary()
            assert service.counters["recoveries"] == 1
            # The pre-crash digests match the uninterrupted reference ...
            assert digests == {e: reference[e] for e in digests}
            # ... and post-recovery epochs continue the same trajectory.
            resumed = _drive(service, _TOTAL_EPOCHS)
            assert resumed == {e: reference[e] for e in resumed}
        finally:
            service.close()

    def test_recovery_without_checkpoints_replays_the_chain(self, tmp_path, reference):
        log = str(tmp_path / "serve.jsonl")
        service = OverlayService(_spec(), log_path=log)
        _drive(service, 3)
        _crash(service)
        recovered = OverlayService.recover(log)
        try:
            assert recovered.session.epochs_completed == 3
            assert recovered.last_recovery.checkpoint is None
            assert recovered.last_recovery.replayed_epochs == 3
            resumed = _drive(recovered, _TOTAL_EPOCHS)
            assert resumed == {e: reference[e] for e in resumed}
        finally:
            recovered.close()

    def test_torn_tail_is_preserved_and_truncated(self, tmp_path):
        log, ckpt, _digests = _crashed_service(tmp_path, epochs=3)
        with open(log, "ab") as handle:
            handle.write(b'{"kind":"mutate","mutation":{"kind":"dri')
        service = OverlayService.recover(log, checkpoint_dir=ckpt, checkpoint_every=2)
        try:
            report = service.last_recovery
            assert report.torn_tail_bytes == 40
            assert report.sidecar is not None and os.path.exists(report.sidecar)
            assert service.session.epochs_completed == 3
        finally:
            service.close()

    def test_acked_mutation_survives_and_stays_exactly_once(self, tmp_path):
        log, ckpt, _digests = _crashed_service(tmp_path, epochs=5)
        service = OverlayService.recover(log, checkpoint_dir=ckpt, checkpoint_every=2)
        try:
            for done, (mutation, idem) in _MUTATIONS.items():
                ack = service.mutate(dict(mutation), idem=idem)
                assert ack["deduplicated"] is True
                assert ack["applied_epoch"] == done
            assert service.counters["retries"] == len(_MUTATIONS)
        finally:
            service.close()

    def test_step_retry_after_recovery_is_idempotent(self, tmp_path):
        log, ckpt, _digests = _crashed_service(tmp_path, epochs=3)
        service = OverlayService.recover(log, checkpoint_dir=ckpt, checkpoint_every=2)
        try:
            first = service.step(expect=3)
            again = service.step(expect=3)
            assert again["duplicate"] is True
            assert again["digest"] == first["digest"]
            assert service.session.epochs_completed == 4
        finally:
            service.close()

    def test_digest_divergence_is_a_hard_error(self, tmp_path):
        log, ckpt, _digests = _crashed_service(tmp_path, epochs=5)
        with open(log) as handle:
            lines = handle.readlines()
        for index in range(len(lines) - 1, -1, -1):
            entry = json.loads(lines[index])
            if entry["kind"] == "epoch":
                entry["digest"] = "0" * 32
                lines[index] = json.dumps(entry) + "\n"
                break
        with open(log, "w") as handle:
            handle.writelines(lines)
        with pytest.raises(RecoveryError, match="diverged"):
            OverlayService.recover(log, checkpoint_dir=ckpt, checkpoint_every=2)

    def test_recovered_log_chain_still_replays(self, tmp_path):
        log, ckpt, _digests = _crashed_service(tmp_path, epochs=5)
        service = OverlayService.recover(log, checkpoint_dir=ckpt, checkpoint_every=2)
        _drive(service, _TOTAL_EPOCHS)
        service.close()
        result = replay_log(log)
        assert result.ok
        assert result.epochs == _TOTAL_EPOCHS
        assert result.segments > 1


class TestKillAtRandomEpoch:
    """Property: whatever epoch the crash lands on — and whatever half-written

    bytes it leaves at the log tail — recovery restores the exact
    pre-crash state and the remaining epochs are byte-identical to an
    uninterrupted run.
    """

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        crash_after=st.integers(min_value=1, max_value=_TOTAL_EPOCHS - 1),
        torn_bytes=st.integers(min_value=0, max_value=24),
    )
    def test_recovery_is_byte_identical(self, reference, crash_after, torn_bytes):
        with tempfile.TemporaryDirectory() as tmp:
            log = os.path.join(tmp, "serve.jsonl")
            ckpt = os.path.join(tmp, "checkpoints")
            service = OverlayService(
                _spec(), log_path=log, checkpoint_dir=ckpt, checkpoint_every=2
            )
            pre = _drive(service, crash_after)
            _crash(service)
            if torn_bytes:
                with open(log, "ab") as handle:
                    handle.write(b'{"kind":"epoch","epoch":99,"di'[:torn_bytes])
            recovered = OverlayService.recover(
                log, checkpoint_dir=ckpt, checkpoint_every=2
            )
            try:
                report = recovered.last_recovery
                assert recovered.session.epochs_completed == crash_after
                assert report.bounded
                assert report.replayed_epochs <= 2
                if torn_bytes:
                    assert report.torn_tail_bytes == torn_bytes
                post = _drive(recovered, _TOTAL_EPOCHS)
                combined = {**pre, **post}
                assert combined == reference
                # Acked mutations stay exactly-once across the crash.
                for done, (mutation, idem) in _MUTATIONS.items():
                    if done < crash_after:
                        ack = recovered.mutate(dict(mutation), idem=idem)
                        assert ack == {
                            "applied_epoch": done,
                            "deduplicated": True,
                        }
            finally:
                recovered.close()


class TestRealSigkill:
    """One end-to-end crash: a real server process, a real SIGKILL."""

    def _spawn(self, spec_path, socket_path, log, ckpt, cwd):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(str(cwd), "src")
        return subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--spec",
                spec_path,
                "--socket",
                socket_path,
                "--log",
                log,
                "--checkpoint-dir",
                ckpt,
                "--checkpoint-every",
                "2",
                "--warmup-epochs",
                "0",
            ],
            cwd=str(cwd),
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )

    def _connect(self, socket_path, deadline=30.0):
        start = time.monotonic()
        while True:
            try:
                return ServeClient(socket_path=socket_path, timeout=10.0)
            except Exception:
                if time.monotonic() - start > deadline:
                    raise
                time.sleep(0.1)

    def test_sigkill_then_restart_recovers(self, tmp_path):
        repo = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        spec_path = str(tmp_path / "spec.json")
        with open(spec_path, "w") as handle:
            json.dump(_spec().to_dict(), handle)
        socket_path = str(tmp_path / "serve.sock")
        log = str(tmp_path / "serve.jsonl")
        ckpt = str(tmp_path / "checkpoints")

        server = self._spawn(spec_path, socket_path, log, ckpt, repo)
        try:
            client = self._connect(socket_path)
            digests = {}
            for epoch in range(3):
                reply = client.step(expect=epoch)
                digests[reply["epoch"]] = reply["digest"]
            ack = client.request("mutate", mutation={"kind": "drift", "steps": 1},
                                 idem="kill-test-1")
            assert ack["applied_epoch"] == 3
            client.close()
        finally:
            os.kill(server.pid, signal.SIGKILL)
            server.wait(timeout=30)

        restarted = self._spawn(spec_path, socket_path, log, ckpt, repo)
        try:
            client = self._connect(socket_path)
            # The acked mutation survived the SIGKILL exactly once.
            again = client.request(
                "mutate", mutation={"kind": "drift", "steps": 1}, idem="kill-test-1"
            )
            assert again["deduplicated"] is True
            assert again["applied_epoch"] == 3
            reply = client.step(expect=3)
            digests[reply["epoch"]] = reply["digest"]
            stats = client.request("stats")
            assert stats["counters"]["recoveries"] == 1
            assert stats["recovery"]["bounded"] is True
            client.shutdown()
            assert restarted.wait(timeout=30) == 0
        finally:
            if restarted.poll() is None:
                restarted.kill()
                restarted.wait(timeout=30)
        banner = restarted.stdout.read()
        assert "RECOVERY" in banner

        # The surviving chain replays byte-identically offline: replay_log
        # recomputes every epoch through the batch kernel and compares
        # against the digests the (twice-started) server logged.
        result = replay_log(log)
        assert result.ok
        assert result.epochs == len(digests)
