"""Serve-layer observability: drop accounting, the metrics op, Prometheus."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.scenario.spec import ScenarioSpec
from repro.serve.server import SUBSCRIBER_QUEUE_LIMIT, OverlayServer
from repro.serve.service import OverlayService
from repro.telemetry import runtime as telemetry


@pytest.fixture(autouse=True)
def _telemetry_off():
    telemetry.disable()
    yield
    telemetry.disable()


def _spec(**overrides) -> ScenarioSpec:
    base = dict(
        experiment="live-overlay",
        n=12,
        k_grid=(3,),
        policies=("best-response",),
        metric="delay-ping",
        epochs=2,
        seed=13,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


def _request(server: OverlayServer, **request) -> dict:
    """Drive one request through the synchronous dispatch path."""
    message, _subscribe, _shutdown = server._dispatch(
        json.dumps(request).encode(), 0
    )
    return message


class TestDropAccounting:
    def _full_queue(self, server: OverlayServer, connection: int = 0):
        queue: asyncio.Queue = asyncio.Queue()
        for i in range(SUBSCRIBER_QUEUE_LIMIT):
            server._enqueue(connection, queue, {"event": "epoch", "epoch": i})
        return queue

    def test_drop_oldest_counts_per_connection(self):
        server = OverlayServer(object())
        queue = self._full_queue(server, connection=0)
        assert server._dropped_events == 0
        server._enqueue(0, queue, {"event": "epoch", "epoch": 999})
        server._enqueue(0, queue, {"event": "epoch", "epoch": 1000})
        assert queue.qsize() == SUBSCRIBER_QUEUE_LIMIT
        assert server._dropped_events == 2
        stats = server._subscriber_stats()
        assert stats["dropped_events"] == 2
        assert stats["dropped_by_connection"] == {"0": 2}
        assert stats["max_depth"] == SUBSCRIBER_QUEUE_LIMIT
        assert stats["queue_limit"] == SUBSCRIBER_QUEUE_LIMIT
        # The oldest events went first: the queue now starts at epoch 2.
        assert queue.get_nowait()["epoch"] == 2

    def test_drops_counted_into_registry(self):
        telemetry.enable()
        server = OverlayServer(object())
        queue = self._full_queue(server)
        server._enqueue(0, queue, {"event": "epoch", "epoch": 999})
        counters = telemetry.metrics().snapshot()["counters"]
        assert counters["serve.subscribers.dropped"] == 1


class TestStatsAndMetricsOps:
    def test_stats_carries_subscriber_block(self):
        server = OverlayServer(OverlayService(_spec()))
        server.service.tick()
        reply = _request(server, op="stats", id=7)
        assert reply["ok"] is True and reply["id"] == 7
        assert reply["subscribers"]["dropped_events"] == 0
        assert reply["subscribers"]["queue_limit"] == SUBSCRIBER_QUEUE_LIMIT

    def test_metrics_op_is_a_stats_superset(self):
        telemetry.enable()
        server = OverlayServer(OverlayService(_spec()))
        server.service.tick()
        _request(server, op="lookup", src=0, dst=5)
        stats = _request(server, op="stats")
        reply = _request(server, op="metrics")
        for key in stats:
            assert key in reply
        snapshot = reply["metrics"]
        # Service counters are folded in at snapshot time.
        assert snapshot["counters"]["serve.lookups"] == 1.0
        assert snapshot["counters"]["serve.epochs"] == 1.0

    def test_metrics_op_without_registry_reports_none(self):
        server = OverlayServer(OverlayService(_spec()))
        server.service.tick()
        reply = _request(server, op="metrics")
        assert reply["ok"] is True
        assert reply["metrics"] is None

    def test_request_latency_histogram_per_op(self):
        telemetry.enable()
        server = OverlayServer(OverlayService(_spec()))
        server.service.tick()
        _request(server, op="stats")
        _request(server, op="lookup", src=0, dst=5)
        server._dispatch(b"not json", 0)
        histograms = telemetry.metrics().snapshot()["histograms"]
        assert histograms["serve.request.stats"]["count"] == 1
        assert histograms["serve.request.lookup"]["count"] == 1
        assert histograms["serve.request.invalid"]["count"] == 1


class TestCrashSafetyTelemetry:
    """Recovery, dedupe, and shed events land exactly once in the registry.

    The service reports its plain-int counters through the snapshot-time
    collector, so none of these paths may *also* call
    ``telemetry.count`` under the same name — that would double every
    value the moment someone scrapes ``/metrics``.
    """

    def _crashed_chain(self, tmp_path, *, epochs: int = 5):
        """A log + checkpoint dir abandoned mid-flight, SIGKILL-style."""
        log = str(tmp_path / "serve.jsonl")
        ckpt = str(tmp_path / "checkpoints")
        service = OverlayService(
            _spec(), log_path=log, checkpoint_dir=ckpt, checkpoint_every=2
        )
        for _ in range(epochs):
            service.tick()
        service._log.close()
        service._log = None
        service.closed = True
        return log, ckpt

    def test_recovery_counts_once_across_registry_views(self, tmp_path):
        log, ckpt = self._crashed_chain(tmp_path)
        telemetry.enable()
        service = OverlayService.recover(
            log, checkpoint_dir=ckpt, checkpoint_every=2
        )
        try:
            counters = telemetry.metrics().snapshot()["counters"]
            assert counters["serve.recoveries"] == 1.0
            text = telemetry.metrics().render_prometheus()
            assert "repro_serve_recoveries 1.0" in text
        finally:
            service.close()

    def test_recovery_emits_a_span(self, tmp_path):
        log, ckpt = self._crashed_chain(tmp_path)
        sink: list = []
        telemetry.enable(trace=sink)
        service = OverlayService.recover(
            log, checkpoint_dir=ckpt, checkpoint_every=2
        )
        service.close()
        spans = [e["name"] for e in sink if e.get("kind") == "span"]
        assert "serve.recovery" in spans

    def test_checkpoint_counter_is_single_counted(self, tmp_path):
        telemetry.enable()
        service = OverlayService(
            _spec(),
            log_path=str(tmp_path / "serve.jsonl"),
            checkpoint_dir=str(tmp_path / "checkpoints"),
            checkpoint_every=1,
        )
        try:
            service.tick()
            service.tick()
            counters = telemetry.metrics().snapshot()["counters"]
            assert counters["serve.checkpoints"] == 2.0
        finally:
            service.close()

    def test_dedupe_hits_count_retries_and_their_kind(self):
        telemetry.enable()
        service = OverlayService(_spec())
        try:
            service.tick()
            service.mutate({"kind": "drift", "steps": 1}, idem="retry-1")
            service.mutate({"kind": "drift", "steps": 1}, idem="retry-1")
            service.step(expect=1)
            service.step(expect=1)  # the retransmitted step
            counters = telemetry.metrics().snapshot()["counters"]
            # One mutate replay + one step replay: both fold into the
            # service's ``retries`` counter, each tagged by kind.
            assert counters["serve.retries"] == 2.0
            assert counters["serve.mutate.deduplicated"] == 1
            assert counters["serve.step.deduplicated"] == 1
        finally:
            service.close()

    def test_shed_is_single_counted_and_in_admission_stats(self):
        telemetry.enable()
        server = OverlayServer(OverlayService(_spec()))

        async def overfill():
            server._requests = asyncio.Queue(maxsize=1)
            first = server._admit(b"{}", 0)
            second = server._admit(b'{"id": 9}', 0)
            return first, second

        (future, none), (shed_future, busy) = asyncio.run(overfill())
        assert future is not None and none is None
        assert shed_future is None
        assert busy["ok"] is False and busy["error"] == "busy"
        assert busy["id"] == 9
        counters = telemetry.metrics().snapshot()["counters"]
        assert counters["serve.shed"] == 1.0
        assert server._admission_stats()["shed"] == 1

    def test_stats_op_reports_recovery_and_retry_counters(self, tmp_path):
        log, ckpt = self._crashed_chain(tmp_path)
        service = OverlayService.recover(
            log, checkpoint_dir=ckpt, checkpoint_every=2
        )
        server = OverlayServer(service)
        try:
            service.mutate({"kind": "drift", "steps": 1}, idem="r-1")
            service.mutate({"kind": "drift", "steps": 1}, idem="r-1")
            reply = _request(server, op="stats")
            assert reply["counters"]["recoveries"] == 1
            assert reply["counters"]["retries"] == 1
            assert reply["recovery"]["bounded"] is True
            assert reply["recovery"]["replayed_epochs"] <= 2
        finally:
            service.close()


class TestMetricsPort:
    def test_prometheus_text_over_http(self):
        telemetry.enable()
        telemetry.metrics().counter("engine.epochs").inc(3)
        server = OverlayServer(object())

        async def fetch() -> bytes:
            address = await server.start_metrics(port=0)
            host, port = address.rsplit(":", 1)
            reader, writer = await asyncio.open_connection(host, int(port))
            writer.write(b"GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n")
            await writer.drain()
            payload = await reader.read()
            writer.close()
            server._metrics_server.close()
            await server._metrics_server.wait_closed()
            return payload

        payload = asyncio.run(fetch())
        text = payload.decode()
        assert text.startswith("HTTP/1.1 200 OK")
        assert "Content-Type: text/plain" in text
        assert "repro_engine_epochs 3" in text
