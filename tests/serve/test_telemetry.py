"""Serve-layer observability: drop accounting, the metrics op, Prometheus."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.scenario.spec import ScenarioSpec
from repro.serve.server import SUBSCRIBER_QUEUE_LIMIT, OverlayServer
from repro.serve.service import OverlayService
from repro.telemetry import runtime as telemetry


@pytest.fixture(autouse=True)
def _telemetry_off():
    telemetry.disable()
    yield
    telemetry.disable()


def _spec(**overrides) -> ScenarioSpec:
    base = dict(
        experiment="live-overlay",
        n=12,
        k_grid=(3,),
        policies=("best-response",),
        metric="delay-ping",
        epochs=2,
        seed=13,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


def _request(server: OverlayServer, **request) -> dict:
    """Drive one request through the synchronous dispatch path."""
    message, _subscribe, _shutdown = server._dispatch(
        json.dumps(request).encode(), 0
    )
    return message


class TestDropAccounting:
    def _full_queue(self, server: OverlayServer, connection: int = 0):
        queue: asyncio.Queue = asyncio.Queue()
        for i in range(SUBSCRIBER_QUEUE_LIMIT):
            server._enqueue(connection, queue, {"event": "epoch", "epoch": i})
        return queue

    def test_drop_oldest_counts_per_connection(self):
        server = OverlayServer(object())
        queue = self._full_queue(server, connection=0)
        assert server._dropped_events == 0
        server._enqueue(0, queue, {"event": "epoch", "epoch": 999})
        server._enqueue(0, queue, {"event": "epoch", "epoch": 1000})
        assert queue.qsize() == SUBSCRIBER_QUEUE_LIMIT
        assert server._dropped_events == 2
        stats = server._subscriber_stats()
        assert stats["dropped_events"] == 2
        assert stats["dropped_by_connection"] == {"0": 2}
        assert stats["max_depth"] == SUBSCRIBER_QUEUE_LIMIT
        assert stats["queue_limit"] == SUBSCRIBER_QUEUE_LIMIT
        # The oldest events went first: the queue now starts at epoch 2.
        assert queue.get_nowait()["epoch"] == 2

    def test_drops_counted_into_registry(self):
        telemetry.enable()
        server = OverlayServer(object())
        queue = self._full_queue(server)
        server._enqueue(0, queue, {"event": "epoch", "epoch": 999})
        counters = telemetry.metrics().snapshot()["counters"]
        assert counters["serve.subscribers.dropped"] == 1


class TestStatsAndMetricsOps:
    def test_stats_carries_subscriber_block(self):
        server = OverlayServer(OverlayService(_spec()))
        server.service.tick()
        reply = _request(server, op="stats", id=7)
        assert reply["ok"] is True and reply["id"] == 7
        assert reply["subscribers"]["dropped_events"] == 0
        assert reply["subscribers"]["queue_limit"] == SUBSCRIBER_QUEUE_LIMIT

    def test_metrics_op_is_a_stats_superset(self):
        telemetry.enable()
        server = OverlayServer(OverlayService(_spec()))
        server.service.tick()
        _request(server, op="lookup", src=0, dst=5)
        stats = _request(server, op="stats")
        reply = _request(server, op="metrics")
        for key in stats:
            assert key in reply
        snapshot = reply["metrics"]
        # Service counters are folded in at snapshot time.
        assert snapshot["counters"]["serve.lookups"] == 1.0
        assert snapshot["counters"]["serve.epochs"] == 1.0

    def test_metrics_op_without_registry_reports_none(self):
        server = OverlayServer(OverlayService(_spec()))
        server.service.tick()
        reply = _request(server, op="metrics")
        assert reply["ok"] is True
        assert reply["metrics"] is None

    def test_request_latency_histogram_per_op(self):
        telemetry.enable()
        server = OverlayServer(OverlayService(_spec()))
        server.service.tick()
        _request(server, op="stats")
        _request(server, op="lookup", src=0, dst=5)
        server._dispatch(b"not json", 0)
        histograms = telemetry.metrics().snapshot()["histograms"]
        assert histograms["serve.request.stats"]["count"] == 1
        assert histograms["serve.request.lookup"]["count"] == 1
        assert histograms["serve.request.invalid"]["count"] == 1


class TestMetricsPort:
    def test_prometheus_text_over_http(self):
        telemetry.enable()
        telemetry.metrics().counter("engine.epochs").inc(3)
        server = OverlayServer(object())

        async def fetch() -> bytes:
            address = await server.start_metrics(port=0)
            host, port = address.rsplit(":", 1)
            reader, writer = await asyncio.open_connection(host, int(port))
            writer.write(b"GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n")
            await writer.drain()
            payload = await reader.read()
            writer.close()
            server._metrics_server.close()
            await server._metrics_server.wait_closed()
            return payload

        payload = asyncio.run(fetch())
        text = payload.decode()
        assert text.startswith("HTTP/1.1 200 OK")
        assert "Content-Type: text/plain" in text
        assert "repro_engine_epochs 3" in text
