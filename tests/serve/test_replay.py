"""Mutation-log replay parity: served epochs reproduce byte-identically."""

import json
import os

import pytest

from repro.scenario.spec import ScenarioSpec
from repro.serve.replay import read_log, replay_log
from repro.serve.service import OverlayService
from repro.util.validation import ValidationError


def _spec(**overrides) -> ScenarioSpec:
    base = dict(
        experiment="live-overlay",
        n=14,
        k_grid=(3,),
        policies=("best-response",),
        metric="delay-ping",
        epochs=3,
        seed=23,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


def _serve_session(log_path, spec=None) -> None:
    """Run a service through epochs and mutations, writing its log."""
    service = OverlayService(spec or _spec(), log_path=str(log_path))
    service.tick()
    service.mutate({"kind": "leave", "nodes": [5, 7]})
    service.tick()
    service.mutate({"kind": "join", "nodes": [5]})
    service.mutate(
        {"kind": "failure", "event": {"action": "link-down", "links": [[0, 1]]}}
    )
    service.tick()
    service.mutate({"kind": "rewire", "nodes": [2]})
    service.tick()
    service.close()


class TestReplayParity:
    def test_replay_reproduces_served_digests(self, tmp_path):
        log = tmp_path / "serve.jsonl"
        _serve_session(log)
        result = replay_log(str(log))
        assert result.ok
        assert result.epochs == 4
        assert result.mutations == 4
        assert result.closed_cleanly
        assert "ok" in result.summary()

    def test_replay_is_byte_identical_across_kernels(self, tmp_path):
        """A batched serving run replays cleanly on the sequential kernels."""
        log = tmp_path / "serve.jsonl"
        _serve_session(log)
        assert replay_log(str(log), batched=False).ok

    def test_tampered_log_is_detected(self, tmp_path):
        log = tmp_path / "serve.jsonl"
        _serve_session(log)
        entries = [json.loads(line) for line in open(log)]
        dropped = [
            entry
            for entry in entries
            if not (entry["kind"] == "mutate" and entry["mutation"]["kind"] == "leave")
        ]
        with open(log, "w") as handle:
            for entry in dropped:
                handle.write(json.dumps(entry) + "\n")
        result = replay_log(str(log))
        assert not result.ok
        assert result.mismatches
        assert result.mismatches[0]["served"] != result.mismatches[0]["replayed"]

    def test_unsealed_log_still_replays(self, tmp_path):
        """A crashed server's log (no close entry) is replayable."""
        log = tmp_path / "serve.jsonl"
        _serve_session(log)
        lines = open(log).read().splitlines()
        assert json.loads(lines[-1])["kind"] == "close"
        with open(log, "w") as handle:
            handle.write("\n".join(lines[:-1]) + "\n")
        result = replay_log(str(log))
        assert result.ok
        assert not result.closed_cleanly


def _serve_chain(log_path, ckpt_dir, *, keep=0) -> None:
    """A checkpointing run: 5 epochs, checkpoints (and rotations) at 2 and 4."""
    service = OverlayService(
        _spec(),
        log_path=str(log_path),
        checkpoint_dir=str(ckpt_dir),
        checkpoint_every=2,
        keep_checkpoints=keep,
    )
    service.tick()
    service.tick()
    service.mutate({"kind": "drift", "steps": 1})
    service.tick()
    service.tick()
    service.tick()
    service.close()


class TestTornTailRegression:
    def test_byte_truncated_log_replays(self, tmp_path):
        """A log sheared mid-final-line (SIGKILL mid-append) still replays."""
        log = tmp_path / "serve.jsonl"
        _serve_session(log)
        lines = open(log, "rb").read().splitlines(keepends=True)
        assert json.loads(lines[-1])["kind"] == "close"
        # Drop the close entry, then cut into the final epoch line.
        with open(log, "wb") as handle:
            handle.write(b"".join(lines[:-1])[:-9])
        result = replay_log(str(log))
        assert result.ok
        assert result.epochs == 3  # the torn epoch entry is not counted
        assert not result.closed_cleanly
        assert result.torn_tail_bytes > 0
        assert "torn_tail=" in result.summary()

    def test_replay_leaves_the_torn_log_untouched(self, tmp_path):
        """Replay is read-only: it must not repair (truncate) the file."""
        log = tmp_path / "serve.jsonl"
        _serve_session(log)
        with open(log, "ab") as handle:
            handle.write(b'{"kind":"mutate","mut')
        before = open(log, "rb").read()
        result = replay_log(str(log))
        assert result.ok
        assert result.torn_tail_bytes == 21
        assert open(log, "rb").read() == before
        assert not os.path.exists(str(log) + ".corrupt")


class TestChainReplay:
    def test_rotated_chain_replays_end_to_end(self, tmp_path):
        log = tmp_path / "serve.jsonl"
        _serve_chain(log, tmp_path / "ckpt")
        result = replay_log(str(log))
        assert result.ok
        assert result.epochs == 5
        assert result.mutations == 1
        assert result.segments == 3
        assert result.closed_cleanly
        assert "segments=3" in result.summary()

    def test_checkpoint_anchored_replay_is_bounded(self, tmp_path):
        log = tmp_path / "serve.jsonl"
        ckpt = tmp_path / "ckpt"
        _serve_chain(log, ckpt)
        result = replay_log(str(log), checkpoint_dir=str(ckpt))
        assert result.ok
        assert result.checkpoint_epochs == 4
        assert result.epochs == 1  # only the current segment's suffix
        assert "from_checkpoint=4" in result.summary()

    def test_compacted_chain_demands_a_checkpoint(self, tmp_path):
        log = tmp_path / "serve.jsonl"
        ckpt = tmp_path / "ckpt"
        _serve_chain(log, ckpt, keep=1)
        with pytest.raises(ValidationError, match="compacted"):
            replay_log(str(log))
        assert replay_log(str(log), checkpoint_dir=str(ckpt)).ok

    def test_unrotated_log_has_no_checkpoint_anchor(self, tmp_path):
        log = tmp_path / "serve.jsonl"
        _serve_session(log)
        with pytest.raises(ValidationError, match="names no checkpoint"):
            replay_log(str(log), checkpoint_dir=str(tmp_path / "ckpt"))


class TestLogFormat:
    def test_read_log_checks_the_header(self, tmp_path):
        log = tmp_path / "bogus.jsonl"
        log.write_text('{"kind": "epoch", "epoch": 0}\n')
        with pytest.raises(ValidationError):
            read_log(str(log))

    def test_read_log_rejects_unknown_schema(self, tmp_path):
        log = tmp_path / "serve.jsonl"
        _serve_session(log)
        entries = [json.loads(line) for line in open(log)]
        entries[0]["schema"] = 99
        with open(log, "w") as handle:
            for entry in entries:
                handle.write(json.dumps(entry) + "\n")
        with pytest.raises(ValidationError):
            read_log(str(log))

    def test_log_records_resolved_failure_epochs(self, tmp_path):
        log = tmp_path / "serve.jsonl"
        _serve_session(log)
        failure_entries = [
            entry
            for entry in (json.loads(line) for line in open(log))
            if entry["kind"] == "mutate" and entry["mutation"]["kind"] == "failure"
        ]
        (entry,) = failure_entries
        # The served default (next epoch) was resolved before logging.
        assert entry["mutation"]["event"]["epoch"] == entry["applied_epoch"]
