"""Segmented log I/O: durability, torn-tail repair, rotation, compaction."""

from __future__ import annotations

import json
import os

import pytest

from repro.serve.oplog import (
    LogWriter,
    compact_segments,
    list_segments,
    read_segment,
    segment_path,
)
from repro.util.validation import ValidationError


def _write(path, entries, *, tail: bytes = b""):
    with open(path, "wb") as handle:
        for entry in entries:
            handle.write(json.dumps(entry).encode() + b"\n")
        handle.write(tail)


class TestReadSegment:
    def test_round_trips_clean_entries(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        entries = [{"kind": "open"}, {"kind": "epoch", "epoch": 0, "digest": "d"}]
        _write(path, entries)
        read = read_segment(path)
        assert read.entries == entries
        assert read.torn_tail is None
        assert not read.repaired

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ValidationError, match="cannot read"):
            read_segment(str(tmp_path / "absent.jsonl"))

    def test_unterminated_tail_is_torn(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        _write(path, [{"kind": "open"}], tail=b'{"kind":"mut')
        read = read_segment(path)
        assert read.entries == [{"kind": "open"}]
        assert read.torn_tail == b'{"kind":"mut'
        assert not read.repaired  # repair is opt-in

    def test_unterminated_but_complete_json_is_kept(self, tmp_path):
        # Crash between the payload write and the newline: the entry is
        # whole, only its terminator is missing.
        path = str(tmp_path / "log.jsonl")
        _write(path, [{"kind": "open"}], tail=b'{"kind": "close"}')
        read = read_segment(path)
        assert [e["kind"] for e in read.entries] == ["open", "close"]
        assert read.torn_tail is None

    def test_terminated_garbage_final_line_is_torn(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        with open(path, "wb") as handle:
            handle.write(b'{"kind": "open"}\n')
            handle.write(b"not json at all\n")
        read = read_segment(path)
        assert read.entries == [{"kind": "open"}]
        assert read.torn_tail == b"not json at all"

    def test_interior_corruption_raises(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        with open(path, "wb") as handle:
            handle.write(b'{"kind": "open"}\n')
            handle.write(b"garbage\n")
            handle.write(b'{"kind": "close"}\n')
        with pytest.raises(ValidationError, match="interior corruption"):
            read_segment(path)

    def test_repair_truncates_and_writes_sidecar(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        _write(path, [{"kind": "open"}], tail=b'{"kind":"mut')
        read = read_segment(path, repair=True)
        assert read.repaired
        assert read.sidecar == path + ".corrupt"
        with open(read.sidecar, "rb") as handle:
            assert handle.read() == b'{"kind":"mut\n'
        # The file itself is clean now: a naive reader sees whole lines.
        with open(path, "rb") as handle:
            assert handle.read() == b'{"kind": "open"}\n'
        again = read_segment(path)
        assert again.torn_tail is None

    def test_empty_file_is_empty_not_an_error(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        open(path, "w").close()
        assert read_segment(path).entries == []


class TestLogWriter:
    def test_append_then_read_round_trips(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        writer = LogWriter(path)
        writer.append({"kind": "open"})
        writer.append({"kind": "epoch", "epoch": 0, "digest": "d"})
        writer.close()
        assert [e["kind"] for e in read_segment(path).entries] == ["open", "epoch"]

    def test_append_after_close_raises(self, tmp_path):
        writer = LogWriter(str(tmp_path / "log.jsonl"))
        writer.close()
        with pytest.raises(ValidationError, match="closed"):
            writer.append({"kind": "open"})

    def test_rotate_archives_and_reopens(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        writer = LogWriter(path)
        writer.append({"kind": "open", "segment": 0})
        archived = writer.rotate({"kind": "open", "segment": 1})
        assert archived == segment_path(path, 0)
        assert writer.segment == 1
        writer.append({"kind": "close"})
        writer.close()
        assert [e["segment"] for e in read_segment(archived).entries] == [0]
        current = read_segment(path).entries
        assert current[0]["segment"] == 1
        assert current[1]["kind"] == "close"

    def test_list_segments_orders_numerically(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        writer = LogWriter(path)
        writer.append({"kind": "open", "segment": 0})
        for segment in range(1, 12):
            writer.rotate({"kind": "open", "segment": segment})
        writer.close()
        indices = [index for index, _p in list_segments(path)]
        assert indices == list(range(11))
        # Unrelated siblings are not picked up.
        open(str(tmp_path / "log.jsonl.bak"), "w").close()
        assert [i for i, _p in list_segments(path)] == list(range(11))


class TestCompaction:
    def test_compact_removes_only_older_segments(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        writer = LogWriter(path)
        writer.append({"kind": "open", "segment": 0})
        for segment in range(1, 5):
            writer.rotate({"kind": "open", "segment": segment})
        writer.close()
        removed = compact_segments(path, keep_from=2)
        assert sorted(removed) == [segment_path(path, 0), segment_path(path, 1)]
        assert [i for i, _p in list_segments(path)] == [2, 3]
        assert os.path.exists(path)
