"""Tests for DelaySpace."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.netsim.delayspace import DelaySpace
from repro.util.validation import ValidationError


class TestConstruction:
    def test_diagonal_forced_zero(self):
        matrix = np.full((3, 3), 5.0)
        space = DelaySpace(matrix)
        assert all(space.delay(i, i) == 0.0 for i in range(3))

    def test_negative_entries_rejected(self):
        matrix = np.array([[0.0, -1.0], [1.0, 0.0]])
        with pytest.raises(ValidationError):
            DelaySpace(matrix)

    def test_non_square_rejected(self):
        with pytest.raises(ValidationError):
            DelaySpace(np.zeros((2, 3)))

    def test_label_length_checked(self):
        with pytest.raises(ValidationError):
            DelaySpace(np.zeros((3, 3)), labels=["a", "b"])

    def test_default_labels(self):
        space = DelaySpace(np.zeros((2, 2)))
        assert space.labels == ["node-0", "node-1"]

    def test_size_and_len(self, small_delay_space):
        assert small_delay_space.size == 5
        assert len(small_delay_space) == 5

    def test_matrix_view_read_only(self, small_delay_space):
        with pytest.raises(ValueError):
            small_delay_space.matrix[0, 1] = 99.0


class TestQueries:
    def test_delay_and_rtt(self, small_delay_space):
        assert small_delay_space.delay(0, 1) == 10.0
        assert small_delay_space.rtt(0, 1) == 21.0

    def test_is_symmetric_detects_asymmetry(self, small_delay_space):
        assert not small_delay_space.is_symmetric()
        sym = DelaySpace(np.array([[0.0, 5.0], [5.0, 0.0]]))
        assert sym.is_symmetric()

    def test_mean_delay_excludes_diagonal(self):
        matrix = np.array([[0.0, 2.0], [4.0, 0.0]])
        assert DelaySpace(matrix).mean_delay() == pytest.approx(3.0)

    def test_mean_delay_single_node(self):
        assert DelaySpace(np.zeros((1, 1))).mean_delay() == 0.0


class TestSampling:
    def test_no_jitter_returns_truth(self, small_delay_space):
        assert small_delay_space.sample_delay(0, 1, rng=0) == 10.0

    def test_jitter_changes_sample_but_not_truth(self, small_delay_matrix):
        space = DelaySpace(small_delay_matrix, jitter_std=2.0)
        samples = {space.sample_delay(0, 1, rng=np.random.default_rng(i)) for i in range(5)}
        assert len(samples) > 1
        assert space.delay(0, 1) == 10.0

    def test_samples_non_negative(self):
        space = DelaySpace(np.array([[0.0, 0.5], [0.5, 0.0]]), jitter_std=10.0)
        rng = np.random.default_rng(0)
        assert all(space.sample_delay(0, 1, rng) >= 0.0 for _ in range(100))

    def test_sample_rtt_is_sum_of_directions(self, small_delay_space):
        assert small_delay_space.sample_rtt(0, 1, rng=0) == pytest.approx(21.0)


class TestDerivation:
    def test_restrict_preserves_entries(self, small_delay_space):
        sub = small_delay_space.restrict([0, 2, 4])
        assert sub.size == 3
        assert sub.delay(0, 1) == small_delay_space.delay(0, 2)
        assert sub.delay(2, 0) == small_delay_space.delay(4, 0)

    def test_perturbed_zero_std_is_identity(self, small_delay_space):
        copy = small_delay_space.perturbed(0.0)
        assert np.allclose(copy.matrix, small_delay_space.matrix)

    def test_perturbed_changes_entries(self, small_delay_space):
        new = small_delay_space.perturbed(0.2, rng=0)
        assert not np.allclose(new.matrix, small_delay_space.matrix)
        assert np.all(new.matrix >= 0)
        assert np.all(np.diag(new.matrix) == 0)

    def test_round_trip_dict(self, small_delay_space):
        clone = DelaySpace.from_dict(small_delay_space.to_dict())
        assert np.allclose(clone.matrix, small_delay_space.matrix)
        assert clone.labels == small_delay_space.labels

    def test_save_load(self, small_delay_space, tmp_path):
        path = tmp_path / "space.json"
        small_delay_space.save(path)
        clone = DelaySpace.load(path)
        assert np.allclose(clone.matrix, small_delay_space.matrix)


class TestFromCoordinates:
    def test_distances_match_euclidean(self):
        points = np.array([[0.0, 0.0], [3.0, 4.0]])
        space = DelaySpace.from_coordinates(points)
        assert space.delay(0, 1) == pytest.approx(5.0)

    def test_access_delay_added_both_ends(self):
        points = np.array([[0.0, 0.0], [3.0, 4.0]])
        space = DelaySpace.from_coordinates(points, access_delay_ms=[1.0, 2.0])
        assert space.delay(0, 1) == pytest.approx(8.0)

    def test_asymmetry_noise(self):
        points = np.random.default_rng(0).uniform(0, 10, size=(6, 2))
        space = DelaySpace.from_coordinates(points, asymmetry_std=0.2, rng=1)
        assert not space.is_symmetric()

    def test_invalid_points_shape(self):
        with pytest.raises(ValidationError):
            DelaySpace.from_coordinates(np.zeros(3))

    @settings(max_examples=25, deadline=None)
    @given(st.integers(2, 10))
    def test_symmetric_without_noise(self, n):
        points = np.random.default_rng(n).uniform(0, 50, size=(n, 2))
        space = DelaySpace.from_coordinates(points)
        assert space.is_symmetric()
        assert np.all(space.matrix >= 0)
