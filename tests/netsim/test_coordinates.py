"""Tests for the Vivaldi-style coordinate system."""

import numpy as np
import pytest

from repro.netsim.coordinates import VivaldiCoordinateSystem
from repro.netsim.delayspace import DelaySpace
from repro.netsim.planetlab import synthetic_planetlab
from repro.util.validation import ValidationError


class TestVivaldi:
    def test_estimate_symmetric_in_structure(self):
        system = VivaldiCoordinateSystem(4, seed=0)
        assert system.estimate(0, 0) == 0.0
        assert system.estimate(1, 2) > 0

    def test_observe_moves_towards_sample(self):
        system = VivaldiCoordinateSystem(2, seed=0)
        target_rtt = 100.0
        for _ in range(200):
            system.observe(0, 1, target_rtt)
            system.observe(1, 0, target_rtt)
        assert system.estimate(0, 1) == pytest.approx(50.0, rel=0.3)

    def test_training_reduces_error(self, planetlab20):
        space, _nodes = planetlab20
        system = VivaldiCoordinateSystem(20, seed=1)
        initial_error = system.median_error(space)
        final_error = system.train(space, rounds=40, rng=2)
        assert final_error < initial_error

    def test_trained_error_reasonable(self, planetlab20):
        space, _nodes = planetlab20
        system = VivaldiCoordinateSystem(20, seed=1)
        error = system.train(space, rounds=60, rng=2)
        # Coordinate systems are noisier than ping but should capture the
        # broad structure (median relative error well under 100%).
        assert error < 0.6

    def test_estimate_matrix_shape(self):
        system = VivaldiCoordinateSystem(5, seed=0)
        mat = system.estimate_matrix()
        assert mat.shape == (5, 5)
        assert np.all(np.diag(mat) == 0)
        assert np.all(mat >= 0)

    def test_negative_rtt_rejected(self):
        system = VivaldiCoordinateSystem(3, seed=0)
        with pytest.raises(ValidationError):
            system.observe(0, 1, -5.0)

    def test_train_size_mismatch(self, planetlab20):
        space, _nodes = planetlab20
        system = VivaldiCoordinateSystem(5, seed=0)
        with pytest.raises(ValidationError):
            system.train(space)

    def test_heights_nonnegative(self, planetlab20):
        space, _nodes = planetlab20
        system = VivaldiCoordinateSystem(20, seed=3)
        system.train(space, rounds=20, rng=4)
        assert all(c.height >= 0 for c in system.coordinates)

    def test_invalid_construction(self):
        with pytest.raises(ValidationError):
            VivaldiCoordinateSystem(1)
        with pytest.raises(ValidationError):
            VivaldiCoordinateSystem(5, dimensions=0)
