"""Tests for the available-bandwidth model."""

import numpy as np
import pytest

from repro.netsim.bandwidth import BandwidthModel, DEFAULT_CAPACITY_TIERS
from repro.util.validation import ValidationError


class TestBandwidthModel:
    def test_matrix_shape_and_diagonal(self, bandwidth_model8):
        mat = bandwidth_model8.matrix()
        assert mat.shape == (8, 8)
        assert np.all(np.isinf(np.diag(mat)))

    def test_available_positive_and_bounded_by_capacity(self, bandwidth_model8):
        for src in range(8):
            for dst in range(8):
                if src == dst:
                    continue
                avail = bandwidth_model8.available(src, dst)
                cap = min(
                    bandwidth_model8.uplink_capacity[src],
                    bandwidth_model8.downlink_capacity[dst],
                )
                assert 0 <= avail <= cap

    def test_available_matches_matrix(self, bandwidth_model8):
        mat = bandwidth_model8.matrix()
        assert bandwidth_model8.available(0, 1) == pytest.approx(mat[0, 1])

    def test_capacities_come_from_tiers(self, bandwidth_model8):
        tiers = {c for c, _p in DEFAULT_CAPACITY_TIERS}
        assert set(np.unique(bandwidth_model8.uplink_capacity)) <= tiers

    def test_deterministic_given_seed(self):
        a = BandwidthModel(10, seed=5).matrix()
        b = BandwidthModel(10, seed=5).matrix()
        assert np.allclose(a, b)

    def test_advance_changes_availability_but_not_capacity(self):
        model = BandwidthModel(10, seed=1)
        before = model.matrix().copy()
        caps = model.uplink_capacity.copy()
        model.advance(5)
        after = model.matrix()
        assert not np.allclose(before, after)
        assert np.allclose(caps, model.uplink_capacity)

    def test_advance_keeps_availability_nonnegative(self):
        model = BandwidthModel(10, seed=2, drift_std=0.5)
        model.advance(50)
        mat = model.matrix()
        off = mat[~np.eye(10, dtype=bool)]
        assert np.all(off >= 0)

    def test_sample_noise_and_positive(self):
        model = BandwidthModel(6, seed=3)
        truth = model.available(0, 1)
        samples = [model.sample(0, 1, relative_error=0.2).available_mbps for _ in range(20)]
        assert all(s > 0 for s in samples)
        assert np.std(samples) > 0
        assert abs(np.mean(samples) - truth) / truth < 0.5

    def test_invalid_sizes(self):
        with pytest.raises(ValidationError):
            BandwidthModel(1)

    def test_bad_tier_probabilities(self):
        with pytest.raises(ValidationError):
            BandwidthModel(5, capacity_tiers=((100.0, 0.5), (10.0, 0.2)))

    def test_probe_cost_fraction(self, bandwidth_model8):
        assert bandwidth_model8.probe_cost_fraction() == pytest.approx(0.02)
