"""Tests for the AS / multihoming model."""

import numpy as np
import pytest

from repro.netsim.autonomous_systems import ASTopology
from repro.util.validation import ValidationError


class TestASTopology:
    def test_every_node_assigned(self):
        topo = ASTopology(30, n_ases=8, seed=0)
        assert len(topo.node_as) == 30
        assert set(topo.node_as) <= set(range(8))

    def test_every_as_nonempty(self):
        topo = ASTopology(30, n_ases=8, seed=1)
        for as_id in range(8):
            assert len(topo.nodes_in_as(as_id)) >= 1

    def test_multihoming_degrees_within_choices(self):
        topo = ASTopology(40, seed=2)
        for as_id in range(topo.n_ases):
            assert 1 <= topo.multihoming_degree(as_id) <= 4

    def test_intra_as_uncapped(self):
        topo = ASTopology(20, n_ases=3, seed=3)
        as0_nodes = topo.nodes_in_as(0)
        if len(as0_nodes) >= 2:
            assert topo.session_rate_limit(as0_nodes[0], as0_nodes[1]) == float("inf")

    def test_inter_as_capped(self):
        topo = ASTopology(20, n_ases=5, seed=4)
        src = topo.nodes_in_as(0)[0]
        dst = topo.nodes_in_as(1)[0]
        cap = topo.session_rate_limit(src, dst)
        assert np.isfinite(cap)
        assert cap > 0

    def test_egress_deterministic(self):
        topo = ASTopology(20, n_ases=5, seed=5)
        src = topo.nodes_in_as(0)[0]
        dst = topo.nodes_in_as(1)[0]
        assert topo.egress_link(src, dst) == topo.egress_link(src, dst)

    def test_max_egress_rate_sums_links(self):
        topo = ASTopology(20, n_ases=4, seed=6)
        src = topo.nodes_in_as(0)[0]
        links = topo.peering_links[0]
        assert topo.max_egress_rate(src) == pytest.approx(
            sum(l.session_rate_cap_mbps for l in links)
        )

    def test_describe_keys(self):
        topo = ASTopology(20, seed=7)
        desc = topo.describe()
        assert desc["nodes"] == 20
        assert 0 <= desc["single_homed_fraction"] <= 1

    def test_invalid_arguments(self):
        with pytest.raises(ValidationError):
            ASTopology(0)
        with pytest.raises(ValidationError):
            ASTopology(5, n_ases=10)
        with pytest.raises(ValidationError):
            ASTopology(5, multihoming_choices=((1, 0.5), (2, 0.2)))

    def test_deterministic_given_seed(self):
        a = ASTopology(25, seed=8)
        b = ASTopology(25, seed=8)
        assert np.array_equal(a.node_as, b.node_as)
