"""Tests for the synthetic PlanetLab generators."""

import numpy as np
import pytest

from repro.netsim.planetlab import (
    PAPER_REGION_MIX,
    Region,
    synthetic_planetlab,
    synthetic_planetlab_trace,
    uniform_delay_space,
)
from repro.util.validation import ValidationError


class TestSyntheticPlanetlab:
    def test_paper_mix_at_n50(self):
        _space, nodes = synthetic_planetlab(50, seed=0)
        counts = {}
        for node in nodes:
            counts[node.region] = counts.get(node.region, 0) + 1
        assert counts == PAPER_REGION_MIX

    def test_size_and_labels(self):
        space, nodes = synthetic_planetlab(20, seed=0)
        assert space.size == 20
        assert len(nodes) == 20
        assert len(set(space.labels)) == 20

    def test_deterministic_for_same_seed(self):
        a, _ = synthetic_planetlab(15, seed=3)
        b, _ = synthetic_planetlab(15, seed=3)
        assert np.allclose(a.matrix, b.matrix)

    def test_different_seeds_differ(self):
        a, _ = synthetic_planetlab(15, seed=3)
        b, _ = synthetic_planetlab(15, seed=4)
        assert not np.allclose(a.matrix, b.matrix)

    def test_intercontinental_longer_than_intraregion(self):
        space, nodes = synthetic_planetlab(50, seed=1)
        na = [n.index for n in nodes if n.region is Region.NORTH_AMERICA]
        asia = [n.index for n in nodes if n.region is Region.ASIA]
        intra = np.mean([space.delay(na[0], j) for j in na[1:6]])
        inter = np.mean([space.delay(na[0], j) for j in asia])
        assert inter > intra * 2

    def test_delays_realistic_range(self):
        space, _nodes = synthetic_planetlab(50, seed=2)
        off_diag = space.matrix[~np.eye(50, dtype=bool)]
        assert off_diag.min() > 0
        assert off_diag.max() < 1000.0  # below one second

    def test_custom_region_mix(self):
        mix = {Region.EUROPE: 5, Region.ASIA: 5}
        _space, nodes = synthetic_planetlab(10, region_mix=mix, seed=0)
        assert sum(1 for n in nodes if n.region is Region.EUROPE) == 5

    def test_bad_region_mix_total(self):
        with pytest.raises(ValidationError):
            synthetic_planetlab(10, region_mix={Region.EUROPE: 3}, seed=0)

    def test_too_small_n_rejected(self):
        with pytest.raises(ValidationError):
            synthetic_planetlab(1)


class TestTraceAndUniform:
    def test_trace_size(self):
        space = synthetic_planetlab_trace(60, seed=0)
        assert space.size == 60

    def test_uniform_delay_space_bounds(self):
        space = uniform_delay_space(10, low_ms=5, high_ms=20, seed=0)
        off_diag = space.matrix[~np.eye(10, dtype=bool)]
        assert off_diag.min() >= 5.0
        assert off_diag.max() <= 20.0

    def test_uniform_symmetric_flag(self):
        sym = uniform_delay_space(8, symmetric=True, seed=0)
        asym = uniform_delay_space(8, symmetric=False, seed=0)
        assert sym.is_symmetric()
        assert not asym.is_symmetric()

    def test_uniform_invalid_range(self):
        with pytest.raises(ValidationError):
            uniform_delay_space(5, low_ms=10, high_ms=5)
