"""Tests for the node load model."""

import numpy as np
import pytest

from repro.netsim.load import NodeLoadModel
from repro.util.validation import ValidationError


class TestNodeLoadModel:
    def test_loads_nonnegative(self, load_model8):
        assert np.all(load_model8.true_loads() >= 0)
        assert np.all(load_model8.measured_loads() >= 0)

    def test_measured_defined_initially(self, load_model8):
        for node in range(8):
            assert load_model8.measured_load(node) >= 0

    def test_heterogeneous_base_loads(self):
        model = NodeLoadModel(50, seed=0)
        loads = model.true_loads()
        # Heavy-tailed base loads should show substantial spread.
        assert loads.max() > 3 * np.median(loads)

    def test_advance_changes_loads(self, load_model8):
        before = load_model8.true_loads().copy()
        load_model8.advance(10)
        assert not np.allclose(before, load_model8.true_loads())

    def test_ewma_smoother_than_instantaneous(self):
        model = NodeLoadModel(5, seed=1, volatility=2.0)
        true_series = []
        measured_series = []
        for _ in range(30):
            model.advance(1)
            true_series.append(model.true_load(0))
            measured_series.append(model.measured_load(0))
        assert np.std(np.diff(measured_series)) < np.std(np.diff(true_series))

    def test_spike_increases_load(self, load_model8):
        before = load_model8.true_load(3)
        load_model8.spike(3, 10.0)
        assert load_model8.true_load(3) >= before + 9.99

    def test_spike_negative_rejected(self, load_model8):
        with pytest.raises(ValidationError):
            load_model8.spike(0, -1.0)

    def test_deterministic_given_seed(self):
        a = NodeLoadModel(10, seed=3)
        b = NodeLoadModel(10, seed=3)
        a.advance(5)
        b.advance(5)
        assert np.allclose(a.true_loads(), b.true_loads())

    def test_announcement_vector_matches_measured(self, load_model8):
        assert np.allclose(
            load_model8.announcement_vector(), load_model8.measured_loads()
        )

    def test_invalid_n(self):
        with pytest.raises(ValidationError):
            NodeLoadModel(0)
