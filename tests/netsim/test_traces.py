"""Tests for trace file I/O."""

import numpy as np
import pytest

from repro.churn.models import trace_driven_churn
from repro.netsim.planetlab import synthetic_planetlab
from repro.netsim.traces import (
    read_churn_trace,
    read_delay_trace,
    write_churn_trace,
    write_delay_trace,
)
from repro.util.validation import ValidationError


class TestDelayTraces:
    def test_round_trip(self, tmp_path, small_delay_space):
        path = tmp_path / "delays.csv"
        write_delay_trace(small_delay_space, path)
        loaded = read_delay_trace(path)
        assert loaded.size == small_delay_space.size
        assert np.allclose(loaded.matrix, small_delay_space.matrix)
        assert loaded.labels == small_delay_space.labels

    def test_round_trip_planetlab(self, tmp_path):
        space, _nodes = synthetic_planetlab(15, seed=1)
        path = tmp_path / "pl.csv"
        write_delay_trace(space, path)
        loaded = read_delay_trace(path)
        assert np.allclose(loaded.matrix, space.matrix)

    def test_missing_pairs_rejected_by_default(self, tmp_path):
        path = tmp_path / "partial.csv"
        path.write_text("src,dst,delay_ms\na,b,10\nb,a,12\na,c,20\nc,a,21\n")
        with pytest.raises(ValidationError):
            read_delay_trace(path)

    def test_missing_pairs_filled_when_requested(self, tmp_path):
        path = tmp_path / "partial.csv"
        path.write_text("src,dst,delay_ms\na,b,10\nb,a,12\na,c,20\nc,a,21\n")
        space = read_delay_trace(path, fill_missing=500.0)
        assert space.size == 3
        assert space.delay(1, 2) == 500.0

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("from,to,rtt\na,b,10\n")
        with pytest.raises(ValidationError):
            read_delay_trace(path)

    def test_negative_delay_rejected(self, tmp_path):
        path = tmp_path / "neg.csv"
        path.write_text("src,dst,delay_ms\na,b,-1\nb,a,1\n")
        with pytest.raises(ValidationError):
            read_delay_trace(path)

    def test_single_node_rejected(self, tmp_path):
        path = tmp_path / "one.csv"
        path.write_text("src,dst,delay_ms\n")
        with pytest.raises(ValidationError):
            read_delay_trace(path)


class TestChurnTraces:
    def test_round_trip(self, tmp_path):
        schedule = trace_driven_churn(8, 1200.0, seed=0)
        path = tmp_path / "churn.csv"
        write_churn_trace(schedule, path)
        loaded = read_churn_trace(path, n=8, horizon=1200.0)
        assert loaded.n == 8
        assert len(loaded.sessions) == len(schedule.sessions)
        assert loaded.churn_rate() == pytest.approx(schedule.churn_rate(), rel=1e-6)

    def test_defaults_inferred(self, tmp_path):
        path = tmp_path / "churn.csv"
        path.write_text("node,start_s,end_s\n0,0,100\n1,50,200\n")
        schedule = read_churn_trace(path)
        assert schedule.n == 2
        assert schedule.horizon == pytest.approx(200.0)

    def test_timescale_compression_increases_churn(self, tmp_path):
        schedule = trace_driven_churn(10, 3600.0, seed=3)
        path = tmp_path / "churn.csv"
        write_churn_trace(schedule, path)
        normal = read_churn_trace(path)
        compressed = read_churn_trace(path, timescale=0.1)
        assert compressed.churn_rate() > normal.churn_rate()

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("who,from,to\n0,0,10\n")
        with pytest.raises(ValidationError):
            read_churn_trace(path)

    def test_empty_trace_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("node,start_s,end_s\n")
        with pytest.raises(ValidationError):
            read_churn_trace(path)

    def test_invalid_timescale(self, tmp_path):
        path = tmp_path / "churn.csv"
        path.write_text("node,start_s,end_s\n0,0,10\n")
        with pytest.raises(ValidationError):
            read_churn_trace(path, timescale=0.0)
