"""Tests for ping / coordinate / chirp probers."""

import numpy as np
import pytest

from repro.netsim.bandwidth import BandwidthModel
from repro.netsim.coordinates import VivaldiCoordinateSystem
from repro.netsim.delayspace import DelaySpace
from repro.netsim.probing import (
    ChirpProber,
    CoordinateProber,
    ICMP_MESSAGE_BITS,
    PingProber,
)
from repro.util.validation import ValidationError


class TestPingProber:
    def test_estimate_matches_truth_without_jitter(self, small_delay_space):
        prober = PingProber(small_delay_space, rng=0)
        # One-way estimate is RTT/2, i.e. the mean of the two directions.
        expected = (small_delay_space.delay(0, 1) + small_delay_space.delay(1, 0)) / 2
        assert prober.probe(0, 1) == pytest.approx(expected)

    def test_estimate_with_jitter_close_to_truth(self, small_delay_matrix):
        space = DelaySpace(small_delay_matrix, jitter_std=1.0)
        prober = PingProber(space, samples_per_probe=20, rng=1)
        estimate = prober.probe(0, 1)
        assert estimate == pytest.approx(10.5, abs=2.0)

    def test_accounting(self, small_delay_space):
        prober = PingProber(small_delay_space, samples_per_probe=5, rng=0)
        prober.probe(0, 1)
        assert prober.accounting.messages == 10
        assert prober.accounting.bits == 10 * ICMP_MESSAGE_BITS

    def test_probe_all_excludes_self_and_excluded(self, small_delay_space):
        prober = PingProber(small_delay_space, rng=0)
        estimates = prober.probe_all(0, exclude={1})
        assert set(estimates) == {2, 3, 4}

    def test_invalid_samples(self, small_delay_space):
        with pytest.raises(ValidationError):
            PingProber(small_delay_space, samples_per_probe=0)


class TestCoordinateProber:
    def test_probe_all_and_accounting(self, planetlab20):
        space, _nodes = planetlab20
        coords = VivaldiCoordinateSystem(20, seed=0)
        coords.train(space, rounds=10, rng=1)
        prober = CoordinateProber(coords)
        estimates = prober.probe_all(0)
        assert set(estimates) == set(range(1, 20))
        assert prober.accounting.bits == 320 + 32 * 20

    def test_single_probe(self, planetlab20):
        space, _nodes = planetlab20
        coords = VivaldiCoordinateSystem(20, seed=0)
        prober = CoordinateProber(coords)
        assert prober.probe(0, 5) == pytest.approx(coords.estimate(0, 5))


class TestChirpProber:
    def test_estimate_close_to_truth(self):
        model = BandwidthModel(6, seed=0)
        prober = ChirpProber(model, relative_error=0.05, rng=1)
        truth = model.available(0, 1)
        estimates = [prober.probe(0, 1) for _ in range(30)]
        assert np.mean(estimates) == pytest.approx(truth, rel=0.2)

    def test_estimates_positive(self):
        model = BandwidthModel(6, seed=0)
        prober = ChirpProber(model, relative_error=0.5, rng=1)
        assert all(prober.probe(0, 1) > 0 for _ in range(50))

    def test_accounting_grows(self):
        model = BandwidthModel(6, seed=0)
        prober = ChirpProber(model, rng=1)
        prober.probe(0, 1)
        prober.probe(1, 2)
        assert prober.accounting.messages == 2 * prober.chirp_packets

    def test_probe_all(self):
        model = BandwidthModel(5, seed=0)
        prober = ChirpProber(model, rng=1)
        estimates = prober.probe_all(2)
        assert set(estimates) == {0, 1, 3, 4}

    def test_reset_accounting(self):
        model = BandwidthModel(5, seed=0)
        prober = ChirpProber(model, rng=1)
        prober.probe(0, 1)
        prober.accounting.reset()
        assert prober.accounting.bits == 0
