"""Tests for underlay topology generators."""

import networkx as nx
import numpy as np
import pytest

from repro.netsim.topology import (
    barabasi_albert_underlay,
    delay_matrix_from_underlay,
    waxman_underlay,
)
from repro.util.validation import ValidationError


class TestWaxman:
    def test_connected(self):
        graph = waxman_underlay(30, seed=0)
        assert nx.is_connected(graph)

    def test_edge_weights_positive(self):
        graph = waxman_underlay(20, seed=1)
        assert all(d["delay_ms"] > 0 for _u, _v, d in graph.edges(data=True))

    def test_node_positions_stored(self):
        graph = waxman_underlay(10, seed=2)
        assert all("pos" in graph.nodes[n] for n in graph.nodes)

    def test_deterministic(self):
        a = waxman_underlay(15, seed=5)
        b = waxman_underlay(15, seed=5)
        assert set(a.edges) == set(b.edges)

    def test_small_n_rejected(self):
        with pytest.raises(ValidationError):
            waxman_underlay(1)


class TestBarabasiAlbert:
    def test_connected_and_sized(self):
        graph = barabasi_albert_underlay(40, m=2, seed=0)
        assert graph.number_of_nodes() == 40
        assert nx.is_connected(graph)

    def test_edge_delays_positive(self):
        graph = barabasi_albert_underlay(20, seed=1)
        assert all(d["delay_ms"] > 0 for _u, _v, d in graph.edges(data=True))

    def test_invalid_m(self):
        with pytest.raises(ValidationError):
            barabasi_albert_underlay(5, m=5)

    def test_hub_structure(self):
        graph = barabasi_albert_underlay(100, m=2, seed=3)
        degrees = sorted((d for _n, d in graph.degree()), reverse=True)
        # Preferential attachment creates hubs far above the median degree.
        assert degrees[0] >= 3 * degrees[len(degrees) // 2]


class TestDelayMatrixFromUnderlay:
    def test_matches_shortest_paths(self):
        graph = nx.Graph()
        graph.add_edge(0, 1, delay_ms=5.0)
        graph.add_edge(1, 2, delay_ms=7.0)
        space = delay_matrix_from_underlay(graph)
        assert space.delay(0, 2) == pytest.approx(12.0)
        assert space.delay(2, 0) == pytest.approx(12.0)

    def test_overlay_subset(self):
        graph = nx.path_graph(5)
        for u, v in graph.edges:
            graph.edges[u, v]["delay_ms"] = 1.0
        space = delay_matrix_from_underlay(graph, overlay_nodes=[0, 4])
        assert space.size == 2
        assert space.delay(0, 1) == pytest.approx(4.0)

    def test_disconnected_rejected(self):
        graph = nx.Graph()
        graph.add_node(0)
        graph.add_node(1)
        with pytest.raises(ValidationError):
            delay_matrix_from_underlay(graph)

    def test_waxman_to_delay_space_triangle_reasonable(self):
        graph = waxman_underlay(25, seed=7)
        space = delay_matrix_from_underlay(graph)
        # Shortest-path metrics always satisfy the triangle inequality.
        m = space.matrix
        n = space.size
        rng = np.random.default_rng(0)
        for _ in range(50):
            i, j, k = rng.integers(0, n, size=3)
            if len({i, j, k}) < 3:
                continue
            assert m[i, j] <= m[i, k] + m[k, j] + 1e-9
