"""Tests for RNG plumbing."""

import numpy as np
import pytest

from repro.util.rng import as_generator, random_subset, spawn_generators


class TestAsGenerator:
    def test_none_returns_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = as_generator(42).integers(0, 1000, size=5)
        b = as_generator(42).integers(0, 1000, size=5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_generator(1).integers(0, 10**9)
        b = as_generator(2).integers(0, 10**9)
        assert a != b

    def test_generator_passthrough(self):
        gen = np.random.default_rng(7)
        assert as_generator(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(99)
        gen = as_generator(seq)
        assert isinstance(gen, np.random.Generator)


class TestSpawnGenerators:
    def test_count(self):
        children = spawn_generators(5, 4)
        assert len(children) == 4

    def test_children_independent_streams(self):
        children = spawn_generators(5, 2)
        a = children[0].integers(0, 10**9, size=10)
        b = children[1].integers(0, 10**9, size=10)
        assert not np.array_equal(a, b)

    def test_deterministic_from_int_seed(self):
        a = spawn_generators(11, 3)[2].integers(0, 10**9, size=5)
        b = spawn_generators(11, 3)[2].integers(0, 10**9, size=5)
        assert np.array_equal(a, b)

    def test_zero_count(self):
        assert spawn_generators(1, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(1, -1)

    def test_spawn_from_generator(self):
        gen = np.random.default_rng(3)
        children = spawn_generators(gen, 2)
        assert len(children) == 2


class TestRandomSubset:
    def test_size_and_membership(self):
        rng = np.random.default_rng(0)
        subset = random_subset(rng, list(range(20)), 5)
        assert len(subset) == 5
        assert len(set(subset)) == 5
        assert all(0 <= x < 20 for x in subset)

    def test_exclusion(self):
        rng = np.random.default_rng(0)
        subset = random_subset(rng, list(range(10)), 5, exclude={0, 1, 2, 3, 4})
        assert set(subset) == {5, 6, 7, 8, 9}

    def test_too_large_raises(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            random_subset(rng, [1, 2, 3], 4)
