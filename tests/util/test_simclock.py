"""Tests for the simulation clock."""

import pytest

from repro.util.simclock import SimClock


class TestSimClock:
    def test_initial_state(self):
        clock = SimClock(epoch_length=60.0)
        assert clock.now == 0.0
        assert clock.epoch == 0
        assert clock.time_in_epoch == 0.0

    def test_advance(self):
        clock = SimClock(epoch_length=60.0)
        clock.advance(30.0)
        assert clock.now == 30.0
        assert clock.epoch == 0
        clock.advance(40.0)
        assert clock.epoch == 1
        assert clock.time_in_epoch == pytest.approx(10.0)

    def test_advance_to(self):
        clock = SimClock(epoch_length=10.0)
        clock.advance_to(25.0)
        assert clock.epoch == 2

    def test_advance_to_backwards_rejected(self):
        clock = SimClock()
        clock.advance(10.0)
        with pytest.raises(ValueError):
            clock.advance_to(5.0)

    def test_negative_advance_rejected(self):
        clock = SimClock()
        with pytest.raises(Exception):
            clock.advance(-1.0)

    def test_next_epoch_start(self):
        clock = SimClock(epoch_length=60.0)
        clock.advance(61.0)
        assert clock.next_epoch_start() == pytest.approx(120.0)

    def test_reset(self):
        clock = SimClock()
        clock.advance(100.0)
        clock.reset()
        assert clock.now == 0.0

    def test_invalid_epoch_length(self):
        with pytest.raises(Exception):
            SimClock(epoch_length=0.0)
