"""Tests for validation helpers."""

import numpy as np
import pytest

from repro.util.validation import (
    ValidationError,
    check_in_range,
    check_index,
    check_matrix_square,
    check_non_negative,
    check_positive,
    check_probability,
)


class TestScalarChecks:
    def test_check_positive_ok(self):
        assert check_positive(3, "x") == 3.0

    def test_check_positive_rejects_zero(self):
        with pytest.raises(ValidationError):
            check_positive(0, "x")

    def test_check_non_negative_accepts_zero(self):
        assert check_non_negative(0, "x") == 0.0

    def test_check_non_negative_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_non_negative(-1, "x")

    def test_check_probability_bounds(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0
        with pytest.raises(ValidationError):
            check_probability(1.5, "p")

    def test_error_message_contains_name(self):
        with pytest.raises(ValidationError, match="epsilon"):
            check_positive(-2, "epsilon")


class TestRangeCheck:
    def test_inclusive_bounds(self):
        assert check_in_range(5, "x", low=5, high=10) == 5.0
        assert check_in_range(10, "x", low=5, high=10) == 10.0

    def test_exclusive_bounds(self):
        with pytest.raises(ValidationError):
            check_in_range(5, "x", low=5, high=10, low_inclusive=False)
        with pytest.raises(ValidationError):
            check_in_range(10, "x", low=5, high=10, high_inclusive=False)

    def test_only_low(self):
        assert check_in_range(100, "x", low=0) == 100.0

    def test_only_high(self):
        with pytest.raises(ValidationError):
            check_in_range(100, "x", high=10)


class TestMatrixAndIndex:
    def test_square_matrix_ok(self):
        arr = check_matrix_square([[1, 2], [3, 4]], "m")
        assert arr.shape == (2, 2)
        assert arr.dtype == float

    def test_non_square_rejected(self):
        with pytest.raises(ValidationError):
            check_matrix_square(np.zeros((2, 3)), "m")

    def test_one_dimensional_rejected(self):
        with pytest.raises(ValidationError):
            check_matrix_square(np.zeros(4), "m")

    def test_check_index_ok(self):
        assert check_index(0, 5, "i") == 0
        assert check_index(4, 5, "i") == 4

    def test_check_index_out_of_range(self):
        with pytest.raises(ValidationError):
            check_index(5, 5, "i")
        with pytest.raises(ValidationError):
            check_index(-1, 5, "i")
