"""Tests for statistics helpers."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.stats import (
    Ewma,
    OnlineMeanVar,
    confidence_interval,
    geometric_mean,
    mean_and_ci,
    percentile,
    summarize,
)


class TestEwma:
    def test_first_sample_seeds_value(self):
        ewma = Ewma(alpha=0.5)
        assert ewma.update(10.0) == 10.0

    def test_smoothing(self):
        ewma = Ewma(alpha=0.5, initial=0.0)
        assert ewma.update(10.0) == pytest.approx(5.0)
        assert ewma.update(10.0) == pytest.approx(7.5)

    def test_value_before_update_raises(self):
        with pytest.raises(ValueError):
            Ewma().value

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            Ewma(alpha=0.0)
        with pytest.raises(ValueError):
            Ewma(alpha=1.5)

    def test_reset(self):
        ewma = Ewma(alpha=0.3)
        ewma.update(5.0)
        ewma.reset()
        assert ewma.count == 0
        with pytest.raises(ValueError):
            ewma.value

    def test_count_tracks_samples(self):
        ewma = Ewma()
        for i in range(5):
            ewma.update(i)
        assert ewma.count == 5

    @given(st.lists(st.floats(0, 1000), min_size=1, max_size=50))
    def test_value_within_sample_range(self, samples):
        ewma = Ewma(alpha=0.4)
        for s in samples:
            ewma.update(s)
        assert min(samples) - 1e-9 <= ewma.value <= max(samples) + 1e-9


class TestOnlineMeanVar:
    def test_matches_numpy(self):
        data = [1.0, 2.0, 4.0, 8.0, 16.0]
        acc = OnlineMeanVar()
        acc.extend(data)
        assert acc.mean == pytest.approx(np.mean(data))
        assert acc.variance == pytest.approx(np.var(data, ddof=1))
        assert acc.std == pytest.approx(np.std(data, ddof=1))

    def test_single_sample_zero_variance(self):
        acc = OnlineMeanVar()
        acc.update(3.0)
        assert acc.variance == 0.0

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=100))
    def test_online_equals_batch(self, data):
        acc = OnlineMeanVar()
        acc.extend(data)
        assert acc.mean == pytest.approx(float(np.mean(data)), rel=1e-6, abs=1e-6)


class TestConfidenceInterval:
    def test_contains_mean(self):
        data = [1, 2, 3, 4, 5]
        low, high = confidence_interval(data)
        assert low <= np.mean(data) <= high

    def test_single_sample_degenerate(self):
        assert confidence_interval([7.0]) == (7.0, 7.0)

    def test_higher_level_is_wider(self):
        data = list(np.random.default_rng(0).normal(0, 1, size=50))
        low90, high90 = confidence_interval(data, level=0.90)
        low99, high99 = confidence_interval(data, level=0.99)
        assert (high99 - low99) > (high90 - low90)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            confidence_interval([])

    def test_unsupported_level(self):
        with pytest.raises(ValueError):
            confidence_interval([1, 2, 3], level=0.5)

    def test_mean_and_ci(self):
        mean, half = mean_and_ci([2.0, 2.0, 2.0])
        assert mean == pytest.approx(2.0)
        assert half == pytest.approx(0.0)


class TestPercentileAndMeans:
    def test_percentile_bounds(self):
        data = list(range(101))
        assert percentile(data, 0) == 0
        assert percentile(data, 100) == 100
        assert percentile(data, 50) == 50

    def test_percentile_invalid_q(self):
        with pytest.raises(ValueError):
            percentile([1, 2], 150)

    def test_geometric_mean_simple(self):
        assert geometric_mean([1, 100]) == pytest.approx(10.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_summarize_keys(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        for key in ("count", "mean", "std", "min", "p50", "p95", "max", "ci95"):
            assert key in summary
        assert summary["count"] == 4
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0

    @given(st.lists(st.floats(1, 1e6), min_size=1, max_size=50))
    def test_geometric_mean_le_arithmetic(self, data):
        assert geometric_mean(data) <= float(np.mean(data)) + 1e-6
