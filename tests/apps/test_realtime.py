"""Tests for the real-time redirection application."""

import numpy as np
import pytest

from repro.apps.realtime import RealTimeRedirectionApp, disjoint_path_count
from repro.core.cost import DelayMetric
from repro.core.policies import BestResponsePolicy, KRandomPolicy, build_overlay
from repro.netsim.planetlab import synthetic_planetlab
from repro.util.validation import ValidationError


@pytest.fixture
def realtime_setup():
    space, _nodes = synthetic_planetlab(16, seed=3)
    metric = DelayMetric(space.matrix)
    overlay = build_overlay(BestResponsePolicy(), metric, 4, rng=3, br_rounds=2)
    return metric, overlay


class TestRealTimeApp:
    def test_plan_paths_disjoint_and_valid(self, realtime_setup):
        _metric, overlay = realtime_setup
        app = RealTimeRedirectionApp(overlay)
        plan = app.plan(0, 9)
        seen_edges = set()
        for path in plan.paths:
            assert path[0] == 0 and path[-1] == 9
            for edge in zip(path[:-1], path[1:]):
                assert edge not in seen_edges
                seen_edges.add(edge)

    def test_path_delays_sorted_ascending(self, realtime_setup):
        _metric, overlay = realtime_setup
        app = RealTimeRedirectionApp(overlay)
        plan = app.plan(0, 9)
        assert plan.path_delays_ms == sorted(plan.path_delays_ms)
        assert plan.best_delay_ms == plan.path_delays_ms[0]

    def test_copies_cap(self, realtime_setup):
        _metric, overlay = realtime_setup
        app = RealTimeRedirectionApp(overlay)
        plan = app.plan(0, 9, copies=1)
        assert plan.redundancy <= 1

    def test_loss_survival_probability(self, realtime_setup):
        _metric, overlay = realtime_setup
        app = RealTimeRedirectionApp(overlay)
        plan = app.plan(0, 9)
        if plan.redundancy >= 2:
            single = 1 - 0.1
            multi = plan.loss_survival_probability(0.1)
            assert multi > single - 1e-9
        with pytest.raises(ValidationError):
            plan.loss_survival_probability(1.5)

    def test_redundancy_bounded_by_out_degree(self, realtime_setup):
        _metric, overlay = realtime_setup
        app = RealTimeRedirectionApp(overlay)
        for target in (5, 9, 13):
            count = app.disjoint_path_count(0, target)
            assert count <= max(
                overlay.to_graph().out_degree(0), overlay.to_graph().in_degree(target)
            )

    def test_more_neighbors_more_disjoint_paths(self):
        """The Fig. 11 trend: disjoint paths grow with k."""
        space, _nodes = synthetic_planetlab(16, seed=4)
        metric = DelayMetric(space.matrix)
        counts = {}
        for k in (2, 5):
            overlay = build_overlay(KRandomPolicy(), metric, k, rng=4)
            app = RealTimeRedirectionApp(overlay)
            pairs = [(i, j) for i in range(4) for j in range(8, 12)]
            counts[k] = app.mean_disjoint_paths(pairs)
        assert counts[5] > counts[2]

    def test_same_endpoints_rejected(self, realtime_setup):
        _metric, overlay = realtime_setup
        with pytest.raises(ValidationError):
            RealTimeRedirectionApp(overlay).plan(3, 3)


class TestSummary:
    def test_summary_keys(self, realtime_setup):
        _metric, overlay = realtime_setup
        summary = disjoint_path_count(overlay, rng=0, max_pairs=30)
        assert summary["pairs_evaluated"] == 30
        assert summary["mean_disjoint_paths"] > 0
