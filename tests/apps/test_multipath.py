"""Tests for the multipath file-transfer application."""

import numpy as np
import pytest

from repro.apps.multipath import MultipathTransferApp, available_bandwidth_gain
from repro.core.cost import BandwidthMetric
from repro.core.policies import BestResponsePolicy, build_overlay
from repro.netsim.autonomous_systems import ASTopology
from repro.netsim.bandwidth import BandwidthModel
from repro.util.validation import ValidationError


@pytest.fixture
def multipath_setup():
    n = 16
    bandwidth = BandwidthModel(n, seed=2)
    as_topology = ASTopology(n, n_ases=5, seed=2)
    metric = BandwidthMetric(bandwidth.matrix())
    overlay = build_overlay(BestResponsePolicy(), metric, 4, rng=2, br_rounds=2)
    return overlay, bandwidth, as_topology


class TestMultipathApp:
    def test_plan_has_one_session_per_neighbor(self, multipath_setup):
        overlay, bandwidth, topo = multipath_setup
        app = MultipathTransferApp(overlay, bandwidth, topo)
        plan = app.plan(0, 9)
        assert len(plan.sessions) == overlay.degree_of(0)

    def test_max_sessions_cap(self, multipath_setup):
        overlay, bandwidth, topo = multipath_setup
        app = MultipathTransferApp(overlay, bandwidth, topo)
        plan = app.plan(0, 9, max_sessions=2)
        assert len(plan.sessions) == 2

    def test_session_rates_nonnegative(self, multipath_setup):
        overlay, bandwidth, topo = multipath_setup
        app = MultipathTransferApp(overlay, bandwidth, topo)
        plan = app.plan(3, 11)
        assert all(s.rate_mbps >= 0 for s in plan.sessions)

    def test_aggregate_at_least_best_session(self, multipath_setup):
        overlay, bandwidth, topo = multipath_setup
        app = MultipathTransferApp(overlay, bandwidth, topo)
        plan = app.plan(2, 13)
        if plan.sessions:
            assert plan.aggregate_rate_mbps >= max(s.rate_mbps for s in plan.sessions) - 1e-9

    def test_gain_at_least_for_most_pairs(self, multipath_setup):
        """Multipath should help (or at least not hurt) on average."""
        overlay, bandwidth, topo = multipath_setup
        app = MultipathTransferApp(overlay, bandwidth, topo)
        gains = []
        for target in range(1, 16):
            plan = app.plan(0, target)
            if np.isfinite(plan.gain):
                gains.append(plan.gain)
        assert np.mean(gains) >= 0.8

    def test_maxflow_is_an_upper_bound_on_sessions(self, multipath_setup):
        overlay, bandwidth, topo = multipath_setup
        app = MultipathTransferApp(overlay, bandwidth, topo)
        for target in (5, 9, 12):
            plan = app.plan(0, target)
            assert plan.maxflow_rate_mbps >= plan.aggregate_rate_mbps * 0.99

    def test_same_egress_sessions_capped(self, multipath_setup):
        overlay, bandwidth, topo = multipath_setup
        app = MultipathTransferApp(overlay, bandwidth, topo)
        plan = app.plan(1, 10)
        by_link = {}
        for session in plan.sessions:
            by_link.setdefault(session.egress_link_id, 0.0)
            by_link[session.egress_link_id] += session.rate_mbps
        src_as = topo.as_of(1)
        for link_id, total in by_link.items():
            if link_id >= 0:
                cap = topo.peering_links[src_as][link_id].session_rate_cap_mbps
                assert total <= cap + 1e-6

    def test_same_source_target_rejected(self, multipath_setup):
        overlay, bandwidth, topo = multipath_setup
        app = MultipathTransferApp(overlay, bandwidth, topo)
        with pytest.raises(ValidationError):
            app.plan(0, 0)

    def test_size_mismatch_rejected(self, multipath_setup):
        overlay, bandwidth, _topo = multipath_setup
        with pytest.raises(ValidationError):
            MultipathTransferApp(overlay, bandwidth, ASTopology(5, seed=0))


class TestGainSummary:
    def test_summary_keys_and_ranges(self, multipath_setup):
        overlay, bandwidth, topo = multipath_setup
        summary = available_bandwidth_gain(
            overlay, bandwidth, topo, rng=0, max_pairs=40
        )
        assert summary["pairs_evaluated"] == 40
        assert summary["multipath_redirection_gain"] >= summary[
            "parallel_connection_gain"
        ] * 0.9
        assert summary["parallel_connection_gain"] > 0
