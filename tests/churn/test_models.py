"""Tests for churn schedules and generators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.churn.models import (
    ChurnSchedule,
    OnOffSession,
    parametrized_churn,
    trace_driven_churn,
)
from repro.util.validation import ValidationError


class TestOnOffSession:
    def test_duration(self):
        session = OnOffSession(node=0, start=10.0, end=25.0)
        assert session.duration == 15.0

    def test_invalid_interval(self):
        with pytest.raises(ValidationError):
            OnOffSession(node=0, start=10.0, end=10.0)


class TestChurnSchedule:
    def make(self):
        sessions = [
            OnOffSession(0, 0.0, 100.0),
            OnOffSession(1, 0.0, 40.0),
            OnOffSession(1, 60.0, 100.0),
            OnOffSession(2, 20.0, 80.0),
        ]
        return ChurnSchedule(3, 100.0, sessions)

    def test_active_at(self):
        schedule = self.make()
        assert schedule.active_at(0.0) == {0, 1}
        assert schedule.active_at(30.0) == {0, 1, 2}
        assert schedule.active_at(50.0) == {0, 2}
        assert schedule.active_at(70.0) == {0, 1, 2}
        assert schedule.active_at(90.0) == {0, 1}

    def test_events_ordered(self):
        events = self.make().events
        times = [e.time for e in events]
        assert times == sorted(times)

    def test_events_between(self):
        schedule = self.make()
        events = schedule.events_between(0.0, 50.0)
        assert all(0.0 < e.time <= 50.0 for e in events)

    def test_mean_availability(self):
        schedule = self.make()
        expected = (100 + 40 + 40 + 60) / (3 * 100)
        assert schedule.mean_availability() == pytest.approx(expected)

    def test_churn_rate_positive(self):
        assert self.make().churn_rate() > 0

    def test_static_membership_zero_churn(self):
        sessions = [OnOffSession(i, 0.0, 50.0) for i in range(4)]
        schedule = ChurnSchedule(4, 50.0, sessions)
        assert schedule.churn_rate() == 0.0

    def test_out_of_range_node_rejected(self):
        with pytest.raises(ValidationError):
            ChurnSchedule(2, 50.0, [OnOffSession(5, 0.0, 10.0)])


class TestTraceDrivenChurn:
    def test_sessions_within_horizon(self):
        schedule = trace_driven_churn(10, 3600.0, seed=0)
        for session in schedule.sessions:
            assert 0.0 <= session.start < session.end <= 3600.0

    def test_high_availability_by_default(self):
        schedule = trace_driven_churn(20, 7200.0, seed=1)
        assert schedule.mean_availability() > 0.6

    def test_deterministic(self):
        a = trace_driven_churn(10, 1000.0, seed=5)
        b = trace_driven_churn(10, 1000.0, seed=5)
        assert a.churn_rate() == pytest.approx(b.churn_rate())

    def test_shorter_sessions_more_churn(self):
        slow = trace_driven_churn(20, 3600.0, mean_on=3000, mean_off=600, seed=2)
        fast = trace_driven_churn(20, 3600.0, mean_on=200, mean_off=40, seed=2)
        assert fast.churn_rate() > slow.churn_rate()

    def test_invalid_parameters(self):
        with pytest.raises(ValidationError):
            trace_driven_churn(0, 100.0)
        with pytest.raises(Exception):
            trace_driven_churn(5, -10.0)


class TestParametrizedChurn:
    @pytest.mark.parametrize("target", [1e-3, 1e-2])
    def test_calibration_close_to_target(self, target):
        schedule = parametrized_churn(20, 1200.0, target, seed=0)
        realised = schedule.churn_rate()
        assert realised == pytest.approx(target, rel=0.5)

    def test_monotone_in_target(self):
        low = parametrized_churn(20, 1200.0, 1e-3, seed=1).churn_rate()
        high = parametrized_churn(20, 1200.0, 5e-2, seed=1).churn_rate()
        assert high > low

    def test_invalid_duty_cycle(self):
        with pytest.raises(ValidationError):
            parametrized_churn(10, 100.0, 0.01, duty_cycle=1.5)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(5, 15))
    def test_active_sets_subset_of_nodes(self, n):
        schedule = parametrized_churn(n, 300.0, 0.01, seed=n)
        for t in (0.0, 100.0, 299.0):
            assert schedule.active_at(t) <= set(range(n))
