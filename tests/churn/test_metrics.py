"""Tests for churn-rate and efficiency metrics."""

import numpy as np
import pytest

from repro.churn.metrics import (
    churn_rate,
    efficiency_matrix,
    expected_healing_time,
    node_efficiency,
    overlay_efficiency,
)
from repro.routing.graph import OverlayGraph
from repro.util.validation import ValidationError


def ring(n, weight=2.0):
    graph = OverlayGraph(n)
    for i in range(n):
        graph.add_edge(i, (i + 1) % n, weight)
    return graph


class TestEfficiency:
    def test_direct_link_efficiency(self):
        graph = OverlayGraph(3)
        graph.add_edge(0, 1, 4.0)
        eff = efficiency_matrix(graph)
        assert eff[0, 1] == pytest.approx(0.25)
        assert eff[1, 0] == 0.0
        assert eff[0, 2] == 0.0

    def test_disconnected_pairs_zero(self):
        graph = OverlayGraph(4)
        graph.add_edge(0, 1, 1.0)
        assert node_efficiency(graph, 2) == 0.0

    def test_node_efficiency_normalised_by_population(self):
        graph = ring(4, weight=1.0)
        # Node 0 reaches 1, 2, 3 at distances 1, 2, 3.
        expected = (1.0 + 0.5 + 1.0 / 3.0) / 3.0
        assert node_efficiency(graph, 0) == pytest.approx(expected)

    def test_overlay_efficiency_mean_over_active(self):
        graph = ring(4, weight=1.0)
        assert overlay_efficiency(graph) == pytest.approx(node_efficiency(graph, 0))

    def test_active_restriction_drops_off_nodes(self):
        graph = ring(4, weight=1.0)
        eff_all = overlay_efficiency(graph)
        eff_some = overlay_efficiency(graph, active=[0, 1])
        # OFF nodes take their links away, so efficiency can only drop.
        assert eff_some <= eff_all

    def test_shorter_paths_higher_efficiency(self):
        fast = ring(5, weight=1.0)
        slow = ring(5, weight=10.0)
        assert overlay_efficiency(fast) > overlay_efficiency(slow)

    def test_empty_active_zero(self):
        assert overlay_efficiency(ring(4), active=[]) == 0.0


class TestChurnRate:
    def test_single_change(self):
        memberships = [{0, 1, 2, 3}, {0, 1, 2}]
        # One event flipping 1 of 4 nodes over a 10-second horizon.
        assert churn_rate(memberships, 10.0) == pytest.approx(0.025)

    def test_no_events(self):
        assert churn_rate([{0, 1}], 10.0) == 0.0

    def test_complete_turnover(self):
        memberships = [{0, 1}, {2, 3}]
        assert churn_rate(memberships, 1.0) == pytest.approx(2.0)

    def test_zero_horizon_rejected(self):
        with pytest.raises(Exception):
            churn_rate([{0}, {1}], 0.0)

    def test_empty_sets_handled(self):
        assert churn_rate([set(), set()], 5.0) == 0.0


class TestHealingTime:
    def test_paper_settings(self):
        # T = 60 s, n = 50 -> healing every 1.2 s on average.
        assert expected_healing_time(60.0, 50) == pytest.approx(1.2)

    def test_invalid(self):
        with pytest.raises(ValidationError):
            expected_healing_time(60.0, 0)
