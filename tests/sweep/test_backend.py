"""Tests for the pluggable store backends (local / shared-fs)."""

from __future__ import annotations

import os

import pytest

from repro.sweep import SweepStore
from repro.sweep.dist import (
    BACKENDS,
    LocalBackend,
    SharedFSBackend,
    parse_backend,
)
from repro.util.validation import ValidationError


class TestParseBackend:
    def test_bare_path_is_local(self, tmp_path):
        backend = parse_backend(str(tmp_path))
        assert isinstance(backend, LocalBackend)
        assert backend.root == str(tmp_path)
        assert backend.describe() == f"local:{tmp_path}"

    def test_prefixed_specs_select_backends(self, tmp_path):
        local = parse_backend(f"local:{tmp_path}")
        shared = parse_backend(f"shared-fs:{tmp_path}")
        assert isinstance(local, LocalBackend)
        assert isinstance(shared, SharedFSBackend)
        assert shared.root == str(tmp_path)
        # describe() round-trips through parse_backend.
        assert type(parse_backend(shared.describe())) is SharedFSBackend

    def test_relative_path_without_colon_is_local(self):
        assert isinstance(parse_backend("sweep-store/fig_all"), LocalBackend)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValidationError, match="unknown store backend"):
            parse_backend("s3:/bucket/sweeps")

    def test_missing_path_rejected(self):
        with pytest.raises(ValidationError, match="missing a path"):
            parse_backend("shared-fs:")

    def test_registry_names_match_class_names(self):
        assert BACKENDS["local"] is LocalBackend
        assert BACKENDS["shared-fs"] is SharedFSBackend


@pytest.mark.parametrize("backend_cls", [LocalBackend, SharedFSBackend])
class TestBackendPrimitives:
    def test_atomic_write_and_read(self, tmp_path, backend_cls):
        backend = backend_cls(str(tmp_path))
        backend.write_atomic("cell.json", '{"x": 1}', ".cell.host.1.tmp")
        assert backend.read_text("cell.json") == '{"x": 1}'
        assert [p for p in os.listdir(tmp_path) if p.endswith(".tmp")] == []

    def test_read_missing_is_none(self, tmp_path, backend_cls):
        assert backend_cls(str(tmp_path)).read_text("nope.json") is None

    def test_create_exclusive_single_winner(self, tmp_path, backend_cls):
        backend = backend_cls(str(tmp_path))
        assert backend.create_exclusive("claims/a.claim", "first") is True
        assert backend.create_exclusive("claims/a.claim", "second") is False
        assert backend.read_text("claims/a.claim") == "first"

    def test_rename_missing_is_false(self, tmp_path, backend_cls):
        backend = backend_cls(str(tmp_path))
        assert backend.rename("gone.claim", "taken.claim") is False
        backend.create_exclusive("here.claim", "x")
        assert backend.rename("here.claim", "taken.claim") is True
        assert backend.read_text("taken.claim") == "x"
        assert not backend.exists("here.claim")

    def test_unlink_missing_is_false(self, tmp_path, backend_cls):
        backend = backend_cls(str(tmp_path))
        assert backend.unlink("gone") is False
        backend.create_exclusive("there", "x")
        assert backend.unlink("there") is True

    def test_listdir_missing_dir_is_empty(self, tmp_path, backend_cls):
        backend = backend_cls(str(tmp_path / "never"))
        assert backend.listdir() == []
        assert backend.listdir("claims") == []

    def test_store_runs_on_backend(self, tmp_path, backend_cls):
        """SweepStore accepts an explicit backend and a spec string."""
        key = "a" * 32
        via_backend = SweepStore(str(tmp_path), backend=backend_cls(str(tmp_path)))
        via_backend.put(key, {"s": 1}, {"r": 2})
        assert via_backend.get(key)["result"] == {"r": 2}
        spec = f"{backend_cls.name}:{tmp_path}"
        assert SweepStore(spec).get(key)["result"] == {"r": 2}
        assert SweepStore(spec).backend.name == backend_cls.name
