"""Tests for sweep templates: expansion, seed spawning, corpus loading."""

from __future__ import annotations

import json

import pytest

from repro.sweep import SweepTemplate, expand_corpus, load_templates, spec_key
from repro.util.validation import ValidationError


def _template(**overrides) -> SweepTemplate:
    data = {
        "name": "t",
        "base": {"experiment": "fig1-delay-ping", "n": 12, "k_grid": [2], "seed": 9},
        "axes": {"n": [12, 14]},
    }
    data.update(overrides)
    return SweepTemplate.from_dict(data)


class TestExpansion:
    def test_scalar_axis_sets_the_named_field(self):
        cells = _template().expand()
        assert [cell.spec.n for cell in cells] == [12, 14]
        assert [cell.assignment for cell in cells] == [
            (("n", "12"),),
            (("n", "14"),),
        ]

    def test_cartesian_product_order_is_deterministic(self):
        template = _template(axes={"n": [12, 14], "br_rounds": [1, 2]})
        cells = template.expand()
        assert [(c.spec.n, c.spec.br_rounds) for c in cells] == [
            (12, 1), (12, 2), (14, 1), (14, 2),
        ]
        assert cells == template.expand()

    def test_object_axis_applies_fields_together(self):
        template = _template(
            axes={
                "panel": [
                    {"label": "ping", "experiment": "fig1-delay-ping", "metric": "delay-ping"},
                    {"label": "load", "experiment": "fig1-node-load", "metric": "load"},
                ]
            }
        )
        cells = template.expand()
        assert [(c.spec.experiment, c.spec.metric) for c in cells] == [
            ("fig1-delay-ping", "delay-ping"),
            ("fig1-node-load", "load"),
        ]
        assert [c.assignment for c in cells] == [
            (("panel", "ping"),), (("panel", "load"),),
        ]

    def test_dotted_paths_reach_params_and_churn(self):
        template = _template(
            base={
                "experiment": "fig2-churn-rate",
                "n": 10,
                "k_grid": [3],
                "epochs": 1,
                "churn": {"kind": "parametrized", "horizon": 60.0},
                "seed": 1,
            },
            axes={"churn.rate": [0.01, 0.1], "params.k": [3]},
        )
        cells = template.expand()
        assert [c.spec.churn.rate for c in cells] == [0.01, 0.1]
        assert all(c.spec.params["k"] == 3 for c in cells)

    def test_dotted_path_into_scalar_field_rejected(self):
        with pytest.raises(ValidationError, match="dotted paths"):
            _template(axes={"n.x": [1]}).expand()

    def test_unknown_axis_field_rejected(self):
        with pytest.raises(ValidationError, match="does not name a ScenarioSpec field"):
            _template(axes={"frobnicate": [1]}).expand()

    def test_invalid_cell_error_names_cell_coordinates(self):
        with pytest.raises(ValidationError, match=r"cell 1 \(n=1\)"):
            _template(axes={"n": [12, 1]}).expand()


class TestSeedSpawning:
    def test_cells_get_distinct_deterministic_spawned_seeds(self):
        cells_a = _template().expand()
        cells_b = _template().expand()
        seeds = [cell.spec.seed for cell in cells_a]
        assert len(set(seeds)) == len(seeds)
        assert seeds == [cell.spec.seed for cell in cells_b]
        assert all(isinstance(seed, int) for seed in seeds)

    def test_spawned_seeds_differ_from_base_seed_stream_by_template_seed(self):
        assert (
            _template().expand()[0].spec.seed
            != _template(base={"experiment": "fig1-delay-ping", "seed": 10})
            .expand()[0]
            .spec.seed
        )

    def test_seed_axis_disables_spawning(self):
        template = _template(axes={"seed": [3, 4]})
        assert [cell.spec.seed for cell in template.expand()] == [3, 4]

    def test_spawn_seeds_false_keeps_base_seed(self):
        template = _template(spawn_seeds=False)
        assert [cell.spec.seed for cell in template.expand()] == [9, 9]

    def test_spawning_without_base_seed_rejected(self):
        with pytest.raises(ValidationError, match="seed=None"):
            _template(base={"experiment": "fig1-delay-ping", "seed": None})


class TestTemplateValidation:
    def test_unknown_template_field_rejected(self):
        with pytest.raises(ValidationError, match="unknown sweep template fields"):
            SweepTemplate.from_dict({"name": "t", "base": {"experiment": "x"}, "bogus": 1})

    def test_missing_base_rejected(self):
        with pytest.raises(ValidationError, match="'base'"):
            SweepTemplate.from_dict({"name": "t"})

    def test_empty_axis_rejected(self):
        with pytest.raises(ValidationError, match="non-empty list"):
            _template(axes={"n": []})

    def test_object_point_without_fields_rejected(self):
        with pytest.raises(ValidationError, match="no field assignments"):
            _template(axes={"panel": [{"label": "only-a-label"}]})

    def test_base_spec_errors_surface_with_field_name(self):
        with pytest.raises(ValidationError, match="'metric'"):
            _template(base={"experiment": "x", "metric": "nope", "seed": 1})


class TestSpecKey:
    def test_key_is_stable_and_content_sensitive(self):
        cells = _template().expand()
        assert cells[0].key == spec_key(cells[0].spec)
        assert cells[0].key != cells[1].key
        assert len(cells[0].key) == 32


class TestCorpusLoading:
    def test_include_resolves_relative_and_flattens(self, tmp_path):
        child = {
            "name": "child",
            "base": {"experiment": "fig1-delay-ping", "n": 12, "seed": 1},
        }
        (tmp_path / "child.json").write_text(json.dumps(child))
        (tmp_path / "corpus.json").write_text(
            json.dumps({"name": "corpus", "include": ["child.json", "child.json"]})
        )
        templates = load_templates(str(tmp_path / "corpus.json"))
        assert [t.name for t in templates] == ["child", "child"]

    def test_include_cycle_rejected(self, tmp_path):
        (tmp_path / "a.json").write_text(json.dumps({"name": "a", "include": ["b.json"]}))
        (tmp_path / "b.json").write_text(json.dumps({"name": "b", "include": ["a.json"]}))
        with pytest.raises(ValidationError, match="cycle"):
            load_templates(str(tmp_path / "a.json"))

    def test_missing_and_malformed_files_are_clean_errors(self, tmp_path):
        with pytest.raises(ValidationError, match="cannot read"):
            load_templates(str(tmp_path / "nope.json"))
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ValidationError, match="not valid JSON"):
            load_templates(str(bad))

    def test_expand_corpus_dedupes_identical_cells(self, tmp_path):
        child = {
            "name": "child",
            "base": {"experiment": "fig1-delay-ping", "n": 12, "seed": 1},
        }
        (tmp_path / "child.json").write_text(json.dumps(child))
        (tmp_path / "corpus.json").write_text(
            json.dumps({"name": "corpus", "include": ["child.json", "child.json"]})
        )
        cells = expand_corpus(load_templates(str(tmp_path / "corpus.json")))
        assert len(cells) == 1


class TestCheckedInCorpus:
    """The shipped scenarios/ corpus must always expand cleanly."""

    def test_fig_all_expands_to_registered_unique_cells(self):
        from repro.scenario.registry import scenario_names

        templates = load_templates("scenarios/fig_all.json")
        cells = expand_corpus(templates)
        assert len(cells) >= 12
        names = set(scenario_names())
        assert {cell.spec.experiment for cell in cells} <= names
        assert len({cell.key for cell in cells}) == len(cells)

    @pytest.mark.parametrize(
        "path", ["scenarios/ci_smoke.json", "scenarios/bench_12cell.json"]
    )
    def test_auxiliary_corpora_expand(self, path):
        cells = expand_corpus(load_templates(path))
        assert cells
        if "bench" in path:
            assert len(cells) == 12


class TestPartialBase:
    def test_axis_may_supply_required_fields(self):
        """The base can be partial: experiment arrives via an axis point."""
        template = SweepTemplate.from_dict(
            {
                "name": "partial",
                "base": {"n": 12, "seed": 1},
                "axes": {
                    "panel": [
                        {"label": "ping", "experiment": "fig1-delay-ping"},
                        {"label": "load", "experiment": "fig1-node-load", "metric": "load"},
                    ]
                },
            }
        )
        cells = template.expand()
        assert [c.spec.experiment for c in cells] == [
            "fig1-delay-ping", "fig1-node-load",
        ]

    def test_missing_experiment_everywhere_is_a_clean_error(self):
        with pytest.raises(ValidationError, match="'experiment'"):
            SweepTemplate.from_dict(
                {"name": "broken", "base": {"n": 12, "seed": 1}, "axes": {"n": [12]}}
            )


class TestExpansionErrorContext:
    def test_bad_axis_field_in_later_point_names_template_and_cell(self):
        """validate() probes only first points; a bad later point must
        still fail with template/cell coordinates."""
        template = _template(
            axes={
                "panel": [
                    {"label": "ok", "experiment": "fig1-delay-ping"},
                    {"label": "typo", "experimnt": "fig1-node-load"},
                ]
            }
        )
        with pytest.raises(ValidationError, match="template 't', cell 1"):
            template.expand()
