"""Tests for the parallel sweep executor: parity, resume, reporting."""

from __future__ import annotations

import pytest

from repro.sweep import SweepStore, SweepTemplate, run_sweep
from repro.util.validation import ValidationError


@pytest.fixture(scope="module")
def cells():
    template = SweepTemplate.from_dict(
        {
            "name": "exec-test",
            "base": {
                "experiment": "fig1-delay-ping",
                "n": 10,
                "k_grid": [2],
                "br_rounds": 1,
                "seed": 3,
            },
            "axes": {
                "panel": [
                    {"label": "ping", "experiment": "fig1-delay-ping", "metric": "delay-ping"},
                    {"label": "load", "experiment": "fig1-node-load", "metric": "load"},
                ],
                "n": [10, 12],
            },
        }
    )
    return template.expand()


class TestExecution:
    def test_inline_run_fills_the_store(self, cells, tmp_path):
        store = SweepStore(str(tmp_path))
        report = run_sweep(cells, store, workers=1)
        assert len(report.executed) == len(cells) == 4
        assert report.skipped == []
        for cell in cells:
            document = store.get(cell.key)
            assert document["spec"] == cell.spec.to_dict()
            assert document["result"]["metadata"]["scenario"] == cell.spec.to_dict()

    def test_workers_byte_identical_to_inline(self, cells, tmp_path):
        inline_store = SweepStore(str(tmp_path / "inline"))
        pool_store = SweepStore(str(tmp_path / "pool"))
        run_sweep(cells, inline_store, workers=1)
        run_sweep(cells, pool_store, workers=2)
        for cell in cells:
            assert inline_store.get(cell.key) == pool_store.get(cell.key), cell.key

    def test_resume_skips_completed_cells_only(self, cells, tmp_path):
        store = SweepStore(str(tmp_path))
        # Simulate a sweep killed after two cells: only those are stored.
        run_sweep(cells[:2], store, workers=1)
        executed = []
        report = run_sweep(
            cells, store, workers=1, resume=True, on_cell=lambda c: executed.append(c.key)
        )
        assert sorted(report.skipped) == sorted(cell.key for cell in cells[:2])
        assert sorted(report.executed) == sorted(cell.key for cell in cells[2:])
        assert sorted(executed) == sorted(report.executed)
        # A second resume finds everything done and executes nothing.
        final = run_sweep(cells, store, workers=2, resume=True)
        assert final.executed == []
        assert len(final.skipped) == len(cells)

    def test_without_resume_cells_reexecute(self, cells, tmp_path):
        store = SweepStore(str(tmp_path))
        run_sweep(cells[:1], store, workers=1)
        report = run_sweep(cells[:1], store, workers=1)
        assert len(report.executed) == 1 and report.skipped == []

    def test_report_summary_is_machine_greppable(self, cells, tmp_path):
        store = SweepStore(str(tmp_path))
        run_sweep(cells, store, workers=1)
        report = run_sweep(cells, store, workers=2, resume=True)
        assert (
            report.summary()
            == "SWEEP total=4 executed=0 skipped=4 failed=0 workers=2"
        )

    def test_invalid_worker_count_rejected(self, cells, tmp_path):
        with pytest.raises(ValidationError, match="workers"):
            run_sweep(cells, SweepStore(str(tmp_path)), workers=0)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_failing_cell_does_not_abort_the_sweep(self, tmp_path, workers):
        """One crashing cell is recorded as failed; the rest keep running."""
        template = SweepTemplate.from_dict(
            {
                "name": "exec-fail",
                "base": {
                    "experiment": "fig1-delay-ping",
                    "n": 10,
                    "k_grid": [2],
                    "br_rounds": 1,
                    "seed": 3,
                },
                "axes": {
                    "panel": [
                        {"label": "good-a", "experiment": "fig1-delay-ping"},
                        # Template-valid but crashes at run time: the fig2
                        # runner requires a churn spec.
                        {"label": "bad", "experiment": "fig2-efficiency-vs-k",
                         "metric": "delay-true", "epochs": 1},
                        {"label": "good-b", "experiment": "fig1-node-load",
                         "metric": "load"},
                    ]
                },
            }
        )
        mixed = template.expand()
        bad = mixed[1]
        store = SweepStore(str(tmp_path / f"w{workers}"))
        report = run_sweep(mixed, store, workers=workers)
        assert sorted(report.executed) == sorted(
            c.key for c in (mixed[0], mixed[2])
        )
        assert [failure.key for failure in report.failed] == [bad.key]
        assert "churn" in report.failed[0].error
        # The full traceback travels with the failure record — and is
        # persisted next to the store, so a remote worker's crash is
        # debuggable from the store directory alone.
        assert "Traceback (most recent call last)" in report.failed[0].traceback
        from repro.sweep.dist import ClaimStore

        stored_failure = ClaimStore(store.backend).failed_record(bad.key)
        assert stored_failure is not None
        assert "churn" in stored_failure["error"]
        assert "Traceback (most recent call last)" in stored_failure["traceback"]
        assert store.has(mixed[0].key) and store.has(mixed[2].key)
        assert not store.has(bad.key)  # failed cells store nothing
        assert "failed=1" in report.summary()
        # A fixed-up resume would re-attempt exactly the failed cell.
        resumed = run_sweep(mixed[:1], store, workers=1, resume=True)
        assert resumed.skipped == [mixed[0].key]

    def test_run_sweep_purges_stale_tmp_files(self, cells, tmp_path):
        from repro.sweep.dist import local_host

        store = SweepStore(str(tmp_path))
        run_sweep(cells[:1], store, workers=1)
        orphan = tmp_path / f".{cells[0].key}.{local_host()}.999999999.tmp"
        orphan.write_text("truncated")
        run_sweep(cells[:1], store, workers=1, resume=True)
        assert not orphan.exists()

    def test_run_sweep_defers_cells_claimed_by_live_workers(self, cells, tmp_path):
        """A cell another live worker holds is not duplicated here."""
        from repro.sweep.dist import ClaimStore

        store = SweepStore(str(tmp_path))
        foreign = ClaimStore(
            store.backend, lease_seconds=300.0, host="other-host", pid=1
        )
        held = foreign.try_claim(cells[0].key)
        assert held is not None
        report = run_sweep(cells, store, workers=1)
        assert report.deferred == [cells[0].key]
        assert sorted(report.executed) == sorted(c.key for c in cells[1:])
        assert not store.has(cells[0].key)
        assert "deferred=1" in report.summary()
        # Once the foreign worker's lease expires, a re-run reclaims it.
        expired = ClaimStore(
            store.backend, lease_seconds=1e-9, host="other-host", pid=1
        )
        foreign.release(held)
        assert expired.try_claim(cells[0].key) is not None
        import time

        time.sleep(0.01)
        rerun = run_sweep(cells, store, workers=1, resume=True)
        assert rerun.executed == [cells[0].key]
        assert store.has(cells[0].key)

    def test_sequential_kernel_path_matches_batched(self, cells, tmp_path):
        """batched is an execution detail: stored bytes are identical."""
        batched_store = SweepStore(str(tmp_path / "batched"))
        sequential_store = SweepStore(str(tmp_path / "seq"))
        run_sweep(cells[:2], batched_store, workers=1, batched=True)
        run_sweep(cells[:2], sequential_store, workers=1, batched=False)
        for cell in cells[:2]:
            assert batched_store.get(cell.key) == sequential_store.get(cell.key)
