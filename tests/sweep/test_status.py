"""Tests for the sweep status view (``repro sweep --status``)."""

from __future__ import annotations

import pytest

from repro.sweep import SweepStore, SweepTemplate, run_sweep
from repro.sweep.dist import (
    ClaimStore,
    HostThroughput,
    corpus_status,
    format_status,
)


@pytest.fixture(scope="module")
def cells():
    template = SweepTemplate.from_dict(
        {
            "name": "status-test",
            "base": {
                "experiment": "fig1-delay-ping",
                "n": 10,
                "k_grid": [2],
                "br_rounds": 1,
                "seed": 3,
            },
            "axes": {"n": [10, 11, 12, 13, 14]},
        }
    )
    return template.expand()


class TestCorpusStatus:
    def test_every_state_is_classified(self, cells, tmp_path):
        """One cell per state: done, claimed, orphaned, failed, pending."""
        store = SweepStore(str(tmp_path))
        run_sweep(cells[:1], store, workers=1)  # -> done
        live = ClaimStore(store.backend, lease_seconds=300.0, host="host-a", pid=1)
        assert live.try_claim(cells[1].key) is not None  # -> claimed
        dead = ClaimStore(store.backend, lease_seconds=1e-9, host="host-b", pid=2)
        assert dead.try_claim(cells[2].key) is not None  # -> orphaned
        marker = ClaimStore(store.backend, host="host-c", pid=3)
        marker.mark_failed(
            cells[3].key, error="ValueError: boom", traceback_text="TB"
        )  # -> failed; cells[4] stays pending

        status = corpus_status(cells, store)
        assert (status.total, status.done, status.claimed) == (5, 1, 1)
        assert (status.orphaned, status.failed, status.pending) == (1, 1, 1)
        states = {cell.key: cell for cell in status.cells}
        assert states[cells[0].key].state == "done"
        claimed = states[cells[1].key]
        assert claimed.state == "claimed"
        assert claimed.owner == "host-a:1"
        assert claimed.lease_seconds > 0
        orphaned = states[cells[2].key]
        assert orphaned.state == "orphaned"
        assert orphaned.owner == "host-b:2"
        assert orphaned.lease_seconds <= 0
        failed = states[cells[3].key]
        assert failed.state == "failed"
        assert failed.owner == "host-c:3"
        assert failed.error == "ValueError: boom"
        assert states[cells[4].key].state == "pending"
        assert status.summary() == (
            "SWEEP-STATUS total=5 done=1 claimed=1 orphaned=1 failed=1 pending=1"
        )

    def test_done_result_outranks_stale_records(self, cells, tmp_path):
        """A cell with a result is done even if claim/failed debris remains."""
        store = SweepStore(str(tmp_path))
        run_sweep(cells[:1], store, workers=1)
        debris = ClaimStore(store.backend, lease_seconds=300.0, host="h", pid=1)
        debris.try_claim(cells[0].key)
        debris.mark_failed(cells[0].key, error="stale", traceback_text="TB")
        status = corpus_status(cells[:1], store)
        assert status.done == 1 and status.failed == 0 and status.claimed == 0

    def test_per_host_throughput_from_done_records(self, cells, tmp_path):
        store = SweepStore(str(tmp_path))
        fast = ClaimStore(store.backend, host="host-fast", pid=1)
        slow = ClaimStore(store.backend, host="host-slow", pid=2)
        fast.mark_done(cells[0].key, started=100.0, finished=101.0)
        fast.mark_done(cells[1].key, started=101.0, finished=102.0, reclaimed=True)
        slow.mark_done(cells[2].key, started=100.0, finished=104.0)
        status = corpus_status(cells[:3], store)
        hosts = {host.host: host for host in status.hosts}
        assert set(hosts) == {"host-fast", "host-slow"}
        assert hosts["host-fast"].cells == 2
        assert hosts["host-fast"].elapsed == pytest.approx(2.0)
        assert hosts["host-fast"].span == pytest.approx(2.0)
        assert hosts["host-fast"].throughput == pytest.approx(1.0)
        assert hosts["host-fast"].reclaimed == 1
        assert hosts["host-slow"].throughput == pytest.approx(0.25)

    def test_zero_span_throughput_is_zero(self):
        assert HostThroughput(
            host="h", cells=1, elapsed=0.0, span=0.0, reclaimed=0
        ).throughput == 0.0

    def test_as_dict_roundtrips_through_json(self, cells, tmp_path):
        import json

        store = SweepStore(str(tmp_path))
        run_sweep(cells[:1], store, workers=1)
        document = json.loads(json.dumps(corpus_status(cells, store).as_dict()))
        assert document["total"] == 5 and document["done"] == 1
        assert len(document["cells"]) == 5
        assert {c["state"] for c in document["cells"]} == {"done", "pending"}


class TestStatusTelemetry:
    def test_per_host_claim_reclaim_defer_counts(self, cells, tmp_path):
        store = SweepStore(str(tmp_path))
        a = ClaimStore(store.backend, host="host-a", pid=1)
        a.mark_done(cells[0].key, started=100.0, finished=101.0)
        a.mark_done(cells[1].key, started=101.0, finished=102.0, reclaimed=True)
        live = ClaimStore(store.backend, lease_seconds=300.0, host="host-a", pid=1)
        assert live.try_claim(cells[2].key) is not None  # in-flight claim
        dead = ClaimStore(store.backend, lease_seconds=1e-9, host="host-b", pid=2)
        assert dead.try_claim(cells[3].key) is not None  # expired -> defer

        telemetry = corpus_status(cells, store).telemetry
        hosts = telemetry["hosts"]
        assert hosts["host-a"] == {"claims": 3, "reclaims": 1, "defers": 0}
        assert hosts["host-b"] == {"claims": 1, "reclaims": 0, "defers": 1}
        assert telemetry["totals"] == {"claims": 4, "reclaims": 1, "defers": 1}

    def test_telemetry_block_in_as_dict(self, cells, tmp_path):
        import json

        store = SweepStore(str(tmp_path))
        done = ClaimStore(store.backend, host="host-a", pid=1)
        done.mark_done(cells[0].key, started=1.0, finished=2.0, reclaimed=True)
        document = json.loads(json.dumps(corpus_status(cells, store).as_dict()))
        assert document["telemetry"]["totals"] == {
            "claims": 1,
            "reclaims": 1,
            "defers": 0,
        }

    def test_empty_store_has_empty_telemetry(self, cells, tmp_path):
        store = SweepStore(str(tmp_path))
        telemetry = corpus_status(cells, store).telemetry
        assert telemetry == {"hosts": {}, "totals": {"claims": 0, "reclaims": 0, "defers": 0}}


class TestFormatStatus:
    def test_lines_end_with_greppable_summary(self, cells, tmp_path):
        store = SweepStore(str(tmp_path))
        run_sweep(cells[:1], store, workers=1)
        live = ClaimStore(store.backend, lease_seconds=300.0, host="host-a", pid=1)
        live.try_claim(cells[1].key)
        status = corpus_status(cells, store)
        lines = format_status(status, "status-test", str(tmp_path))
        assert lines[0].startswith("# sweep status status-test: 5 cells")
        assert lines[-1] == status.summary()
        body = "\n".join(lines)
        assert "claimed" in body and "host-a:1" in body
        assert "lease expires in" in body
        # One host line for the cell this host completed.
        assert any(line.startswith("# host ") for line in lines)

    def test_claims_line_reports_telemetry_totals(self, cells, tmp_path):
        store = SweepStore(str(tmp_path))
        done = ClaimStore(store.backend, host="host-a", pid=1)
        done.mark_done(cells[0].key, started=1.0, finished=2.0)
        done.mark_done(cells[1].key, started=2.0, finished=3.0, reclaimed=True)
        status = corpus_status(cells, store)
        lines = format_status(status, "status-test", str(tmp_path))
        assert "# claims: total=2 reclaimed=1 deferred=0" in lines
