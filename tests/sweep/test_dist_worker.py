"""Tests for the sweep-worker drain loop and multi-process store sharing."""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.sweep import SweepStore, SweepTemplate, run_sweep
from repro.sweep.dist import ClaimStore, local_host, run_worker
from repro.util.validation import ValidationError

TEMPLATE = {
    "name": "dist-test",
    "base": {
        "experiment": "fig1-delay-ping",
        "n": 10,
        "k_grid": [2],
        "br_rounds": 1,
        "seed": 3,
    },
    "axes": {
        "panel": [
            {"label": "ping", "experiment": "fig1-delay-ping", "metric": "delay-ping"},
            {"label": "load", "experiment": "fig1-node-load", "metric": "load"},
        ],
        "n": [10, 12],
    },
}


@pytest.fixture(scope="module")
def cells():
    return SweepTemplate.from_dict(TEMPLATE).expand()


def store_bytes(root):
    """Every result file's exact bytes, keyed by file name."""
    return {
        name: (root / name).read_bytes()
        for name in os.listdir(root)
        if name.endswith(".json")
    }


class TestRunWorker:
    def test_drains_corpus_byte_identical_to_run_sweep(self, cells, tmp_path):
        reference = SweepStore(str(tmp_path / "ref"))
        run_sweep(cells, reference, workers=1)
        store = SweepStore(str(tmp_path / "worker"))
        report = run_worker(cells, store, lease_seconds=30.0)
        assert sorted(report.executed) == sorted(cell.key for cell in cells)
        assert report.failed == [] and report.pending == []
        assert not report.timed_out
        assert store_bytes(tmp_path / "worker") == store_bytes(tmp_path / "ref")
        # Completion records landed for every cell.
        claims = ClaimStore(store.backend)
        assert sorted(claims.done_records()) == sorted(c.key for c in cells)
        assert claims.claim_records() == {}  # every claim released

    def test_skips_cells_already_done(self, cells, tmp_path):
        store = SweepStore(str(tmp_path))
        run_sweep(cells[:2], store, workers=1)
        report = run_worker(cells, store, lease_seconds=30.0)
        assert sorted(report.skipped_done) == sorted(c.key for c in cells[:2])
        assert sorted(report.executed) == sorted(c.key for c in cells[2:])

    def test_reclaims_a_dead_workers_expired_lease(self, cells, tmp_path):
        """Satellite: lease expiry + reclamation of a dead worker's cell."""
        store = SweepStore(str(tmp_path))
        dead = ClaimStore(
            store.backend, lease_seconds=1e-9, host="dead-host", pid=12345
        )
        assert dead.try_claim(cells[0].key) is not None
        report = run_worker(cells, store, lease_seconds=30.0)
        assert sorted(report.executed) == sorted(cell.key for cell in cells)
        assert report.reclaimed == [cells[0].key]
        assert store.has(cells[0].key)
        done = ClaimStore(store.backend).done_record(cells[0].key)
        assert done["reclaimed"] is True

    def test_waits_out_live_leases_then_times_out(self, cells, tmp_path):
        store = SweepStore(str(tmp_path))
        holder = ClaimStore(
            store.backend, lease_seconds=300.0, host="other-host", pid=1
        )
        assert holder.try_claim(cells[0].key) is not None
        events = []
        report = run_worker(
            cells,
            store,
            lease_seconds=30.0,
            poll_seconds=0.05,
            wait_timeout=0.3,
            on_event=lambda kind, cell, outcome: events.append(kind),
        )
        assert report.timed_out
        assert report.pending == [cells[0].key]
        assert sorted(report.executed) == sorted(c.key for c in cells[1:])
        assert report.waited_rounds >= 1
        assert "waiting" in events
        assert "pending=1" in report.summary()

    def test_skips_failure_marked_cells_by_default(self, cells, tmp_path):
        store = SweepStore(str(tmp_path))
        marker = ClaimStore(store.backend, host="other-host", pid=1)
        marker.mark_failed(cells[0].key, error="Boom: x", traceback_text="TB")
        report = run_worker(cells, store, lease_seconds=30.0)
        assert report.skipped_failed == [cells[0].key]
        assert not store.has(cells[0].key)
        assert report.failed_total() == 1
        assert "failed=1" in report.summary()
        # retry_failed clears the record and executes the cell.
        retry = run_worker(cells, store, lease_seconds=30.0, retry_failed=True)
        assert retry.executed == [cells[0].key]
        assert store.has(cells[0].key)
        assert marker.failed_record(cells[0].key) is None

    def test_max_cells_bounds_own_executions(self, cells, tmp_path):
        store = SweepStore(str(tmp_path))
        report = run_worker(cells, store, lease_seconds=30.0, max_cells=2)
        assert len(report.executed) == 2
        assert len(report.pending) == len(cells) - 2
        assert "pending=2" in report.summary()

    def test_invalid_poll_rejected(self, cells, tmp_path):
        with pytest.raises(ValidationError, match="poll_seconds"):
            run_worker(cells, SweepStore(str(tmp_path)), poll_seconds=0.0)


class TestConcurrentWorkerProcesses:
    def test_two_worker_processes_share_one_store(self, cells, tmp_path):
        """Satellite: byte-identical store for workers=1 vs two concurrent
        ``sweep-worker`` processes, with the corpus partitioned between
        them (no cell executed twice)."""
        import json

        template_path = tmp_path / "template.json"
        template_path.write_text(json.dumps(TEMPLATE))
        reference = SweepStore(str(tmp_path / "ref"))
        run_sweep(cells, reference, workers=1)

        shared = tmp_path / "shared"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath("src")
        command = [
            sys.executable,
            "-m",
            "repro.cli",
            "sweep-worker",
            str(template_path),
            "--store",
            str(shared),
            "--lease",
            "30",
            "--poll",
            "0.05",
            "--timeout",
            "120",
        ]
        procs = [
            subprocess.Popen(
                command, env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
                text=True,
            )
            for _ in range(2)
        ]
        outputs = [proc.communicate(timeout=180)[0] for proc in procs]
        assert [proc.returncode for proc in procs] == [0, 0], outputs
        assert store_bytes(shared) == store_bytes(tmp_path / "ref")

        # Parse each worker's summary: together they cover the corpus,
        # and no cell ran twice (executed counts sum to the total).
        summaries = []
        for output in outputs:
            lines = [l for l in output.splitlines() if "SWEEP total=" in l]
            assert lines, output
            summaries.append(lines[-1])
        executed = [
            int(summary.split("executed=")[1].split()[0]) for summary in summaries
        ]
        assert sum(executed) == len(cells), summaries
        for summary in summaries:
            assert "failed=0" in summary
            assert "pending" not in summary
        # The done records partition the corpus across the worker pids.
        # (On a loaded single-core box one worker may drain everything
        # before the other finishes starting, so require coverage and
        # containment, not that both pids appear.)
        done = ClaimStore(SweepStore(str(shared)).backend).done_records()
        assert sorted(done) == sorted(cell.key for cell in cells)
        pids = {record["pid"] for record in done.values()}
        assert pids and pids <= {proc.pid for proc in procs}
        assert all(record["host"] == local_host() for record in done.values())

class TestInterruption:
    def test_sigterm_unwinds_the_loop_and_releases_the_claim(self, cells, tmp_path):
        """In-process SIGTERM (sent to ourselves at a deterministic point):
        the drain loop unwinds, the report says interrupted, and no claim
        is left squatting."""
        import signal

        store = SweepStore(str(tmp_path))

        def _interrupt_after_first(kind, _cell, _outcome):
            if kind == "done":
                os.kill(os.getpid(), signal.SIGTERM)

        report = run_worker(
            cells,
            store,
            lease_seconds=30.0,
            handle_signals=True,
            on_event=_interrupt_after_first,
        )
        assert report.interrupted == signal.SIGTERM
        assert len(report.executed) == 1
        assert len(report.pending) == len(cells) - 1
        assert "interrupted=sig15" in report.summary()
        claims = ClaimStore(store.backend)
        assert claims.claim_records() == {}  # the live claim was released
        # The previous handler is restored, so the next SIGTERM would not
        # raise WorkerInterrupted into unrelated code.
        assert signal.getsignal(signal.SIGTERM) is signal.SIG_DFL
        # A fresh (uninterrupted) worker finishes the corpus.
        resumed = run_worker(cells, store, lease_seconds=30.0)
        assert resumed.interrupted is None
        assert sorted(resumed.executed) == sorted(report.pending)

    def test_signalled_worker_process_releases_its_claim(self, tmp_path):
        """Satellite: a real ``sweep-worker`` subprocess SIGTERMed mid-cell
        exits 128+15 and releases its live claim immediately — the cell is
        reclaimable without waiting out the lease."""
        import json
        import signal
        import time

        # One deliberately slow cell (~2s) so the signal lands mid-execution.
        template = {
            "name": "slow-dist-test",
            "base": {
                "experiment": "fig1-delay-ping",
                "n": 120,
                "k_grid": [2],
                "br_rounds": 8,
                "seed": 3,
                "metric": "delay-ping",
            },
            "axes": {"n": [120]},
        }
        template_path = tmp_path / "template.json"
        template_path.write_text(json.dumps(template))
        shared = tmp_path / "shared"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath("src")
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "sweep-worker",
                str(template_path),
                "--store",
                str(shared),
                "--lease",
                "300",
                "--poll",
                "0.05",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            claims = ClaimStore(SweepStore(str(shared)).backend)
            deadline = time.monotonic() + 60
            while not claims.claim_records():
                assert proc.poll() is None, proc.communicate()[0]
                assert time.monotonic() < deadline, "worker never claimed the cell"
                time.sleep(0.01)
            proc.send_signal(signal.SIGTERM)
            output = proc.communicate(timeout=60)[0]
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=30)
        assert proc.returncode == 128 + signal.SIGTERM, output
        assert "interrupted=sig15" in output
        # The 300s lease did NOT strand the cell: the claim is already
        # gone, nothing completed, and the cell is immediately runnable.
        assert claims.claim_records() == {}
        assert claims.done_records() == {}
        cells = SweepTemplate.from_dict(template).expand()
        report = run_worker(cells, SweepStore(str(shared)), lease_seconds=30.0)
        assert report.executed == [cells[0].key]
        assert report.reclaimed == []  # claimed fresh, not reclaimed


class TestConcurrentWorkerProcessesOwnerDeath:
    def test_worker_process_completes_after_owner_dies(self, cells, tmp_path):
        """A worker killed mid-cell leaves an expired claim; a fresh
        worker reclaims it and finishes the corpus."""
        store = SweepStore(str(tmp_path))
        # Fake the dead worker: a claim from a pid that no longer runs,
        # with a lease that expires almost immediately.
        dying = ClaimStore(
            store.backend, lease_seconds=0.05, host=local_host(), pid=999999999
        )
        assert dying.try_claim(cells[0].key) is not None
        import time

        time.sleep(0.06)
        report = run_worker(cells, store, lease_seconds=30.0, poll_seconds=0.05)
        assert sorted(report.executed) == sorted(cell.key for cell in cells)
        assert cells[0].key in report.reclaimed
        assert report.pending == [] and not report.timed_out
