"""Tests for the coordinator-free claim protocol: races, leases, markers."""

from __future__ import annotations

import json
import threading

import pytest

from repro.sweep.dist import (
    ClaimLost,
    ClaimRecord,
    ClaimStore,
    LocalBackend,
    local_host,
)
from repro.util.validation import ValidationError

KEY = "c" * 32


@pytest.fixture
def backend(tmp_path):
    return LocalBackend(str(tmp_path))


class TestClaimLifecycle:
    def test_claim_renew_release(self, backend):
        claims = ClaimStore(backend, lease_seconds=60.0)
        record = claims.try_claim(KEY)
        assert record is not None
        assert record.host == local_host()
        assert not claims.expired(record)
        renewed = claims.renew(record)
        assert renewed.renewals == 1
        assert renewed.lease_expiry > record.lease_expiry
        claims.release(renewed)
        assert claims.read(KEY) is None

    def test_live_claim_blocks_others(self, backend):
        first = ClaimStore(backend, lease_seconds=60.0, host="host-a", pid=1)
        second = ClaimStore(backend, lease_seconds=60.0, host="host-b", pid=2)
        assert first.try_claim(KEY) is not None
        assert second.try_claim(KEY) is None

    def test_record_roundtrips_through_json(self):
        record = ClaimRecord(
            key=KEY, host="h", pid=3, started=1.5, lease_expiry=61.5,
            renewals=2, reclaimed=True,
        )
        assert ClaimRecord.from_json(record.to_json()) == record

    def test_release_preserves_a_reclaimed_claim(self, backend):
        """Releasing after losing the lease must not drop the new owner."""
        old = ClaimStore(backend, lease_seconds=1e-9, host="dead-host", pid=1)
        stale = old.try_claim(KEY)
        new = ClaimStore(backend, lease_seconds=60.0, host="live-host", pid=2)
        fresh = new.try_claim(KEY)  # reclaims the expired lease
        assert fresh is not None and fresh.reclaimed
        old.release(stale)  # the dead worker's tardy release
        current = new.read(KEY)
        assert current is not None and current.owner() == "live-host:2"

    def test_renew_after_loss_raises(self, backend):
        old = ClaimStore(backend, lease_seconds=1e-9, host="dead-host", pid=1)
        stale = old.try_claim(KEY)
        new = ClaimStore(backend, lease_seconds=60.0, host="live-host", pid=2)
        assert new.try_claim(KEY) is not None
        with pytest.raises(ClaimLost, match="live-host:2"):
            old.renew(stale)

    def test_invalid_lease_rejected(self, backend):
        with pytest.raises(ValidationError, match="lease_seconds"):
            ClaimStore(backend, lease_seconds=0.0)

    def test_corrupt_claim_is_reclaimable(self, backend):
        backend.create_exclusive(f"claims/{KEY}.claim", "{torn write")
        claims = ClaimStore(backend, lease_seconds=60.0)
        read = claims.read(KEY)
        assert read is not None and claims.expired(read)
        assert claims.try_claim(KEY) is not None


class TestExpiryAndReclaim:
    def test_expired_claim_is_taken_over(self, backend):
        dead = ClaimStore(backend, lease_seconds=1e-9, host="dead-host", pid=1)
        assert dead.try_claim(KEY) is not None
        live = ClaimStore(backend, lease_seconds=60.0, host="live-host", pid=2)
        record = live.try_claim(KEY)
        assert record is not None
        assert record.reclaimed is True
        assert record.owner() == "live-host:2"
        stored = live.read(KEY)
        assert stored.owner() == "live-host:2"
        # No takeover debris left behind.
        assert all(
            not entry.endswith(".takeover") for entry in backend.listdir("claims")
        )

    def test_done_and_failed_markers_roundtrip(self, backend):
        claims = ClaimStore(backend, lease_seconds=60.0)
        claims.mark_done(KEY, started=10.0, finished=12.5, experiment="fig1")
        done = claims.done_record(KEY)
        assert done["elapsed"] == 2.5
        assert done["experiment"] == "fig1"
        claims.mark_failed(KEY, error="ValueError: boom", traceback_text="TB...")
        failed = claims.failed_record(KEY)
        assert failed["error"] == "ValueError: boom"
        assert failed["traceback"] == "TB..."
        assert claims.clear_failed(KEY) is True
        assert claims.failed_record(KEY) is None

    def test_listings_group_by_suffix(self, backend):
        claims = ClaimStore(backend, lease_seconds=60.0)
        claims.try_claim("a" * 32)
        claims.mark_done("b" * 32, started=0.0, finished=1.0)
        claims.mark_failed("d" * 32, error="E", traceback_text="T")
        assert list(claims.claim_records()) == ["a" * 32]
        assert list(claims.done_records()) == ["b" * 32]
        assert list(claims.failed_records()) == ["d" * 32]


class TestConcurrentClaiming:
    def test_racing_threads_yield_exactly_one_winner(self, backend):
        """Satellite: two (here: eight) racers on one cell, one winner."""
        winners = []
        barrier = threading.Barrier(8)

        def racer(pid: int) -> None:
            claims = ClaimStore(backend, lease_seconds=60.0, host="racer", pid=pid)
            barrier.wait()
            record = claims.try_claim(KEY)
            if record is not None:
                winners.append(record)

        threads = [threading.Thread(target=racer, args=(pid,)) for pid in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(winners) == 1
        stored = ClaimStore(backend, lease_seconds=60.0).read(KEY)
        assert stored.pid == winners[0].pid

    def test_racing_reclaimers_yield_exactly_one_winner(self, backend):
        """The rename-based takeover admits a single reclaimer."""
        dead = ClaimStore(backend, lease_seconds=1e-9, host="dead-host", pid=1)
        assert dead.try_claim(KEY) is not None
        winners = []
        barrier = threading.Barrier(8)

        def reclaimer(pid: int) -> None:
            claims = ClaimStore(backend, lease_seconds=60.0, host="reclaimer", pid=pid)
            barrier.wait()
            record = claims.try_claim(KEY)
            if record is not None:
                winners.append(record)

        threads = [threading.Thread(target=reclaimer, args=(pid,)) for pid in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(winners) == 1
        assert winners[0].reclaimed is True
        stored = ClaimStore(backend, lease_seconds=60.0).read(KEY)
        assert stored.pid == winners[0].pid

    def test_racing_claims_across_many_keys_partition_cleanly(self, backend):
        keys = [f"{index:032x}" for index in range(10)]
        owners = {}
        lock = threading.Lock()
        barrier = threading.Barrier(4)

        def worker(pid: int) -> None:
            claims = ClaimStore(backend, lease_seconds=60.0, host="w", pid=pid)
            barrier.wait()
            for key in keys:
                record = claims.try_claim(key)
                if record is not None:
                    with lock:
                        assert key not in owners
                        owners[key] = pid

        threads = [threading.Thread(target=worker, args=(pid,)) for pid in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sorted(owners) == sorted(keys)  # every key claimed exactly once

    def test_claim_file_contents_are_the_documented_schema(self, backend):
        claims = ClaimStore(backend, lease_seconds=60.0, host="h", pid=9)
        claims.try_claim(KEY)
        raw = json.loads(backend.read_text(f"claims/{KEY}.claim"))
        assert set(raw) == {
            "key", "host", "pid", "started", "lease_expiry", "renewals", "reclaimed",
        }
        assert raw["host"] == "h" and raw["pid"] == 9
