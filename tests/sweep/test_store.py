"""Tests for the content-addressed sweep store."""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.sweep import SweepStore
from repro.util.validation import ValidationError

KEY_A = "0" * 32
KEY_B = "1" * 32


class TestSweepStore:
    def test_roundtrip_and_has(self, tmp_path):
        store = SweepStore(str(tmp_path / "store"))
        assert not store.has(KEY_A)
        assert store.get(KEY_A) is None
        store.put(KEY_A, {"experiment": "x"}, {"figure": "f"})
        assert store.has(KEY_A)
        assert store.get(KEY_A) == {
            "key": KEY_A,
            "spec": {"experiment": "x"},
            "result": {"figure": "f"},
        }

    def test_keys_are_sorted_and_ignore_foreign_files(self, tmp_path):
        store = SweepStore(str(tmp_path))
        store.put(KEY_B, {}, {})
        store.put(KEY_A, {}, {})
        (tmp_path / "README.txt").write_text("not a cell")
        (tmp_path / "short.json").write_text("{}")
        assert store.keys() == [KEY_A, KEY_B]
        assert len(store) == 2

    def test_put_is_atomic_no_temp_files_left(self, tmp_path):
        store = SweepStore(str(tmp_path))
        store.put(KEY_A, {}, {"x": 1})
        assert [p for p in os.listdir(tmp_path) if p.endswith(".tmp")] == []

    def test_overwrite_is_idempotent(self, tmp_path):
        store = SweepStore(str(tmp_path))
        store.put(KEY_A, {"s": 1}, {"r": 1})
        first = (tmp_path / f"{KEY_A}.json").read_text()
        store.put(KEY_A, {"s": 1}, {"r": 1})
        assert (tmp_path / f"{KEY_A}.json").read_text() == first

    def test_malformed_key_rejected(self, tmp_path):
        store = SweepStore(str(tmp_path))
        with pytest.raises(ValidationError, match="malformed"):
            store.path_for("../../etc/passwd")
        with pytest.raises(ValidationError, match="malformed"):
            store.has("deadbeef")

    def test_corrupt_cell_is_a_clean_error(self, tmp_path):
        store = SweepStore(str(tmp_path))
        (tmp_path / f"{KEY_A}.json").write_text("{truncated")
        with pytest.raises(ValidationError, match="corrupt") as excinfo:
            store.get(KEY_A)
        # The original decode error is chained, not swallowed.
        assert isinstance(excinfo.value.__cause__, json.JSONDecodeError)

    def test_purge_removes_only_dead_local_writer_tmp_files(self, tmp_path):
        from repro.sweep.dist import local_host

        store = SweepStore(str(tmp_path))
        store.put(KEY_A, {}, {})
        host = local_host()
        # A pid that existed and is guaranteed dead after wait().
        proc = subprocess.Popen([sys.executable, "-c", ""])
        proc.wait()
        dead = tmp_path / f".{KEY_B}.{host}.{proc.pid}.tmp"
        dead.write_text("truncated")
        live = tmp_path / f".{KEY_A}.{host}.{os.getpid()}.tmp"
        live.write_text("mid-write")
        # Same dead pid but recorded on another host: on a shared
        # filesystem that pid may be alive remotely — never purged here.
        remote = tmp_path / f".{KEY_B}.some-other-host.{proc.pid}.tmp"
        remote.write_text("mid-write elsewhere")
        # Legacy pid-only names carry no host: conservatively kept too.
        legacy = tmp_path / f".{KEY_B}.{proc.pid}.tmp"
        legacy.write_text("truncated")
        foreign = tmp_path / "notes.tmp"
        foreign.write_text("not a cell tmp")
        removed = store.purge_stale_tmp()
        assert removed == [dead.name]
        assert not dead.exists()
        assert live.exists()  # a live writer keeps its temp file
        assert remote.exists()  # a foreign host's pid is unknowable locally
        assert legacy.exists()  # host-less names are never liveness-checked
        assert foreign.exists()  # non-matching names are never touched
        assert store.get(KEY_A) is not None

    def test_purge_tolerates_missing_root(self, tmp_path):
        store = SweepStore(str(tmp_path / "never-created"))
        assert store.purge_stale_tmp() == []
        assert not (tmp_path / "never-created").exists()

    def test_store_creates_nested_root(self, tmp_path):
        root = tmp_path / "a" / "b" / "c"
        SweepStore(str(root)).put(KEY_A, {}, {})
        assert json.loads((root / f"{KEY_A}.json").read_text())["key"] == KEY_A

    def test_read_only_use_leaves_no_directory(self, tmp_path):
        root = tmp_path / "never-created"
        store = SweepStore(str(root))
        assert not store.has(KEY_A)
        assert store.get(KEY_A) is None
        assert store.keys() == []
        assert not root.exists()  # --dry-run must not touch the disk
