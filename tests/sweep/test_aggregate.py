"""Tests for joining sweep cells back into experiment-result tables."""

from __future__ import annotations

import pytest

from repro.sweep import SweepStore, SweepTemplate, aggregate_cells, run_sweep
from repro.util.validation import ValidationError


def _expand(axes, base_extra=None):
    base = {
        "experiment": "fig1-delay-ping",
        "n": 10,
        "k_grid": [2],
        "br_rounds": 1,
        "seed": 3,
    }
    base.update(base_extra or {})
    return SweepTemplate.from_dict(
        {"name": "agg-test", "base": base, "axes": axes}
    ).expand()


class TestAggregation:
    def test_missing_cells_are_a_clean_error(self, tmp_path):
        cells = _expand({"n": [10, 12]})
        store = SweepStore(str(tmp_path))
        run_sweep(cells[:1], store, workers=1)
        with pytest.raises(ValidationError, match="missing 1 of 2"):
            aggregate_cells(cells, store)

    def test_k_grid_axis_joins_into_one_series(self, tmp_path):
        """Per-k shards reassemble the classic k-sweep table."""
        cells = _expand({"k_grid": [[2], [3], [4]]})
        store = SweepStore(str(tmp_path))
        run_sweep(cells, store, workers=1)
        merged = aggregate_cells(cells, store)
        assert list(merged) == ["fig1-delay-ping"]
        result = merged["fig1-delay-ping"]
        assert "best-response" in result.series  # no suffix
        assert result.series["best-response"].x == [2.0, 3.0, 4.0]

    def test_varying_axis_suffixes_series_labels(self, tmp_path):
        cells = _expand({"n": [10, 12]})
        store = SweepStore(str(tmp_path))
        run_sweep(cells, store, workers=1)
        result = aggregate_cells(cells, store)["fig1-delay-ping"]
        assert "best-response [n=10]" in result.series
        assert "best-response [n=12]" in result.series

    def test_constant_axis_adds_no_suffix_and_groups_split_by_experiment(
        self, tmp_path
    ):
        cells = _expand(
            {
                "panel": [
                    {"label": "ping", "experiment": "fig1-delay-ping", "metric": "delay-ping"},
                    {"label": "load", "experiment": "fig1-node-load", "metric": "load"},
                ]
            }
        )
        store = SweepStore(str(tmp_path))
        run_sweep(cells, store, workers=1)
        merged = aggregate_cells(cells, store)
        assert sorted(merged) == ["fig1-delay-ping", "fig1-node-load"]
        # The panel axis varies only *across* groups: no suffix within one.
        assert "best-response" in merged["fig1-delay-ping"].series

    def test_metadata_traces_cells_back_to_the_store(self, tmp_path):
        cells = _expand({"n": [10, 12]})
        store = SweepStore(str(tmp_path))
        run_sweep(cells, store, workers=1)
        sweep_meta = aggregate_cells(cells, store)["fig1-delay-ping"].metadata["sweep"]
        assert sweep_meta["templates"] == ["agg-test"]
        assert [entry["key"] for entry in sweep_meta["cells"]] == [
            cell.key for cell in cells
        ]
        assert sweep_meta["cells"][0]["assignment"] == {"n": "10"}

    def test_aggregate_is_deterministic_across_store_layout(self, tmp_path):
        """Completion order must not matter: aggregation reads plan order."""
        cells = _expand({"n": [10, 12]})
        forward = SweepStore(str(tmp_path / "f"))
        backward = SweepStore(str(tmp_path / "b"))
        run_sweep(cells, forward, workers=1)
        run_sweep(list(reversed(cells)), backward, workers=1)
        assert (
            aggregate_cells(cells, forward)["fig1-delay-ping"].as_dict()
            == aggregate_cells(cells, backward)["fig1-delay-ping"].as_dict()
        )

    def test_explicit_seed_axis_is_a_replicate_dimension(self, tmp_path):
        """Seed replicates must stay distinguishable, not last-write-wins."""
        cells = _expand({"seed": [1, 2, 3]})
        store = SweepStore(str(tmp_path))
        run_sweep(cells, store, workers=1)
        result = aggregate_cells(cells, store)["fig1-delay-ping"]
        for seed in (1, 2, 3):
            assert f"best-response [seed={seed}]" in result.series

    def test_templates_reaching_one_experiment_never_merge_silently(self, tmp_path):
        """Cells from different templates differing only in base fields
        keep the template name as a coordinate."""
        from repro.sweep import SweepTemplate

        def template(name, br_rounds):
            return SweepTemplate.from_dict(
                {
                    "name": name,
                    "base": {
                        "experiment": "fig1-delay-ping",
                        "n": 10,
                        "k_grid": [2],
                        "br_rounds": br_rounds,
                        "seed": 3,
                    },
                }
            )

        cells = [
            *template("quick", 1).expand(),
            *template("thorough", 2).expand(),
        ]
        store = SweepStore(str(tmp_path))
        run_sweep(cells, store, workers=1)
        result = aggregate_cells(cells, store)["fig1-delay-ping"]
        assert "best-response [template=quick]" in result.series
        assert "best-response [template=thorough]" in result.series
