"""Tests for the donated-cycle connectivity backbone."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.backbone import (
    backbone_links,
    backbone_offsets,
    heal_departure,
    is_backbone_connected,
    splice_newcomer,
)
from repro.util.validation import ValidationError


class TestOffsets:
    def test_k2_two_single_cycle(self):
        assert backbone_offsets(10, 2) == [1]

    def test_k2_four_two_cycles(self):
        offsets = backbone_offsets(20, 4)
        assert len(offsets) == 2
        assert offsets[0] == 1
        assert all(1 <= o < 20 for o in offsets)

    def test_odd_k2_rejected(self):
        with pytest.raises(ValidationError):
            backbone_offsets(10, 3)

    def test_zero_k2(self):
        assert backbone_offsets(10, 0) == []

    def test_tiny_membership(self):
        assert backbone_offsets(1, 2) == []


class TestBackboneLinks:
    def test_k2_two_forms_bidirectional_ring(self):
        links = backbone_links(range(6), 2)
        for node in range(6):
            assert links[node] == {(node + 1) % 6, (node - 1) % 6}

    def test_budget_respected(self):
        for k2 in (2, 4, 6):
            links = backbone_links(range(30), k2)
            assert all(len(v) <= k2 for v in links.values())

    def test_connectivity(self):
        for k2 in (2, 4):
            links = backbone_links(range(25), k2)
            assert is_backbone_connected(links)

    def test_non_contiguous_ids(self):
        members = [3, 7, 12, 20, 41]
        links = backbone_links(members, 2)
        assert set(links) == set(members)
        assert is_backbone_connected(links)

    def test_two_members(self):
        links = backbone_links([0, 1], 2)
        assert links[0] == {1}
        assert links[1] == {0}

    def test_empty_when_k2_zero(self):
        links = backbone_links(range(5), 0)
        assert all(len(v) == 0 for v in links.values())

    @settings(max_examples=25, deadline=None)
    @given(st.integers(2, 40), st.sampled_from([2, 4, 6]))
    def test_backbone_always_connected(self, n, k2):
        links = backbone_links(range(n), k2)
        assert is_backbone_connected(links)


class TestMembershipChanges:
    def test_splice_newcomer_included(self):
        links = backbone_links(range(5), 2)
        updated = splice_newcomer(links, 5, 2)
        assert 5 in updated
        assert is_backbone_connected(updated)

    def test_heal_departure_removes_node(self):
        links = backbone_links(range(6), 2)
        updated = heal_departure(links, 3, 2)
        assert 3 not in updated
        assert is_backbone_connected(updated)
        assert all(3 not in targets for targets in updated.values())

    def test_is_backbone_connected_detects_partition(self):
        links = {0: {1}, 1: {0}, 2: {3}, 3: {2}}
        assert not is_backbone_connected(links)
