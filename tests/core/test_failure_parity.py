"""Property test: fused epochs under injected failures == sequential.

Randomised failure schedules — link cuts and restores, node outages,
partitions, heals, delayed re-announce, announcement loss — must leave
the lockstep :class:`~repro.core.engine_batch.EngineBatch` byte-identical
to the sequential :class:`~repro.core.engine.EgoistEngine` across all
metric families.  Failures are applied inside ``begin_epoch`` (shared by
both paths), so parity holds by construction; this test is the
adversarial check that the masked link removals, the changelog-driven
cache repairs, and the new ``routes_stuck`` scoring really do keep every
:class:`~repro.core.engine.EpochRecord` field identical.
"""

from __future__ import annotations

import dataclasses

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.engine import EpochRecord
from repro.core.engine_batch import EngineBatch, EngineSpec
from repro.core.failures import FailureEvent, FailureSpec
from repro.core.policies import BestResponsePolicy
from repro.core.providers import (
    BandwidthMetricProvider,
    DelayMetricProvider,
    LoadMetricProvider,
)
from repro.netsim.bandwidth import BandwidthModel
from repro.netsim.delayspace import DelaySpace
from repro.netsim.load import NodeLoadModel
from repro.util.rng import spawn_generators

SETTINGS = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

EPOCHS = 4

N_MIN, N_MAX = 6, 10


@st.composite
def failure_specs(draw):
    """A random schedule of 1-4 events over a fixed node range.

    Node sets are capped below n/2 so node-down events never empty the
    active set; partition sides are proper subsets for the same reason.
    """
    n = N_MIN  # events must be valid at the smallest drawn overlay
    events = []
    for _ in range(draw(st.integers(1, 4))):
        epoch = draw(st.integers(0, EPOCHS - 1))
        action = draw(st.sampled_from(
            ["link-down", "link-up", "node-down", "node-up", "partition", "heal"]
        ))
        nodes = ()
        links = ()
        if action in ("link-down", "link-up"):
            u = draw(st.integers(0, n - 2))
            v = draw(st.integers(u + 1, n - 1))
            links = ((u, v),)
        elif action in ("node-down", "node-up", "partition"):
            size = draw(st.integers(1, max(1, n // 2 - 1)))
            nodes = tuple(
                sorted(draw(st.sets(st.integers(0, n - 1), min_size=size, max_size=size)))
            )
        events.append(FailureEvent(epoch=epoch, action=action, nodes=nodes, links=links))
    return FailureSpec(
        events=tuple(events),
        reannounce_delay=draw(st.integers(0, 2)),
        message_loss=draw(st.sampled_from([0.0, 0.3])),
    )


def _assert_identical(histories_a, histories_b):
    assert len(histories_a) == len(histories_b)
    for ha, hb in zip(histories_a, histories_b):
        assert len(ha.records) == len(hb.records)
        for ra, rb in zip(ha.records, hb.records):
            for field in dataclasses.fields(EpochRecord):
                va = getattr(ra, field.name)
                vb = getattr(rb, field.name)
                if isinstance(va, float) and np.isnan(va):
                    assert np.isnan(vb), field.name
                else:
                    assert va == vb, field.name


def _specs(n, seed, k, epsilon, failures):
    """Three failing deployments, one per metric family, shared schedule.

    ``exact_threshold=2`` keeps best responses on the local-search branch
    even for small candidate pools, so the fused broadcasts (not the
    per-engine fallback) are what actually runs at these sizes.
    """
    base = np.random.default_rng(seed)
    delays = base.uniform(5.0, 120.0, size=(n, n))
    np.fill_diagonal(delays, 0.0)
    space = DelaySpace(delays, jitter_std=1.0)
    load_model = NodeLoadModel(n, seed=seed)
    bw_model = BandwidthModel(n, seed=seed)
    streams = spawn_generators(np.random.default_rng(seed + 1), 3)
    policy = lambda: BestResponsePolicy(epsilon=epsilon, exact_threshold=2)  # noqa: E731
    providers = [
        DelayMetricProvider(space, estimator="true", seed=streams[0]),
        LoadMetricProvider(load_model),
        BandwidthMetricProvider(bw_model, seed=streams[2]),
    ]
    return [
        EngineSpec(
            label=f"family-{i}",
            provider=provider,
            policy=policy(),
            k=k,
            failures=failures,
            epsilon=epsilon,
            compute_efficiency=True,
            seed=stream,
        )
        for i, (provider, stream) in enumerate(zip(providers, streams))
    ]


class TestRandomizedFailureParity:
    @SETTINGS
    @given(
        st.integers(N_MIN, N_MAX),
        st.integers(0, 10_000),
        st.integers(1, 3),
        st.sampled_from([0.0, 0.1]),
        failure_specs(),
    )
    def test_fused_batch_matches_sequential_under_failures(
        self, n, seed, k, epsilon, failures
    ):
        batched = EngineBatch(
            _specs(n, seed, k, epsilon, failures), batched=True
        ).run(EPOCHS)
        sequential = EngineBatch(
            _specs(n, seed, k, epsilon, failures), batched=False
        ).run(EPOCHS)
        _assert_identical(batched, sequential)
