"""Property test: fused (masked) churn epochs == sequential engines.

Randomised join/leave/re-wire sequences — a hypothesis-drawn trace churn
schedule drives membership up and down while best-response dynamics
re-wire on every opportunity — must leave the lockstep
:class:`~repro.core.engine_batch.EngineBatch` byte-identical to the
sequential :class:`~repro.core.engine.EgoistEngine` across all metric
families.  This is the adversarial companion of the example-based parity
tests in ``test_engine_batch.py``: it exercises the masked fused
broadcasts (padded hop/destination axes at partial membership), the
between-epoch mask re-derivation, and the incremental route-cache
repairs, none of which may change a single decision.
"""

from __future__ import annotations

import dataclasses

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.churn.models import trace_driven_churn
from repro.core.engine import EpochRecord
from repro.core.engine_batch import EngineBatch, EngineSpec
from repro.core.policies import BestResponsePolicy
from repro.core.providers import (
    BandwidthMetricProvider,
    DelayMetricProvider,
    LoadMetricProvider,
)
from repro.netsim.bandwidth import BandwidthModel
from repro.netsim.delayspace import DelaySpace
from repro.netsim.load import NodeLoadModel
from repro.util.rng import spawn_generators

SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

EPOCHS = 3


def _assert_identical(histories_a, histories_b):
    assert len(histories_a) == len(histories_b)
    for ha, hb in zip(histories_a, histories_b):
        assert len(ha.records) == len(hb.records)
        for ra, rb in zip(ha.records, hb.records):
            for field in dataclasses.fields(EpochRecord):
                va = getattr(ra, field.name)
                vb = getattr(rb, field.name)
                if isinstance(va, float) and np.isnan(va):
                    assert np.isnan(vb), field.name
                else:
                    assert va == vb, field.name


def _specs(n, seed, mean_on, mean_off, k, epsilon):
    """Three churned deployments, one per metric family, shared schedule.

    ``exact_threshold=2`` keeps best responses on the local-search
    branch even for small candidate pools, so the fused broadcasts (not
    the per-engine fallback) are what actually runs at these sizes.
    """
    base = np.random.default_rng(seed)
    delays = base.uniform(5.0, 120.0, size=(n, n))
    np.fill_diagonal(delays, 0.0)
    space = DelaySpace(delays, jitter_std=1.0)
    churn = trace_driven_churn(
        n, EPOCHS * 60.0, mean_on=mean_on, mean_off=mean_off, seed=base
    )
    load_model = NodeLoadModel(n, seed=seed)
    bw_model = BandwidthModel(n, seed=seed)
    streams = spawn_generators(np.random.default_rng(seed + 1), 3)
    policy = lambda: BestResponsePolicy(epsilon=epsilon, exact_threshold=2)  # noqa: E731
    providers = [
        DelayMetricProvider(space, estimator="true", seed=streams[0]),
        LoadMetricProvider(load_model),
        BandwidthMetricProvider(bw_model, seed=streams[2]),
    ]
    return [
        EngineSpec(
            label=f"family-{i}",
            provider=provider,
            policy=policy(),
            k=k,
            churn=churn,
            epsilon=epsilon,
            compute_efficiency=True,
            seed=stream,
        )
        for i, (provider, stream) in enumerate(zip(providers, streams))
    ]


class TestRandomizedChurnParity:
    @SETTINGS
    @given(
        st.integers(6, 12),
        st.integers(0, 10_000),
        st.sampled_from([60.0, 200.0, 900.0]),
        st.sampled_from([30.0, 90.0]),
        st.integers(1, 3),
        st.sampled_from([0.0, 0.1]),
    )
    def test_fused_masked_batch_matches_sequential(
        self, n, seed, mean_on, mean_off, k, epsilon
    ):
        batched = EngineBatch(
            _specs(n, seed, mean_on, mean_off, k, epsilon), batched=True
        ).run(EPOCHS)
        sequential = EngineBatch(
            _specs(n, seed, mean_on, mean_off, k, epsilon), batched=False
        ).run(EPOCHS)
        _assert_identical(batched, sequential)
