"""Tests for random and topology-biased sampling."""

import numpy as np
import pytest

from repro.core.cost import DelayMetric
from repro.core.policies import BestResponsePolicy, build_overlay
from repro.core.sampling import (
    bias_rank,
    neighborhood,
    random_sample,
    sampled_best_response,
    sampling_message_cost,
    topology_biased_sample,
)
from repro.routing.graph import OverlayGraph
from repro.util.validation import ValidationError


@pytest.fixture
def base_overlay(planetlab20_metric):
    """A BR overlay over the first 19 nodes; node 19 is the newcomer."""
    metric = planetlab20_metric
    existing = list(range(19))
    wiring = build_overlay(
        BestResponsePolicy(), metric, 3, nodes=existing, rng=0, br_rounds=2
    )
    return metric, wiring.to_graph(active=existing), existing


class TestRandomSample:
    def test_size_and_distinct(self):
        sample = random_sample(list(range(50)), 10, rng=0)
        assert len(sample) == 10
        assert len(set(sample)) == 10

    def test_capped_at_pool_size(self):
        assert len(random_sample([1, 2, 3], 10, rng=0)) == 3

    def test_empty_for_nonpositive_m(self):
        assert random_sample([1, 2, 3], 0, rng=0) == []


class TestNeighborhood:
    def test_radius_one_is_successors(self):
        graph = OverlayGraph(5)
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(0, 2, 1.0)
        graph.add_edge(1, 3, 1.0)
        assert neighborhood(graph, 0, 1) == {1, 2}

    def test_radius_two_extends(self):
        graph = OverlayGraph(5)
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(1, 2, 1.0)
        graph.add_edge(2, 3, 1.0)
        assert neighborhood(graph, 0, 2) == {1, 2}
        assert neighborhood(graph, 0, 3) == {1, 2, 3}

    def test_radius_zero_empty(self):
        graph = OverlayGraph(3)
        graph.add_edge(0, 1, 1.0)
        assert neighborhood(graph, 0, 0) == set()

    def test_negative_radius_rejected(self):
        with pytest.raises(ValidationError):
            neighborhood(OverlayGraph(3), 0, -1)


class TestBiasRank:
    def test_prefers_large_close_neighborhoods(self, base_overlay):
        metric, graph, existing = base_overlay
        newcomer = 19
        ranks = {c: bias_rank(newcomer, c, metric, graph, 2) for c in existing}
        best = max(ranks, key=ranks.get)
        worst = min(ranks, key=ranks.get)
        best_f = neighborhood(graph, best, 2)
        worst_f = neighborhood(graph, worst, 2)
        # The top-ranked candidate has no smaller a neighbourhood-per-distance
        # score; sanity-check that the ordering is meaningful.
        assert ranks[best] >= ranks[worst]
        assert len(best_f) >= 1

    def test_empty_neighborhood_ranks_zero(self, planetlab20_metric):
        graph = OverlayGraph(20)
        assert bias_rank(0, 5, planetlab20_metric, graph, 2) == 0.0


class TestTopologyBiasedSample:
    def test_size(self, base_overlay):
        metric, graph, existing = base_overlay
        sample = topology_biased_sample(
            19, metric, graph, 8, candidates=existing, rng=0
        )
        assert len(sample) == 8
        assert len(set(sample)) == 8

    def test_biased_sample_ranks_higher_on_average(self, base_overlay):
        metric, graph, existing = base_overlay
        rng = np.random.default_rng(0)
        biased = topology_biased_sample(
            19, metric, graph, 6, candidates=existing, rng=rng, oversample=3
        )
        uniform = random_sample(existing, 6, rng=rng)
        rank = lambda nodes: np.mean(
            [bias_rank(19, c, metric, graph, 2) for c in nodes]
        )
        assert rank(biased) >= rank(uniform) * 0.9


class TestSampledBestResponse:
    def test_neighbors_within_sample(self, base_overlay):
        metric, graph, existing = base_overlay
        sample = random_sample(existing, 8, rng=1)
        result = sampled_best_response(19, metric, graph, 3, sample, rng=0)
        assert result.neighbors <= set(sample)
        assert len(result.neighbors) == 3

    def test_empty_sample_rejected(self, base_overlay):
        metric, graph, _existing = base_overlay
        with pytest.raises(ValidationError):
            sampled_best_response(19, metric, graph, 3, [], rng=0)

    def test_full_sample_matches_unsampled_br(self, base_overlay):
        metric, graph, existing = base_overlay
        from repro.core.best_response import WiringEvaluator, best_response

        full = sampled_best_response(19, metric, graph, 3, existing, rng=0)
        evaluator = WiringEvaluator(
            19, metric, graph, candidates=existing, destinations=existing
        )
        direct = best_response(evaluator, 3, rng=0)
        assert evaluator.evaluate(full.neighbors) == pytest.approx(
            direct.cost, rel=0.05
        )


class TestMessageCost:
    def test_formula(self):
        assert sampling_message_cost(10, 1000, 4) == pytest.approx(
            10 * np.log(1000) / np.log(4)
        )

    def test_invalid_arguments(self):
        with pytest.raises(ValidationError):
            sampling_message_cost(5, 1, 4)
        with pytest.raises(ValidationError):
            sampling_message_cost(5, 100, 1)
