"""Tests for the epoch-driven overlay engine."""

import numpy as np
import pytest

from repro.churn.models import trace_driven_churn
from repro.core.cheating import CheatingModel
from repro.core.cost import DelayMetric
from repro.core.engine import EgoistEngine
from repro.core.hybrid import HybridBRPolicy
from repro.core.policies import BestResponsePolicy, KClosestPolicy, KRandomPolicy
from repro.core.providers import DelayMetricProvider
from repro.netsim.planetlab import synthetic_planetlab


@pytest.fixture
def provider12():
    space, _nodes = synthetic_planetlab(12, seed=5)
    return DelayMetricProvider(space, estimator="true", seed=5)


class TestEngineBasics:
    def test_run_produces_records(self, provider12):
        engine = EgoistEngine(provider12, BestResponsePolicy(), 3, seed=0)
        history = engine.run(3)
        assert len(history.records) == 3
        assert all(r.active_nodes == 12 for r in history.records)

    def test_first_epoch_wires_everyone(self, provider12):
        engine = EgoistEngine(provider12, BestResponsePolicy(), 3, seed=0)
        record = engine.run_epoch()
        assert record.rewirings == 12
        graph = engine.current_graph()
        assert all(graph.out_degree(i) == 3 for i in range(12))

    def test_stable_substrate_reaches_quiescence(self, provider12):
        engine = EgoistEngine(provider12, BestResponsePolicy(), 3, seed=0)
        history = engine.run(4)
        # With a noiseless, static substrate the dynamics settle quickly.
        assert history.rewirings_per_epoch()[-1] <= 2

    def test_mean_cost_finite_and_positive(self, provider12):
        engine = EgoistEngine(provider12, BestResponsePolicy(), 3, seed=0)
        history = engine.run(3)
        assert all(np.isfinite(r.mean_cost) and r.mean_cost > 0 for r in history.records)

    def test_br_cost_below_random(self, provider12):
        space, _nodes = synthetic_planetlab(12, seed=5)
        br = EgoistEngine(
            DelayMetricProvider(space, estimator="true"), BestResponsePolicy(), 3, seed=1
        ).run(3)
        rnd = EgoistEngine(
            DelayMetricProvider(space, estimator="true"), KRandomPolicy(), 3, seed=1
        ).run(3)
        assert br.steady_state_mean_cost() < rnd.steady_state_mean_cost()

    def test_linkstate_bits_accounted(self, provider12):
        engine = EgoistEngine(provider12, KClosestPolicy(), 3, seed=0)
        record = engine.run_epoch()
        # 12 nodes each announcing 3 links: 12 * (192 + 96) bits.
        assert record.linkstate_bits == 12 * (192 + 32 * 3)

    def test_node_costs_accessor(self, provider12):
        engine = EgoistEngine(provider12, BestResponsePolicy(), 3, seed=0)
        engine.run(2)
        costs = engine.node_costs()
        assert set(costs) == set(range(12))
        assert all(v > 0 for v in costs.values())


class TestEngineChurn:
    def test_active_set_follows_schedule(self):
        space, _nodes = synthetic_planetlab(10, seed=2)
        churn = trace_driven_churn(
            10, 10 * 60.0, mean_on=300.0, mean_off=300.0, seed=3,
            initial_on_probability=0.5,
        )
        engine = EgoistEngine(
            DelayMetricProvider(space, estimator="true"),
            BestResponsePolicy(),
            3,
            churn=churn,
            compute_efficiency=True,
            seed=0,
        )
        history = engine.run(5)
        for record in history.records:
            expected = len(churn.active_at(record.time))
            assert record.active_nodes == expected

    def test_offline_nodes_hold_no_links(self):
        space, _nodes = synthetic_planetlab(10, seed=2)
        churn = trace_driven_churn(
            10, 10 * 60.0, mean_on=200.0, mean_off=400.0, seed=1,
            initial_on_probability=0.5,
        )
        engine = EgoistEngine(
            DelayMetricProvider(space, estimator="true"),
            BestResponsePolicy(),
            3,
            churn=churn,
            seed=0,
        )
        engine.run(4)
        active = churn.active_at(engine.clock.now - engine.clock.epoch_length)
        graph = engine.wiring.to_graph()
        for u, v, _w in graph.edges():
            assert engine.nodes[u].wiring is not None

    def test_efficiency_computed_under_churn(self):
        space, _nodes = synthetic_planetlab(10, seed=2)
        churn = trace_driven_churn(10, 600.0, seed=5)
        engine = EgoistEngine(
            DelayMetricProvider(space, estimator="true"),
            HybridBRPolicy(k2=2),
            4,
            churn=churn,
            compute_efficiency=True,
            seed=0,
        )
        history = engine.run(3)
        assert all(0 <= r.mean_efficiency <= 1 or np.isnan(r.mean_efficiency) for r in history.records)

    def test_churn_size_mismatch_rejected(self, provider12):
        churn = trace_driven_churn(5, 600.0, seed=0)
        with pytest.raises(Exception):
            EgoistEngine(provider12, BestResponsePolicy(), 3, churn=churn)


class TestEngineCheating:
    def test_free_rider_distorts_announcements_not_truth(self):
        space, _nodes = synthetic_planetlab(10, seed=4)
        provider = DelayMetricProvider(space, estimator="true")
        cheating = CheatingModel(
            DelayMetric(space.matrix), free_riders=[0], inflation_factor=2.0
        )
        engine = EgoistEngine(
            provider, BestResponsePolicy(), 3, cheating=cheating, seed=0
        )
        history = engine.run(2)
        # Costs are evaluated on the true metric, so they stay finite and sane.
        assert all(np.isfinite(r.mean_cost) for r in history.records)

    def test_history_helpers(self, provider12):
        engine = EgoistEngine(provider12, BestResponsePolicy(), 3, seed=0)
        history = engine.run(4)
        assert history.total_rewirings() >= 12
        assert len(history.mean_costs()) == 4
        assert np.isfinite(history.steady_state_mean_cost())


class TestStepSpan:
    """``step_span`` is the shardable epoch entry point: cutting an epoch
    into spans must not change a single decision vs ``run_epoch``."""

    def _engine(self):
        space, _nodes = synthetic_planetlab(12, seed=5)
        provider = DelayMetricProvider(
            space, estimator="ping", drift_relative_std=0.02, seed=5
        )
        return EgoistEngine(
            provider, BestResponsePolicy(), 3, compute_efficiency=True, seed=11
        )

    def test_sharded_epochs_byte_identical_to_run_epoch(self):
        whole = self._engine()
        sharded = self._engine()
        for _ in range(3):
            expected = whole.run_epoch()
            plan = sharded.begin_epoch()
            while not plan.done:
                sharded.step_span(plan, 5)  # uneven spans across 12 nodes
            record = sharded.finish_epoch(plan)
            assert record == expected

    def test_step_span_returns_span_rewirings(self):
        engine = self._engine()
        plan = engine.begin_epoch()
        first = engine.step_span(plan, 4)
        rest = engine.step_span(plan)
        assert plan.done
        # Epoch 0 wires every node exactly once.
        assert first == 4 and rest == 8
        assert plan.rewirings == 12

    def test_step_span_overrun_and_zero_are_safe(self):
        engine = self._engine()
        plan = engine.begin_epoch()
        assert engine.step_span(plan, 0) == 0
        assert engine.step_span(plan, 10_000) == 12  # clamped at epoch end
        assert plan.done

    def test_negative_span_rejected(self):
        from repro.util.validation import ValidationError

        engine = self._engine()
        plan = engine.begin_epoch()
        with pytest.raises(ValidationError):
            engine.step_span(plan, -1)
