"""Tests for Wiring and GlobalWiring."""

import pytest

from repro.core.wiring import GlobalWiring, Wiring
from repro.util.validation import ValidationError


class TestWiring:
    def test_of_constructor(self):
        wiring = Wiring.of(0, [1, 2, 3])
        assert wiring.degree == 3
        assert wiring.neighbors == frozenset({1, 2, 3})

    def test_self_link_rejected(self):
        with pytest.raises(ValidationError):
            Wiring.of(0, [0, 1])

    def test_donated_must_be_subset(self):
        with pytest.raises(ValidationError):
            Wiring.of(0, [1, 2], donated=[3])

    def test_selfish_links(self):
        wiring = Wiring.of(0, [1, 2, 3], donated=[3])
        assert wiring.selfish == frozenset({1, 2})

    def test_replace(self):
        wiring = Wiring.of(0, [1, 2], donated=[2])
        replaced = wiring.replace(2, 3)
        assert replaced.neighbors == frozenset({1, 3})
        assert replaced.donated == frozenset({3})

    def test_replace_missing_raises(self):
        with pytest.raises(ValidationError):
            Wiring.of(0, [1]).replace(2, 3)

    def test_iteration_sorted(self):
        assert list(Wiring.of(0, [3, 1, 2])) == [1, 2, 3]

    def test_hashable(self):
        assert hash(Wiring.of(0, [1])) == hash(Wiring.of(0, [1]))


class TestGlobalWiring:
    def make(self):
        gw = GlobalWiring(4)
        gw.set_wiring(Wiring.of(0, [1, 2]), {1: 5.0, 2: 6.0})
        gw.set_wiring(Wiring.of(1, [2]), {2: 3.0})
        return gw

    def test_set_and_query(self):
        gw = self.make()
        assert gw.degree_of(0) == 2
        assert gw.weights_of(0) == {1: 5.0, 2: 6.0}
        assert gw.wired_nodes() == {0, 1}
        assert gw.total_links() == 3

    def test_missing_weight_rejected(self):
        gw = GlobalWiring(3)
        with pytest.raises(ValidationError):
            gw.set_wiring(Wiring.of(0, [1, 2]), {1: 5.0})

    def test_out_of_range_neighbor_rejected(self):
        gw = GlobalWiring(3)
        with pytest.raises(ValidationError):
            gw.set_wiring(Wiring.of(0, [5]), {5: 1.0})

    def test_to_graph(self):
        graph = self.make().to_graph()
        assert graph.weight(0, 1) == 5.0
        assert graph.weight(1, 2) == 3.0
        assert not graph.has_edge(2, 0)

    def test_to_graph_active_restriction(self):
        graph = self.make().to_graph(active=[0, 1])
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(0, 2)

    def test_residual_excludes_node(self):
        residual = self.make().residual(0)
        assert residual.wiring_of(0) is None
        assert residual.wiring_of(1) is not None

    def test_remove_wiring(self):
        gw = self.make()
        gw.remove_wiring(0)
        assert gw.degree_of(0) == 0
        assert gw.wiring_of(0) is None

    def test_copy_independent(self):
        gw = self.make()
        clone = gw.copy()
        clone.remove_wiring(0)
        assert gw.wiring_of(0) is not None

    def test_announcements(self):
        ann = self.make().announcements()
        assert ann[0] == {1: 5.0, 2: 6.0}
        assert ann[1] == {2: 3.0}

    def test_replacing_wiring_updates_weights(self):
        gw = self.make()
        gw.set_wiring(Wiring.of(0, [3]), {3: 9.0})
        assert gw.weights_of(0) == {3: 9.0}
        assert gw.degree_of(0) == 1


class TestChangelog:
    """The version changelog feeding incremental route-cache repairs."""

    def test_changed_since_tracks_rewires(self):
        wiring = GlobalWiring(4)
        v0 = wiring.version
        wiring.set_wiring(Wiring.of(0, [1]), {1: 1.0})
        wiring.set_wiring(Wiring.of(2, [3]), {3: 2.0})
        assert wiring.changed_since(v0) == {0, 2}
        assert wiring.changed_since(wiring.version) == set()

    def test_unchanged_reinstall_logs_nothing(self):
        wiring = GlobalWiring(3)
        wiring.set_wiring(Wiring.of(0, [1]), {1: 1.0})
        version = wiring.version
        wiring.set_wiring(Wiring.of(0, [1]), {1: 1.0})  # identical: no bump
        assert wiring.version == version
        assert wiring.changed_since(version) == set()

    def test_remove_wiring_is_a_logged_change(self):
        wiring = GlobalWiring(3)
        wiring.set_wiring(Wiring.of(1, [2]), {2: 1.0})
        version = wiring.version
        wiring.remove_wiring(1)
        assert wiring.changed_since(version) == {1}
        # Removing an unwired node is a no-op (no bump, no log entry).
        version = wiring.version
        wiring.remove_wiring(0)
        assert wiring.version == version
        assert wiring.changed_since(version) == set()

    def test_future_and_out_of_window_versions_return_none(self):
        wiring = GlobalWiring(2)
        assert wiring.changed_since(wiring.version + 1) is None
        # Age the log far past its bound: the oldest deltas are gone, so
        # a query from before the window must refuse rather than return
        # a partial set.
        for i in range(3 * wiring._changelog_limit):
            wiring.set_wiring(Wiring.of(0, [1]), {1: float(i + 1)})
        assert wiring.changed_since(0) is None
        recent = wiring.version - 2
        assert wiring.changed_since(recent) == {0}

    def test_dense_residual_matches_residual_graph(self):
        import numpy as np

        wiring = GlobalWiring(5)
        wiring.set_wiring(Wiring.of(0, [1, 2]), {1: 1.0, 2: 2.0})
        wiring.set_wiring(Wiring.of(1, [3]), {3: 0.5})
        wiring.set_wiring(Wiring.of(3, [0]), {0: 4.0})
        active = [0, 1, 3]  # 2 is off: links to it disappear
        dense = wiring.dense_residual(1, active)
        graph = wiring.residual_graph(1, active=active)
        expect = np.full((5, 5), np.nan)
        for u, v, w in graph.edges():
            expect[u, v] = w
        assert np.array_equal(np.isnan(dense), np.isnan(expect))
        mask = ~np.isnan(expect)
        assert np.array_equal(dense[mask], expect[mask])
