"""Tests for metric providers."""

import numpy as np
import pytest

from repro.core.providers import (
    BandwidthMetricProvider,
    DelayMetricProvider,
    LoadMetricProvider,
)
from repro.netsim.bandwidth import BandwidthModel
from repro.netsim.delayspace import DelaySpace
from repro.netsim.load import NodeLoadModel
from repro.util.validation import ValidationError


class TestDelayProvider:
    def test_true_estimator_is_oracle(self, small_delay_space):
        provider = DelayMetricProvider(small_delay_space, estimator="true")
        assert np.allclose(
            provider.announced_metric().link_weight_matrix(),
            provider.true_metric().link_weight_matrix(),
        )

    def test_ping_estimator_close_to_truth(self, small_delay_matrix):
        space = DelaySpace(small_delay_matrix, jitter_std=0.5)
        provider = DelayMetricProvider(space, estimator="ping", ping_samples=10, seed=0)
        announced = provider.announced_metric().link_weight_matrix()
        truth = provider.true_metric().link_weight_matrix()
        off = ~np.eye(5, dtype=bool)
        # Ping estimates RTT/2 so directional asymmetry is averaged away,
        # but estimates stay within a few ms of the truth.
        assert np.max(np.abs(announced[off] - (truth[off] + truth.T[off]) / 2)) < 3.0

    def test_pyxida_estimator_correlates_with_truth(self, planetlab20):
        space, _nodes = planetlab20
        provider = DelayMetricProvider(
            space, estimator="pyxida", coordinate_rounds=30, seed=0
        )
        announced = provider.announced_metric().link_weight_matrix()
        truth = space.matrix
        off = ~np.eye(20, dtype=bool)
        corr = np.corrcoef(announced[off], truth[off])[0, 1]
        assert corr > 0.6

    def test_drift_advances_truth(self, small_delay_space):
        provider = DelayMetricProvider(
            small_delay_space, estimator="true", drift_relative_std=0.1, seed=0
        )
        before = provider.true_metric().link_weight_matrix().copy()
        provider.advance(3)
        after = provider.true_metric().link_weight_matrix()
        assert not np.allclose(before, after)

    def test_unknown_estimator_rejected(self, small_delay_space):
        with pytest.raises(ValidationError):
            DelayMetricProvider(small_delay_space, estimator="sonar")

    def test_size(self, small_delay_space):
        provider = DelayMetricProvider(small_delay_space)
        assert provider.size == 5


class TestLoadProvider:
    def test_announced_uses_measured(self, load_model8):
        provider = LoadMetricProvider(load_model8)
        assert np.allclose(
            provider.announced_metric().loads, load_model8.measured_loads()
        )
        assert np.allclose(provider.true_metric().loads, load_model8.true_loads())

    def test_advance_moves_loads(self, load_model8):
        provider = LoadMetricProvider(load_model8)
        before = provider.true_metric().loads
        provider.advance(5)
        assert not np.allclose(before, provider.true_metric().loads)


class TestBandwidthProvider:
    def test_announced_noisy_but_close(self, bandwidth_model8):
        provider = BandwidthMetricProvider(
            bandwidth_model8, probe_relative_error=0.05, seed=0
        )
        truth = provider.true_metric().link_weight_matrix()
        announced = provider.announced_metric().link_weight_matrix()
        off = ~np.eye(8, dtype=bool)
        rel = np.abs(announced[off] - truth[off]) / truth[off]
        assert np.median(rel) < 0.2

    def test_announced_positive(self, bandwidth_model8):
        provider = BandwidthMetricProvider(bandwidth_model8, seed=0)
        announced = provider.announced_metric().link_weight_matrix()
        off = ~np.eye(8, dtype=bool)
        assert np.all(announced[off] > 0)

    def test_advance_changes_truth(self, bandwidth_model8):
        provider = BandwidthMetricProvider(bandwidth_model8, seed=0)
        before = provider.true_metric().link_weight_matrix().copy()
        provider.advance(5)
        off = ~np.eye(8, dtype=bool)
        assert not np.allclose(before[off], provider.true_metric().link_weight_matrix()[off])
