"""Tests for neighbour-selection policies and overlay construction."""

import numpy as np
import pytest

from repro.core.cost import DelayMetric
from repro.core.policies import (
    BestResponsePolicy,
    FullMeshPolicy,
    KClosestPolicy,
    KRandomPolicy,
    KRegularPolicy,
    STANDARD_POLICIES,
    build_overlay,
    enforce_connectivity_cycle,
)
from repro.core.wiring import GlobalWiring, Wiring
from repro.routing.graph import OverlayGraph


@pytest.fixture
def metric10():
    rng = np.random.default_rng(3)
    delays = rng.uniform(5, 100, size=(10, 10))
    delays = (delays + delays.T) / 2
    np.fill_diagonal(delays, 0)
    return DelayMetric(delays)


def empty_graph(n):
    return OverlayGraph(n)


class TestKRandom:
    def test_degree_and_no_self(self, metric10):
        policy = KRandomPolicy()
        chosen = policy.select(0, 4, metric10, empty_graph(10), rng=0)
        assert len(chosen) == 4
        assert 0 not in chosen

    def test_respects_candidates(self, metric10):
        policy = KRandomPolicy()
        chosen = policy.select(
            0, 3, metric10, empty_graph(10), candidates=[1, 2, 3], rng=0
        )
        assert chosen == {1, 2, 3}

    def test_k_capped_by_pool(self, metric10):
        policy = KRandomPolicy()
        chosen = policy.select(0, 99, metric10, empty_graph(10), rng=0)
        assert len(chosen) == 9


class TestKClosest:
    def test_picks_minimum_delay(self, metric10):
        policy = KClosestPolicy()
        chosen = policy.select(0, 3, metric10, empty_graph(10), rng=0)
        weights = [(metric10.link_weight(0, j), j) for j in range(1, 10)]
        weights.sort()
        assert chosen == {j for _w, j in weights[:3]}

    def test_bandwidth_picks_maximum(self, bandwidth_metric_small):
        policy = KClosestPolicy()
        n = bandwidth_metric_small.size
        chosen = policy.select(0, 2, bandwidth_metric_small, empty_graph(n), rng=0)
        weights = sorted(
            (bandwidth_metric_small.link_weight(0, j) for j in range(1, n)),
            reverse=True,
        )
        # Ties are common in the bandwidth model, so check values not ids:
        # every chosen link must be at least as wide as the 2nd widest.
        assert len(chosen) == 2
        assert all(
            bandwidth_metric_small.link_weight(0, j) >= weights[1] - 1e-9
            for j in chosen
        )


class TestKRegular:
    def test_offsets_paper_formula(self):
        # n = 13, k = 3: offsets 1 + (j-1)*12/4 = 1, 4, 7.
        assert KRegularPolicy.offsets(13, 3) == [1, 4, 7]

    def test_offsets_unique_and_positive(self):
        offsets = KRegularPolicy.offsets(20, 6)
        assert len(offsets) == len(set(offsets)) == 6
        assert all(1 <= o < 20 for o in offsets)

    def test_same_pattern_for_all_nodes(self, metric10):
        policy = KRegularPolicy()
        chosen0 = policy.select(0, 3, metric10, empty_graph(10), rng=0)
        chosen5 = policy.select(5, 3, metric10, empty_graph(10), rng=0)
        assert {(c - 0) % 10 for c in chosen0} == {(c - 5) % 10 for c in chosen5}

    def test_degree(self, metric10):
        policy = KRegularPolicy()
        assert len(policy.select(2, 4, metric10, empty_graph(10), rng=0)) == 4


class TestFullMeshAndBR:
    def test_full_mesh_selects_everyone(self, metric10):
        chosen = FullMeshPolicy().select(3, 2, metric10, empty_graph(10), rng=0)
        assert chosen == set(range(10)) - {3}

    def test_best_response_degree(self, metric10):
        chosen = BestResponsePolicy().select(0, 3, metric10, empty_graph(10), rng=0)
        assert len(chosen) == 3
        assert 0 not in chosen

    def test_best_response_beats_random_for_own_cost(self, metric10):
        from repro.core.best_response import WiringEvaluator

        residual = empty_graph(10)
        # give the residual a ring so destinations are reachable
        for i in range(10):
            if i != 0:
                nxt = (i % 9) + 1
                if nxt != i:
                    residual.add_edge(i, nxt, metric10.link_weight(i, nxt))
        evaluator = WiringEvaluator(0, metric10, residual)
        br = BestResponsePolicy().select(0, 3, metric10, residual, rng=0)
        rnd = KRandomPolicy().select(0, 3, metric10, residual, rng=0)
        assert evaluator.evaluate(br) <= evaluator.evaluate(rnd) + 1e-9

    def test_epsilon_name(self):
        assert "0.1" in BestResponsePolicy(epsilon=0.1).name

    def test_standard_policy_registry(self):
        assert set(STANDARD_POLICIES) == {
            "k-random",
            "k-closest",
            "k-regular",
            "best-response",
            "full-mesh",
        }


class TestBuildOverlay:
    def test_every_node_wired_with_degree_k(self, metric10):
        for name, policy in STANDARD_POLICIES.items():
            if name == "full-mesh":
                continue
            wiring = build_overlay(policy, metric10, 3, rng=1, br_rounds=2)
            graph = wiring.to_graph()
            for node in range(10):
                assert graph.out_degree(node) >= 3, name

    def test_overlays_strongly_connected(self, metric10):
        for name, policy in STANDARD_POLICIES.items():
            wiring = build_overlay(policy, metric10, 2, rng=2, br_rounds=2)
            assert wiring.to_graph().is_strongly_connected(), name

    def test_full_mesh_has_all_links(self, metric10):
        wiring = build_overlay(FullMeshPolicy(), metric10, 9, rng=0)
        assert wiring.to_graph().edge_count() == 10 * 9

    def test_br_overlay_better_than_random(self, metric10):
        br = build_overlay(BestResponsePolicy(), metric10, 3, rng=3, br_rounds=3)
        rnd = build_overlay(KRandomPolicy(), metric10, 3, rng=3)
        br_cost = np.mean(list(metric10.all_node_costs(br.to_graph()).values()))
        rnd_cost = np.mean(list(metric10.all_node_costs(rnd.to_graph()).values()))
        assert br_cost < rnd_cost

    def test_subset_of_nodes(self, metric10):
        wiring = build_overlay(
            KRandomPolicy(), metric10, 2, nodes=[0, 1, 2, 3, 4], rng=0
        )
        assert wiring.wired_nodes() == {0, 1, 2, 3, 4}
        graph = wiring.to_graph()
        for u, v, _w in graph.edges():
            assert u in {0, 1, 2, 3, 4}
            assert v in {0, 1, 2, 3, 4}


class TestEnforceConnectivity:
    def test_adds_cycle_when_disconnected(self, metric10):
        wiring = GlobalWiring(10)
        # Everyone wires only to node 0 — strongly disconnected.
        for node in range(1, 10):
            wiring.set_wiring(Wiring.of(node, [0]), {0: metric10.link_weight(node, 0)})
        wiring.set_wiring(Wiring.of(0, [1]), {1: metric10.link_weight(0, 1)})
        added = enforce_connectivity_cycle(wiring, metric10)
        assert added > 0
        assert wiring.to_graph().is_strongly_connected()

    def test_no_change_when_connected(self, metric10):
        wiring = GlobalWiring(10)
        for node in range(10):
            nxt = (node + 1) % 10
            wiring.set_wiring(
                Wiring.of(node, [nxt]), {nxt: metric10.link_weight(node, nxt)}
            )
        assert enforce_connectivity_cycle(wiring, metric10) == 0
