"""Tests for overhead accounting (Section 4.3 formulas)."""

import pytest

from repro.core.overhead import (
    coordinate_measurement_rate_bps,
    egoist_monitored_links,
    fullmesh_monitored_links,
    linkstate_rate_bps,
    overhead_report,
    ping_measurement_rate_bps,
)
from repro.util.validation import ValidationError


class TestFormulas:
    def test_ping_rate_paper_configuration(self):
        # n = 50, k = 5, T = 60 s: (50 - 5 - 1) * 320 / 60 = 234.67 bps.
        assert ping_measurement_rate_bps(50, 5, 60.0) == pytest.approx(
            (50 - 5 - 1) * 320 / 60.0
        )

    def test_ping_rate_zero_when_fully_meshed(self):
        assert ping_measurement_rate_bps(10, 9, 60.0) == 0.0

    def test_coordinate_rate(self):
        # (320 + 32 * 50) / 60 = 32 bps for the paper's deployment.
        assert coordinate_measurement_rate_bps(50, 60.0) == pytest.approx(
            (320 + 32 * 50) / 60.0
        )

    def test_coordinate_cheaper_than_ping_for_large_n(self):
        assert coordinate_measurement_rate_bps(200, 60.0) < ping_measurement_rate_bps(
            200, 5, 60.0
        )

    def test_linkstate_rate(self):
        assert linkstate_rate_bps(5, 20.0) == pytest.approx((192 + 32 * 5) / 20.0)

    def test_monitored_links(self):
        assert egoist_monitored_links(50, 5) == 250
        assert fullmesh_monitored_links(50) == 2450

    def test_invalid_arguments(self):
        with pytest.raises(ValidationError):
            ping_measurement_rate_bps(50, 5, 0.0)
        with pytest.raises(ValidationError):
            linkstate_rate_bps(-1, 20.0)
        with pytest.raises(ValidationError):
            fullmesh_monitored_links(0)


class TestReport:
    def test_report_fields(self):
        report = overhead_report(50, 5)
        assert report.ping_bps > 0
        assert report.linkstate_bps > 0
        assert report.total_active_bps == pytest.approx(
            report.ping_bps + report.linkstate_bps
        )

    def test_scalability_gain_scales_inversely_with_k(self):
        gain_k2 = overhead_report(50, 2).scalability_gain
        gain_k8 = overhead_report(50, 8).scalability_gain
        assert gain_k2 > gain_k8
        assert gain_k2 == pytest.approx(49 / 2)

    def test_overheads_are_tiny(self):
        """The paper's point: total maintenance traffic is a few hundred bps."""
        report = overhead_report(50, 5)
        assert report.total_active_bps < 1000.0
