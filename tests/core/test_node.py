"""Tests for per-node state and re-wiring decisions."""

import numpy as np
import pytest

from repro.core.cost import DelayMetric
from repro.core.hybrid import HybridBRPolicy
from repro.core.node import EgoistNode, RewireMode
from repro.core.policies import BestResponsePolicy, KRandomPolicy
from repro.core.wiring import Wiring
from repro.routing.graph import OverlayGraph


@pytest.fixture
def metric8():
    rng = np.random.default_rng(11)
    delays = rng.uniform(5, 80, size=(8, 8))
    delays = (delays + delays.T) / 2
    np.fill_diagonal(delays, 0)
    return DelayMetric(delays)


def ring_residual(metric, exclude):
    n = metric.size
    others = [i for i in range(n) if i != exclude]
    graph = OverlayGraph(n)
    for idx, node in enumerate(others):
        nxt = others[(idx + 1) % len(others)]
        graph.add_edge(node, nxt, metric.link_weight(node, nxt))
    return graph


class TestLifecycle:
    def test_initial_state(self):
        node = EgoistNode(0, BestResponsePolicy(), 3, seed=0)
        assert node.online
        assert node.wiring is None
        assert node.rewire_count == 0
        assert node.rewire_mode is RewireMode.DELAYED

    def test_offline_drops_wiring(self):
        node = EgoistNode(0, BestResponsePolicy(), 3, seed=0)
        node.wiring = Wiring.of(0, [1, 2])
        node.go_offline()
        assert not node.online
        assert node.wiring is None
        node.go_online()
        assert node.online

    def test_drop_neighbors(self):
        node = EgoistNode(0, BestResponsePolicy(), 3, seed=0)
        node.wiring = Wiring.of(0, [1, 2, 3], donated=[3])
        assert node.drop_neighbors({2})
        assert node.wiring.neighbors == frozenset({1, 3})
        assert node.wiring.donated == frozenset({3})
        assert not node.drop_neighbors({7})


class TestRewiring:
    def test_first_opportunity_wires(self, metric8):
        node = EgoistNode(0, BestResponsePolicy(), 3, seed=0)
        decision = node.consider_rewiring(
            metric8, ring_residual(metric8, 0), list(range(8))
        )
        assert decision.rewired
        assert node.wiring is not None
        assert len(node.wiring.neighbors) == 3
        assert node.rewire_count == 1

    def test_stable_metric_no_second_rewire(self, metric8):
        node = EgoistNode(0, BestResponsePolicy(), 3, seed=0)
        residual = ring_residual(metric8, 0)
        active = list(range(8))
        node.consider_rewiring(metric8, residual, active)
        second = node.consider_rewiring(metric8, residual, active)
        assert not second.rewired
        assert node.rewire_count == 1

    def test_epsilon_suppresses_marginal_improvements(self, metric8):
        strict = EgoistNode(0, BestResponsePolicy(), 3, epsilon=0.5, seed=0)
        residual = ring_residual(metric8, 0)
        active = list(range(8))
        strict.consider_rewiring(metric8, residual, active)
        # Perturb the metric slightly: a 50% improvement threshold should
        # prevent re-wiring for small changes.
        perturbed = DelayMetric(metric8.link_weight_matrix() * 1.01)
        decision = strict.consider_rewiring(perturbed, residual, active)
        assert not decision.rewired

    def test_random_policy_rewires_only_on_set_change(self, metric8):
        node = EgoistNode(0, KRandomPolicy(), 3, seed=1)
        residual = ring_residual(metric8, 0)
        active = list(range(8))
        first = node.consider_rewiring(metric8, residual, active)
        assert first.rewired
        # A random policy reselects every time; the decision structure must
        # stay consistent (old/new sets recorded).
        second = node.consider_rewiring(metric8, residual, active)
        assert second.old_neighbors == first.new_neighbors

    def test_hybrid_policy_marks_donated(self, metric8):
        node = EgoistNode(0, HybridBRPolicy(k2=2), 4, seed=0)
        decision = node.consider_rewiring(
            metric8, ring_residual(metric8, 0), list(range(8))
        )
        assert decision.rewired
        assert len(node.wiring.donated) == 2

    def test_decision_costs_consistent(self, metric8):
        node = EgoistNode(0, BestResponsePolicy(), 2, seed=0)
        decision = node.consider_rewiring(
            metric8, ring_residual(metric8, 0), list(range(8))
        )
        assert decision.new_cost <= decision.old_cost
