"""Tests for the batched multi-deployment sweep kernels.

The heart of the suite is bitwise parity: every seeded sweep must return
byte-identical results under ``batched=True`` (stacked kernels, lockstep
best-response dynamics, fused broadcasts) and ``batched=False`` (the
preserved pre-batching sequential implementation).
"""

import numpy as np
import pytest

from repro.core import (
    BandwidthMetricProvider,
    BestResponsePolicy,
    DelayMetricProvider,
    FullMeshPolicy,
    KClosestPolicy,
    KRandomPolicy,
    KRegularPolicy,
    metric_fingerprint,
)
from repro.core.deployment_batch import DeploymentBatch, DeploymentSpec
from repro.experiments import fig1_bandwidth, fig1_delay_ping, fig1_node_load
from repro.netsim.bandwidth import BandwidthModel
from repro.netsim.delayspace import DelaySpace
from repro.util.rng import spawn_generators
from repro.util.validation import ValidationError

POLICY_FACTORIES = (
    ("k-random", KRandomPolicy),
    ("k-closest", KClosestPolicy),
    ("k-regular", KRegularPolicy),
    ("best-response", BestResponsePolicy),
    ("full-mesh", FullMeshPolicy),
)


def _delay_provider(n, *, jitter=1.0, seed=5):
    rng = np.random.default_rng(seed)
    matrix = rng.uniform(5.0, 150.0, size=(n, n))
    np.fill_diagonal(matrix, 0.0)
    return DelayMetricProvider(
        DelaySpace(matrix, jitter_std=jitter), estimator="ping", seed=rng
    )


def _bandwidth_provider(n, *, seed=11):
    return BandwidthMetricProvider(BandwidthModel(n, seed=seed), seed=seed + 1)


def _sweep_specs(provider, k_values, seed, *, br_rounds=3):
    """The Fig.-1-style (policy, k) grid over one provider."""
    specs = []
    for k in k_values:
        announced = provider.announced_metric()
        truth = provider.true_metric()
        for _name, factory in POLICY_FACTORIES:
            specs.append(
                DeploymentSpec(
                    label=_name,
                    policy=factory(),
                    k=int(k),
                    announced=announced,
                    truth=truth,
                    br_rounds=br_rounds,
                )
            )
        provider.advance(1)
    streams = spawn_generators(np.random.default_rng(seed), len(specs))
    for spec, stream in zip(specs, streams):
        spec.rng = stream
    return specs


class TestBatchedSequentialParity:
    """batched=True and batched=False must agree bit for bit."""

    @pytest.mark.parametrize(
        "provider_factory,n",
        [
            # n - 1 > exact_threshold: the fused local-search broadcasts.
            (_delay_provider, 18),
            (_bandwidth_provider, 18),
            # n - 1 <= exact_threshold: the per-deployment exact fallback.
            (_delay_provider, 12),
            (_bandwidth_provider, 12),
        ],
    )
    def test_mean_costs_bitwise_equal(self, provider_factory, n):
        batched = DeploymentBatch(
            _sweep_specs(provider_factory(n), (1, 2, 3), 42), batched=True
        ).run()
        sequential = DeploymentBatch(
            _sweep_specs(provider_factory(n), (1, 2, 3), 42), batched=False
        ).run()
        assert np.array_equal(batched, sequential)

    @pytest.mark.parametrize("provider_factory", [_delay_provider, _bandwidth_provider])
    def test_built_wirings_identical(self, provider_factory):
        built_a = DeploymentBatch(
            _sweep_specs(provider_factory(16), (2, 4), 7), batched=True
        ).build()
        built_b = DeploymentBatch(
            _sweep_specs(provider_factory(16), (2, 4), 7), batched=False
        ).build()
        assert len(built_a) == len(built_b)
        for wiring_a, wiring_b in zip(built_a, built_b):
            for node in range(wiring_a.n):
                a = wiring_a.wiring_of(node)
                b = wiring_b.wiring_of(node)
                assert (a.neighbors if a else None) == (b.neighbors if b else None)
                assert wiring_a.weights_of(node) == wiring_b.weights_of(node)

    def test_zero_rounds_keeps_seed_wiring(self):
        specs_a = _sweep_specs(_delay_provider(14), (3,), 1, br_rounds=0)
        specs_b = _sweep_specs(_delay_provider(14), (3,), 1, br_rounds=0)
        a = DeploymentBatch(specs_a, batched=True).run()
        b = DeploymentBatch(specs_b, batched=False).run()
        assert np.array_equal(a, b)

    def test_epsilon_policy_parity(self):
        """BR(eps) thresholds flow through the fused adopt rule."""

        def specs(seed):
            provider = _delay_provider(16)
            announced = provider.announced_metric()
            truth = provider.true_metric()
            out = [
                DeploymentSpec(
                    label=f"eps-{eps}",
                    policy=BestResponsePolicy(eps),
                    k=3,
                    announced=announced,
                    truth=truth,
                    br_rounds=3,
                )
                for eps in (0.0, 0.1, 0.5)
            ]
            for spec, stream in zip(
                out, spawn_generators(np.random.default_rng(seed), len(out))
            ):
                spec.rng = stream
            return out

        assert np.array_equal(
            DeploymentBatch(specs(3), batched=True).run(),
            DeploymentBatch(specs(3), batched=False).run(),
        )


class TestFig1SweepParity:
    """Seeded Fig. 1 panels are byte-identical under both paths."""

    @pytest.mark.parametrize(
        "driver,kwargs",
        [
            (fig1_delay_ping, {"include_full_mesh": True}),
            (fig1_node_load, {}),
            (fig1_bandwidth, {}),
        ],
    )
    def test_series_byte_identical(self, driver, kwargs):
        batched = driver(n=20, k_values=(2, 4), seed=11, br_rounds=2, batched=True, **kwargs)
        sequential = driver(
            n=20, k_values=(2, 4), seed=11, br_rounds=2, batched=False, **kwargs
        )
        assert batched.as_dict() == sequential.as_dict()


class TestRouteValueTensor:
    def test_matches_per_deployment_route_values(self):
        specs = _sweep_specs(_delay_provider(15), (2, 3), 9)
        batch = DeploymentBatch(specs, batched=True)
        wirings = batch.build()
        graphs = [w.to_graph() for w in wirings]
        tensor = batch.route_value_tensor(graphs)
        assert tensor.shape == (len(specs), 15, 15)
        for spec, graph, matrix in zip(specs, graphs, tensor):
            expected = spec.truth.route_values_rows(graph, range(15))
            assert np.array_equal(matrix, expected)

    def test_bandwidth_tensor_matches_reference_loop(self):
        specs = _sweep_specs(_bandwidth_provider(12), (2,), 13)
        batch = DeploymentBatch(specs, batched=True)
        graphs = [w.to_graph() for w in batch.build()]
        tensor = batch.route_value_tensor(graphs)
        from repro.routing.widest_path import widest_path_bandwidths_multi

        for graph, matrix in zip(graphs, tensor):
            reference = widest_path_bandwidths_multi(
                graph, list(range(12)), batched=False
            )
            assert np.array_equal(matrix, reference)

    def test_requires_one_graph_per_spec(self):
        specs = _sweep_specs(_delay_provider(10), (2,), 1)
        batch = DeploymentBatch(specs)
        with pytest.raises(ValidationError):
            batch.route_value_tensor([])


class TestFingerprintSharing:
    def test_announced_fingerprint_computed_once_per_snapshot(self):
        provider = _delay_provider(12)
        announced = provider.announced_metric()
        truth = provider.true_metric()
        specs = [
            DeploymentSpec(
                label=f"k={k}",
                policy=BestResponsePolicy(),
                k=k,
                announced=announced,
                truth=truth,
                br_rounds=1,
            )
            for k in (2, 3, 4)
        ]
        for spec, stream in zip(
            specs, spawn_generators(np.random.default_rng(0), len(specs))
        ):
            spec.rng = stream
        batch = DeploymentBatch(specs)
        fp_first = batch.announced_fingerprint(announced)
        assert batch.announced_fingerprint(announced) is fp_first
        assert fp_first == metric_fingerprint(announced)
        batch.build()
        # Still the single shared snapshot entry.
        assert list(batch._metric_fps.values()) == [fp_first]

    def test_identical_matrices_share_fingerprint_value(self):
        provider = _delay_provider(10, jitter=0.0)
        a = provider.true_metric()
        b = provider.true_metric()
        assert a is not b
        assert metric_fingerprint(a) == metric_fingerprint(b)


class TestValidation:
    def test_empty_batch_rejected(self):
        with pytest.raises(ValidationError):
            DeploymentBatch([])

    def test_mismatched_sizes_rejected(self):
        small = _delay_provider(8)
        large = _delay_provider(12)
        specs = [
            DeploymentSpec(
                label="a",
                policy=KRandomPolicy(),
                k=2,
                announced=small.announced_metric(),
                truth=small.true_metric(),
            ),
            DeploymentSpec(
                label="b",
                policy=KRandomPolicy(),
                k=2,
                announced=large.announced_metric(),
                truth=large.true_metric(),
            ),
        ]
        with pytest.raises(ValidationError):
            DeploymentBatch(specs)
