"""The versioned EpochRecord/cache-diagnostics codec."""

import math

import pytest

from repro.core.codec import (
    CACHE_SCHEMA_VERSION,
    RECORD_SCHEMA_VERSION,
    cache_stats_from_json,
    cache_stats_to_json,
    decode_float,
    encode_float,
    epoch_record_digest,
    epoch_record_from_json,
    epoch_record_to_json,
)
from repro.core.engine import EpochRecord
from repro.util.validation import ValidationError


def _record(epoch=0, mean_cost=12.5, mean_efficiency=float("nan")):
    return EpochRecord(
        epoch=epoch,
        time=60.0 * (epoch + 1),
        active_nodes=10,
        rewirings=3,
        mean_cost=mean_cost,
        mean_efficiency=mean_efficiency,
        social_cost=125.0,
        linkstate_bits=4096,
        routes_stuck=1,
    )


class TestFloatCodec:
    def test_finite_values_pass_through(self):
        assert encode_float(1.5) == 1.5
        assert decode_float(1.5) == 1.5

    def test_non_finite_round_trip(self):
        for value, encoded in ((float("nan"), "nan"), (float("inf"), "inf"), (float("-inf"), "-inf")):
            assert encode_float(value) == encoded
            decoded = decode_float(encoded)
            assert math.isnan(decoded) if encoded == "nan" else decoded == value

    def test_malformed_string_rejected(self):
        with pytest.raises(ValidationError):
            decode_float("bogus")


class TestRecordCodec:
    def test_round_trip(self):
        record = _record()
        data = epoch_record_to_json(record)
        assert data["schema"] == RECORD_SCHEMA_VERSION
        back = epoch_record_from_json(data)
        assert back.epoch == record.epoch
        assert back.mean_cost == record.mean_cost
        assert math.isnan(back.mean_efficiency)

    def test_nan_efficiency_is_json_safe(self):
        import json

        data = epoch_record_to_json(_record())
        # Strict JSON: the payload must survive allow_nan=False.
        json.dumps(data, allow_nan=False)
        assert data["mean_efficiency"] == "nan"

    def test_schema_checked(self):
        data = epoch_record_to_json(_record())
        data["schema"] = 99
        with pytest.raises(ValidationError):
            epoch_record_from_json(data)

    def test_missing_field_rejected(self):
        data = epoch_record_to_json(_record())
        del data["social_cost"]
        with pytest.raises(ValidationError):
            epoch_record_from_json(data)


class TestCacheCodec:
    STATS = {
        "hits": 10.0,
        "misses": 4.0,
        "repairs": 2.0,
        "restamps": 1.0,
        "entries": 8.0,
        "hit_rate": 10.0 / 14.0,
    }

    def test_round_trip(self):
        data = cache_stats_to_json(self.STATS)
        assert data["schema"] == CACHE_SCHEMA_VERSION
        assert cache_stats_from_json(data) == self.STATS

    def test_missing_key_rejected(self):
        broken = dict(self.STATS)
        del broken["repairs"]
        with pytest.raises(ValidationError):
            cache_stats_to_json(broken)


class TestDigest:
    def test_deterministic_and_order_sensitive(self):
        records = [_record(0), _record(1, mean_cost=13.0)]
        assert epoch_record_digest(records) == epoch_record_digest(records)
        assert epoch_record_digest(records) != epoch_record_digest(records[::-1])

    def test_sensitive_to_every_float_bit(self):
        base = epoch_record_digest([_record()])
        nudged = epoch_record_digest([_record(mean_cost=12.5 + 1e-15)])
        assert base != nudged

    def test_nan_efficiency_digestable(self):
        assert epoch_record_digest([_record(mean_efficiency=float("nan"))])
