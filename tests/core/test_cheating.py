"""Tests for the cheating model and audits."""

import numpy as np
import pytest

from repro.core.cheating import (
    CheatingModel,
    audit_announcements,
    detected_cheaters,
)
from repro.core.cost import BandwidthMetric, DelayMetric, NodeLoadMetric
from repro.util.validation import ValidationError


class TestCheatingModel:
    def test_delay_inflation_only_on_riders_rows(self, small_delay_metric):
        model = CheatingModel(small_delay_metric, free_riders=[2], inflation_factor=2.0)
        announced = model.announced_metric()
        truth = small_delay_metric
        for j in range(5):
            if j == 2:
                continue
            assert announced.link_weight(2, j) == pytest.approx(
                2.0 * truth.link_weight(2, j)
            )
            assert announced.link_weight(0, j if j != 0 else 1) == pytest.approx(
                truth.link_weight(0, j if j != 0 else 1)
            )

    def test_bandwidth_deflation(self, bandwidth_metric_small):
        model = CheatingModel(bandwidth_metric_small, [1], inflation_factor=2.0)
        announced = model.announced_metric()
        assert announced.link_weight(1, 0) == pytest.approx(
            bandwidth_metric_small.link_weight(1, 0) / 2.0
        )

    def test_node_load_inflation(self):
        truth = NodeLoadMetric([1.0, 2.0, 3.0])
        model = CheatingModel(truth, [0], inflation_factor=3.0)
        announced = model.announced_metric()
        assert announced.link_weight(0, 1) == pytest.approx(3.0)
        assert announced.link_weight(1, 0) == pytest.approx(2.0)

    def test_is_free_rider(self, small_delay_metric):
        model = CheatingModel(small_delay_metric, [3])
        assert model.is_free_rider(3)
        assert not model.is_free_rider(1)

    def test_out_of_range_rider_rejected(self, small_delay_metric):
        with pytest.raises(ValidationError):
            CheatingModel(small_delay_metric, [99])

    def test_nonpositive_inflation_rejected(self, small_delay_metric):
        with pytest.raises(ValidationError):
            CheatingModel(small_delay_metric, [1], inflation_factor=0.0)

    def test_deflation_models_opposite_abuse(self, small_delay_metric):
        model = CheatingModel(small_delay_metric, [1], inflation_factor=0.5)
        announced = model.announced_metric()
        assert announced.link_weight(1, 0) == pytest.approx(
            0.5 * small_delay_metric.link_weight(1, 0)
        )


class TestAudits:
    def test_flags_only_cheaters(self, planetlab20_metric):
        truth = planetlab20_metric
        announced = CheatingModel(truth, [4, 7], inflation_factor=2.0).announced_metric()
        findings = audit_announcements(announced, truth, tolerance=0.5)
        assert detected_cheaters(findings) == {4, 7}

    def test_tolerance_controls_sensitivity(self, planetlab20_metric):
        truth = planetlab20_metric
        announced = CheatingModel(truth, [4], inflation_factor=1.3).announced_metric()
        strict = audit_announcements(announced, truth, tolerance=0.1)
        lax = audit_announcements(announced, truth, tolerance=0.5)
        assert 4 in detected_cheaters(strict)
        assert 4 not in detected_cheaters(lax)

    def test_sampled_audit_still_detects_large_inflation(self, planetlab20_metric):
        truth = planetlab20_metric
        announced = CheatingModel(truth, [9], inflation_factor=3.0).announced_metric()
        findings = audit_announcements(
            announced, truth, samples_per_node=5, tolerance=0.5, rng=0
        )
        assert 9 in detected_cheaters(findings)

    def test_honest_network_all_clear(self, planetlab20_metric):
        findings = audit_announcements(planetlab20_metric, planetlab20_metric)
        assert detected_cheaters(findings) == set()

    def test_size_mismatch_rejected(self, planetlab20_metric, small_delay_metric):
        with pytest.raises(ValidationError):
            audit_announcements(planetlab20_metric, small_delay_metric)

    def test_audit_subset_of_nodes(self, planetlab20_metric):
        truth = planetlab20_metric
        announced = CheatingModel(truth, [4], inflation_factor=2.0).announced_metric()
        findings = audit_announcements(announced, truth, nodes=[1, 2, 3])
        assert {f.node for f in findings} == {1, 2, 3}
