"""Tests for cost metrics and node cost functions."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cost import (
    BandwidthMetric,
    DelayMetric,
    DISCONNECTION_COST,
    NodeLoadMetric,
    normalize_preferences,
    uniform_preferences,
    zipf_preferences,
)
from repro.routing.graph import OverlayGraph
from repro.util.validation import ValidationError


class TestPreferences:
    def test_uniform_rows_sum_to_one(self):
        prefs = uniform_preferences(5)
        assert np.allclose(prefs.sum(axis=1), 1.0)
        assert np.all(np.diag(prefs) == 0)

    def test_uniform_requires_two_nodes(self):
        with pytest.raises(ValidationError):
            uniform_preferences(1)

    def test_normalize_rows(self):
        raw = np.array([[0.0, 2.0, 2.0], [1.0, 0.0, 3.0], [1.0, 1.0, 0.0]])
        prefs = normalize_preferences(raw)
        assert np.allclose(prefs.sum(axis=1), 1.0)
        assert prefs[0, 1] == pytest.approx(0.5)

    def test_normalize_rejects_negative(self):
        with pytest.raises(ValidationError):
            normalize_preferences(np.array([[0.0, -1.0], [1.0, 0.0]]))

    def test_normalize_rejects_zero_row(self):
        with pytest.raises(ValidationError):
            normalize_preferences(np.zeros((3, 3)))

    def test_zipf_skewed(self):
        prefs = zipf_preferences(10, exponent=1.2, seed=0)
        assert np.allclose(prefs.sum(axis=1), 1.0)
        assert prefs.max() > 2.0 / 9.0  # clearly above uniform weight


class TestDelayMetric:
    def test_link_weights(self, small_delay_metric, small_delay_matrix):
        assert small_delay_metric.link_weight(0, 1) == small_delay_matrix[0, 1]
        assert np.allclose(
            small_delay_metric.link_weight_matrix(), small_delay_matrix
        )

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            DelayMetric(np.array([[0.0, -1.0], [1.0, 0.0]]))

    def test_node_cost_full_mesh_is_mean_delay(self, small_delay_metric, small_delay_matrix):
        n = 5
        graph = OverlayGraph(n)
        for i in range(n):
            for j in range(n):
                if i != j:
                    graph.add_edge(i, j, small_delay_matrix[i, j])
        cost = small_delay_metric.node_cost(0, graph)
        # With the full mesh, shortest paths may shortcut, so the cost is at
        # most the mean direct delay.
        assert cost <= np.mean(small_delay_matrix[0, 1:]) + 1e-9

    def test_unreachable_gets_disconnection_cost(self, small_delay_metric):
        graph = OverlayGraph(5)
        graph.add_edge(0, 1, 10.0)
        cost = small_delay_metric.node_cost(0, graph)
        # Three of four destinations unreachable.
        assert cost >= 3 / 4 * DISCONNECTION_COST * 0.99

    def test_destination_subset(self, small_delay_metric):
        graph = OverlayGraph(5)
        graph.add_edge(0, 1, 10.0)
        cost = small_delay_metric.node_cost(0, graph, destinations=[1])
        assert cost == pytest.approx(10.0 * uniform_preferences(5)[0, 1])

    def test_social_cost_sums_nodes(self, small_delay_metric):
        graph = OverlayGraph(5)
        for i in range(5):
            graph.add_edge(i, (i + 1) % 5, 10.0)
        social = small_delay_metric.social_cost(graph)
        costs = small_delay_metric.all_node_costs(graph)
        assert social == pytest.approx(sum(costs.values()))

    def test_better_and_improvement(self, small_delay_metric):
        assert small_delay_metric.better(1.0, 2.0)
        assert not small_delay_metric.better(2.0, 1.0)
        assert small_delay_metric.improvement(80.0, 100.0) == pytest.approx(0.2)


class TestNodeLoadMetric:
    def test_outgoing_links_cost_source_load(self, load_metric_small):
        assert load_metric_small.link_weight(5, 0) == 9.0
        assert load_metric_small.link_weight(0, 5) == 0.5

    def test_matrix_rows_constant(self, load_metric_small):
        mat = load_metric_small.link_weight_matrix()
        row = mat[3]
        off_diag = [row[j] for j in range(6) if j != 3]
        assert len(set(off_diag)) == 1

    def test_path_cost_sums_node_loads(self, load_metric_small):
        graph = OverlayGraph(6)
        graph.add_edge(0, 1, load_metric_small.link_weight(0, 1))
        graph.add_edge(1, 2, load_metric_small.link_weight(1, 2))
        values = load_metric_small.route_values(graph)
        assert values[0, 2] == pytest.approx(0.5 + 1.0)

    def test_negative_load_rejected(self):
        with pytest.raises(ValidationError):
            NodeLoadMetric([-1.0, 2.0])

    def test_avoiding_loaded_node_pays_off(self, load_metric_small):
        """Routing through the overloaded node 5 is worse than around it."""
        graph = OverlayGraph(6)
        graph.add_edge(0, 5, load_metric_small.link_weight(0, 5))
        graph.add_edge(5, 1, load_metric_small.link_weight(5, 1))
        graph.add_edge(0, 2, load_metric_small.link_weight(0, 2))
        graph.add_edge(2, 1, load_metric_small.link_weight(2, 1))
        values = load_metric_small.route_values(graph)
        assert values[0, 1] == pytest.approx(0.5 + 0.8)


class TestBandwidthMetric:
    def test_maximize_flag(self, bandwidth_metric_small):
        assert bandwidth_metric_small.maximize
        assert bandwidth_metric_small.better(10.0, 5.0)

    def test_node_cost_is_mean_bottleneck(self, bandwidth_metric_small):
        n = bandwidth_metric_small.size
        graph = OverlayGraph(n)
        for i in range(n):
            for j in range(n):
                if i != j:
                    graph.add_edge(i, j, bandwidth_metric_small.link_weight(i, j))
        cost = bandwidth_metric_small.node_cost(0, graph)
        assert cost > 0

    def test_unreachable_counts_zero(self, bandwidth_metric_small):
        graph = OverlayGraph(bandwidth_metric_small.size)
        graph.add_edge(0, 1, 10.0)
        cost = bandwidth_metric_small.node_cost(0, graph)
        expected = uniform_preferences(bandwidth_metric_small.size)[0, 1] * min(
            10.0, bandwidth_metric_small.link_weight(0, 1)
        )
        assert cost == pytest.approx(
            uniform_preferences(bandwidth_metric_small.size)[0, 1] * 10.0
        )

    def test_improvement_direction(self, bandwidth_metric_small):
        assert bandwidth_metric_small.improvement(12.0, 10.0) == pytest.approx(0.2)
        assert bandwidth_metric_small.improvement(8.0, 10.0) < 0

    def test_negative_bandwidth_rejected(self):
        with pytest.raises(ValidationError):
            BandwidthMetric(np.array([[0.0, -5.0], [1.0, 0.0]]))


class TestMetricProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(3, 8))
    def test_richer_graph_never_worse_delay(self, n):
        """Adding links can only improve (or keep) every node's delay cost."""
        rng = np.random.default_rng(n)
        delays = rng.uniform(1, 100, size=(n, n))
        np.fill_diagonal(delays, 0)
        metric = DelayMetric(delays)
        ring = OverlayGraph(n)
        for i in range(n):
            ring.add_edge(i, (i + 1) % n, delays[i, (i + 1) % n])
        richer = ring.copy()
        for i in range(n):
            j = int(rng.integers(0, n))
            if i != j and not richer.has_edge(i, j):
                richer.add_edge(i, j, delays[i, j])
        for node in range(n):
            assert metric.node_cost(node, richer) <= metric.node_cost(node, ring) + 1e-9
