"""Tests for the residual route-value cache and its engine integration."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import (
    BestResponsePolicy,
    DelayMetricProvider,
    EgoistEngine,
    ResidualRouteCache,
)
from repro.netsim.delayspace import DelaySpace
from repro.util.validation import ValidationError


class TestResidualRouteCache:
    def test_token_and_hops_must_match(self):
        cache = ResidualRouteCache(max_entries=4)
        matrix = np.arange(6.0).reshape(2, 3)
        cache.set_token(("v1",))
        cache.put(0, (1, 2), matrix)
        assert cache.get(0, (1, 2)) is matrix
        assert cache.get(0, (1, 3)) is None  # different hops
        cache.set_token(("v2",))
        assert cache.get(0, (1, 2)) is None  # stale token
        assert cache.hits == 1
        assert cache.misses == 2

    def test_lru_eviction(self):
        cache = ResidualRouteCache(max_entries=2)
        cache.set_token("t")
        for node in range(3):
            cache.put(node, (1,), np.zeros((1, 1)))
        assert len(cache) == 2
        assert cache.get(0, (1,)) is None  # evicted as oldest
        assert cache.get(2, (1,)) is not None

    def test_invalidate_clears_entries(self):
        cache = ResidualRouteCache()
        cache.set_token("t")
        cache.put(0, (1,), np.zeros((1, 1)))
        cache.invalidate()
        assert len(cache) == 0
        assert cache.get(0, (1,)) is None

    def test_stats_and_hit_rate(self):
        cache = ResidualRouteCache()
        assert cache.hit_rate == 0.0
        cache.set_token("t")
        cache.put(0, (1,), np.zeros((1, 1)))
        cache.get(0, (1,))
        cache.get(1, (1,))
        stats = cache.stats()
        assert stats["hits"] == 1.0
        assert stats["misses"] == 1.0
        assert cache.hit_rate == pytest.approx(0.5)

    def test_max_entries_must_be_positive(self):
        with pytest.raises(ValidationError):
            ResidualRouteCache(max_entries=0)


def make_engine(route_cache_size, *, n=12, seed=9):
    rng = np.random.default_rng(77)
    matrix = rng.uniform(5.0, 120.0, size=(n, n))
    np.fill_diagonal(matrix, 0.0)
    provider = DelayMetricProvider(DelaySpace(matrix, jitter_std=0.0), estimator="true")
    return EgoistEngine(
        provider,
        BestResponsePolicy(),
        k=2,
        seed=seed,
        route_cache_size=route_cache_size,
    )


def record_key(record):
    return tuple(
        None if isinstance(v, float) and math.isnan(v) else v
        for v in (
            record.epoch,
            record.time,
            record.active_nodes,
            record.rewirings,
            record.mean_cost,
            record.mean_efficiency,
            record.social_cost,
            record.linkstate_bits,
        )
    )


class TestEngineIntegration:
    def test_cache_disabled_with_size_zero(self):
        engine = make_engine(0)
        assert engine.route_cache is None
        engine.run(2)  # still runs fine without the cache

    def test_cache_defaults_to_deployment_size(self):
        engine = make_engine(None)
        assert engine.route_cache is not None
        assert engine.route_cache.max_entries == engine.n

    def test_cached_and_uncached_runs_are_identical(self):
        cached = make_engine(None).run(4).records
        uncached = make_engine(0).run(4).records
        assert [record_key(r) for r in cached] == [record_key(r) for r in uncached]

    def test_quiescent_epochs_hit_the_cache(self):
        """Once best-response dynamics converge with a static announced
        metric, a whole epoch's residual sweeps come from the cache."""
        engine = make_engine(None)
        engine.run(6)  # long enough to converge at this scale
        before = engine.route_cache.hits
        misses_before = engine.route_cache.misses
        engine.run_epoch()
        assert engine.route_cache.hits - before == engine.n
        assert engine.route_cache.misses == misses_before


class TestSpeculativeTokens:
    """The engine batch's speculative weight-refresh chains stamp entries
    with *predicted* tokens (``put(token=...)``) and revoke mispredictions
    with ``drop``; these exercise that path directly (it landed with only
    indirect parity coverage)."""

    def test_put_with_explicit_token_matches_only_once_state_materialises(self):
        cache = ResidualRouteCache(max_entries=4)
        matrix = np.ones((1, 3))
        cache.set_token(("v1", "fp", (0, 1, 2)))
        predicted = ("v1", "fp-next", (0, 1, 2))  # in-place re-announce predicted
        cache.put(0, (1, 2), matrix, token=predicted)
        # Not valid under the current token...
        assert cache.get(0, (1, 2)) is None
        # ...but valid verbatim once the predicted state becomes current.
        cache.set_token(predicted)
        assert cache.get(0, (1, 2)) is matrix

    def test_put_without_token_still_stamps_the_current_token(self):
        cache = ResidualRouteCache(max_entries=4)
        cache.set_token("now")
        cache.put(0, (1,), np.zeros((1, 1)))
        assert cache.get(0, (1,)) is not None

    def test_rewire_invalidates_unrealised_speculative_entries(self):
        """A re-wire bumps the wiring version: the predicted token never
        becomes current, so speculative entries must never hit."""
        cache = ResidualRouteCache(max_entries=8)
        cache.set_token(("version-7", "fp", (0, 1)))
        cache.put(3, (0, 1), np.full((2, 2), 3.0), token=("version-7", "fp2", (0, 1)))
        # The re-wire: state jumps to version-8 with a fresh fingerprint.
        cache.set_token(("version-8", "fp3", (0, 1)))
        assert cache.get(3, (0, 1)) is None
        # The engine batch drops the pending entry; a later put under the
        # real token repopulates cleanly.
        cache.drop(3)
        assert len(cache) == 0
        cache.put(3, (0, 1), np.full((2, 2), 8.0))
        assert float(cache.get(3, (0, 1))[0, 0]) == 8.0

    def test_drop_is_per_node_and_tolerates_absent_nodes(self):
        cache = ResidualRouteCache(max_entries=4)
        cache.set_token("t")
        cache.put(0, (1,), np.zeros((1, 1)))
        cache.put(1, (0,), np.zeros((1, 1)))
        cache.drop(0)
        cache.drop(42)  # never stored: a no-op, not an error
        assert cache.get(0, (1,)) is None
        assert cache.get(1, (0,)) is not None

    def test_churn_epoch_membership_change_invalidates_speculative_entries(self):
        """Tokens embed the active membership: a churn-driven join/leave
        changes the hop universe, so entries predicted for the old
        membership must miss even if wiring version and metric agree."""
        cache = ResidualRouteCache(max_entries=8)
        old_members = (0, 1, 2, 3)
        new_members = (0, 1, 3)  # node 2 departed this epoch
        cache.set_token(("v1", "fp", old_members))
        cache.put(0, (1, 2), np.ones((2, 4)), token=("v2", "fp", old_members))
        cache.set_token(("v2", "fp", new_members))
        assert cache.get(0, (1, 2)) is None
        # Re-wiring against the new membership uses the survivors' hops.
        cache.put(0, (1, 3), np.ones((2, 3)))
        assert cache.get(0, (1, 3)) is not None
        assert cache.get(0, (1, 2)) is None  # stale hop tuple stays dead

    def test_speculative_chain_across_epochs(self):
        """A quiescent drift epoch: entries predicted at epoch e for epoch
        e+1 hit exactly once, then the next prediction takes over."""
        cache = ResidualRouteCache(max_entries=4)
        members = (0, 1)
        tokens = [("v1", f"fp{i}", members) for i in range(3)]
        cache.set_token(tokens[0])
        cache.put(0, (1,), np.full((1, 2), 1.0), token=tokens[1])
        cache.set_token(tokens[1])
        assert cache.get(0, (1,)) is not None
        cache.put(0, (1,), np.full((1, 2), 2.0), token=tokens[2])
        cache.set_token(tokens[2])
        hit = cache.get(0, (1,))
        assert hit is not None and float(hit[0, 0]) == 2.0

    def test_lru_eviction_applies_to_speculative_entries_too(self):
        cache = ResidualRouteCache(max_entries=2)
        cache.set_token("now")
        for node in range(3):
            cache.put(node, (9,), np.zeros((1, 1)), token="later")
        cache.set_token("later")
        assert cache.get(0, (9,)) is None  # evicted as oldest
        assert cache.get(1, (9,)) is not None
        assert cache.get(2, (9,)) is not None


class TestRepairPath:
    """The incremental-repair surface of the cache (the re-wired case)."""

    @staticmethod
    def _line_dense(n, weight=1.0):
        dense = np.full((n, n), np.nan)
        for i in range(n - 1):
            dense[i, i + 1] = weight
        return dense

    @staticmethod
    def _fresh_rows(dense, sources):
        from repro.routing.graph import OverlayGraph
        from repro.routing.shortest_path import shortest_path_costs_multi

        graph = OverlayGraph(dense.shape[0])
        for u in range(dense.shape[0]):
            for v in range(dense.shape[0]):
                if not np.isnan(dense[u, v]):
                    graph.add_edge(u, v, float(dense[u, v]))
        return shortest_path_costs_multi(graph, list(sources))

    def test_hit_rate_is_zero_before_any_lookup(self):
        cache = ResidualRouteCache(max_entries=4)
        assert cache.hit_rate == 0.0
        assert not math.isnan(cache.hit_rate)
        stats = cache.stats()
        assert stats["hit_rate"] == 0.0
        assert stats["hits"] == 0.0 and stats["misses"] == 0.0

    def test_stats_include_repair_counters(self):
        cache = ResidualRouteCache(max_entries=4)
        stats = cache.stats()
        assert stats["repairs"] == 0.0
        assert stats["restamps"] == 0.0

    def test_entry_info(self):
        cache = ResidualRouteCache(max_entries=4)
        cache.set_token(("v1",))
        cache.put(3, (0, 1), np.zeros((2, 4)))
        assert cache.entry_info(3) == (("v1",), (0, 1))
        assert cache.entry_info(5) is None
        # Introspection counts nothing.
        assert cache.hits == 0 and cache.misses == 0

    def test_repair_updates_matrix_and_token(self):
        n = 5
        old_dense = self._line_dense(n)
        sources = [0, 1, 2, 4]  # the residual of node 3
        old_dense[3, :] = np.nan
        cache = ResidualRouteCache(max_entries=4)
        cache.set_token(("old",))
        cache.put(3, tuple(sources), self._fresh_rows(old_dense, sources))
        # Node 1 re-wires: 1 -> 3 replaces 1 -> 2.
        new_dense = old_dense.copy()
        new_dense[1, :] = np.nan
        new_dense[1, 3] = 0.5
        cache.set_token(("new",))
        repaired = cache.repair(3, {1}, new_dense, maximize=False)
        assert np.array_equal(repaired, self._fresh_rows(new_dense, sources))
        assert cache.repairs == 1
        assert cache.get(3, tuple(sources)) is not None  # current token now
        assert cache.hits == 1

    def test_repair_with_empty_delta_restamps(self):
        cache = ResidualRouteCache(max_entries=4)
        cache.set_token(("old",))
        matrix = np.ones((2, 4))
        cache.put(1, (0, 2), matrix)
        cache.set_token(("new",))
        assert cache.get(1, (0, 2)) is None  # stale
        out = cache.repair(1, set(), None, maximize=False)
        assert out is matrix
        assert cache.restamps == 1 and cache.repairs == 0
        assert cache.get(1, (0, 2)) is not None

    def test_repair_refusal_drops_the_entry(self):
        n = 5
        dense = self._line_dense(n)
        dense[3, :] = np.nan
        sources = [0, 1, 2, 4]
        cache = ResidualRouteCache(max_entries=4)
        cache.set_token(("old",))
        cache.put(3, tuple(sources), self._fresh_rows(dense, sources))
        cache.set_token(("new",))
        # Changing node 0 (the line's head) makes everything suspect.
        out = cache.repair(
            3, {0}, dense, maximize=False, max_fraction=0.01
        )
        assert out is None
        assert cache.entry_info(3) is None  # dropped, not left stale
        assert cache.repairs == 0

    def test_repair_remaps_rows_across_membership_change(self):
        n = 6
        # Old epoch: node 5 inactive; entry for node 0's residual.
        old_dense = self._line_dense(n)
        old_dense[0, :] = np.nan
        old_dense[4, :] = np.nan  # 4 -> 5 link doesn't exist while 5 is off
        old_hops = (1, 2, 3, 4)
        cache = ResidualRouteCache(max_entries=4)
        cache.set_token(("old",))
        cache.put(0, old_hops, self._fresh_rows(old_dense, old_hops))
        # New epoch: 5 joins (unwired), 4 re-wires to it.
        new_dense = old_dense.copy()
        new_dense[4, 5] = 2.0
        new_hops = (1, 2, 3, 4, 5)
        cache.set_token(("new",))
        repaired = cache.repair(
            0, {4}, new_dense, maximize=False, new_hops=new_hops
        )
        assert np.array_equal(repaired, self._fresh_rows(new_dense, new_hops))
        assert cache.get(0, new_hops) is not None

    def test_speculative_token_collision_still_repairs(self):
        # A speculative entry's predicted token can equal the real
        # current token while describing a wiring that never happened (a
        # re-wire bumps the version by one, exactly like the predicted
        # refresh it displaced); repair must not trust the stamp and
        # must run the asserted delta anyway.
        n = 5
        predicted = self._line_dense(n)  # node 1 keeps 1 -> 2 (the prediction)
        predicted[3, :] = np.nan
        sources = [0, 1, 2, 4]
        cache = ResidualRouteCache(max_entries=4)
        cache.set_token(("v7",))
        cache.put(3, tuple(sources), self._fresh_rows(predicted, sources), token=("v7",))
        # Reality: node 1 re-wired to 3 instead — same version number.
        actual = predicted.copy()
        actual[1, :] = np.nan
        actual[1, 3] = 0.25
        repaired = cache.repair(3, {1}, actual, maximize=False)
        assert np.array_equal(repaired, self._fresh_rows(actual, sources))


class TestDropsCounter:
    """Every way an entry leaves the cache early shows up in ``drops``."""

    def test_lru_eviction_counts_drops(self):
        cache = ResidualRouteCache(max_entries=2)
        cache.set_token("t")
        for node in range(4):
            cache.put(node, (1,), np.zeros((1, 1)))
        assert cache.drops == 2
        assert cache.stats()["drops"] == 2.0

    def test_explicit_drop_counts_once(self):
        cache = ResidualRouteCache(max_entries=4)
        cache.set_token("t")
        cache.put(0, (1,), np.zeros((1, 1)))
        cache.drop(0)
        cache.drop(0)  # absent: not a drop
        cache.drop(99)  # never present: not a drop
        assert cache.drops == 1

    def test_repair_refusal_counts_a_drop(self):
        cache = ResidualRouteCache(max_entries=4)
        cache.set_token("t1")
        cache.put(0, (1,), np.array([[0.0, 5.0, 7.0]]))
        cache.set_token("t2")
        refused = cache.repair(
            0,
            changed_links={1},
            adjacency=np.full((3, 3), np.nan),
            maximize=False,
            max_fraction=0.0,
        )
        assert refused is None
        assert cache.drops == 1
        assert len(cache) == 0

    def test_fresh_cache_reports_zero_drops(self):
        stats = ResidualRouteCache().stats()
        assert stats["drops"] == 0.0
        assert "drops" in stats
