"""Tests for the residual route-value cache and its engine integration."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import (
    BestResponsePolicy,
    DelayMetricProvider,
    EgoistEngine,
    ResidualRouteCache,
)
from repro.netsim.delayspace import DelaySpace
from repro.util.validation import ValidationError


class TestResidualRouteCache:
    def test_token_and_hops_must_match(self):
        cache = ResidualRouteCache(max_entries=4)
        matrix = np.arange(6.0).reshape(2, 3)
        cache.set_token(("v1",))
        cache.put(0, (1, 2), matrix)
        assert cache.get(0, (1, 2)) is matrix
        assert cache.get(0, (1, 3)) is None  # different hops
        cache.set_token(("v2",))
        assert cache.get(0, (1, 2)) is None  # stale token
        assert cache.hits == 1
        assert cache.misses == 2

    def test_lru_eviction(self):
        cache = ResidualRouteCache(max_entries=2)
        cache.set_token("t")
        for node in range(3):
            cache.put(node, (1,), np.zeros((1, 1)))
        assert len(cache) == 2
        assert cache.get(0, (1,)) is None  # evicted as oldest
        assert cache.get(2, (1,)) is not None

    def test_invalidate_clears_entries(self):
        cache = ResidualRouteCache()
        cache.set_token("t")
        cache.put(0, (1,), np.zeros((1, 1)))
        cache.invalidate()
        assert len(cache) == 0
        assert cache.get(0, (1,)) is None

    def test_stats_and_hit_rate(self):
        cache = ResidualRouteCache()
        assert cache.hit_rate == 0.0
        cache.set_token("t")
        cache.put(0, (1,), np.zeros((1, 1)))
        cache.get(0, (1,))
        cache.get(1, (1,))
        stats = cache.stats()
        assert stats["hits"] == 1.0
        assert stats["misses"] == 1.0
        assert cache.hit_rate == pytest.approx(0.5)

    def test_max_entries_must_be_positive(self):
        with pytest.raises(ValidationError):
            ResidualRouteCache(max_entries=0)


def make_engine(route_cache_size, *, n=12, seed=9):
    rng = np.random.default_rng(77)
    matrix = rng.uniform(5.0, 120.0, size=(n, n))
    np.fill_diagonal(matrix, 0.0)
    provider = DelayMetricProvider(DelaySpace(matrix, jitter_std=0.0), estimator="true")
    return EgoistEngine(
        provider,
        BestResponsePolicy(),
        k=2,
        seed=seed,
        route_cache_size=route_cache_size,
    )


def record_key(record):
    return tuple(
        None if isinstance(v, float) and math.isnan(v) else v
        for v in (
            record.epoch,
            record.time,
            record.active_nodes,
            record.rewirings,
            record.mean_cost,
            record.mean_efficiency,
            record.social_cost,
            record.linkstate_bits,
        )
    )


class TestEngineIntegration:
    def test_cache_disabled_with_size_zero(self):
        engine = make_engine(0)
        assert engine.route_cache is None
        engine.run(2)  # still runs fine without the cache

    def test_cache_defaults_to_deployment_size(self):
        engine = make_engine(None)
        assert engine.route_cache is not None
        assert engine.route_cache.max_entries == engine.n

    def test_cached_and_uncached_runs_are_identical(self):
        cached = make_engine(None).run(4).records
        uncached = make_engine(0).run(4).records
        assert [record_key(r) for r in cached] == [record_key(r) for r in uncached]

    def test_quiescent_epochs_hit_the_cache(self):
        """Once best-response dynamics converge with a static announced
        metric, a whole epoch's residual sweeps come from the cache."""
        engine = make_engine(None)
        engine.run(6)  # long enough to converge at this scale
        before = engine.route_cache.hits
        misses_before = engine.route_cache.misses
        engine.run_epoch()
        assert engine.route_cache.hits - before == engine.n
        assert engine.route_cache.misses == misses_before
