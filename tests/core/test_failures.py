"""Unit tests for the failure-injection layer.

Spec validation and round-trips, the epoch-by-epoch
:class:`~repro.core.failures.FailureState` transitions, the
:class:`~repro.core.failures.LinkMaskMetric` wrapper, the resilience
metrics, and a hand-computable four-node single-link-cut scenario whose
every epoch is pinned.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.churn.metrics import cost_overshoot, time_to_reconverge
from repro.core.cost import DISCONNECTION_BANDWIDTH, DISCONNECTION_COST
from repro.core.engine import EgoistEngine, EpochRecord
from repro.core.engine_batch import EngineBatch, EngineSpec
from repro.core.failures import (
    FailureEvent,
    FailureSpec,
    FailureState,
    LinkMaskMetric,
)
from repro.core.policies import KClosestPolicy
from repro.core.providers import BandwidthMetricProvider, DelayMetricProvider
from repro.netsim.bandwidth import BandwidthModel
from repro.netsim.delayspace import DelaySpace
from repro.scenario.spec import ScenarioSpec
from repro.util.validation import ValidationError


def _record(epoch, rewirings=0, mean_cost=10.0):
    return EpochRecord(
        epoch=epoch,
        time=epoch * 60.0,
        active_nodes=4,
        rewirings=rewirings,
        mean_cost=mean_cost,
        mean_efficiency=float("nan"),
        social_cost=4 * mean_cost,
        linkstate_bits=0,
    )


class TestSpecValidation:
    def test_event_requires_known_action(self):
        with pytest.raises(ValidationError, match="unknown failure action"):
            FailureEvent(epoch=0, action="meteor-strike").validate()

    def test_link_actions_need_links_and_reject_self_loops(self):
        with pytest.raises(ValidationError, match="at least one link"):
            FailureEvent(epoch=0, action="link-down").validate()
        with pytest.raises(ValidationError, match="self-loop"):
            FailureEvent(epoch=0, action="link-down", links=((2, 2),)).validate()

    def test_node_actions_need_nodes(self):
        for action in ("node-down", "node-up", "partition"):
            with pytest.raises(ValidationError, match="at least one node"):
                FailureEvent(epoch=0, action=action).validate()

    def test_spec_bounds(self):
        with pytest.raises(ValidationError, match="message_loss"):
            FailureSpec(message_loss=1.0).validate()
        with pytest.raises(ValidationError, match="reannounce_delay"):
            FailureSpec(reannounce_delay=-1).validate()
        with pytest.raises(ValidationError, match="epoch"):
            FailureSpec(
                events=(FailureEvent(epoch=-1, action="heal"),)
            ).validate()

    def test_from_dict_round_trip(self):
        spec = FailureSpec(
            events=(
                FailureEvent(epoch=2, action="link-down", links=((0, 1),)),
                FailureEvent(epoch=4, action="node-down", nodes=(3,)),
            ),
            reannounce_delay=1,
            message_loss=0.25,
        )
        assert FailureSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValidationError, match="unknown failure spec fields"):
            FailureSpec.from_dict({"events": [], "severity": "high"})

    def test_scenario_spec_round_trip_and_range_checks(self):
        spec = ScenarioSpec(
            experiment="failures-resilience",
            n=8,
            k_grid=(2,),
            policies=("k-closest",),
            metric="delay-true",
            epochs=4,
            failures=FailureSpec(
                events=(FailureEvent(epoch=1, action="link-down", links=((0, 7),)),)
            ),
        )
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec
        bad = spec.override(
            failures=FailureSpec(
                events=(FailureEvent(epoch=1, action="node-down", nodes=(99,)),)
            )
        )
        with pytest.raises(ValidationError, match="out of range"):
            bad.validate()


class TestFailureState:
    def test_link_cut_restore_and_reannounce_window(self):
        spec = FailureSpec(
            events=(
                FailureEvent(epoch=1, action="link-down", links=((3, 0),)),
                FailureEvent(epoch=3, action="link-up", links=((0, 3),)),
            ),
            reannounce_delay=2,
        )
        state = FailureState(spec, 6)
        state.advance_to(0)
        assert state.down_links == set()
        state.advance_to(1)
        # Links canonicalise to (min, max) regardless of declared order.
        assert state.down_links == {(0, 3)}
        assert state.announced_masked_links(1) == {(0, 3)}
        state.advance_to(3)
        assert state.down_links == set()  # truth unmasks immediately
        assert state.truth_masked_links() == set()
        # ... but the announced metric stays masked through the window.
        assert state.announced_masked_links(3) == {(0, 3)}
        assert state.announced_masked_links(4) == {(0, 3)}
        state.advance_to(5)
        assert state.announced_masked_links(5) == set()

    def test_partition_expands_to_cross_links_and_heal_clears(self):
        spec = FailureSpec(
            events=(
                FailureEvent(epoch=0, action="partition", nodes=(0, 1)),
                FailureEvent(epoch=1, action="node-down", nodes=(2,)),
                FailureEvent(epoch=2, action="heal"),
            )
        )
        state = FailureState(spec, 4)
        state.advance_to(0)
        assert state.down_links == {(0, 2), (0, 3), (1, 2), (1, 3)}
        state.advance_to(1)
        assert state.down_nodes == {2}
        state.advance_to(2)
        assert state.down_links == set()
        assert state.down_nodes == set()

    def test_out_of_range_events_rejected(self):
        spec = FailureSpec(
            events=(FailureEvent(epoch=0, action="link-down", links=((0, 9),)),)
        )
        with pytest.raises(ValidationError, match="out of range"):
            FailureState(spec, 4)


class TestLinkMaskMetric:
    def _delay_metric(self, n=4):
        d = np.arange(1.0, n * n + 1).reshape(n, n)
        np.fill_diagonal(d, 0.0)
        d = (d + d.T) / 2
        return DelayMetricProvider(
            DelaySpace(d, jitter_std=0.0), estimator="true", seed=0
        ).true_metric()

    def test_masks_both_directions_in_weight_row_matrix(self):
        base = self._delay_metric()
        masked = LinkMaskMetric(base, {(1, 2)})
        assert masked.link_weight(1, 2) == DISCONNECTION_COST
        assert masked.link_weight(2, 1) == DISCONNECTION_COST
        assert masked.link_weight(0, 1) == base.link_weight(0, 1)
        row = masked.link_weight_row(1)
        assert row[2] == DISCONNECTION_COST
        assert row[0] == base.link_weight(1, 0)
        matrix = masked.link_weight_matrix()
        expected = base.link_weight_matrix()
        expected[1, 2] = expected[2, 1] = DISCONNECTION_COST
        np.testing.assert_array_equal(matrix, expected)

    def test_preserves_objective_and_uses_family_mask_value(self):
        base = self._delay_metric()
        masked = LinkMaskMetric(base, {(0, 1)})
        assert masked.maximize == base.maximize
        assert masked.unreachable_value == base.unreachable_value
        assert masked.size == base.size
        bw = BandwidthMetricProvider(BandwidthModel(4, seed=0), seed=0).true_metric()
        bw_masked = LinkMaskMetric(bw, {(0, 1)})
        assert bw_masked.maximize is True
        assert bw_masked.link_weight(0, 1) == DISCONNECTION_BANDWIDTH
        assert bw_masked.link_weight_row(1)[0] == DISCONNECTION_BANDWIDTH


class TestResilienceMetrics:
    def test_time_to_reconverge_finds_first_quiet_window(self):
        records = [
            _record(0, rewirings=4),
            _record(1, rewirings=0),
            _record(2, rewirings=2),  # event epoch
            _record(3, rewirings=1),
            _record(4, rewirings=0),
            _record(5, rewirings=0),
        ]
        assert time_to_reconverge(records, 2) == 2
        assert time_to_reconverge(records, 2, stable_epochs=2) == 2
        assert time_to_reconverge(records, 0) == 1  # pre-event quiet epoch
        assert time_to_reconverge(records, 2, stable_epochs=5) is None
        with pytest.raises(ValidationError, match="stable_epochs"):
            time_to_reconverge(records, 2, stable_epochs=0)

    def test_never_quiet_returns_none(self):
        records = [_record(e, rewirings=1) for e in range(4)]
        assert time_to_reconverge(records, 0) is None

    def test_cost_overshoot_relative_peak(self):
        records = [
            _record(0, mean_cost=10.0),
            _record(1, mean_cost=10.0),
            _record(2, mean_cost=15.0),
            _record(3, mean_cost=11.0),
        ]
        assert cost_overshoot(records, 2) == pytest.approx(0.5)
        # Repair that only improves cost clamps at zero.
        improved = [_record(0, mean_cost=10.0), _record(1, mean_cost=8.0)]
        assert cost_overshoot(improved, 1) == 0.0
        # Empty windows are NaN.
        assert np.isnan(cost_overshoot(records, 0))


def _four_node_cut_engine(failures, **kwargs):
    """k=1 k-closest on a hand-checkable 4-node delay space.

    Delays: d(0,1)=1, d(2,3)=2, d(0,2)=5, d(0,3)=6, d(1,2)=7, d(1,3)=8.
    Each node's closest neighbour is its pair partner, so the initial
    overlay splits into the components {0, 1} and {2, 3}.
    """
    d = np.array(
        [
            [0.0, 1.0, 5.0, 6.0],
            [1.0, 0.0, 7.0, 8.0],
            [5.0, 7.0, 0.0, 2.0],
            [6.0, 8.0, 2.0, 0.0],
        ]
    )
    provider = DelayMetricProvider(
        DelaySpace(d, jitter_std=0.0), estimator="true", seed=0
    )
    return EgoistEngine(
        provider, KClosestPolicy(), 1, failures=failures, seed=0, **kwargs
    )


class TestSingleLinkCutPinned:
    """Every epoch of the four-node single-link-cut run, by hand.

    * Epochs 0-1: overlay is 0<->1, 2<->3 — 8 of the 12 ordered pairs
      (the cross-component ones) have no route.
    * Epoch 2: the (0, 1) cut makes node 0 re-wire to 2 (d=5) and node 1
      to 2 (d=7); the directed edges {0->2, 1->2, 2->3, 3->2} leave the
      6 ordered pairs into {0, 1} unreachable.
    * Epoch 3 is the first quiet epoch: time-to-reconverge is 1.
    """

    FAILURES = FailureSpec(
        events=(FailureEvent(epoch=2, action="link-down", links=((0, 1),)),)
    )

    def test_pinned_trajectory(self):
        history = _four_node_cut_engine(self.FAILURES).run(5)
        assert [r.rewirings for r in history.records] == [4, 0, 2, 0, 0]
        assert [r.routes_stuck for r in history.records] == [8, 8, 6, 6, 6]
        assert time_to_reconverge(history.records, 2) == 1
        # The cut *improved* global reachability here (the overlay was
        # split before it), so the overshoot clamps at zero.
        assert cost_overshoot(history.records, 2) == 0.0

    def test_cut_link_leaves_the_wiring(self):
        engine = _four_node_cut_engine(self.FAILURES)
        engine.run(5)
        wirings = {
            i: sorted(node.wiring.neighbors) for i, node in enumerate(engine.nodes)
        }
        assert wirings == {0: [2], 1: [2], 2: [3], 3: [2]}

    def test_batched_path_is_byte_identical(self):
        def spec():
            d = np.array(
                [
                    [0.0, 1.0, 5.0, 6.0],
                    [1.0, 0.0, 7.0, 8.0],
                    [5.0, 7.0, 0.0, 2.0],
                    [6.0, 8.0, 2.0, 0.0],
                ]
            )
            provider = DelayMetricProvider(
                DelaySpace(d, jitter_std=0.0), estimator="true", seed=0
            )
            return [
                EngineSpec(
                    label="cut",
                    provider=provider,
                    policy=KClosestPolicy(),
                    k=1,
                    failures=self.FAILURES,
                    seed=0,
                )
            ]

        batched = EngineBatch(spec(), batched=True).run(5)
        sequential = EngineBatch(spec(), batched=False).run(5)
        for ra, rb in zip(batched[0].records, sequential[0].records):
            for field in dataclasses.fields(EpochRecord):
                va, vb = getattr(ra, field.name), getattr(rb, field.name)
                if isinstance(va, float) and np.isnan(va):
                    assert np.isnan(vb), field.name
                else:
                    assert va == vb, field.name


class TestMessageLoss:
    def _histories(self, message_loss):
        failures = FailureSpec(
            events=(FailureEvent(epoch=1, action="link-down", links=((0, 1),)),),
            message_loss=message_loss,
        )
        engine = _four_node_cut_engine(failures)
        history = engine.run(4)
        return history, engine

    def test_loss_counts_drops_without_changing_decisions(self):
        lossless, _ = self._histories(0.0)
        lossy, engine = self._histories(0.5)
        # Engine decisions read the global wiring, not the flooded
        # databases, so the records are identical — loss only shows up
        # in the protocol counters.
        for ra, rb in zip(lossless.records, lossy.records):
            for field in dataclasses.fields(EpochRecord):
                va, vb = getattr(ra, field.name), getattr(rb, field.name)
                if isinstance(va, float) and np.isnan(va):
                    assert np.isnan(vb), field.name
                else:
                    assert va == vb, field.name
        assert engine.protocol.stats.announcements_lost > 0

    def test_lossless_run_draws_nothing(self):
        _, engine = self._histories(0.0)
        assert engine.protocol.stats.announcements_lost == 0
        assert engine.protocol._loss_rng is None
