"""Tests for best-response computation (exact, local search, BR(eps))."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.best_response import (
    WiringEvaluator,
    best_response,
    best_response_exact,
    best_response_local_search,
    should_rewire,
)
from repro.core.cost import BandwidthMetric, DelayMetric
from repro.routing.graph import OverlayGraph
from repro.util.validation import ValidationError


def ring_residual(metric, exclude):
    """A ring among all nodes except ``exclude`` (its residual graph)."""
    n = metric.size
    others = [i for i in range(n) if i != exclude]
    graph = OverlayGraph(n)
    for idx, node in enumerate(others):
        nxt = others[(idx + 1) % len(others)]
        graph.add_edge(node, nxt, metric.link_weight(node, nxt))
    return graph


class TestWiringEvaluator:
    def test_empty_wiring_is_fully_disconnected(self, small_delay_metric):
        residual = ring_residual(small_delay_metric, 0)
        evaluator = WiringEvaluator(0, small_delay_metric, residual)
        assert evaluator.evaluate(()) == pytest.approx(
            small_delay_metric.unreachable_value
        )

    def test_single_neighbor_value(self, small_delay_metric):
        residual = ring_residual(small_delay_metric, 0)
        evaluator = WiringEvaluator(0, small_delay_metric, residual)
        # Wiring only to node 1: cost to 1 is the direct delay.
        assert evaluator.value_for_destination({1}, 1) == pytest.approx(
            small_delay_metric.link_weight(0, 1)
        )

    def test_value_uses_min_over_hops(self, small_delay_metric):
        residual = ring_residual(small_delay_metric, 0)
        evaluator = WiringEvaluator(0, small_delay_metric, residual)
        via1 = evaluator.value_for_destination({1}, 3)
        via3 = evaluator.value_for_destination({3}, 3)
        both = evaluator.value_for_destination({1, 3}, 3)
        assert both == pytest.approx(min(via1, via3))

    def test_evaluate_matches_graph_cost(self, small_delay_metric):
        """Evaluator shortcut equals evaluating the full assembled graph."""
        residual = ring_residual(small_delay_metric, 0)
        evaluator = WiringEvaluator(0, small_delay_metric, residual)
        wiring = {1, 4}
        fast = evaluator.evaluate(wiring)
        full = residual.copy()
        for v in wiring:
            full.add_edge(0, v, small_delay_metric.link_weight(0, v))
        slow = small_delay_metric.node_cost(0, full)
        assert fast == pytest.approx(slow)

    def test_required_links_always_included(self, small_delay_metric):
        residual = ring_residual(small_delay_metric, 0)
        evaluator = WiringEvaluator(
            0, small_delay_metric, residual, required=frozenset({4})
        )
        with_req = evaluator.evaluate({1})
        explicit = WiringEvaluator(0, small_delay_metric, residual).evaluate({1, 4})
        assert with_req == pytest.approx(explicit)

    def test_disallowed_neighbor_rejected(self, small_delay_metric):
        residual = ring_residual(small_delay_metric, 0)
        evaluator = WiringEvaluator(
            0, small_delay_metric, residual, candidates=[1, 2]
        )
        with pytest.raises(ValidationError):
            evaluator.evaluate({3})

    def test_bandwidth_evaluator_maximin(self, bandwidth_metric_small):
        residual = ring_residual(bandwidth_metric_small, 0)
        evaluator = WiringEvaluator(0, bandwidth_metric_small, residual)
        value = evaluator.value_for_destination({1}, 1)
        assert value == pytest.approx(bandwidth_metric_small.link_weight(0, 1))


class TestExactBestResponse:
    def test_k1_picks_best_single_hub(self, small_delay_metric):
        residual = ring_residual(small_delay_metric, 0)
        evaluator = WiringEvaluator(0, small_delay_metric, residual)
        result = best_response_exact(evaluator, 1)
        # Check optimality by brute force.
        best = min(
            (evaluator.evaluate({c}), c) for c in evaluator.candidates
        )
        assert result.cost == pytest.approx(best[0])
        assert result.neighbors == frozenset({best[1]})

    def test_exact_is_optimal_for_k2(self, planetlab20_metric):
        metric = planetlab20_metric
        # Use a 8-node restriction to keep enumeration cheap.
        sub = DelayMetric(metric.link_weight_matrix()[:8, :8])
        residual = ring_residual(sub, 0)
        evaluator = WiringEvaluator(0, sub, residual)
        result = best_response_exact(evaluator, 2)
        import itertools

        brute = min(
            evaluator.evaluate(set(combo))
            for combo in itertools.combinations(evaluator.candidates, 2)
        )
        assert result.cost == pytest.approx(brute)

    def test_k_larger_than_candidates(self, small_delay_metric):
        residual = ring_residual(small_delay_metric, 0)
        evaluator = WiringEvaluator(0, small_delay_metric, residual)
        result = best_response_exact(evaluator, 10)
        assert result.neighbors == frozenset({1, 2, 3, 4})


class TestLocalSearch:
    def test_matches_exact_on_small_instance(self, small_delay_metric):
        residual = ring_residual(small_delay_metric, 0)
        evaluator = WiringEvaluator(0, small_delay_metric, residual)
        exact = best_response_exact(evaluator, 2)
        approx = best_response_local_search(evaluator, 2, rng=0)
        assert approx.cost == pytest.approx(exact.cost, rel=0.05)

    def test_close_to_exact_on_larger_instance(self, planetlab20_metric):
        metric = planetlab20_metric
        residual = ring_residual(metric, 0)
        evaluator = WiringEvaluator(0, metric, residual)
        exact = best_response_exact(evaluator, 2)
        approx = best_response_local_search(evaluator, 2, rng=0)
        # The paper reports local search within ~5% of optimal.
        assert approx.cost <= exact.cost * 1.05 + 1e-9

    def test_respects_k(self, planetlab20_metric):
        residual = ring_residual(planetlab20_metric, 0)
        evaluator = WiringEvaluator(0, planetlab20_metric, residual)
        result = best_response_local_search(evaluator, 4, rng=0)
        assert len(result.neighbors) == 4

    def test_seed_wiring_used(self, planetlab20_metric):
        residual = ring_residual(planetlab20_metric, 0)
        evaluator = WiringEvaluator(0, planetlab20_metric, residual)
        seeded = best_response_local_search(
            evaluator, 3, rng=0, seed_wiring=[1, 2, 3]
        )
        assert len(seeded.neighbors) == 3

    def test_improves_over_random_seed(self, planetlab20_metric):
        residual = ring_residual(planetlab20_metric, 0)
        evaluator = WiringEvaluator(0, planetlab20_metric, residual)
        rng = np.random.default_rng(5)
        random_set = list(rng.choice(evaluator.candidates, size=3, replace=False))
        random_cost = evaluator.evaluate(random_set)
        result = best_response_local_search(evaluator, 3, rng=0)
        assert result.cost <= random_cost + 1e-9

    def test_bandwidth_objective_maximized(self, bandwidth_metric_small):
        residual = ring_residual(bandwidth_metric_small, 0)
        evaluator = WiringEvaluator(0, bandwidth_metric_small, residual)
        exact = best_response_exact(evaluator, 2)
        approx = best_response_local_search(evaluator, 2, rng=0)
        assert approx.cost >= exact.cost * 0.95


class TestDispatcherAndEpsilon:
    def test_dispatcher_uses_exact_for_small(self, small_delay_metric):
        residual = ring_residual(small_delay_metric, 0)
        evaluator = WiringEvaluator(0, small_delay_metric, residual)
        result = best_response(evaluator, 2)
        assert result.method == "exact"

    def test_dispatcher_uses_local_search_for_large(self, planetlab20_metric):
        residual = ring_residual(planetlab20_metric, 0)
        evaluator = WiringEvaluator(0, planetlab20_metric, residual)
        result = best_response(evaluator, 3)
        assert result.method == "local-search"

    def test_should_rewire_epsilon(self, small_delay_metric):
        assert should_rewire(small_delay_metric, 100.0, 80.0, epsilon=0.1)
        assert not should_rewire(small_delay_metric, 100.0, 95.0, epsilon=0.1)
        assert not should_rewire(small_delay_metric, 100.0, 120.0, epsilon=0.0)

    def test_should_rewire_requires_strict_improvement(self, small_delay_metric):
        assert not should_rewire(small_delay_metric, 100.0, 100.0)

    def test_should_rewire_negative_epsilon_rejected(self, small_delay_metric):
        with pytest.raises(ValidationError):
            should_rewire(small_delay_metric, 100.0, 80.0, epsilon=-0.1)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(1, 4))
    def test_best_response_cost_monotone_in_k(self, k):
        """A larger neighbour budget can never yield a worse best response."""
        rng = np.random.default_rng(k)
        delays = rng.uniform(1, 50, size=(10, 10))
        np.fill_diagonal(delays, 0)
        metric = DelayMetric(delays)
        residual = ring_residual(metric, 0)
        evaluator = WiringEvaluator(0, metric, residual)
        small = best_response(evaluator, k, rng=0)
        large = best_response(evaluator, k + 1, rng=0)
        assert large.cost <= small.cost + 1e-9
