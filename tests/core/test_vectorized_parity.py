"""Parity and property tests for the vectorised best-response kernels.

The vectorised path (``vectorized=True``, the default) must be an exact
drop-in for the interpreted reference path: bitwise-identical objective
values, identical tie-breaking, identical selected wirings, identical
evaluation counts — on randomized instances across all three metrics,
with and without required (donated) links.

On top of parity, the classic approximation property is pinned: the
local-search best response is never *better* than the exact enumeration
(exact scans every k-subset, including whatever local search returns).
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.best_response import (
    WiringEvaluator,
    _greedy_seed,
    best_response_exact,
    best_response_local_search,
)
from repro.core.cost import BandwidthMetric, DelayMetric, NodeLoadMetric
from repro.routing.graph import OverlayGraph

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

METRIC_KINDS = ("delay", "bandwidth", "load")


def random_instance(seed: int, kind: str, n: int):
    """A random metric plus a sparse random residual graph (seeded)."""
    rng = np.random.default_rng(seed)
    if kind == "delay":
        delays = rng.uniform(1.0, 100.0, size=(n, n))
        np.fill_diagonal(delays, 0.0)
        metric = DelayMetric(delays)
    elif kind == "bandwidth":
        metric = BandwidthMetric(rng.uniform(0.5, 50.0, size=(n, n)))
    else:
        metric = NodeLoadMetric(rng.uniform(0.1, 5.0, size=n))
    graph = OverlayGraph(n)
    out_degree = int(rng.integers(1, 3))
    for u in range(1, n):
        others = [v for v in range(n) if v != u]
        for v in rng.choice(others, size=min(out_degree, len(others)), replace=False):
            graph.add_edge(u, int(v), metric.link_weight(u, int(v)))
    return metric, graph


def make_evaluator(seed: int, kind: str, n: int, with_required: bool):
    metric, graph = random_instance(seed, kind, n)
    required = frozenset({1}) if with_required else frozenset()
    return WiringEvaluator(0, metric, graph, required=required)


@pytest.mark.parametrize("kind", METRIC_KINDS)
@pytest.mark.parametrize("with_required", [False, True])
class TestKernelParity:
    """Batched kernels reproduce the scalar evaluator bit for bit."""

    def test_evaluate_batch_matches_scalar(self, kind, with_required):
        for seed in range(10):
            evaluator = make_evaluator(seed, kind, 6 + seed % 4, with_required)
            pool = [c for c in evaluator.candidates if c not in evaluator.required]
            wirings = [list(c) for c in itertools.combinations(pool, 2)]
            wirings.append([])  # empty wiring rides along (required-only)
            batched = evaluator.evaluate_batch(wirings)
            scalar = np.array([evaluator.evaluate(w) for w in wirings])
            assert np.array_equal(batched, scalar)

    def test_swap_costs_match_scalar_trials(self, kind, with_required):
        for seed in range(10):
            evaluator = make_evaluator(seed, kind, 7 + seed % 3, with_required)
            pool = [c for c in evaluator.candidates if c not in evaluator.required]
            current = pool[:3]
            batched = evaluator.swap_costs(current, pool)
            for o, out in enumerate(current):
                for i, inn in enumerate(pool):
                    if inn in current:
                        continue
                    trial = [inn if c == out else c for c in current]
                    assert batched[o, i] == evaluator.evaluate(trial)

    def test_greedy_seed_parity(self, kind, with_required):
        for seed in range(10):
            evaluator = make_evaluator(seed, kind, 6 + seed % 5, with_required)
            for k in (1, 2, 3):
                assert _greedy_seed(evaluator, k, vectorized=True) == _greedy_seed(
                    evaluator, k, vectorized=False
                )

    def test_exact_enumeration_parity(self, kind, with_required):
        for seed in range(10):
            evaluator = make_evaluator(seed, kind, 6 + seed % 4, with_required)
            for k in (0, 1, 2):
                fast = best_response_exact(evaluator, k, vectorized=True)
                slow = best_response_exact(evaluator, k, vectorized=False)
                assert fast.neighbors == slow.neighbors
                assert fast.cost == slow.cost
                assert fast.evaluations == slow.evaluations

    def test_local_search_parity(self, kind, with_required):
        for seed in range(10):
            evaluator = make_evaluator(seed, kind, 8 + seed % 4, with_required)
            for k in (1, 2, 3):
                fast = best_response_local_search(
                    evaluator, k, rng=seed, vectorized=True
                )
                slow = best_response_local_search(
                    evaluator, k, rng=seed, vectorized=False
                )
                assert fast.neighbors == slow.neighbors
                assert fast.cost == slow.cost
                assert fast.evaluations == slow.evaluations

    def test_local_search_parity_random_seed_wiring(self, kind, with_required):
        """Parity must also hold for random (non-greedy) starting wirings."""
        for seed in range(6):
            evaluator = make_evaluator(seed, kind, 9, with_required)
            fast = best_response_local_search(
                evaluator, 3, rng=seed, greedy_seed=False, vectorized=True
            )
            slow = best_response_local_search(
                evaluator, 3, rng=seed, greedy_seed=False, vectorized=False
            )
            assert fast.neighbors == slow.neighbors
            assert fast.cost == slow.cost


@st.composite
def parity_cases(draw):
    seed = draw(st.integers(0, 100_000))
    kind = draw(st.sampled_from(METRIC_KINDS))
    n = draw(st.integers(5, 11))
    k = draw(st.integers(1, 4))
    return seed, kind, n, k


class TestParityProperties:
    """Hypothesis sweeps over the same invariants."""

    @SETTINGS
    @given(parity_cases())
    def test_local_search_parity_property(self, case):
        seed, kind, n, k = case
        metric, graph = random_instance(seed, kind, n)
        evaluator = WiringEvaluator(0, metric, graph)
        fast = best_response_local_search(evaluator, k, rng=seed, vectorized=True)
        slow = best_response_local_search(evaluator, k, rng=seed, vectorized=False)
        assert fast.neighbors == slow.neighbors
        assert fast.cost == slow.cost

    @SETTINGS
    @given(parity_cases())
    def test_local_search_never_beats_exact(self, case):
        """Exact enumeration scans every k-subset, so no local-search
        outcome can be strictly better — on any metric."""
        seed, kind, n, k = case
        metric, graph = random_instance(seed, kind, n)
        evaluator = WiringEvaluator(0, metric, graph)
        exact = best_response_exact(evaluator, k)
        local = best_response_local_search(evaluator, k, rng=seed)
        assert not metric.better(local.cost, exact.cost)
        # And the local-search cost is self-consistent with its wiring.
        assert local.cost == evaluator.evaluate(local.neighbors)

    @SETTINGS
    @given(parity_cases())
    def test_exact_parity_property(self, case):
        seed, kind, n, k = case
        metric, graph = random_instance(seed, kind, n)
        evaluator = WiringEvaluator(0, metric, graph)
        fast = best_response_exact(evaluator, k, vectorized=True)
        slow = best_response_exact(evaluator, k, vectorized=False)
        assert fast.neighbors == slow.neighbors
        assert fast.cost == slow.cost


class TestEvaluatorNormalization:
    """The __post_init__ normalisation dedupes while preserving order."""

    def test_duplicate_candidates_are_dropped_in_order(self):
        metric, graph = random_instance(0, "delay", 6)
        evaluator = WiringEvaluator(
            0, metric, graph, candidates=[3, 1, 3, 2, 1, 5, 0]
        )
        assert evaluator.candidates == [3, 1, 2, 5]

    def test_duplicate_destinations_are_dropped_in_order(self):
        metric, graph = random_instance(0, "delay", 6)
        evaluator = WiringEvaluator(
            0, metric, graph, destinations=[4, 4, 2, 0, 2]
        )
        assert evaluator.destinations == [4, 2]

    def test_defaults_cover_everyone_else(self):
        metric, graph = random_instance(0, "delay", 6)
        evaluator = WiringEvaluator(2, metric, graph)
        assert evaluator.candidates == [0, 1, 3, 4, 5]
        assert evaluator.destinations == [0, 1, 3, 4, 5]

    def test_dedup_does_not_change_objective(self):
        metric, graph = random_instance(3, "delay", 7)
        plain = WiringEvaluator(0, metric, graph, candidates=[1, 2, 3])
        doubled = WiringEvaluator(0, metric, graph, candidates=[1, 2, 1, 3, 3])
        assert plain.candidates == doubled.candidates
        assert plain.evaluate([1, 3]) == doubled.evaluate([1, 3])
