"""Tests for HybridBR."""

import numpy as np
import pytest

from repro.core.backbone import backbone_links
from repro.core.cost import DelayMetric
from repro.core.hybrid import HybridBRPolicy, build_hybrid_overlay
from repro.core.policies import BestResponsePolicy, build_overlay
from repro.routing.graph import OverlayGraph
from repro.util.validation import ValidationError


@pytest.fixture
def metric12():
    rng = np.random.default_rng(9)
    delays = rng.uniform(5, 120, size=(12, 12))
    delays = (delays + delays.T) / 2
    np.fill_diagonal(delays, 0)
    return DelayMetric(delays)


class TestHybridBRPolicy:
    def test_invalid_k2(self):
        with pytest.raises(ValidationError):
            HybridBRPolicy(k2=3)
        with pytest.raises(ValidationError):
            HybridBRPolicy(k2=-2)

    def test_donated_links_match_backbone(self, metric12):
        policy = HybridBRPolicy(k2=2)
        active = list(range(12))
        donated = policy.donated_links_for(4, active)
        assert donated == backbone_links(active, 2)[4]

    def test_select_includes_donated_and_respects_budget(self, metric12):
        policy = HybridBRPolicy(k2=2)
        residual = OverlayGraph(12)
        chosen = policy.select(0, 5, metric12, residual, rng=0)
        donated = policy.donated_links_for(0, list(range(12)))
        assert donated <= chosen
        assert len(chosen) <= 5

    def test_select_wiring_marks_donated(self, metric12):
        policy = HybridBRPolicy(k2=2)
        residual = OverlayGraph(12)
        wiring = policy.select_wiring(0, 5, metric12, residual, rng=0)
        assert wiring.donated <= wiring.neighbors
        assert len(wiring.donated) == 2

    def test_k_equal_k2_means_pure_backbone(self, metric12):
        policy = HybridBRPolicy(k2=2)
        residual = OverlayGraph(12)
        chosen = policy.select(0, 2, metric12, residual, rng=0)
        assert chosen == policy.donated_links_for(0, list(range(12)))


class TestBuildHybridOverlay:
    def test_overlay_connected_and_degrees(self, metric12):
        wiring = build_hybrid_overlay(metric12, k=4, k2=2, rng=1, rounds=2)
        graph = wiring.to_graph()
        assert graph.is_strongly_connected()
        for node in range(12):
            assert graph.out_degree(node) <= 4

    def test_backbone_links_present(self, metric12):
        wiring = build_hybrid_overlay(metric12, k=4, k2=2, rng=1, rounds=2)
        expected = backbone_links(list(range(12)), 2)
        graph = wiring.to_graph()
        for node, targets in expected.items():
            for target in targets:
                assert graph.has_edge(node, target)

    def test_hybrid_cost_between_backbone_and_pure_br(self, metric12):
        """HybridBR sacrifices some cost vs pure BR but beats the bare ring."""
        hybrid = build_hybrid_overlay(metric12, k=4, k2=2, rng=2, rounds=3)
        pure = build_overlay(BestResponsePolicy(), metric12, 4, rng=2, br_rounds=3)
        ring = build_hybrid_overlay(metric12, k=2, k2=2, rng=2, rounds=1)
        cost = lambda w: np.mean(list(metric12.all_node_costs(w.to_graph()).values()))
        assert cost(pure) <= cost(hybrid) * 1.05
        assert cost(hybrid) <= cost(ring) + 1e-9

    def test_backbone_survives_any_single_departure(self, metric12):
        """With k2=2 the donated ring reconnects around any one failure."""
        wiring = build_hybrid_overlay(metric12, k=4, k2=2, rng=3, rounds=2)
        graph = wiring.to_graph()
        for departed in range(12):
            survivors = [v for v in range(12) if v != departed]
            sub = graph.restricted(survivors)
            # The selfish links may or may not help, but the backbone plus
            # selfish links must keep survivors mutually reachable for most
            # departures; allow the worst case of one unreachable pair.
            reachable = sub.reachable_from(survivors[0])
            assert len(reachable & set(survivors)) >= len(survivors) - 1
