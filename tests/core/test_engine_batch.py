"""Tests for the lockstep engine batch.

The heart of the suite is bitwise parity: a seeded sweep of epoch-driven
deployments must produce byte-identical epoch histories under
``batched=True`` (lockstep stepping with shared residual route-value
prefills) and ``batched=False`` (each engine's ``run()``, i.e. the plain
sequential :class:`EgoistEngine`), for every metric family, with and
without churn, cheating, and BR(eps).
"""

import dataclasses

import numpy as np
import pytest

from repro.churn.models import parametrized_churn, trace_driven_churn
from repro.core.cheating import CheatingModel
from repro.core.cost import DelayMetric
from repro.core.engine import EgoistEngine, EpochRecord
from repro.core.engine_batch import EngineBatch, EngineSpec
from repro.core.hybrid import HybridBRPolicy
from repro.core.policies import (
    BestResponsePolicy,
    KClosestPolicy,
    KRandomPolicy,
    KRegularPolicy,
)
from repro.core.providers import (
    BandwidthMetricProvider,
    DelayMetricProvider,
    LoadMetricProvider,
)
from repro.netsim.bandwidth import BandwidthModel
from repro.netsim.delayspace import DelaySpace
from repro.netsim.load import NodeLoadModel
from repro.util.rng import spawn_generators
from repro.util.validation import ValidationError


def assert_records_identical(a: EpochRecord, b: EpochRecord) -> None:
    for field in dataclasses.fields(EpochRecord):
        va = getattr(a, field.name)
        vb = getattr(b, field.name)
        if isinstance(va, float) and np.isnan(va):
            assert np.isnan(vb), field.name
        else:
            assert va == vb, field.name


def assert_histories_identical(histories_a, histories_b) -> None:
    assert len(histories_a) == len(histories_b)
    for ha, hb in zip(histories_a, histories_b):
        assert len(ha.records) == len(hb.records)
        for ra, rb in zip(ha.records, hb.records):
            assert_records_identical(ra, rb)


def _delay_space(n, seed):
    rng = np.random.default_rng(seed)
    matrix = rng.uniform(5.0, 150.0, size=(n, n))
    np.fill_diagonal(matrix, 0.0)
    return DelaySpace(matrix, jitter_std=1.0)


def _policy_grid():
    return {
        "k-random": KRandomPolicy(),
        "k-regular": KRegularPolicy(),
        "k-closest": KClosestPolicy(),
        "best-response": BestResponsePolicy(),
    }


def _delay_specs(
    n,
    seed,
    *,
    estimator="ping",
    drift=0.0,
    churn=None,
    cheating=None,
    policies=None,
    k_values=(2, 3),
    compute_efficiency=False,
    epsilon=0.0,
):
    """One EngineSpec per (policy, k); each deployment owns one stream."""
    space = _delay_space(n, seed)
    policies = policies if policies is not None else _policy_grid()
    pairs = [(name, policy, k) for k in k_values for name, policy in policies.items()]
    streams = spawn_generators(np.random.default_rng(seed + 1), len(pairs))
    specs = []
    for (name, policy, k), stream in zip(pairs, streams):
        provider = DelayMetricProvider(
            space, estimator=estimator, drift_relative_std=drift, seed=stream
        )
        specs.append(
            EngineSpec(
                label=f"{name}@k={k}",
                provider=provider,
                policy=policy,
                k=k,
                churn=churn,
                cheating=cheating,
                epsilon=epsilon,
                compute_efficiency=compute_efficiency,
                seed=stream,
            )
        )
    return specs


def _bandwidth_specs(n, seed, *, k_values=(2, 3)):
    pairs = [(name, policy, k) for k in k_values for name, policy in _policy_grid().items()]
    streams = spawn_generators(np.random.default_rng(seed + 1), len(pairs))
    specs = []
    for (name, policy, k), stream in zip(pairs, streams):
        provider = BandwidthMetricProvider(BandwidthModel(n, seed=seed), seed=stream)
        specs.append(
            EngineSpec(
                label=f"{name}@k={k}",
                provider=provider,
                policy=policy,
                k=k,
                seed=stream,
            )
        )
    return specs


def _load_specs(n, seed, *, k_values=(2, 3)):
    pairs = [(name, policy, k) for k in k_values for name, policy in _policy_grid().items()]
    streams = spawn_generators(np.random.default_rng(seed + 1), len(pairs))
    specs = []
    for (name, policy, k), stream in zip(pairs, streams):
        model = NodeLoadModel(n, seed=seed)
        model.advance(3)
        specs.append(
            EngineSpec(
                label=f"{name}@k={k}",
                provider=LoadMetricProvider(model),
                policy=policy,
                k=k,
                seed=stream,
            )
        )
    return specs


class TestBatchedSequentialParity:
    """batched=True and batched=False must agree bit for bit."""

    def test_delay_ping_drift(self):
        batched = EngineBatch(_delay_specs(16, 3, drift=0.02), batched=True).run(4)
        sequential = EngineBatch(_delay_specs(16, 3, drift=0.02), batched=False).run(4)
        assert_histories_identical(batched, sequential)

    def test_delay_true_with_churn(self):
        def specs():
            churn = trace_driven_churn(
                14, 6 * 60.0, mean_on=600.0, mean_off=120.0, seed=9
            )
            return _delay_specs(
                14,
                5,
                estimator="true",
                churn=churn,
                compute_efficiency=True,
            )

        batched = EngineBatch(specs(), batched=True).run(6)
        sequential = EngineBatch(specs(), batched=False).run(6)
        assert_histories_identical(batched, sequential)

    def test_parametrized_churn_with_hybrid(self):
        def specs():
            churn = parametrized_churn(15, 5 * 60.0, 5e-3, seed=4)
            policies = {
                "best-response": BestResponsePolicy(),
                "hybrid-br": HybridBRPolicy(k2=2),
            }
            return _delay_specs(
                15,
                8,
                estimator="true",
                churn=churn,
                policies=policies,
                k_values=(4,),
                compute_efficiency=True,
            )

        batched = EngineBatch(specs(), batched=True).run(5)
        sequential = EngineBatch(specs(), batched=False).run(5)
        assert_histories_identical(batched, sequential)

    def test_bandwidth_family(self):
        batched = EngineBatch(_bandwidth_specs(15, 7), batched=True).run(4)
        sequential = EngineBatch(_bandwidth_specs(15, 7), batched=False).run(4)
        assert_histories_identical(batched, sequential)

    def test_load_family(self):
        batched = EngineBatch(_load_specs(15, 11), batched=True).run(4)
        sequential = EngineBatch(_load_specs(15, 11), batched=False).run(4)
        assert_histories_identical(batched, sequential)

    def test_epsilon_and_cheating(self):
        def specs():
            cheating = CheatingModel(
                DelayMetric(_delay_space(14, 2).matrix), {0, 1}, 2.0
            )
            return _delay_specs(
                14,
                2,
                policies={"best-response": BestResponsePolicy()},
                k_values=(2, 4),
                cheating=cheating,
                epsilon=0.1,
            )

        batched = EngineBatch(specs(), batched=True).run(4)
        sequential = EngineBatch(specs(), batched=False).run(4)
        assert_histories_identical(batched, sequential)

    def test_final_wirings_identical(self):
        batch_a = EngineBatch(_delay_specs(14, 6, drift=0.02), batched=True)
        batch_b = EngineBatch(_delay_specs(14, 6, drift=0.02), batched=False)
        batch_a.run(3)
        batch_b.run(3)
        for engine_a, engine_b in zip(batch_a.engines, batch_b.engines):
            for node in range(engine_a.n):
                wa = engine_a.wiring.wiring_of(node)
                wb = engine_b.wiring.wiring_of(node)
                assert (wa.neighbors if wa else None) == (wb.neighbors if wb else None)
                assert engine_a.wiring.weights_of(node) == engine_b.wiring.weights_of(node)


class TestAgainstPlainEngine:
    """The lockstep batch must match direct EgoistEngine runs."""

    def test_matches_direct_engine_runs(self):
        batched = EngineBatch(_delay_specs(15, 13, drift=0.02), batched=True).run(4)
        direct = []
        for spec in _delay_specs(15, 13, drift=0.02):
            direct.append(spec.build_engine().run(4))
        assert_histories_identical(batched, direct)


class TestValidation:
    def test_empty_batch_rejected(self):
        with pytest.raises(ValidationError):
            EngineBatch([])

    def test_mismatched_sizes_rejected(self):
        specs = _delay_specs(10, 1, k_values=(2,)) + _delay_specs(12, 1, k_values=(2,))
        with pytest.raises(ValidationError):
            EngineBatch(specs)

    def test_disabled_route_cache_still_runs(self):
        specs = _delay_specs(
            12, 3, policies={"best-response": BestResponsePolicy()}, k_values=(2,)
        )
        for spec in specs:
            spec.route_cache_size = 0
        histories = EngineBatch(specs, batched=True).run(2)
        assert len(histories[0].records) == 2


class TestMaskedFusedChurnPath:
    """The Fig. 2 tentpole: churned engines take the fused branch."""

    def _churned_batch(self, batched):
        churn = trace_driven_churn(14, 4 * 60.0, mean_on=400.0, mean_off=80.0, seed=5)
        policies = {
            "best-response": BestResponsePolicy(exact_threshold=2),
            "best-response-eps": BestResponsePolicy(epsilon=0.1, exact_threshold=2),
        }
        return EngineBatch(
            _delay_specs(
                14,
                11,
                churn=churn,
                policies=policies,
                k_values=(2, 3),
                compute_efficiency=True,
            ),
            batched=batched,
        )

    def test_partial_membership_is_fusable(self):
        """Churned-down engines must not fall back to sequential steps."""
        batch = self._churned_batch(batched=True)
        fused_partial = 0
        fallback = 0
        original = EngineBatch._fused_engine_steps

        def spy(self, group):
            nonlocal fused_partial
            for st, _resid in group:
                if len(st.plan.active_list) < st.engine.n:
                    fused_partial += 1
            return original(self, group)

        original_step = EgoistEngine.step_node

        def step_spy(engine, plan):
            nonlocal fallback
            fallback += 1
            return original_step(engine, plan)

        EngineBatch._fused_engine_steps = spy
        EgoistEngine.step_node = step_spy
        try:
            batch.run(4)
        finally:
            EngineBatch._fused_engine_steps = original
            EgoistEngine.step_node = original_step
        assert fused_partial > 0, "no fused steps ran at partial membership"
        assert fallback == 0, "a BR engine fell back to per-engine stepping"

    def test_partial_membership_parity_and_persistent_states(self):
        batched_batch = self._churned_batch(batched=True)
        histories = batched_batch.run(2)
        states_after_first = batched_batch._states
        histories = batched_batch.run(2)  # continue on the same states
        assert batched_batch._states is states_after_first
        sequential = self._churned_batch(batched=False).run(4)
        assert_histories_identical(histories, sequential)

    def test_churned_cache_outperforms_sequential(self):
        """The dynamic-membership cache story in miniature: the batch
        serves most lookups from the cache while the sequential engines
        miss on effectively all of them."""
        batched_batch = self._churned_batch(batched=True)
        batched_batch.run(4)
        sequential_batch = self._churned_batch(batched=False)
        sequential_batch.run(4)
        assert batched_batch.cache_stats()["hit_rate"] > 0.4
        assert sequential_batch.cache_stats()["hit_rate"] < 0.2
