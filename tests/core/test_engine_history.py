"""Unit tests for :class:`~repro.core.EngineHistory` accessors.

The steady-state helpers previously mis-handled the edges exercised here:
empty histories, single-epoch histories, and ``warmup_fraction=1.0``
(which used to silently fall back to averaging over *all* epochs,
including the warm-up it was asked to exclude).
"""

from __future__ import annotations

import math

import pytest

from repro.core import EngineHistory, EpochRecord
from repro.util.validation import ValidationError


def make_record(epoch: int, mean_cost: float, efficiency: float = 0.5) -> EpochRecord:
    return EpochRecord(
        epoch=epoch,
        time=epoch * 60.0,
        active_nodes=10,
        rewirings=epoch % 3,
        mean_cost=mean_cost,
        mean_efficiency=efficiency,
        social_cost=mean_cost * 10,
        linkstate_bits=1000 + epoch,
    )


def history_of(*costs: float) -> EngineHistory:
    return EngineHistory(
        records=[make_record(i, c, efficiency=c / 10.0) for i, c in enumerate(costs)]
    )


class TestAccessors:
    def test_empty_history(self):
        history = EngineHistory()
        assert history.rewirings_per_epoch() == []
        assert history.mean_costs() == []
        assert history.mean_efficiencies() == []
        assert history.total_rewirings() == 0
        assert math.isnan(history.steady_state_mean_cost())
        assert math.isnan(history.steady_state_efficiency())

    def test_series_accessors(self):
        history = history_of(30.0, 20.0, 10.0)
        assert history.mean_costs() == [30.0, 20.0, 10.0]
        assert history.mean_efficiencies() == [3.0, 2.0, 1.0]
        assert history.rewirings_per_epoch() == [0, 1, 2]
        assert history.total_rewirings() == 3


class TestSteadyState:
    def test_default_warmup_halves_the_run(self):
        history = history_of(40.0, 30.0, 20.0, 10.0)
        assert history.steady_state_mean_cost() == pytest.approx(15.0)
        assert history.steady_state_efficiency() == pytest.approx(1.5)

    def test_single_record_returns_that_record(self):
        history = history_of(42.0)
        for fraction in (0.0, 0.5, 1.0):
            assert history.steady_state_mean_cost(fraction) == pytest.approx(42.0)
            assert history.steady_state_efficiency(fraction) == pytest.approx(4.2)

    def test_warmup_one_uses_only_the_final_epoch(self):
        history = history_of(100.0, 50.0, 10.0)
        assert history.steady_state_mean_cost(1.0) == pytest.approx(10.0)
        assert history.steady_state_efficiency(1.0) == pytest.approx(1.0)

    def test_warmup_zero_averages_everything(self):
        history = history_of(30.0, 20.0, 10.0)
        assert history.steady_state_mean_cost(0.0) == pytest.approx(20.0)

    def test_warmup_fraction_out_of_range_is_rejected(self):
        history = history_of(1.0, 2.0)
        for bad in (-0.1, 1.5):
            with pytest.raises(ValidationError):
                history.steady_state_mean_cost(bad)
            with pytest.raises(ValidationError):
                history.steady_state_efficiency(bad)
