"""Tests for the bootstrap service."""

import pytest

from repro.core.bootstrap import BootstrapServer
from repro.util.validation import ValidationError


class TestBootstrapServer:
    def test_register_and_members(self):
        server = BootstrapServer(seed=0)
        server.register(3)
        server.register(5)
        assert server.members == {3, 5}
        assert len(server) == 2

    def test_register_idempotent(self):
        server = BootstrapServer(seed=0)
        server.register(1)
        server.register(1)
        assert len(server) == 1

    def test_deregister(self):
        server = BootstrapServer(seed=0)
        server.register(1)
        server.deregister(1)
        server.deregister(99)  # no-op
        assert len(server) == 0

    def test_negative_id_rejected(self):
        with pytest.raises(ValidationError):
            BootstrapServer().register(-1)

    def test_candidates_exclude_newcomer(self):
        server = BootstrapServer(seed=0)
        for node in range(5):
            server.register(node)
        candidates = server.candidates_for(3)
        assert 3 not in candidates
        assert set(candidates) == {0, 1, 2, 4}

    def test_candidates_truncated(self):
        server = BootstrapServer(seed=0)
        for node in range(20):
            server.register(node)
        candidates = server.candidates_for(0, max_candidates=5)
        assert len(candidates) == 5
        assert all(c != 0 for c in candidates)

    def test_candidates_zero_max(self):
        server = BootstrapServer(seed=0)
        server.register(1)
        assert server.candidates_for(0, max_candidates=0) == []

    def test_initial_contact(self):
        server = BootstrapServer(seed=0)
        assert server.initial_contact(0) is None
        server.register(7)
        assert server.initial_contact(0) == 7
        assert server.initial_contact(7) is None
