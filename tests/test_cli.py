"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.scenario import ScenarioSpec, default_spec, resolve, scenario_names


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig1-delay-ping", "fig11-disjoint", "overheads"):
            assert name in out

    def test_every_registered_experiment_has_help(self):
        for name in scenario_names():
            assert resolve(name).help, name

    def test_unknown_experiment_rejected(self, capsys):
        assert main(["run", "fig99-unknown"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_missing_experiment_rejected(self, capsys):
        assert main(["run"]) == 2
        assert "repro list" in capsys.readouterr().err

    def test_k_list_parsing(self):
        parser = build_parser()
        args = parser.parse_args(["run", "fig1-delay-ping", "--k", "2,4,8"])
        assert args.k == (2, 4, 8)

    def test_churn_rate_parsing(self):
        parser = build_parser()
        args = parser.parse_args(["run", "fig2-churn-rate", "--churn-rates", "0.001,0.1"])
        assert args.churn_rates == (0.001, 0.1)

    def test_malformed_param_rejected(self, capsys):
        assert main(["run", "fig1-delay-ping", "--param", "oops"]) == 2
        assert "KEY=VALUE" in capsys.readouterr().err


class TestListJson:
    def test_list_json_is_a_machine_readable_registry_dump(self, capsys):
        assert main(["list", "--json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        names = [entry["name"] for entry in entries]
        assert names == sorted(names)  # deterministic ordering
        assert set(names) == set(scenario_names())
        for entry in entries:
            assert entry["help"]
            assert entry["default_spec"]["experiment"] == entry["name"]
            assert isinstance(entry["smoke_args"], list)

    def test_list_json_specs_round_trip(self, capsys):
        assert main(["list", "--json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        for entry in entries:
            ScenarioSpec.from_dict(entry["default_spec"])


class TestSpecErrorReporting:
    def test_invalid_spec_field_named_in_exit2_message(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        spec = default_spec("fig1-delay-ping").to_dict()
        spec["n"] = 1
        path.write_text(json.dumps(spec))
        assert main(["run", "--spec", str(path)]) == 2
        err = capsys.readouterr().err
        assert "invalid scenario field 'n'" in err
        assert str(path) in err

    def test_multiple_invalid_fields_all_reported(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        spec = default_spec("fig1-delay-ping").to_dict()
        spec["n"] = 1
        spec["metric"] = "nope"
        spec["epochs"] = -3
        path.write_text(json.dumps(spec))
        assert main(["run", "--spec", str(path)]) == 2
        err = capsys.readouterr().err
        for fragment in ("'n'", "'metric'", "'epochs'", "invalid scenario fields"):
            assert fragment in err

    def test_wrongly_typed_field_reported_with_type(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        spec = default_spec("fig1-delay-ping").to_dict()
        spec["n"] = "fifty"
        path.write_text(json.dumps(spec))
        assert main(["run", "--spec", str(path)]) == 2
        err = capsys.readouterr().err
        assert "invalid scenario field 'n'" in err
        assert "wrong type" in err


class TestRun:
    def test_run_overheads_prints_table(self, capsys):
        code = main(["run", "overheads", "--n", "50", "--k", "2,5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "section-4.3" in out
        assert "ping measurement (bps)" in out

    def test_run_small_fig1_and_json_output(self, tmp_path, capsys):
        output = tmp_path / "fig1.json"
        code = main(
            [
                "run",
                "fig1-delay-ping",
                "--n",
                "12",
                "--k",
                "2,3",
                "--br-rounds",
                "2",
                "--seed",
                "3",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        data = json.loads(output.read_text())
        assert data["figure"] == "fig1-delay-ping"
        assert "best-response" in data["series"]
        assert data["metadata"]["scenario"]["experiment"] == "fig1-delay-ping"
        out = capsys.readouterr().out
        assert "best-response" in out

    @pytest.mark.parametrize("name", scenario_names())
    def test_every_registered_experiment_smokes(self, name, capsys):
        """``repro run`` succeeds for every experiment at tiny scale."""
        args = ["run", name, "--seed", "5", *resolve(name).smoke_args]
        assert main(args) == 0, name
        out = capsys.readouterr().out
        assert "\t" in out, name  # a table was printed


class TestSpecRoundTrip:
    def test_spec_subcommand_writes_loadable_spec(self, tmp_path, capsys):
        path = tmp_path / "scenario.json"
        code = main(
            ["spec", "fig1-node-load", "--n", "14", "--k", "2,3", "--output", str(path)]
        )
        assert code == 0
        spec = ScenarioSpec.load(str(path))
        assert spec.experiment == "fig1-node-load"
        assert spec.n == 14
        assert spec.k_grid == (2, 3)

    def test_run_from_spec_reproduces_named_run(self, tmp_path, capsys):
        """A spec saved to JSON reruns to the byte-identical result."""
        spec_path = tmp_path / "scenario.json"
        out_a = tmp_path / "a.json"
        out_b = tmp_path / "b.json"
        common = ["--n", "12", "--k", "2,3", "--br-rounds", "1", "--seed", "9"]
        assert main(["spec", "fig1-delay-ping", *common, "--output", str(spec_path)]) == 0
        assert main(["run", "fig1-delay-ping", *common, "--output", str(out_a)]) == 0
        assert main(["run", "--spec", str(spec_path), "--output", str(out_b)]) == 0
        assert json.loads(out_a.read_text()) == json.loads(out_b.read_text())

    def test_spec_json_round_trip_is_stable(self):
        spec = default_spec("fig2-churn-rate")
        clone = ScenarioSpec.from_json(spec.to_json())
        assert clone.to_dict() == spec.to_dict()

    def test_spec_and_experiment_name_conflict(self, tmp_path, capsys):
        path = tmp_path / "scenario.json"
        default_spec("overheads").save(str(path))
        assert main(["run", "overheads", "--spec", str(path)]) == 2
        assert "only one" in capsys.readouterr().err

    def test_missing_spec_file_is_a_clean_error(self, tmp_path, capsys):
        assert main(["run", "--spec", str(tmp_path / "nope.json")]) == 2
        assert "cannot read spec file" in capsys.readouterr().err

    def test_invalid_spec_json_is_a_clean_error(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        assert main(["run", "--spec", str(path)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_overrides_apply_on_top_of_spec_file(self, tmp_path):
        """--spec composes with the other flags instead of dropping them."""
        path = tmp_path / "scenario.json"
        out = tmp_path / "out.json"
        default_spec("overheads").override(n=20, k_grid=(2,)).save(str(path))
        assert main(["run", "--spec", str(path), "--n", "14", "--output", str(out)]) == 0
        data = json.loads(out.read_text())
        assert data["metadata"]["scenario"]["n"] == 14

    def test_validate_with_engine_param_runs_engine_rows(self, tmp_path, capsys):
        code = main(
            [
                "run", "overheads", "--n", "10", "--k", "2",
                "--param", "validate_with_engine=true",
            ]
        )
        assert code == 0
        assert "link-state measured (bps, simulated)" in capsys.readouterr().out


class TestSweep:
    TEMPLATE = {
        "name": "cli-sweep",
        "base": {
            "experiment": "fig1-delay-ping",
            "n": 10,
            "k_grid": [2],
            "br_rounds": 1,
            "seed": 3,
        },
        "axes": {
            "panel": [
                {"label": "ping", "experiment": "fig1-delay-ping", "metric": "delay-ping"},
                {"label": "load", "experiment": "fig1-node-load", "metric": "load"},
            ]
        },
    }

    def _write_template(self, tmp_path):
        path = tmp_path / "template.json"
        path.write_text(json.dumps(self.TEMPLATE))
        return str(path)

    def test_dry_run_plans_without_running(self, tmp_path, capsys):
        template = self._write_template(tmp_path)
        store = tmp_path / "store"
        code = main(["sweep", template, "--dry-run", "--store", str(store)])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 cells (0 complete)" in out
        assert "pending" in out
        assert not list(store.glob("*.json"))  # nothing executed

    def test_dry_run_json_plan(self, tmp_path, capsys):
        template = self._write_template(tmp_path)
        code = main(
            ["sweep", template, "--dry-run", "--json", "--store", str(tmp_path / "s")]
        )
        assert code == 0
        plan = json.loads(capsys.readouterr().out)
        assert plan["total"] == 2 and plan["complete"] == 0
        assert [cell["experiment"] for cell in plan["cells"]] == [
            "fig1-delay-ping",
            "fig1-node-load",
        ]
        assert all(len(cell["key"]) == 32 for cell in plan["cells"])

    def test_sweep_runs_aggregates_and_resumes(self, tmp_path, capsys):
        template = self._write_template(tmp_path)
        store = str(tmp_path / "store")
        output = tmp_path / "agg"
        assert main(
            ["sweep", template, "--workers", "2", "--store", store,
             "--output", str(output)]
        ) == 0
        out = capsys.readouterr().out
        assert "SWEEP total=2 executed=2 skipped=0 failed=0 workers=2" in out
        assert "fig1-node-load" in out
        assert (output / "fig1-delay-ping.json").exists()
        assert json.loads((output / "summary.json").read_text())["report"]["total"] == 2
        # Resume: both cells are complete, nothing re-executes.
        assert main(["sweep", template, "--resume", "--store", store]) == 0
        assert (
            "SWEEP total=2 executed=0 skipped=2 failed=0 workers=1"
            in capsys.readouterr().out
        )
        # Dry-run agrees the store is complete.
        assert main(["sweep", template, "--dry-run", "--store", store]) == 0
        assert "2 cells (2 complete)" in capsys.readouterr().out

    def test_sweep_resume_completes_only_missing_cells(self, tmp_path, capsys):
        """Kill-and-resume: delete one stored cell, --resume refills just it."""
        template = self._write_template(tmp_path)
        store = tmp_path / "store"
        assert main(["sweep", template, "--store", str(store)]) == 0
        capsys.readouterr()
        victim = sorted(store.glob("*.json"))[0]
        victim.unlink()
        assert main(["sweep", template, "--resume", "--store", str(store)]) == 0
        assert "executed=1 skipped=1" in capsys.readouterr().out
        assert victim.exists()

    def test_sweep_missing_template_is_exit_2(self, tmp_path, capsys):
        assert main(["sweep", str(tmp_path / "nope.json")]) == 2
        assert "cannot read sweep template" in capsys.readouterr().err

    def test_sweep_with_failing_cell_exits_nonzero(self, tmp_path, capsys):
        """A crashing cell is reported per key and fails the command."""
        template = dict(self.TEMPLATE)
        template["axes"] = {
            "panel": [
                {"label": "good", "experiment": "fig1-delay-ping"},
                # Passes template validation but the runner raises: the
                # fig2 experiment refuses to run without a churn spec.
                {"label": "bad", "experiment": "fig2-efficiency-vs-k",
                 "metric": "delay-true", "epochs": 1},
            ]
        }
        path = tmp_path / "template.json"
        path.write_text(json.dumps(template))
        store = tmp_path / "store"
        code = main(["sweep", str(path), "--store", str(store)])
        captured = capsys.readouterr()
        assert code == 1
        assert "SWEEP total=2 executed=1 skipped=0 failed=1 workers=1" in captured.out
        assert "FAILED" in captured.err and "churn" in captured.err
        assert "aggregation skipped" in captured.err

    def test_sweep_matches_single_runs_byte_for_byte(self, tmp_path, capsys):
        """A sweep cell equals `repro run --spec` of the same spec."""
        from repro.sweep import SweepStore, expand_corpus, load_templates

        template = self._write_template(tmp_path)
        store = str(tmp_path / "store")
        assert main(["sweep", template, "--store", store]) == 0
        capsys.readouterr()
        cells = expand_corpus(load_templates(template))
        cell = cells[0]
        spec_path = tmp_path / "cell.json"
        cell.spec.save(str(spec_path))
        out_path = tmp_path / "single.json"
        assert main(["run", "--spec", str(spec_path), "--output", str(out_path)]) == 0
        single = json.loads(out_path.read_text())
        assert SweepStore(store).get(cell.key)["result"] == single

    def test_sweep_json_without_dry_run_rejected(self, tmp_path, capsys):
        template = self._write_template(tmp_path)
        assert main(["sweep", template, "--json"]) == 2
        assert "--dry-run" in capsys.readouterr().err

    def test_sweep_failure_output_carries_the_traceback(self, tmp_path, capsys):
        """The stderr report includes the failing cell's full traceback."""
        template = dict(self.TEMPLATE)
        template["axes"] = {
            "panel": [
                {"label": "bad", "experiment": "fig2-efficiency-vs-k",
                 "metric": "delay-true", "epochs": 1},
            ]
        }
        path = tmp_path / "template.json"
        path.write_text(json.dumps(template))
        assert main(["sweep", str(path), "--store", str(tmp_path / "s")]) == 1
        err = capsys.readouterr().err
        assert "FAILED" in err
        assert "Traceback (most recent call last)" in err


class TestSweepStatus:
    def _write_template(self, tmp_path):
        path = tmp_path / "template.json"
        path.write_text(json.dumps(TestSweep.TEMPLATE))
        return str(path)

    def test_status_reports_store_progress(self, tmp_path, capsys):
        template = self._write_template(tmp_path)
        store = str(tmp_path / "store")
        assert main(["sweep", template, "--status", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "SWEEP-STATUS total=2 done=0 claimed=0 orphaned=0 failed=0 pending=2" in out
        assert main(["sweep", template, "--store", store]) == 0
        capsys.readouterr()
        assert main(["sweep", template, "--status", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "SWEEP-STATUS total=2 done=2 claimed=0 orphaned=0 failed=0 pending=0" in out
        assert "# host " in out  # per-host throughput line

    def test_status_json_is_machine_readable(self, tmp_path, capsys):
        template = self._write_template(tmp_path)
        store = str(tmp_path / "store")
        assert main(["sweep", template, "--store", store]) == 0
        capsys.readouterr()
        assert main(["sweep", template, "--status", "--json", "--store", store]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["total"] == 2 and document["done"] == 2
        assert len(document["cells"]) == 2
        assert document["hosts"][0]["cells"] == 2

    def test_status_shows_orphaned_claims(self, tmp_path, capsys):
        from repro.sweep import SweepStore
        from repro.sweep.dist import ClaimStore

        template = self._write_template(tmp_path)
        store = str(tmp_path / "store")
        dead = ClaimStore(
            SweepStore(store).backend, lease_seconds=1e-9, host="dead-host", pid=7
        )
        from repro.sweep import expand_corpus, load_templates

        cells = expand_corpus(load_templates(template))
        assert dead.try_claim(cells[0].key) is not None
        assert main(["sweep", template, "--status", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "orphaned=1" in out
        assert "dead-host:7" in out and "lease expired" in out

    def test_status_with_dry_run_rejected(self, tmp_path, capsys):
        template = self._write_template(tmp_path)
        assert main(["sweep", template, "--status", "--dry-run"]) == 2
        assert "at most one" in capsys.readouterr().err


class TestSweepWorker:
    def _write_template(self, tmp_path):
        path = tmp_path / "template.json"
        path.write_text(json.dumps(TestSweep.TEMPLATE))
        return str(path)

    def test_worker_drains_the_corpus(self, tmp_path, capsys):
        template = self._write_template(tmp_path)
        store = str(tmp_path / "store")
        assert main(["sweep-worker", template, "--store", store]) == 0
        out = capsys.readouterr().out
        assert "SWEEP total=2 executed=2 skipped=0 failed=0 workers=1" in out
        assert "host=" in out and "pid=" in out
        # A second worker over the complete store executes nothing.
        assert main(["sweep-worker", template, "--store", store]) == 0
        assert "executed=0 skipped=2" in capsys.readouterr().out

    def test_worker_output_byte_identical_to_sweep(self, tmp_path, capsys):
        template = self._write_template(tmp_path)
        assert main(["sweep", template, "--store", str(tmp_path / "a")]) == 0
        assert main(["sweep-worker", template, "--store", str(tmp_path / "b")]) == 0
        capsys.readouterr()
        for cell in sorted((tmp_path / "a").glob("*.json")):
            assert cell.read_bytes() == (tmp_path / "b" / cell.name).read_bytes()

    def test_worker_timeout_on_foreign_lease_exits_1(self, tmp_path, capsys):
        from repro.sweep import SweepStore, expand_corpus, load_templates
        from repro.sweep.dist import ClaimStore

        template = self._write_template(tmp_path)
        store = str(tmp_path / "store")
        cells = expand_corpus(load_templates(template))
        holder = ClaimStore(
            SweepStore(store).backend, lease_seconds=300.0, host="other", pid=1
        )
        assert holder.try_claim(cells[0].key) is not None
        code = main(
            ["sweep-worker", template, "--store", store,
             "--poll", "0.05", "--timeout", "0.3"]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "timed out" in captured.err
        assert "executed=1" in captured.out

    def test_worker_reports_foreign_failure_records(self, tmp_path, capsys):
        from repro.sweep import SweepStore, expand_corpus, load_templates
        from repro.sweep.dist import ClaimStore

        template = self._write_template(tmp_path)
        store = str(tmp_path / "store")
        cells = expand_corpus(load_templates(template))
        marker = ClaimStore(SweepStore(store).backend, host="other", pid=1)
        marker.mark_failed(cells[0].key, error="Boom", traceback_text="TB")
        code = main(["sweep-worker", template, "--store", store])
        captured = capsys.readouterr()
        assert code == 1
        assert "failed on another worker" in captured.err
        assert "failed=1" in captured.out


class TestVerbose:
    def test_verbose_prints_cache_stats_for_epoch_scenarios(self, capsys):
        assert main(
            ["run", "fig3-rewirings", "--n", "10", "--k", "2",
             "--epochs", "2", "--seed", "4", "--verbose"]
        ) == 0
        out = capsys.readouterr().out
        assert "# cache: hits=" in out
        assert "hit_rate=" in out

    def test_verbose_on_build_only_scenarios_reports_na(self, capsys):
        assert main(
            ["run", "fig1-node-load", "--n", "12", "--k", "2",
             "--br-rounds", "1", "--seed", "3", "--verbose"]
        ) == 0
        assert "# cache: n/a" in capsys.readouterr().out


class TestTelemetryCLI:
    def test_run_trace_writes_trace_and_prints_summary_line(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        assert main(
            ["run", "fig3-rewirings", "--n", "10", "--k", "2",
             "--epochs", "2", "--seed", "4", "--trace", str(trace)]
        ) == 0
        out = capsys.readouterr().out
        assert "# TELEMETRY spans=" in out
        assert f"trace={trace}" in out
        first = json.loads(trace.read_text().splitlines()[0])
        assert first == {"kind": "begin", "schema": 1, "clock": "perf_counter"}

    def test_trace_summarize_table_json_and_coverage_gate(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        assert main(
            ["run", "fig3-rewirings", "--n", "10", "--k", "2",
             "--epochs", "2", "--seed", "4", "--trace", str(trace)]
        ) == 0
        capsys.readouterr()

        assert main(["trace", "summarize", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "phase" in out and "batch.steps" in out
        assert "TRACE wall=" in out

        assert main(
            ["trace", "summarize", str(trace), "--check-coverage", "0.9"]
        ) == 0
        capsys.readouterr()

        assert main(["trace", "summarize", str(trace), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["coverage"] >= 0.9
        assert any(p["name"] == "run" for p in summary["phases"])

    def test_check_coverage_failure_is_exit_1(self, tmp_path, capsys):
        trace = tmp_path / "sparse.jsonl"
        trace.write_text(
            "\n".join(
                [
                    '{"kind":"begin","schema":1,"clock":"perf_counter"}',
                    '{"kind":"span","seq":0,"name":"a","ts":0.0,"dur":1.0,"depth":0}',
                    '{"kind":"span","seq":1,"name":"b","ts":9.0,"dur":1.0,"depth":0}',
                    '{"kind":"end","spans":2,"events":0}',
                ]
            )
            + "\n"
        )
        assert main(
            ["trace", "summarize", str(trace), "--check-coverage", "0.9"]
        ) == 1
        captured = capsys.readouterr()
        assert "below the required" in captured.err

    def test_sweep_telemetry_prints_summary_line(self, tmp_path, capsys):
        template = tmp_path / "template.json"
        template.write_text(
            json.dumps(
                {
                    "name": "cli-telemetry",
                    "base": {
                        "experiment": "fig1-delay-ping",
                        "n": 10,
                        "k_grid": [2],
                        "br_rounds": 1,
                        "seed": 3,
                    },
                    "axes": {"n": [10, 11]},
                }
            )
        )
        trace = tmp_path / "sweep.jsonl"
        assert main(
            ["sweep", str(template), "--store", str(tmp_path / "store"),
             "--workers", "1", "--telemetry", "--trace", str(trace)]
        ) == 0
        out = capsys.readouterr().out
        assert "# TELEMETRY spans=" in out
        assert trace.exists()

    def test_verbose_cache_line_includes_drops(self, capsys):
        assert main(
            ["run", "fig3-rewirings", "--n", "10", "--k", "2",
             "--epochs", "2", "--seed", "4", "--verbose"]
        ) == 0
        assert "drops=" in capsys.readouterr().out
