"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig1-delay-ping", "fig11-disjoint", "overheads"):
            assert name in out

    def test_every_registered_experiment_has_help(self):
        for name, spec in EXPERIMENTS.items():
            assert spec["help"], name

    def test_unknown_experiment_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "fig99-unknown"])

    def test_k_list_parsing(self):
        parser = build_parser()
        args = parser.parse_args(["run", "fig1-delay-ping", "--k", "2,4,8"])
        assert args.k == (2, 4, 8)

    def test_churn_rate_parsing(self):
        parser = build_parser()
        args = parser.parse_args(["run", "fig2-churn-rate", "--churn-rates", "0.001,0.1"])
        assert args.churn_rates == (0.001, 0.1)


class TestRun:
    def test_run_overheads_prints_table(self, capsys):
        code = main(["run", "overheads", "--n", "50", "--k", "2,5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "section-4.3" in out
        assert "ping measurement (bps)" in out

    def test_run_small_fig1_and_json_output(self, tmp_path, capsys):
        output = tmp_path / "fig1.json"
        code = main(
            [
                "run",
                "fig1-delay-ping",
                "--n",
                "12",
                "--k",
                "2,3",
                "--br-rounds",
                "2",
                "--seed",
                "3",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        data = json.loads(output.read_text())
        assert data["figure"] == "fig1-delay-ping"
        assert "best-response" in data["series"]
        out = capsys.readouterr().out
        assert "best-response" in out

    def test_run_ablation_preferences(self, capsys):
        code = main(
            [
                "run",
                "ablation-preferences",
                "--n",
                "12",
                "--k",
                "3",
                "--br-rounds",
                "2",
                "--seed",
                "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ablation-preferences" in out
