"""Self-time attribution and the `repro trace summarize` output."""

from __future__ import annotations

import pytest

from repro.telemetry.summarize import format_summary, summarize
from repro.telemetry.trace import TRACE_SCHEMA_VERSION


def _span(name, ts, dur, depth=0, seq=0):
    return {
        "kind": "span",
        "seq": seq,
        "name": name,
        "ts": ts,
        "dur": dur,
        "depth": depth,
    }


def _trace(spans, events=()):
    return {
        "header": {"kind": "begin", "schema": TRACE_SCHEMA_VERSION},
        "spans": list(spans),
        "events": list(events),
        "end": None,
    }


class TestSummarize:
    def test_empty_trace(self):
        summary = summarize(_trace([]))
        assert summary["wall"] == 0.0
        assert summary["coverage"] == 0.0
        assert summary["phases"] == []

    def test_self_time_excludes_children(self):
        # run [0, 10] containing epoch [1, 4] and epoch [5, 9].
        summary = summarize(
            _trace(
                [
                    _span("run", 0.0, 10.0, 0),
                    _span("epoch", 1.0, 3.0, 1),
                    _span("epoch", 5.0, 4.0, 1),
                ]
            )
        )
        assert summary["wall"] == pytest.approx(10.0)
        assert summary["coverage"] == pytest.approx(1.0)
        by_name = {p["name"]: p for p in summary["phases"]}
        assert by_name["run"]["total"] == pytest.approx(10.0)
        assert by_name["run"]["self"] == pytest.approx(3.0)  # 10 - (3 + 4)
        assert by_name["epoch"]["count"] == 2
        assert by_name["epoch"]["self"] == pytest.approx(7.0)
        # Self times sum to wall: every moment attributed exactly once.
        assert sum(p["self"] for p in summary["phases"]) == pytest.approx(10.0)
        assert by_name["epoch"]["pct"] == pytest.approx(70.0)

    def test_phases_ranked_by_self_time(self):
        summary = summarize(
            _trace([_span("small", 0.0, 1.0), _span("big", 2.0, 5.0)])
        )
        assert [p["name"] for p in summary["phases"]] == ["big", "small"]

    def test_coverage_counts_only_top_level_spans(self):
        # Two top-level spans over a 10 s window, 4 s traced.
        summary = summarize(
            _trace([_span("a", 0.0, 3.0), _span("b", 9.0, 1.0)])
        )
        assert summary["wall"] == pytest.approx(10.0)
        assert summary["coverage"] == pytest.approx(0.4)

    def test_backdated_sibling_adopted_as_child(self):
        # A parent-side recorded sweep.cell span at depth 0 whose interval
        # contains the inline epoch spans: containment, not depth, decides
        # nesting, so the cell's self time excludes the epochs.
        summary = summarize(
            _trace(
                [
                    _span("sweep.cell", 0.0, 4.0, 0),
                    _span("epoch", 0.5, 1.0, 0),
                    _span("epoch", 2.0, 1.5, 0),
                ]
            )
        )
        by_name = {p["name"]: p for p in summary["phases"]}
        assert by_name["sweep.cell"]["self"] == pytest.approx(1.5)
        assert summary["coverage"] == pytest.approx(1.0)

    def test_events_counted_by_name(self):
        summary = summarize(
            _trace(
                [_span("s", 0.0, 1.0)],
                [
                    {"kind": "event", "name": "fail", "ts": 0.1},
                    {"kind": "event", "name": "fail", "ts": 0.2},
                    {"kind": "event", "name": "mark", "ts": 0.3},
                ],
            )
        )
        assert summary["events_by_name"] == {"fail": 2, "mark": 1}
        assert summary["events"] == 3


class TestFormatSummary:
    def test_table_and_trace_line(self):
        summary = summarize(
            _trace(
                [
                    _span("run", 0.0, 10.0, 0),
                    _span("epoch.steps", 1.0, 8.0, 1),
                ]
            )
        )
        text = format_summary(summary)
        lines = text.splitlines()
        assert lines[0].split() == ["phase", "count", "total", "s", "self", "s", "%", "wall"]
        assert lines[1].startswith("epoch.steps")  # self-time ranked
        assert lines[-1] == "TRACE wall=10.0000s coverage=100.0% spans=2 events=0"
