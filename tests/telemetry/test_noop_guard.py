"""The zero-cost-when-off guard and the results-determinism contract."""

from __future__ import annotations

import gc
import json
import sys

from repro.scenario.session import run_spec
from repro.scenario.spec import ScenarioSpec
from repro.telemetry import runtime as telemetry
from repro.telemetry.registry import NULL_SPAN


def _hot_loop(iterations: int) -> None:
    """Every disabled hot-path helper, as an instrumented loop calls them."""
    for _ in range(iterations):
        with telemetry.span("epoch.steps", epoch=3):
            pass
        telemetry.count("engine.steps")
        telemetry.observe("serve.request.lookup", 0.001)
        telemetry.set_gauge("depth", 1.0)
        telemetry.kernel_call("shortest.multi", 16)
        telemetry.event("mark")
        telemetry.record_span("cell", 0.01)


class TestDisabledGuard:
    def test_disabled_span_is_the_shared_singleton(self):
        assert not telemetry.enabled()
        assert telemetry.span("anything", epoch=1) is NULL_SPAN
        assert telemetry.span("other") is NULL_SPAN

    def test_disabled_accessors_are_none(self):
        assert telemetry.metrics() is None
        assert telemetry.tracer() is None
        assert telemetry.trace_path() is None
        assert telemetry.summary_line() == "TELEMETRY spans=0 events=0"

    def test_disabled_helpers_allocate_nothing_lasting(self):
        _hot_loop(200)  # warm caches, interned keys, bytecode specialisation
        gc.collect()
        before = sys.getallocatedblocks()
        _hot_loop(500)
        gc.collect()
        after = sys.getallocatedblocks()
        # Nothing telemetry-shaped may survive the loop.  A handful of
        # blocks of interpreter noise is tolerated; 500 iterations of any
        # real per-call retention would show up as hundreds.
        assert abs(after - before) <= 16

    def test_enable_disable_round_trip(self):
        sink = []
        registry = telemetry.enable(trace=sink)
        assert telemetry.enabled()
        assert telemetry.metrics() is registry
        with telemetry.span("s"):
            telemetry.count("c")
        summary = telemetry.disable()
        assert summary == {"spans": 1, "events": 0}
        assert not telemetry.enabled()
        assert sink[-1] == {"kind": "end", "spans": 1, "events": 0}


class TestResultsUnperturbed:
    """Results must be byte-identical with telemetry on and off."""

    def _run(self) -> str:
        spec = ScenarioSpec(
            experiment="live-overlay",
            n=12,
            k_grid=(3,),
            policies=("best-response",),
            metric="delay-ping",
            epochs=3,
            seed=31,
        )
        result = run_spec(spec, batched=True)
        return json.dumps(result.as_dict(), sort_keys=True)

    def test_epoch_records_byte_identical_on_off(self):
        baseline = self._run()
        telemetry.enable(trace=[])
        try:
            with telemetry.span("run"):
                traced = self._run()
        finally:
            telemetry.disable()
        again = self._run()
        assert traced == baseline
        assert again == baseline

    def test_telemetry_key_never_written_to_metadata(self):
        telemetry.enable(trace=[])
        try:
            document = json.loads(self._run())
        finally:
            telemetry.disable()
        assert "telemetry" not in document["metadata"]
