"""The metrics registry: instruments, folding, and the Prometheus dump."""

from __future__ import annotations

import gc

import pytest

from repro.core.route_cache import ResidualRouteCache
from repro.telemetry.registry import (
    DEFAULT_LATENCY_EDGES,
    NULL_SPAN,
    Histogram,
    MetricsRegistry,
    NullSpan,
)


class TestInstruments:
    def test_counter_create_on_use_and_inc(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.counter("a").inc(4)
        assert registry.counter("a") is registry.counter("a")
        assert registry.snapshot()["counters"]["a"] == 5

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("depth").set(3.0)
        registry.gauge("depth").set(1.5)
        assert registry.snapshot()["gauges"]["depth"] == 1.5

    def test_histogram_edges_must_strictly_increase(self):
        for bad in ((), (1.0, 1.0), (2.0, 1.0)):
            with pytest.raises(ValueError):
                Histogram("h", bad)

    def test_histogram_le_bucket_semantics(self):
        hist = Histogram("h", (0.1, 1.0, 10.0))
        # Each value lands in the first bucket whose edge is >= value
        # (Prometheus `le`); values on an edge belong to that edge.
        for value in (0.05, 0.1, 0.5, 1.0, 2.0, 10.0, 11.0):
            hist.observe(value)
        assert hist.counts == [2, 2, 2, 1]  # <=0.1, <=1.0, <=10.0, overflow
        assert hist.count == 7
        assert hist.sum == pytest.approx(0.05 + 0.1 + 0.5 + 1.0 + 2.0 + 10.0 + 11.0)

    def test_default_edges_are_strictly_increasing(self):
        assert all(
            a < b for a, b in zip(DEFAULT_LATENCY_EDGES, DEFAULT_LATENCY_EDGES[1:])
        )

    def test_histogram_edges_fixed_after_creation(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", (1.0, 2.0))
        # Re-request with different edges returns the existing instrument.
        assert registry.histogram("h", (5.0,)) is hist
        assert hist.edges == (1.0, 2.0)


class TestReadTimeFolding:
    def test_cache_counters_folded_into_snapshot(self):
        registry = MetricsRegistry()
        cache = ResidualRouteCache(max_entries=4)
        registry.attach_cache(cache)
        cache.set_token("t")
        import numpy as np

        cache.put(0, (1,), np.zeros((1, 2)))
        cache.get(0, (1,))  # hit
        cache.get(9, (1,))  # miss
        counters = registry.snapshot()["counters"]
        assert counters["cache.hits"] == 1
        assert counters["cache.misses"] == 1
        assert counters["cache.instances"] == 1
        assert counters["cache.entries"] == 1

    def test_attach_cache_is_weak(self):
        registry = MetricsRegistry()
        cache = ResidualRouteCache(max_entries=4)
        registry.attach_cache(cache)
        del cache
        gc.collect()
        counters = registry.snapshot()["counters"]
        assert "cache.instances" not in counters

    def test_collector_values_join_and_sum(self):
        registry = MetricsRegistry()
        registry.counter("serve.lookups").inc(2)
        registry.register_collector(lambda: {"serve.lookups": 3.0, "serve.epochs": 1.0})
        counters = registry.snapshot()["counters"]
        assert counters["serve.lookups"] == 5.0
        assert counters["serve.epochs"] == 1.0


class TestPrometheus:
    def test_render_cumulative_buckets_and_inf(self):
        registry = MetricsRegistry()
        hist = registry.histogram("serve.request.lookup", (0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        registry.counter("engine.epochs").inc(7)
        registry.gauge("depth").set(2.0)
        text = registry.render_prometheus()
        assert text.endswith("\n")
        assert "# TYPE repro_engine_epochs counter" in text
        assert "repro_engine_epochs 7" in text
        assert "# TYPE repro_depth gauge" in text
        # Dots sanitised to underscores; buckets are cumulative.
        assert 'repro_serve_request_lookup_bucket{le="0.1"} 1' in text
        assert 'repro_serve_request_lookup_bucket{le="1.0"} 2' in text
        assert 'repro_serve_request_lookup_bucket{le="+Inf"} 3' in text
        assert "repro_serve_request_lookup_count 3" in text


class TestNullSpan:
    def test_singleton_context_manager(self):
        with NULL_SPAN as span:
            assert span is NULL_SPAN
        assert isinstance(NULL_SPAN, NullSpan)

    def test_does_not_swallow_exceptions(self):
        with pytest.raises(RuntimeError):
            with NULL_SPAN:
                raise RuntimeError("boom")
