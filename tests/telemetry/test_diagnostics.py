"""Pooled cache stats and the one diagnostics-stripping helper."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.route_cache import ResidualRouteCache
from repro.telemetry.diagnostics import (
    DIAGNOSTIC_KEYS,
    merge_cache_stats,
    pooled_cache_stats,
    pop_diagnostics,
    strip_diagnostics,
)


def _cache_with_traffic(hits: int, misses: int) -> ResidualRouteCache:
    cache = ResidualRouteCache(max_entries=8)
    cache.set_token("t")
    cache.put(0, (1,), np.zeros((1, 2)))
    for _ in range(hits):
        cache.get(0, (1,))
    for _ in range(misses):
        cache.get(9, (1,))
    return cache


class TestPooling:
    def test_pooled_stats_sum_and_reweight(self):
        stats = pooled_cache_stats(
            [_cache_with_traffic(3, 1), None, _cache_with_traffic(1, 3)]
        )
        assert stats["hits"] == 4.0
        assert stats["misses"] == 4.0
        assert stats["entries"] == 2.0
        # Pooled rate from summed traffic, not an average of per-cache rates.
        assert stats["hit_rate"] == pytest.approx(0.5)

    def test_merge_recomputes_hit_rate(self):
        merged = merge_cache_stats(
            [
                {"hits": 9.0, "misses": 1.0, "hit_rate": 0.9},
                None,
                {"hits": 0.0, "misses": 10.0, "hit_rate": 0.0},
            ]
        )
        assert merged["hits"] == 9.0
        assert merged["hit_rate"] == pytest.approx(0.45)

    def test_empty_inputs(self):
        assert pooled_cache_stats([])["hit_rate"] == 0.0
        assert merge_cache_stats([])["hit_rate"] == 0.0


class TestStripDiagnostics:
    def test_reserved_keys(self):
        assert DIAGNOSTIC_KEYS == ("cache", "telemetry")

    def test_pop_from_bare_metadata(self):
        metadata = {"cache": {"hits": 1.0}, "telemetry": {}, "spec": "keep"}
        popped = pop_diagnostics(metadata)
        assert metadata == {"spec": "keep"}
        assert popped == {"cache": {"hits": 1.0}, "telemetry": {}}

    def test_strip_result_document(self):
        document = {"figure": "fig2", "metadata": {"cache": {"hits": 2.0}, "n": 64}}
        popped = strip_diagnostics(document)
        assert document["metadata"] == {"n": 64}
        assert popped["cache"]["hits"] == 2.0

    def test_strip_sweep_cell_document(self):
        document = {"key": "n=64", "result": {"metadata": {"cache": {}, "n": 64}}}
        strip_diagnostics(document)
        assert document["result"]["metadata"] == {"n": 64}

    def test_strip_bare_mapping_without_diagnostics(self):
        document = {"n": 64}
        assert strip_diagnostics(document) == {}
        assert document == {"n": 64}
