"""The JSONL tracer: span nesting, back-dating, and the file round trip."""

from __future__ import annotations

import json

import pytest

from repro.telemetry.summarize import read_trace
from repro.telemetry.trace import TRACE_SCHEMA_VERSION, Tracer
from repro.util.validation import ValidationError


class FakeClock:
    """A controllable monotonic clock for deterministic trace tests."""

    def __init__(self):
        self.now = 100.0

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def __call__(self) -> float:
        return self.now


def test_header_written_on_construction():
    sink = []
    Tracer(sink, clock=FakeClock())
    assert sink[0] == {
        "kind": "begin",
        "schema": TRACE_SCHEMA_VERSION,
        "clock": "perf_counter",
    }


def test_span_nesting_depth_and_timing():
    sink = []
    clock = FakeClock()
    tracer = Tracer(sink, clock=clock)
    with tracer.span("outer", epoch=3):
        clock.advance(1.0)
        with tracer.span("inner"):
            clock.advance(0.25)
        clock.advance(0.5)
    spans = [r for r in sink if r["kind"] == "span"]
    # Written at exit: inner completes first.
    inner, outer = spans
    assert inner["name"] == "inner" and inner["depth"] == 1
    assert inner["ts"] == pytest.approx(1.0) and inner["dur"] == pytest.approx(0.25)
    assert outer["name"] == "outer" and outer["depth"] == 0
    assert outer["ts"] == pytest.approx(0.0) and outer["dur"] == pytest.approx(1.75)
    assert outer["attrs"] == {"epoch": 3}
    assert inner["seq"] < outer["seq"]


def test_record_span_backdates_to_end_now():
    sink = []
    clock = FakeClock()
    tracer = Tracer(sink, clock=clock)
    clock.advance(5.0)
    tracer.record_span("sweep.cell", 2.0, key="n=10", reclaimed=False)
    span = sink[-1]
    assert span["ts"] == pytest.approx(3.0)  # ends "now" at ts=5
    assert span["dur"] == pytest.approx(2.0)
    assert span["depth"] == 0
    assert span["attrs"]["key"] == "n=10"
    # Negative durations (clock skew in an outcome) clamp to zero.
    tracer.record_span("sweep.cell", -1.0)
    assert sink[-1]["dur"] == 0.0


def test_events_and_close_footer():
    sink = []
    tracer = Tracer(sink, clock=FakeClock())
    tracer.event("cell.failed", key="n=10")
    with tracer.span("s"):
        pass
    summary = tracer.close()
    assert summary == {"spans": 1, "events": 1}
    assert sink[-1] == {"kind": "end", "spans": 1, "events": 1}
    # Idempotent: a second close neither re-emits nor recounts.
    assert tracer.close() == summary
    assert sum(1 for r in sink if r["kind"] == "end") == 1
    # Writes after close are dropped.
    tracer.event("late")
    assert sink[-1]["kind"] == "end"


class TestFileRoundTrip:
    def test_file_sink_reads_back_through_read_trace(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        clock = FakeClock()
        with open(path, "w", encoding="utf-8") as handle:
            tracer = Tracer(handle, clock=clock)
            with tracer.span("run", experiment="fig3"):
                clock.advance(1.0)
                tracer.event("mark")
            tracer.close()
        trace = read_trace(str(path))
        assert trace["header"]["schema"] == TRACE_SCHEMA_VERSION
        assert [s["name"] for s in trace["spans"]] == ["run"]
        assert [e["name"] for e in trace["events"]] == ["mark"]
        assert trace["end"] == {"kind": "end", "spans": 1, "events": 1}

    def test_missing_footer_tolerated(self):
        sink = []
        tracer = Tracer(sink, clock=FakeClock())
        with tracer.span("s"):
            pass
        lines = [json.dumps(record) for record in sink]  # no close()
        trace = read_trace(lines)
        assert trace["end"] is None
        assert len(trace["spans"]) == 1

    def test_footer_body_disagreement_rejected(self):
        sink = []
        tracer = Tracer(sink, clock=FakeClock())
        with tracer.span("s"):
            pass
        tracer.close()
        lines = [json.dumps(r) for r in sink if r["kind"] != "span"]
        with pytest.raises(ValidationError, match="footer disagrees"):
            read_trace(lines)

    def test_unknown_schema_rejected(self):
        lines = [json.dumps({"kind": "begin", "schema": 99, "clock": "perf_counter"})]
        with pytest.raises(ValidationError, match="schema"):
            read_trace(lines)

    def test_not_a_trace_rejected(self):
        with pytest.raises(ValidationError, match="unknown kind"):
            read_trace(["{}"])
        with pytest.raises(ValidationError, match="no begin record"):
            read_trace([])
        with pytest.raises(ValidationError, match="not valid JSON"):
            read_trace(["nope"])
