"""Telemetry tests share process-global state; always reset it."""

from __future__ import annotations

import pytest

from repro.telemetry import runtime as telemetry


@pytest.fixture(autouse=True)
def _telemetry_off():
    """Guarantee every test starts and ends with telemetry disabled."""
    telemetry.disable()
    yield
    telemetry.disable()
