"""Tests for social cost and price-of-anarchy helpers."""

import numpy as np
import pytest

from repro.core.cost import DelayMetric
from repro.game.sns_game import SNSGame, best_response_dynamics
from repro.game.social_cost import (
    price_of_anarchy_bound,
    social_cost,
    social_optimum_greedy,
)


@pytest.fixture
def metric6():
    rng = np.random.default_rng(33)
    delays = rng.uniform(5, 60, size=(6, 6))
    delays = (delays + delays.T) / 2
    np.fill_diagonal(delays, 0)
    return DelayMetric(delays)


class TestSocialCost:
    def test_matches_metric_social_cost(self, metric6):
        game = SNSGame(metric6, k=2)
        wiring = game.random_wiring(rng=0)
        assert social_cost(metric6, wiring) == pytest.approx(
            metric6.social_cost(wiring.to_graph())
        )

    def test_greedy_optimum_no_worse_than_equilibrium(self, metric6):
        game = SNSGame(metric6, k=2)
        equilibrium = best_response_dynamics(game, max_rounds=10, rng=0).wiring
        optimum = social_optimum_greedy(metric6, 2, rng=0, rounds=2)
        assert social_cost(metric6, optimum) <= social_cost(metric6, equilibrium) * 1.001

    def test_greedy_optimum_degrees(self, metric6):
        optimum = social_optimum_greedy(metric6, 2, rng=0, rounds=1)
        graph = optimum.to_graph()
        assert all(graph.out_degree(i) == 2 for i in range(6))

    def test_price_of_anarchy_at_least_one(self, metric6):
        game = SNSGame(metric6, k=2)
        equilibrium = best_response_dynamics(game, max_rounds=10, rng=1).wiring
        optimum = social_optimum_greedy(metric6, 2, rng=1, rounds=2)
        ratio = price_of_anarchy_bound(metric6, equilibrium, optimum)
        assert ratio >= 0.999

    def test_price_of_anarchy_small_for_sns(self, metric6):
        """The SNS literature shows equilibria within a constant factor of optimal."""
        game = SNSGame(metric6, k=2)
        equilibrium = best_response_dynamics(game, max_rounds=10, rng=2).wiring
        optimum = social_optimum_greedy(metric6, 2, rng=2, rounds=2)
        assert price_of_anarchy_bound(metric6, equilibrium, optimum) < 2.0

    def test_identical_wirings_ratio_one(self, metric6):
        game = SNSGame(metric6, k=2)
        wiring = game.random_wiring(rng=5)
        assert price_of_anarchy_bound(metric6, wiring, wiring) == pytest.approx(1.0)
