"""Tests for the SNS game machinery."""

import numpy as np
import pytest

from repro.core.cost import DelayMetric
from repro.game.sns_game import SNSGame, best_response_dynamics, is_nash_equilibrium
from repro.util.validation import ValidationError


@pytest.fixture
def game8():
    rng = np.random.default_rng(21)
    delays = rng.uniform(5, 100, size=(8, 8))
    delays = (delays + delays.T) / 2
    np.fill_diagonal(delays, 0)
    return SNSGame(DelayMetric(delays), k=2)


class TestGameBasics:
    def test_invalid_k(self, game8):
        with pytest.raises(ValidationError):
            SNSGame(game8.metric, k=0)
        with pytest.raises(ValidationError):
            SNSGame(game8.metric, k=8)

    def test_random_wiring_feasible(self, game8):
        wiring = game8.random_wiring(rng=0)
        for node in range(8):
            assert wiring.degree_of(node) == 2

    def test_player_cost_positive(self, game8):
        wiring = game8.random_wiring(rng=0)
        assert game8.player_cost(wiring, 0) > 0

    def test_player_best_response_no_worse(self, game8):
        wiring = game8.random_wiring(rng=0)
        evaluator, result = game8.player_best_response(wiring, 0, rng=0)
        current_cost = evaluator.evaluate(wiring.wiring_of(0).neighbors)
        assert result.cost <= current_cost + 1e-9


class TestDynamics:
    def test_dynamics_converge(self, game8):
        result = best_response_dynamics(game8, max_rounds=15, rng=0)
        assert result.converged
        assert result.rewirings_per_round[-1] == 0

    def test_converged_wiring_is_nash(self, game8):
        result = best_response_dynamics(game8, max_rounds=15, rng=0)
        assert is_nash_equilibrium(game8, result.wiring, tolerance=1e-6, rng=0)

    def test_random_wiring_usually_not_nash(self, game8):
        wiring = game8.random_wiring(rng=3)
        assert not is_nash_equilibrium(game8, wiring, rng=0)

    def test_social_cost_non_increasing_trend(self, game8):
        result = best_response_dynamics(game8, max_rounds=15, rng=1)
        # Selfish moves need not monotonically improve social cost, but the
        # equilibrium should not be drastically worse than the start.
        assert result.social_costs[-1] <= result.social_costs[0] * 1.5

    def test_dynamics_degrees_preserved(self, game8):
        result = best_response_dynamics(game8, max_rounds=10, rng=2)
        graph = result.wiring.to_graph()
        assert all(graph.out_degree(i) == 2 for i in range(8))

    def test_total_rewirings_counted(self, game8):
        result = best_response_dynamics(game8, max_rounds=10, rng=4)
        assert result.total_rewirings == sum(result.rewirings_per_round)
