"""Tests for the SimulationSession facade."""

import numpy as np
import pytest

from repro.core.providers import (
    BandwidthMetricProvider,
    DelayMetricProvider,
    LoadMetricProvider,
)
from repro.scenario import (
    ChurnSpec,
    ScenarioSpec,
    SimulationSession,
    default_spec,
    run_spec,
)
from repro.util.validation import ValidationError


class TestFacade:
    def test_provider_families(self):
        for metric, expected in [
            ("delay-ping", DelayMetricProvider),
            ("delay-true", DelayMetricProvider),
            ("load", LoadMetricProvider),
            ("bandwidth", BandwidthMetricProvider),
        ]:
            spec = ScenarioSpec(experiment="fig1-delay-ping", n=10, metric=metric)
            provider = SimulationSession(spec).make_provider(np.random.default_rng(0))
            assert isinstance(provider, expected), metric
            assert provider.size == 10

    def test_policy_map_order_and_labels(self):
        spec = ScenarioSpec(
            experiment="fig2-efficiency-vs-k",
            n=10,
            policies=("k-random", "best-response", "hybrid-br(k2=2)"),
        )
        policies = SimulationSession(spec).policy_map()
        assert list(policies) == ["k-random", "best-response", "hybrid-br"]

    def test_preferences_uniform_and_skewed(self):
        session = SimulationSession(
            ScenarioSpec(experiment="overheads", n=10, preference_skew=0.0)
        )
        assert session.preferences(np.random.default_rng(0)) is None
        skewed = SimulationSession(
            ScenarioSpec(experiment="overheads", n=10, preference_skew=1.0)
        ).preferences(np.random.default_rng(0))
        assert skewed.shape == (10, 10)

    def test_churn_schedule_kinds(self):
        trace = SimulationSession(
            ScenarioSpec(
                experiment="fig2-efficiency-vs-k",
                n=8,
                epochs=3,
                churn=ChurnSpec(kind="trace"),
            )
        ).churn_schedule(np.random.default_rng(0))
        assert trace.n == 8
        parametrized = SimulationSession(
            ScenarioSpec(
                experiment="fig2-churn-rate",
                n=8,
                epochs=3,
                churn=ChurnSpec(kind="parametrized"),
            )
        )
        with pytest.raises(ValidationError):
            parametrized.churn_schedule(np.random.default_rng(0))
        schedule = parametrized.churn_schedule(np.random.default_rng(0), rate=1e-2)
        assert schedule.horizon == pytest.approx(3 * 60.0)

    def test_no_churn_returns_none(self):
        session = SimulationSession(ScenarioSpec(experiment="overheads", n=8))
        assert session.churn_schedule(np.random.default_rng(0)) is None

    def test_fig2_without_churn_is_a_clean_error(self):
        for experiment in ("fig2-efficiency-vs-k", "fig2-churn-rate"):
            spec = default_spec(experiment).override(n=8, epochs=1)
            spec.churn = None
            with pytest.raises(ValidationError):
                SimulationSession(spec).run()


class TestReproducibility:
    def test_rerun_from_json_reproduces_result(self):
        """The acceptance contract: a serialised spec reruns identically."""
        spec = default_spec("fig1-node-load").override(
            n=12, k_grid=(2, 3), br_rounds=1, seed=7
        )
        first = run_spec(spec)
        second = run_spec(ScenarioSpec.from_json(spec.to_json()))
        assert first.as_dict() == second.as_dict()

    def test_epoch_scenario_rerun_from_json(self):
        spec = default_spec("fig3-rewirings").override(
            n=10, k_grid=(2,), epochs=2, seed=4
        )
        first = run_spec(spec)
        second = run_spec(ScenarioSpec.from_json(spec.to_json()))
        assert first.as_dict() == second.as_dict()

    def test_provenance_metadata_attached(self):
        spec = default_spec("overheads").override(n=12, k_grid=(2,))
        result = run_spec(spec)
        assert result.metadata["scenario"] == spec.to_dict()

    def test_batched_flag_not_in_provenance(self):
        """batched is an execution detail: both paths share one provenance."""
        spec = default_spec("fig1-node-load").override(
            n=12, k_grid=(2,), br_rounds=1, seed=3
        )
        fast = run_spec(spec, batched=True)
        slow = run_spec(ScenarioSpec.from_dict(spec.to_dict()), batched=False)
        assert fast.as_dict() == slow.as_dict()

    def test_epoch_scenarios_carry_cache_stats(self):
        spec = default_spec("fig3-rewirings").override(
            n=10, k_grid=(2,), epochs=2, seed=4
        )
        result = run_spec(spec)
        cache = result.metadata["cache"]
        for key in ("hits", "misses", "repairs", "restamps", "hit_rate"):
            assert key in cache
        assert cache["hits"] + cache["misses"] > 0
        assert 0.0 <= cache["hit_rate"] <= 1.0

    def test_build_only_scenarios_have_no_cache_stats(self):
        spec = default_spec("fig1-node-load").override(
            n=12, k_grid=(2,), br_rounds=1, seed=3
        )
        result = run_spec(spec)
        assert "cache" not in result.metadata
