"""Tests for the declarative scenario spec layer."""

import numpy as np
import pytest

from repro.core.hybrid import HybridBRPolicy
from repro.core.policies import BestResponsePolicy, KRandomPolicy
from repro.scenario import (
    CheatingSpec,
    ChurnSpec,
    ScenarioSpec,
    parse_policy,
    policy_label,
)
from repro.scenario.spec import coerce_seed
from repro.util.validation import ValidationError


class TestPolicyDescriptors:
    def test_simple_names(self):
        assert isinstance(parse_policy("k-random"), KRandomPolicy)
        assert isinstance(parse_policy("best-response"), BestResponsePolicy)

    def test_parameterised_best_response(self):
        policy = parse_policy("best-response(eps=0.1)")
        assert policy.epsilon == pytest.approx(0.1)

    def test_parameterised_hybrid(self):
        policy = parse_policy("hybrid-br(k2=4)")
        assert isinstance(policy, HybridBRPolicy)
        assert policy.k2 == 4

    def test_label_strips_arguments(self):
        assert policy_label("hybrid-br(k2=2)") == "hybrid-br"
        assert policy_label("k-closest") == "k-closest"

    @pytest.mark.parametrize(
        "descriptor", ["unknown-policy", "best-response(gamma=1)", "k-random(", "best-response(eps)"]
    )
    def test_malformed_rejected(self, descriptor):
        with pytest.raises(ValidationError):
            parse_policy(descriptor)


class TestValidation:
    def _spec(self, **overrides):
        base = dict(experiment="fig1-delay-ping", n=12, k_grid=(2, 3))
        base.update(overrides)
        return ScenarioSpec(**base)

    def test_valid_spec_passes(self):
        self._spec().validate()

    @pytest.mark.parametrize(
        "overrides",
        [
            {"n": 1},
            {"k_grid": ()},
            {"metric": "latency"},
            {"epochs": -1},
            {"br_rounds": -2},
            {"epsilon": -0.1},
            {"preference_skew": -1.0},
            {"policies": ("nope",)},
            {"experiment": ""},
            {"seed": "abc"},
            {"cheating": CheatingSpec(free_riders=(99,))},
            {"churn": ChurnSpec(kind="weird")},
        ],
    )
    def test_invalid_specs_rejected(self, overrides):
        with pytest.raises(ValidationError):
            self._spec(**overrides).validate()

    def test_params_must_be_json(self):
        with pytest.raises(ValidationError):
            self._spec(params={"fn": object()}).validate()

    def test_coerce_seed(self):
        assert coerce_seed(None) is None
        assert coerce_seed(7) == 7
        assert coerce_seed(np.int64(7)) == 7
        with pytest.raises(ValidationError):
            coerce_seed(np.random.default_rng(0))


class TestRoundTrip:
    def test_json_round_trip_preserves_canonical_dict(self):
        spec = ScenarioSpec(
            experiment="fig2-efficiency-vs-k",
            n=20,
            k_grid=(3, 5),
            policies=("best-response", "hybrid-br(k2=2)"),
            metric="delay-true",
            epochs=6,
            churn=ChurnSpec(kind="trace", horizon=360.0),
            cheating=CheatingSpec(free_riders=(0, 1), inflation=2.0),
            compute_efficiency=True,
            seed=11,
            params={"warmup_fraction": 0.3, "sizes": [4, 6]},
        )
        clone = ScenarioSpec.from_json(spec.to_json())
        assert clone.to_dict() == spec.to_dict()
        assert clone.k_grid == (3, 5)
        assert clone.churn == spec.churn
        assert clone.cheating.free_riders == (0, 1)

    def test_save_and_load(self, tmp_path):
        path = tmp_path / "spec.json"
        spec = ScenarioSpec(experiment="overheads", n=16, k_grid=(2,), seed=3)
        spec.save(str(path))
        assert ScenarioSpec.load(str(path)).to_dict() == spec.to_dict()

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValidationError):
            ScenarioSpec.from_dict({"experiment": "overheads", "bogus": 1})

    def test_override_merges_params(self):
        spec = ScenarioSpec(
            experiment="overheads", n=16, k_grid=(2,), params={"a": 1, "b": 2}
        )
        clone = spec.override(n=20, params={"b": 3})
        assert clone.n == 20
        assert clone.params == {"a": 1, "b": 3}
        assert spec.params == {"a": 1, "b": 2}


class TestFromDictErrorWrapping:
    """Coercion/construction failures must surface as field-named
    ValidationErrors (exit 2 at the CLI), never raw TypeE/ValueError."""

    def test_bad_k_grid_entries(self):
        with pytest.raises(ValidationError, match="'k_grid'"):
            ScenarioSpec.from_dict({"experiment": "x", "k_grid": ["a", 2]})

    def test_non_iterable_policies(self):
        with pytest.raises(ValidationError, match="'policies'"):
            ScenarioSpec.from_dict({"experiment": "x", "policies": 5})

    def test_missing_experiment(self):
        with pytest.raises(ValidationError, match="'experiment'"):
            ScenarioSpec.from_dict({"n": 12})

    def test_bad_churn_shape(self):
        with pytest.raises(ValidationError, match="'churn'"):
            ScenarioSpec.from_dict({"experiment": "x", "churn": {"bogus": 1}})

    def test_non_integer_free_riders_collected_not_raised(self):
        from repro.scenario.spec import CheatingSpec

        spec = ScenarioSpec(experiment="x", cheating=CheatingSpec(free_riders=("a",)))
        with pytest.raises(ValidationError, match="free riders must be integers"):
            spec.validate()
