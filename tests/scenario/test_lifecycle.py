"""The explicit session lifecycle API (open/step/mutate/snapshot/close)."""

import pytest

from repro.core.codec import epoch_record_digest
from repro.core.failures import FailureEvent
from repro.scenario.lifecycle import MUTATION_KINDS, Mutation, Session
from repro.scenario.session import SimulationSession
from repro.scenario.spec import ScenarioSpec
from repro.util.validation import ValidationError


def _spec(**overrides) -> ScenarioSpec:
    base = dict(
        experiment="live-overlay",
        n=14,
        k_grid=(3,),
        policies=("best-response",),
        metric="delay-ping",
        epochs=3,
        seed=31,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


class TestMutation:
    def test_round_trip(self):
        for mutation in (
            Mutation(kind="join", nodes=(1, 2)),
            Mutation(kind="leave", nodes=(3,)),
            Mutation(kind="rewire", nodes=(0, 4)),
            Mutation(kind="drift", steps=2),
            Mutation(
                kind="failure",
                event=FailureEvent(epoch=1, action="link-down", links=((0, 1),)),
            ),
        ):
            assert Mutation.from_dict(mutation.to_dict()) == mutation

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValidationError):
            Mutation(kind="explode").validate()
        assert "explode" not in MUTATION_KINDS

    def test_unknown_field_rejected(self):
        with pytest.raises(ValidationError):
            Mutation.from_dict({"kind": "join", "nodes": [1], "bogus": True})

    def test_kind_requirements(self):
        with pytest.raises(ValidationError):
            Mutation(kind="join").validate()  # no nodes
        with pytest.raises(ValidationError):
            Mutation(kind="drift", steps=0).validate()
        with pytest.raises(ValidationError):
            Mutation(kind="failure").validate()  # no event


class TestSessionParity:
    """The batch `run()` path and the lifecycle loop are the same loop."""

    @pytest.mark.parametrize("batched", [True, False])
    def test_step_loop_matches_run(self, batched):
        spec = _spec(epochs=4)
        baseline = SimulationSession(spec, batched=True).run()
        with Session.open(spec, batched=batched) as session:
            for _ in range(spec.epochs):
                session.step()
            histories = session.close()
        for label, history in zip(session.labels, histories):
            assert baseline.series[label].y == history.mean_costs()

    def test_per_epoch_digests_match_across_kernels(self):
        spec = _spec(epochs=3)
        digests = {}
        for batched in (True, False):
            with Session.open(spec, batched=batched) as session:
                digests[batched] = [
                    epoch_record_digest(session.step()) for _ in range(spec.epochs)
                ]
        assert digests[True] == digests[False]


class TestSessionMutations:
    def test_leave_and_join(self):
        with Session.open(_spec()) as session:
            session.step()
            session.mutate(Mutation(kind="leave", nodes=(2, 5)))
            records = session.step()
            assert records[0].active_nodes == 12
            session.mutate(Mutation(kind="join", nodes=(2,)))
            records = session.step()
            assert records[0].active_nodes == 13

    def test_mutations_apply_at_next_step_only(self):
        with Session.open(_spec()) as session:
            session.step()
            before = session.engine().last_epoch_view
            session.mutate(Mutation(kind="leave", nodes=(0,)))
            # Accepted but not committed: the live view is unchanged.
            assert session.engine().last_epoch_view is before
            assert len(before.active_list) == 14
            after = session.step()
            assert after[0].active_nodes == 13

    def test_rewire_forces_rewiring(self):
        with Session.open(_spec()) as session:
            for _ in range(6):
                session.step()
            session.mutate(Mutation(kind="rewire", nodes=(1, 2, 3)))
            records = session.step()
            # The reset nodes come back with no wiring and must re-wire.
            assert records[0].rewirings >= 3

    def test_failure_event(self):
        with Session.open(_spec()) as session:
            session.step()
            event = FailureEvent(epoch=1, action="node-down", nodes=(4,))
            session.mutate(Mutation(kind="failure", event=event))
            records = session.step()
            assert records[0].active_nodes == 13

    def test_unknown_engine_label_rejected(self):
        with Session.open(_spec()) as session:
            with pytest.raises(ValidationError):
                session.mutate(
                    Mutation(kind="leave", nodes=(1,), engines=("nonesuch",))
                )

    def test_out_of_range_node_rejected(self):
        with Session.open(_spec()) as session:
            with pytest.raises(ValidationError):
                session.mutate(Mutation(kind="leave", nodes=(99,)))


class TestSessionLifecycle:
    def test_snapshot_shape(self):
        with Session.open(_spec()) as session:
            session.step()
            session.mutate(Mutation(kind="leave", nodes=(1,)))
            snapshot = session.snapshot()
            assert snapshot["epochs_completed"] == 1
            assert snapshot["pending_mutations"] == 1
            (deployment,) = snapshot["deployments"]
            assert deployment["label"] == session.labels[0]
            assert deployment["epoch"] == 0
            assert deployment["active_nodes"] == 14

    def test_closed_session_refuses_everything(self):
        session = Session.open(_spec())
        session.step()
        session.close()
        for call in (
            session.step,
            session.snapshot,
            session.close,
            lambda: session.mutate(Mutation(kind="leave", nodes=(1,))),
        ):
            with pytest.raises(ValidationError):
                call()

    def test_duplicate_cells_get_distinct_labels(self):
        spec = _spec(k_grid=(3, 3), epochs=1)
        with Session.open(spec) as session:
            assert len(session.labels) == 2
            assert len(set(session.labels)) == 2
