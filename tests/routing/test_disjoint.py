"""Tests for disjoint-path computation."""

import pytest

from repro.routing.disjoint import (
    count_disjoint_paths,
    disjoint_paths,
    first_hop_disjoint_count,
)
from repro.routing.graph import OverlayGraph
from repro.util.validation import ValidationError


def parallel_paths_graph():
    """Three internally disjoint 0 -> 4 paths through 1, 2, 3."""
    graph = OverlayGraph(5)
    for mid in (1, 2, 3):
        graph.add_edge(0, mid, 1.0)
        graph.add_edge(mid, 4, 1.0)
    return graph


class TestCounting:
    def test_parallel_paths_counted(self):
        assert count_disjoint_paths(parallel_paths_graph(), 0, 4) == 3

    def test_vertex_disjoint_shared_midpoint(self):
        graph = OverlayGraph(4)
        # Two edge-disjoint paths both pass through node 1.
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(1, 3, 1.0)
        graph.add_edge(0, 2, 1.0)
        graph.add_edge(2, 1, 1.0)
        graph.add_edge(1, 3, 1.0)
        assert count_disjoint_paths(graph, 0, 3, vertex_disjoint=True) == 1

    def test_no_path(self):
        graph = OverlayGraph(3)
        graph.add_edge(0, 1, 1.0)
        assert count_disjoint_paths(graph, 0, 2) == 0

    def test_max_paths_cap(self):
        assert count_disjoint_paths(parallel_paths_graph(), 0, 4, max_paths=2) == 2

    def test_same_endpoints_rejected(self):
        with pytest.raises(ValidationError):
            count_disjoint_paths(parallel_paths_graph(), 0, 0)

    def test_direct_edge_counts(self):
        graph = OverlayGraph(2)
        graph.add_edge(0, 1, 1.0)
        assert count_disjoint_paths(graph, 0, 1) == 1


class TestExtraction:
    def test_paths_are_valid_and_disjoint(self):
        graph = parallel_paths_graph()
        paths = disjoint_paths(graph, 0, 4)
        assert len(paths) == 3
        used_edges = set()
        for path in paths:
            assert path[0] == 0 and path[-1] == 4
            for u, v in zip(path[:-1], path[1:]):
                assert graph.has_edge(u, v)
                assert (u, v) not in used_edges
                used_edges.add((u, v))

    def test_vertex_disjoint_extraction(self):
        graph = parallel_paths_graph()
        paths = disjoint_paths(graph, 0, 4, vertex_disjoint=True)
        middles = [p[1] for p in paths]
        assert len(middles) == len(set(middles)) == 3

    def test_empty_when_unreachable(self):
        graph = OverlayGraph(3)
        graph.add_edge(1, 2, 1.0)
        assert disjoint_paths(graph, 0, 2) == []


class TestFirstHop:
    def test_bounded_by_out_degree(self):
        graph = parallel_paths_graph()
        graph.add_edge(1, 2, 1.0)  # extra capacity not usable from 0
        assert first_hop_disjoint_count(graph, 0, 4) <= graph.out_degree(0)

    def test_equals_paths_when_degree_suffices(self):
        assert first_hop_disjoint_count(parallel_paths_graph(), 0, 4) == 3
