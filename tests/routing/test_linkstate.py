"""Tests for the link-state protocol simulation."""

import pytest

from repro.routing.linkstate import LinkStateProtocol, TopologyDatabase
from repro.routing.messages import LinkStateAnnouncement


class TestTopologyDatabase:
    def test_insert_and_build(self):
        db = TopologyDatabase(4)
        db.insert(LinkStateAnnouncement.from_dict(0, 1, {1: 5.0}))
        db.insert(LinkStateAnnouncement.from_dict(1, 1, {2: 7.0}))
        graph = db.build_graph()
        assert graph.weight(0, 1) == 5.0
        assert graph.weight(1, 2) == 7.0

    def test_stale_announcement_ignored(self):
        db = TopologyDatabase(3)
        db.insert(LinkStateAnnouncement.from_dict(0, 5, {1: 1.0}))
        changed = db.insert(LinkStateAnnouncement.from_dict(0, 3, {2: 2.0}))
        assert not changed
        assert db.build_graph().has_edge(0, 1)
        assert not db.build_graph().has_edge(0, 2)

    def test_fresher_announcement_replaces(self):
        db = TopologyDatabase(3)
        db.insert(LinkStateAnnouncement.from_dict(0, 1, {1: 1.0}))
        db.insert(LinkStateAnnouncement.from_dict(0, 2, {2: 2.0}))
        graph = db.build_graph()
        assert graph.has_edge(0, 2)
        assert not graph.has_edge(0, 1)

    def test_residual_graph_excludes_origin(self):
        db = TopologyDatabase(3)
        db.insert(LinkStateAnnouncement.from_dict(0, 1, {1: 1.0}))
        db.insert(LinkStateAnnouncement.from_dict(1, 1, {2: 1.0}))
        residual = db.build_graph(exclude_origin=0)
        assert not residual.has_edge(0, 1)
        assert residual.has_edge(1, 2)

    def test_remove_origin(self):
        db = TopologyDatabase(3)
        db.insert(LinkStateAnnouncement.from_dict(0, 1, {1: 1.0}))
        db.remove_origin(0)
        assert len(db) == 0


class TestLinkStateProtocol:
    def test_broadcast_reaches_active_nodes(self):
        protocol = LinkStateProtocol(4)
        protocol.broadcast(0, {1: 5.0}, active=[0, 1, 2])
        assert protocol.view_of(1).has_edge(0, 1)
        assert protocol.view_of(2).has_edge(0, 1)
        # Node 3 was not active and never received the flood.
        assert not protocol.view_of(3).has_edge(0, 1)

    def test_sequence_numbers_increase(self):
        protocol = LinkStateProtocol(3)
        a = protocol.broadcast(0, {1: 1.0})
        b = protocol.broadcast(0, {2: 1.0})
        assert b.sequence > a.sequence

    def test_withdraw_clears_links(self):
        protocol = LinkStateProtocol(3)
        protocol.broadcast(0, {1: 1.0})
        protocol.withdraw(0)
        assert not protocol.view_of(1).has_edge(0, 1)

    def test_purge_removes_state_without_flood(self):
        protocol = LinkStateProtocol(3)
        protocol.broadcast(0, {1: 1.0})
        protocol.purge(0)
        assert not protocol.view_of(2).has_edge(0, 1)

    def test_residual_view(self):
        protocol = LinkStateProtocol(3)
        protocol.broadcast(0, {1: 1.0})
        protocol.broadcast(1, {2: 1.0})
        residual = protocol.view_of(0, residual_for=0)
        assert not residual.has_edge(0, 1)
        assert residual.has_edge(1, 2)

    def test_stats_accumulate(self):
        protocol = LinkStateProtocol(3)
        protocol.broadcast(0, {1: 1.0, 2: 2.0})
        assert protocol.stats.announcements_sent == 1
        assert protocol.stats.announcement_bits == 192 + 32 * 2
        assert protocol.stats.flood_deliveries == 3

    def test_traffic_rate_matches_paper_formula(self):
        protocol = LinkStateProtocol(10, announce_interval_s=20.0)
        assert protocol.traffic_rate_bps(5) == pytest.approx((192 + 32 * 5) / 20.0)

    def test_newcomer_learns_full_topology(self):
        """A node that only hears the flood still reconstructs everyone's links."""
        protocol = LinkStateProtocol(5)
        for node in range(4):
            protocol.broadcast(node, {(node + 1) % 4: 1.0})
        view = protocol.view_of(4)
        assert view.edge_count() == 4
