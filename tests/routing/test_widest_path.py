"""Tests for maximum-bottleneck-bandwidth routing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.routing.graph import OverlayGraph
from repro.routing.widest_path import (
    all_pairs_widest_bandwidth,
    repair_widest_rows,
    widest_inbound_tables,
    widest_path_bandwidths_multi,
    path_bottleneck,
    widest_path,
    widest_path_bandwidths_from,
)


def diamond_graph():
    """0 -> {1, 2} -> 3 with different bottlenecks on each branch."""
    graph = OverlayGraph(4)
    graph.add_edge(0, 1, 10.0)
    graph.add_edge(1, 3, 2.0)
    graph.add_edge(0, 2, 5.0)
    graph.add_edge(2, 3, 5.0)
    return graph


class TestWidestPath:
    def test_diamond_prefers_wider_branch(self):
        graph = diamond_graph()
        bw = widest_path_bandwidths_from(graph, 0)
        assert bw[3] == pytest.approx(5.0)
        assert widest_path(graph, 0, 3) == [0, 2, 3]

    def test_source_infinite(self):
        bw = widest_path_bandwidths_from(diamond_graph(), 0)
        assert np.isinf(bw[0])

    def test_unreachable_zero(self):
        graph = OverlayGraph(3)
        graph.add_edge(0, 1, 5.0)
        bw = widest_path_bandwidths_from(graph, 1)
        assert bw[0] == 0.0
        assert widest_path(graph, 1, 0) is None

    def test_single_edge(self):
        graph = OverlayGraph(2)
        graph.add_edge(0, 1, 3.0)
        assert widest_path_bandwidths_from(graph, 0)[1] == 3.0

    def test_bottleneck_never_exceeds_any_incident_capacity(self):
        rng = np.random.default_rng(0)
        graph = OverlayGraph(10)
        for i in range(10):
            for j in rng.choice([x for x in range(10) if x != i], size=3, replace=False):
                graph.add_edge(i, int(j), float(rng.uniform(1, 100)))
        bw = all_pairs_widest_bandwidth(graph)
        for j in range(10):
            incoming = [w for _u, v, w in graph.edges() if v == j]
            if incoming:
                assert np.all(bw[[i for i in range(10) if i != j], j] <= max(incoming) + 1e-9)

    def test_path_bottleneck_matches(self):
        graph = diamond_graph()
        path = widest_path(graph, 0, 3)
        assert path_bottleneck(graph, path) == pytest.approx(5.0)

    def test_all_pairs_diagonal_infinite(self):
        bw = all_pairs_widest_bandwidth(diamond_graph())
        assert np.all(np.isinf(np.diag(bw)))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(4, 10))
    def test_adding_edges_never_reduces_bandwidth(self, n):
        rng = np.random.default_rng(n)
        graph = OverlayGraph(n)
        for i in range(n):
            graph.add_edge(i, (i + 1) % n, float(rng.uniform(1, 50)))
        before = all_pairs_widest_bandwidth(graph)
        richer = graph.copy()
        for i in range(n):
            j = int(rng.integers(0, n))
            if i != j and not richer.has_edge(i, j):
                richer.add_edge(i, j, float(rng.uniform(1, 50)))
        after = all_pairs_widest_bandwidth(richer)
        assert np.all(after >= before - 1e-9)

    def test_widest_value_is_maximin(self):
        """Widest path value equals the max over paths of the min edge."""
        graph = diamond_graph()
        # Enumerate the two paths explicitly.
        via1 = min(10.0, 2.0)
        via2 = min(5.0, 5.0)
        assert widest_path_bandwidths_from(graph, 0)[3] == max(via1, via2)


def _dense_of(graph):
    dense = np.full((graph.n, graph.n), np.nan)
    for u, v, w in graph.edges():
        dense[u, v] = w
    return dense


def _graph_of(dense):
    graph = OverlayGraph(dense.shape[0])
    for u in range(dense.shape[0]):
        for v in range(dense.shape[0]):
            if not np.isnan(dense[u, v]):
                graph.add_edge(u, v, float(dense[u, v]))
    return graph


def _random_bandwidth_overlay(n, k, seed):
    rng = np.random.default_rng(seed)
    graph = OverlayGraph(n)
    for i in range(n):
        graph.add_edge(i, (i + 1) % n, float(rng.uniform(1, 100)))
        for j in rng.choice([x for x in range(n) if x != i], size=k, replace=False):
            graph.add_edge(i, int(j), float(rng.uniform(1, 100)))
    return graph


def _rewire(dense, node, rng):
    n = dense.shape[0]
    new = dense.copy()
    new[node, :] = np.nan
    degree = int(rng.integers(0, min(n - 1, 4) + 1))
    if degree:
        targets = rng.choice([x for x in range(n) if x != node], size=degree, replace=False)
        for v in targets:
            new[node, int(v)] = float(rng.uniform(1, 100))
    return new


class TestRepairWidestRows:
    """The incremental max-min repair kernel vs fresh widest sweeps."""

    def test_single_rewire_bit_identical(self):
        rng = np.random.default_rng(3)
        graph = _random_bandwidth_overlay(12, 2, seed=5)
        sources = list(range(12))
        old = widest_path_bandwidths_multi(graph, sources, batched=False)
        new_dense = _rewire(_dense_of(graph), 7, rng)
        fresh = widest_path_bandwidths_multi(_graph_of(new_dense), sources, batched=False)
        repaired = repair_widest_rows(old, np.array(sources), [7], new_dense)
        assert np.array_equal(repaired, fresh)

    def test_shared_tables_and_exclude_match_residual_repair(self):
        rng = np.random.default_rng(17)
        graph = _random_bandwidth_overlay(10, 2, seed=11)
        dense = _dense_of(graph)
        excluded = 4
        residual = dense.copy()
        residual[excluded, :] = np.nan
        sources = [i for i in range(10) if i != excluded]
        old = widest_path_bandwidths_multi(_graph_of(residual), sources, batched=False)
        new_dense = _rewire(dense, 2, rng)
        new_residual = new_dense.copy()
        new_residual[excluded, :] = np.nan
        fresh = widest_path_bandwidths_multi(
            _graph_of(new_residual), sources, batched=False
        )
        tables = widest_inbound_tables(new_dense)
        shared = repair_widest_rows(
            old, np.array(sources), [2], None, exclude=excluded, tables=tables
        )
        assert np.array_equal(shared, fresh)

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(4, 14),
        st.integers(1, 3),
        st.integers(0, 10_000),
        st.integers(1, 3),
    )
    def test_randomized_multi_rewire_parity(self, n, k, seed, changes):
        rng = np.random.default_rng(seed)
        graph = _random_bandwidth_overlay(n, min(k, n - 2), seed=seed)
        sources = list(range(n))
        old = widest_path_bandwidths_multi(graph, sources, batched=False)
        dense = _dense_of(graph)
        changed = rng.choice(n, size=min(changes, n), replace=False)
        for node in changed:
            dense = _rewire(dense, int(node), rng)
        fresh = widest_path_bandwidths_multi(_graph_of(dense), sources, batched=False)
        repaired = repair_widest_rows(old, np.array(sources), changed, dense)
        assert np.array_equal(repaired, fresh)
