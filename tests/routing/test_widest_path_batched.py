"""Parity of the batched widest-path kernels against the reference loop.

The dense max-min closures (repeated squaring, Floyd-Warshall pivoting,
and the divide-and-conquer avoid-one tensor) only ever *select* edge
weights — no floating-point arithmetic touches the bottleneck values —
so every implementation must agree bit for bit with the per-source heap
search on arbitrary graphs.  Hypothesis generates the graphs; equality
is exact, not approximate.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.routing.graph import OverlayGraph
from repro.routing.widest_path import (
    bandwidth_adjacency,
    bottleneck_avoid_one,
    bottleneck_closure,
    bottleneck_closure_fw,
    reference_kernels,
    widest_path_bandwidths_multi,
)

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def overlay_graphs(draw):
    """Random small directed graphs, including zero-weight edges."""
    n = draw(st.integers(2, 16))
    rng = np.random.default_rng(draw(st.integers(0, 10_000)))
    out_degree = draw(st.integers(0, min(5, n - 1)))
    graph = OverlayGraph(n)
    for u in range(n):
        if out_degree == 0:
            continue
        targets = rng.choice(
            [v for v in range(n) if v != u], size=out_degree, replace=False
        )
        for v in targets:
            # Occasionally zero-bandwidth links (absent-equivalent).
            weight = 0.0 if rng.random() < 0.1 else float(rng.uniform(0.1, 100.0))
            graph.add_edge(u, int(v), weight)
    return graph


def _reference(graph, sources):
    return widest_path_bandwidths_multi(graph, sources, batched=False)


@given(overlay_graphs())
@SETTINGS
def test_closure_matches_per_source_loop(graph):
    sources = list(range(graph.n))
    reference = _reference(graph, sources)
    batched = widest_path_bandwidths_multi(graph, sources, batched=True)
    assert np.array_equal(batched, reference)


@given(overlay_graphs())
@SETTINGS
def test_all_closure_variants_agree(graph):
    adjacency = bandwidth_adjacency(graph)
    reference = _reference(graph, list(range(graph.n)))
    assert np.array_equal(bottleneck_closure(adjacency), reference)
    assert np.array_equal(bottleneck_closure_fw(adjacency), reference)


@given(overlay_graphs())
@SETTINGS
def test_avoid_one_matches_residual_closures(graph):
    """Slice ``[i]`` (rows != i) equals the closure of ``G`` minus ``i``'s
    out-edges — the residual matrix best-response sweeps consume."""
    adjacency = bandwidth_adjacency(graph)
    tensor = bottleneck_avoid_one(adjacency)
    for i in range(graph.n):
        residual = adjacency.copy()
        residual[i, :] = 0.0
        residual[i, i] = np.inf
        expected = bottleneck_closure(residual)
        rows = [w for w in range(graph.n) if w != i]
        assert np.array_equal(tensor[i][rows], expected[rows])


@given(overlay_graphs(), st.data())
@SETTINGS
def test_source_subsets(graph, data):
    count = data.draw(st.integers(0, graph.n))
    sources = list(
        data.draw(
            st.permutations(list(range(graph.n))).map(lambda p: p[:count])
        )
    )
    reference = _reference(graph, sources)
    batched = widest_path_bandwidths_multi(graph, sources, batched=True)
    assert np.array_equal(batched, reference)
    assert batched.shape == (len(sources), graph.n)


def test_reference_kernels_pins_auto_mode():
    rng = np.random.default_rng(0)
    graph = OverlayGraph(12)
    for u in range(12):
        for v in rng.choice([x for x in range(12) if x != u], size=3, replace=False):
            graph.add_edge(u, int(v), float(rng.uniform(1, 10)))
    sources = list(range(12))
    # repro.routing re-exports a *function* named widest_path, shadowing
    # the submodule attribute, so fetch the module from sys.modules.
    import sys

    wp = sys.modules["repro.routing.widest_path"]

    calls = {"heap": 0}
    original = wp.widest_path_bandwidths_from

    def counting(graph_, src):
        calls["heap"] += 1
        return original(graph_, src)

    wp.widest_path_bandwidths_from = counting
    try:
        with reference_kernels():
            wp.widest_path_bandwidths_multi(graph, sources)
        assert calls["heap"] == len(sources)
        calls["heap"] = 0
        wp.widest_path_bandwidths_multi(graph, sources)
        assert calls["heap"] == 0  # auto mode picks the closure again
    finally:
        wp.widest_path_bandwidths_from = original
