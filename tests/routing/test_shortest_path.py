"""Tests for shortest-path routing."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.routing.graph import OverlayGraph
from repro.routing.shortest_path import (
    all_pairs_shortest_costs,
    repair_shortest_rows,
    shortest_inbound_tables,
    average_path_stretch,
    path_cost,
    shortest_path,
    shortest_path_costs_from,
    shortest_path_costs_multi,
    shortest_path_tree,
)


def line_graph(weights):
    """0 -> 1 -> 2 ... with the given edge weights (directed)."""
    graph = OverlayGraph(len(weights) + 1)
    for i, w in enumerate(weights):
        graph.add_edge(i, i + 1, w)
    return graph


def random_overlay(n, k, seed):
    rng = np.random.default_rng(seed)
    graph = OverlayGraph(n)
    for i in range(n):
        graph.add_edge(i, (i + 1) % n, float(rng.uniform(1, 10)))
        for j in rng.choice([x for x in range(n) if x != i], size=k, replace=False):
            graph.add_edge(i, int(j), float(rng.uniform(1, 10)))
    return graph


class TestSingleSource:
    def test_line_costs(self):
        graph = line_graph([2.0, 3.0, 4.0])
        costs = shortest_path_costs_from(graph, 0)
        assert list(costs) == pytest.approx([0.0, 2.0, 5.0, 9.0])

    def test_unreachable_infinite_by_default(self):
        graph = line_graph([1.0])
        costs = shortest_path_costs_from(graph, 1)
        assert np.isinf(costs[0])

    def test_unreachable_custom_penalty(self):
        graph = line_graph([1.0])
        costs = shortest_path_costs_from(graph, 1, disconnection_cost=999.0)
        assert costs[0] == 999.0

    def test_multi_source(self):
        graph = line_graph([2.0, 3.0])
        costs = shortest_path_costs_multi(graph, [0, 1])
        assert costs.shape == (2, 3)
        assert costs[0, 2] == pytest.approx(5.0)
        assert costs[1, 2] == pytest.approx(3.0)

    def test_matches_networkx(self):
        graph = random_overlay(15, 3, seed=0)
        nxg = graph.to_networkx()
        ours = shortest_path_costs_from(graph, 0)
        theirs = nx.single_source_dijkstra_path_length(nxg, 0, weight="weight")
        for node, dist in theirs.items():
            assert ours[node] == pytest.approx(dist)


class TestPathExtraction:
    def test_shortest_path_nodes(self):
        graph = OverlayGraph(4)
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(1, 3, 1.0)
        graph.add_edge(0, 2, 5.0)
        graph.add_edge(2, 3, 5.0)
        assert shortest_path(graph, 0, 3) == [0, 1, 3]

    def test_no_path_returns_none(self):
        graph = line_graph([1.0])
        assert shortest_path(graph, 1, 0) is None

    def test_path_cost_matches_distance(self):
        graph = random_overlay(12, 2, seed=1)
        path = shortest_path(graph, 0, 7)
        dist = shortest_path_costs_from(graph, 0)[7]
        assert path_cost(graph, path) == pytest.approx(dist)

    def test_tree_predecessors_consistent(self):
        graph = random_overlay(10, 2, seed=2)
        dist, pred = shortest_path_tree(graph, 0)
        for v in range(1, 10):
            if np.isfinite(dist[v]):
                parent = int(pred[v])
                assert dist[v] == pytest.approx(dist[parent] + graph.weight(parent, v))


class TestAllPairs:
    def test_diagonal_zero(self):
        graph = random_overlay(8, 2, seed=3)
        costs = all_pairs_shortest_costs(graph)
        assert np.all(np.diag(costs) == 0)

    def test_subset_sources(self):
        graph = random_overlay(8, 2, seed=4)
        costs = all_pairs_shortest_costs(graph, sources=[0, 1], disconnection_cost=1e6)
        full = all_pairs_shortest_costs(graph, disconnection_cost=1e6)
        assert np.allclose(costs[0], full[0])
        assert np.allclose(costs[1], full[1])
        # Untouched rows carry the disconnection cost off-diagonal.
        assert costs[5, 3] == 1e6

    def test_triangle_inequality_over_graph_metric(self):
        graph = random_overlay(12, 3, seed=5)
        costs = all_pairs_shortest_costs(graph)
        n = graph.n
        for i in range(n):
            for j in range(n):
                for k in range(0, n, 3):
                    assert costs[i, j] <= costs[i, k] + costs[k, j] + 1e-9

    @settings(max_examples=20, deadline=None)
    @given(st.integers(4, 12), st.integers(1, 3))
    def test_more_edges_never_hurt(self, n, k):
        """Adding edges can only lower (or keep) shortest-path costs."""
        sparse = random_overlay(n, k, seed=n * 10 + k)
        dense = sparse.copy()
        rng = np.random.default_rng(n)
        for i in range(n):
            j = int(rng.integers(0, n))
            if i != j and not dense.has_edge(i, j):
                dense.add_edge(i, j, float(rng.uniform(1, 10)))
        sparse_costs = all_pairs_shortest_costs(sparse, disconnection_cost=1e9)
        dense_costs = all_pairs_shortest_costs(dense, disconnection_cost=1e9)
        assert np.all(dense_costs <= sparse_costs + 1e-9)


class TestStretch:
    def test_full_mesh_stretch_is_one(self):
        n = 6
        rng = np.random.default_rng(0)
        direct = rng.uniform(1, 10, size=(n, n))
        direct = (direct + direct.T) / 2
        np.fill_diagonal(direct, 0.0)
        graph = OverlayGraph(n)
        for i in range(n):
            for j in range(n):
                if i != j:
                    graph.add_edge(i, j, direct[i, j])
        # Costs may be lower than direct (two-hop shortcuts), never higher.
        assert average_path_stretch(graph, direct) <= 1.0 + 1e-9


def _dense_of(graph):
    dense = np.full((graph.n, graph.n), np.nan)
    for u, v, w in graph.edges():
        dense[u, v] = w
    return dense


def _rewire(dense, node, rng, *, zero_chance=0.0):
    """Replace ``node``'s out-links with a random new set (NaN-dense)."""
    n = dense.shape[0]
    new = dense.copy()
    new[node, :] = np.nan
    degree = int(rng.integers(0, min(n - 1, 4) + 1))
    if degree:
        targets = rng.choice([x for x in range(n) if x != node], size=degree, replace=False)
        for v in targets:
            weight = 0.0 if rng.random() < zero_chance else float(rng.uniform(0.5, 20.0))
            new[node, int(v)] = weight
    return new


def _graph_of(dense):
    graph = OverlayGraph(dense.shape[0])
    for u in range(dense.shape[0]):
        for v in range(dense.shape[0]):
            if not np.isnan(dense[u, v]):
                graph.add_edge(u, v, float(dense[u, v]))
    return graph


class TestRepairShortestRows:
    """The incremental dynamic-SSSP kernel vs fresh Dijkstra sweeps."""

    def test_single_rewire_bit_identical(self):
        rng = np.random.default_rng(7)
        graph = random_overlay(12, 2, seed=3)
        sources = list(range(12))
        old = shortest_path_costs_multi(graph, sources)
        new_dense = _rewire(_dense_of(graph), 4, rng)
        fresh = shortest_path_costs_multi(_graph_of(new_dense), sources)
        repaired = repair_shortest_rows(old, np.array(sources), [4], new_dense)
        assert np.array_equal(repaired, fresh)

    def test_empty_change_set_is_identity(self):
        graph = random_overlay(8, 2, seed=5)
        old = shortest_path_costs_multi(graph, list(range(8)))
        repaired = repair_shortest_rows(old, np.arange(8), [], _dense_of(graph))
        assert np.array_equal(repaired, old)

    def test_zero_weight_links_follow_the_csr_nudge(self):
        # Fresh sweeps nudge zero-cost links to 1e-12; a repair must
        # arrive at the same sums bit for bit.
        rng = np.random.default_rng(11)
        graph = random_overlay(10, 1, seed=9)
        sources = list(range(10))
        old = shortest_path_costs_multi(graph, sources)
        new_dense = _rewire(_dense_of(graph), 2, rng, zero_chance=0.8)
        fresh = shortest_path_costs_multi(_graph_of(new_dense), sources)
        repaired = repair_shortest_rows(old, np.array(sources), [2], new_dense)
        assert np.array_equal(repaired, fresh)

    def test_disconnections_and_reconnections(self):
        # Rewiring the ring node to nothing partitions the graph;
        # restoring links reconnects it — both directions must repair to
        # the fresh sweep exactly (inf convention included).
        graph = line_graph([1.0, 2.0, 3.0])
        sources = list(range(4))
        old = shortest_path_costs_multi(graph, sources)
        cut = _dense_of(graph)
        cut[1, :] = np.nan  # node 1 drops its only out-link
        fresh_cut = shortest_path_costs_multi(_graph_of(cut), sources)
        repaired_cut = repair_shortest_rows(old, np.array(sources), [1], cut)
        assert np.array_equal(repaired_cut, fresh_cut)
        restored = cut.copy()
        restored[1, 2] = 5.0
        fresh_restored = shortest_path_costs_multi(_graph_of(restored), sources)
        repaired_restored = repair_shortest_rows(
            repaired_cut, np.array(sources), [1], restored
        )
        assert np.array_equal(repaired_restored, fresh_restored)

    def test_shared_tables_and_exclude_match_residual_repair(self):
        # The exclude/tables form (one dense overlay shared by many
        # residual repairs) must agree with repairing an explicitly
        # materialised residual matrix.
        rng = np.random.default_rng(23)
        graph = random_overlay(11, 2, seed=13)
        dense = _dense_of(graph)
        excluded = 6
        residual = dense.copy()
        residual[excluded, :] = np.nan
        sources = [i for i in range(11) if i != excluded]
        old = shortest_path_costs_multi(_graph_of(residual), sources)
        new_dense = _rewire(dense, 3, rng)
        new_residual = new_dense.copy()
        new_residual[excluded, :] = np.nan
        fresh = shortest_path_costs_multi(_graph_of(new_residual), sources)
        direct = repair_shortest_rows(old, np.array(sources), [3], new_residual)
        tables = shortest_inbound_tables(new_dense)
        shared = repair_shortest_rows(
            old, np.array(sources), [3], None, exclude=excluded, tables=tables
        )
        assert np.array_equal(direct, fresh)
        assert np.array_equal(shared, fresh)

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(4, 16),
        st.integers(1, 3),
        st.integers(0, 10_000),
        st.integers(1, 3),
    )
    def test_randomized_multi_rewire_parity(self, n, k, seed, changes):
        rng = np.random.default_rng(seed)
        graph = random_overlay(n, min(k, n - 2), seed=seed)
        sources = list(range(n))
        old = shortest_path_costs_multi(graph, sources)
        dense = _dense_of(graph)
        changed = rng.choice(n, size=min(changes, n), replace=False)
        for node in changed:
            dense = _rewire(dense, int(node), rng, zero_chance=0.1)
        fresh = shortest_path_costs_multi(_graph_of(dense), sources)
        repaired = repair_shortest_rows(old, np.array(sources), changed, dense)
        assert np.array_equal(repaired, fresh)
