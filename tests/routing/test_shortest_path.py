"""Tests for shortest-path routing."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.routing.graph import OverlayGraph
from repro.routing.shortest_path import (
    all_pairs_shortest_costs,
    average_path_stretch,
    path_cost,
    shortest_path,
    shortest_path_costs_from,
    shortest_path_costs_multi,
    shortest_path_tree,
)


def line_graph(weights):
    """0 -> 1 -> 2 ... with the given edge weights (directed)."""
    graph = OverlayGraph(len(weights) + 1)
    for i, w in enumerate(weights):
        graph.add_edge(i, i + 1, w)
    return graph


def random_overlay(n, k, seed):
    rng = np.random.default_rng(seed)
    graph = OverlayGraph(n)
    for i in range(n):
        graph.add_edge(i, (i + 1) % n, float(rng.uniform(1, 10)))
        for j in rng.choice([x for x in range(n) if x != i], size=k, replace=False):
            graph.add_edge(i, int(j), float(rng.uniform(1, 10)))
    return graph


class TestSingleSource:
    def test_line_costs(self):
        graph = line_graph([2.0, 3.0, 4.0])
        costs = shortest_path_costs_from(graph, 0)
        assert list(costs) == pytest.approx([0.0, 2.0, 5.0, 9.0])

    def test_unreachable_infinite_by_default(self):
        graph = line_graph([1.0])
        costs = shortest_path_costs_from(graph, 1)
        assert np.isinf(costs[0])

    def test_unreachable_custom_penalty(self):
        graph = line_graph([1.0])
        costs = shortest_path_costs_from(graph, 1, disconnection_cost=999.0)
        assert costs[0] == 999.0

    def test_multi_source(self):
        graph = line_graph([2.0, 3.0])
        costs = shortest_path_costs_multi(graph, [0, 1])
        assert costs.shape == (2, 3)
        assert costs[0, 2] == pytest.approx(5.0)
        assert costs[1, 2] == pytest.approx(3.0)

    def test_matches_networkx(self):
        graph = random_overlay(15, 3, seed=0)
        nxg = graph.to_networkx()
        ours = shortest_path_costs_from(graph, 0)
        theirs = nx.single_source_dijkstra_path_length(nxg, 0, weight="weight")
        for node, dist in theirs.items():
            assert ours[node] == pytest.approx(dist)


class TestPathExtraction:
    def test_shortest_path_nodes(self):
        graph = OverlayGraph(4)
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(1, 3, 1.0)
        graph.add_edge(0, 2, 5.0)
        graph.add_edge(2, 3, 5.0)
        assert shortest_path(graph, 0, 3) == [0, 1, 3]

    def test_no_path_returns_none(self):
        graph = line_graph([1.0])
        assert shortest_path(graph, 1, 0) is None

    def test_path_cost_matches_distance(self):
        graph = random_overlay(12, 2, seed=1)
        path = shortest_path(graph, 0, 7)
        dist = shortest_path_costs_from(graph, 0)[7]
        assert path_cost(graph, path) == pytest.approx(dist)

    def test_tree_predecessors_consistent(self):
        graph = random_overlay(10, 2, seed=2)
        dist, pred = shortest_path_tree(graph, 0)
        for v in range(1, 10):
            if np.isfinite(dist[v]):
                parent = int(pred[v])
                assert dist[v] == pytest.approx(dist[parent] + graph.weight(parent, v))


class TestAllPairs:
    def test_diagonal_zero(self):
        graph = random_overlay(8, 2, seed=3)
        costs = all_pairs_shortest_costs(graph)
        assert np.all(np.diag(costs) == 0)

    def test_subset_sources(self):
        graph = random_overlay(8, 2, seed=4)
        costs = all_pairs_shortest_costs(graph, sources=[0, 1], disconnection_cost=1e6)
        full = all_pairs_shortest_costs(graph, disconnection_cost=1e6)
        assert np.allclose(costs[0], full[0])
        assert np.allclose(costs[1], full[1])
        # Untouched rows carry the disconnection cost off-diagonal.
        assert costs[5, 3] == 1e6

    def test_triangle_inequality_over_graph_metric(self):
        graph = random_overlay(12, 3, seed=5)
        costs = all_pairs_shortest_costs(graph)
        n = graph.n
        for i in range(n):
            for j in range(n):
                for k in range(0, n, 3):
                    assert costs[i, j] <= costs[i, k] + costs[k, j] + 1e-9

    @settings(max_examples=20, deadline=None)
    @given(st.integers(4, 12), st.integers(1, 3))
    def test_more_edges_never_hurt(self, n, k):
        """Adding edges can only lower (or keep) shortest-path costs."""
        sparse = random_overlay(n, k, seed=n * 10 + k)
        dense = sparse.copy()
        rng = np.random.default_rng(n)
        for i in range(n):
            j = int(rng.integers(0, n))
            if i != j and not dense.has_edge(i, j):
                dense.add_edge(i, j, float(rng.uniform(1, 10)))
        sparse_costs = all_pairs_shortest_costs(sparse, disconnection_cost=1e9)
        dense_costs = all_pairs_shortest_costs(dense, disconnection_cost=1e9)
        assert np.all(dense_costs <= sparse_costs + 1e-9)


class TestStretch:
    def test_full_mesh_stretch_is_one(self):
        n = 6
        rng = np.random.default_rng(0)
        direct = rng.uniform(1, 10, size=(n, n))
        direct = (direct + direct.T) / 2
        np.fill_diagonal(direct, 0.0)
        graph = OverlayGraph(n)
        for i in range(n):
            for j in range(n):
                if i != j:
                    graph.add_edge(i, j, direct[i, j])
        # Costs may be lower than direct (two-hop shortcuts), never higher.
        assert average_path_stretch(graph, direct) <= 1.0 + 1e-9
