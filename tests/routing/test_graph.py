"""Tests for the OverlayGraph structure."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.routing.graph import OverlayGraph
from repro.util.validation import ValidationError


def ring_graph(n, weight=1.0):
    graph = OverlayGraph(n)
    for i in range(n):
        graph.add_edge(i, (i + 1) % n, weight)
    return graph


class TestMutation:
    def test_add_and_query(self):
        graph = OverlayGraph(3)
        graph.add_edge(0, 1, 5.0)
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(1, 0)
        assert graph.weight(0, 1) == 5.0

    def test_add_overwrites_weight(self):
        graph = OverlayGraph(3)
        graph.add_edge(0, 1, 5.0)
        graph.add_edge(0, 1, 7.0)
        assert graph.weight(0, 1) == 7.0
        assert graph.edge_count() == 1

    def test_self_loop_rejected(self):
        graph = OverlayGraph(3)
        with pytest.raises(ValidationError):
            graph.add_edge(1, 1, 1.0)

    def test_negative_weight_rejected(self):
        graph = OverlayGraph(3)
        with pytest.raises(ValidationError):
            graph.add_edge(0, 1, -1.0)

    def test_out_of_range_rejected(self):
        graph = OverlayGraph(3)
        with pytest.raises(ValidationError):
            graph.add_edge(0, 3, 1.0)

    def test_remove_edge(self):
        graph = ring_graph(4)
        graph.remove_edge(0, 1)
        assert not graph.has_edge(0, 1)
        assert 0 not in graph.predecessors(1)

    def test_remove_node_edges(self):
        graph = ring_graph(4)
        graph.remove_node_edges(0)
        assert graph.out_degree(0) == 0
        assert graph.in_degree(0) == 0

    def test_set_out_edges_replaces(self):
        graph = ring_graph(4)
        graph.set_out_edges(0, {2: 3.0, 3: 4.0})
        assert graph.successors(0) == {2: 3.0, 3: 4.0}


class TestQueries:
    def test_degrees(self):
        graph = ring_graph(5)
        assert all(graph.out_degree(i) == 1 for i in range(5))
        assert all(graph.in_degree(i) == 1 for i in range(5))

    def test_edges_iteration(self):
        graph = ring_graph(3, weight=2.0)
        edges = sorted(graph.edges())
        assert edges == [(0, 1, 2.0), (1, 2, 2.0), (2, 0, 2.0)]

    def test_successors_returns_copy(self):
        graph = ring_graph(3)
        succ = graph.successors(0)
        succ[2] = 99.0
        assert not graph.has_edge(0, 2)


class TestDerivation:
    def test_copy_independent(self):
        graph = ring_graph(4)
        clone = graph.copy()
        clone.remove_edge(0, 1)
        assert graph.has_edge(0, 1)

    def test_without_node_out_edges(self):
        graph = ring_graph(4)
        residual = graph.without_node_out_edges(0)
        assert residual.out_degree(0) == 0
        assert residual.in_degree(0) == 1  # 3 -> 0 stays

    def test_restricted(self):
        graph = ring_graph(5)
        sub = graph.restricted([0, 1, 2])
        assert sub.has_edge(0, 1)
        assert sub.has_edge(1, 2)
        assert not sub.has_edge(2, 3)

    def test_adjacency_matrix(self):
        graph = ring_graph(3, weight=4.0)
        mat = graph.to_adjacency_matrix()
        assert mat[0, 1] == 4.0
        assert np.isinf(mat[0, 2])
        assert np.all(np.diag(mat) == 0)

    def test_networkx_round_trip(self):
        graph = ring_graph(4, weight=3.0)
        nxg = graph.to_networkx()
        back = OverlayGraph.from_networkx(nxg)
        assert sorted(back.edges()) == sorted(graph.edges())

    def test_from_networkx_requires_contiguous_labels(self):
        nxg = nx.DiGraph()
        nxg.add_edge(0, 5, weight=1.0)
        with pytest.raises(ValidationError):
            OverlayGraph.from_networkx(nxg)

    def test_from_wirings(self):
        graph = OverlayGraph.from_wirings(3, {0: {1: 2.0}, 1: {2: 3.0}})
        assert graph.has_edge(0, 1)
        assert graph.weight(1, 2) == 3.0


class TestConnectivity:
    def test_ring_strongly_connected(self):
        assert ring_graph(6).is_strongly_connected()

    def test_broken_ring_not_strongly_connected(self):
        graph = ring_graph(6)
        graph.remove_edge(2, 3)
        assert not graph.is_strongly_connected()

    def test_reachable_from(self):
        graph = OverlayGraph(4)
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(1, 2, 1.0)
        assert graph.reachable_from(0) == {0, 1, 2}

    def test_subset_connectivity(self):
        graph = OverlayGraph(5)
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(1, 0, 1.0)
        assert graph.is_strongly_connected(nodes=[0, 1])
        assert not graph.is_strongly_connected(nodes=[0, 1, 2])

    @settings(max_examples=25, deadline=None)
    @given(st.integers(2, 12))
    def test_ring_property(self, n):
        graph = ring_graph(n)
        assert graph.edge_count() == n
        assert graph.is_strongly_connected()
