"""Tests for link-state message formats and size accounting."""

import pytest

from repro.routing.messages import (
    Heartbeat,
    LinkStateAnnouncement,
    LSA_HEADER_BITS,
    LSA_PER_NEIGHBOR_BITS,
    announcement_size_bits,
    linkstate_rate_bps,
)
from repro.util.validation import ValidationError


class TestLinkStateAnnouncement:
    def test_from_dict_and_back(self):
        ann = LinkStateAnnouncement.from_dict(3, 7, {1: 5.0, 2: 9.0}, timestamp=12.0)
        assert ann.origin == 3
        assert ann.sequence == 7
        assert ann.links_dict() == {1: 5.0, 2: 9.0}
        assert ann.timestamp == 12.0

    def test_size_formula(self):
        ann = LinkStateAnnouncement.from_dict(0, 1, {1: 1.0, 2: 2.0, 3: 3.0})
        assert ann.size_bits == LSA_HEADER_BITS + 3 * LSA_PER_NEIGHBOR_BITS

    def test_paper_example_k5(self):
        # The paper's expression (192 + 32k) with k = 5 gives 352 bits.
        assert announcement_size_bits(5) == 352

    def test_empty_announcement(self):
        ann = LinkStateAnnouncement.from_dict(0, 1, {})
        assert ann.size_bits == LSA_HEADER_BITS

    def test_negative_origin_rejected(self):
        with pytest.raises(ValidationError):
            LinkStateAnnouncement.from_dict(-1, 0, {})

    def test_negative_sequence_rejected(self):
        with pytest.raises(ValidationError):
            LinkStateAnnouncement.from_dict(0, -1, {})

    def test_links_sorted_and_hashable(self):
        ann = LinkStateAnnouncement.from_dict(0, 1, {5: 1.0, 2: 2.0})
        assert ann.links == ((2, 2.0), (5, 1.0))
        hash(ann)  # frozen dataclass must be hashable


class TestRates:
    def test_linkstate_rate_paper_settings(self):
        # k = 5 neighbours announced every 20 s -> (192 + 32*5)/20 = 17.6 bps.
        assert linkstate_rate_bps(5, 20.0) == pytest.approx(17.6)

    def test_rate_scales_with_k(self):
        assert linkstate_rate_bps(8, 20.0) > linkstate_rate_bps(2, 20.0)

    def test_invalid_interval(self):
        with pytest.raises(ValidationError):
            linkstate_rate_bps(5, 0.0)

    def test_negative_neighbors_rejected(self):
        with pytest.raises(ValidationError):
            announcement_size_bits(-1)

    def test_heartbeat_size(self):
        assert Heartbeat(0, 1).size_bits == 128
