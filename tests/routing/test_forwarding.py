"""Tests for forwarding tables and hop-by-hop delivery."""

import numpy as np
import pytest

from repro.core.cost import DelayMetric
from repro.core.policies import BestResponsePolicy, build_overlay
from repro.netsim.planetlab import synthetic_planetlab
from repro.routing.forwarding import (
    DeliveryStatus,
    ForwardingTable,
    OverlayForwarder,
    RoutingObjective,
)
from repro.routing.graph import OverlayGraph
from repro.routing.shortest_path import all_pairs_shortest_costs
from repro.util.validation import ValidationError


def diamond():
    graph = OverlayGraph(4)
    graph.add_edge(0, 1, 1.0)
    graph.add_edge(1, 3, 1.0)
    graph.add_edge(0, 2, 5.0)
    graph.add_edge(2, 3, 5.0)
    graph.add_edge(3, 0, 1.0)
    return graph


class TestForwardingTable:
    def test_next_hop_follows_shortest_path(self):
        table = ForwardingTable(0, diamond())
        assert table.next_hop(3) == 1
        assert table.metric_to(3) == pytest.approx(2.0)

    def test_unreachable_destination_absent(self):
        graph = OverlayGraph(3)
        graph.add_edge(0, 1, 1.0)
        table = ForwardingTable(0, graph)
        assert table.next_hop(2) is None
        assert table.reachable_destinations() == [1]

    def test_widest_path_objective(self):
        graph = OverlayGraph(4)
        graph.add_edge(0, 1, 10.0)
        graph.add_edge(1, 3, 2.0)
        graph.add_edge(0, 2, 5.0)
        graph.add_edge(2, 3, 5.0)
        table = ForwardingTable(0, graph, RoutingObjective.WIDEST_PATH)
        assert table.next_hop(3) == 2
        assert table.metric_to(3) == pytest.approx(5.0)

    def test_entries_sorted(self):
        table = ForwardingTable(0, diamond())
        destinations = [e.destination for e in table.entries()]
        assert destinations == sorted(destinations)
        assert len(table) == 3


class TestOverlayForwarder:
    def test_delivery_matches_control_plane(self):
        """Hop-by-hop delivery over per-node tables realises the end-to-end
        shortest-path cost computed by the control plane."""
        space, _nodes = synthetic_planetlab(15, seed=6)
        metric = DelayMetric(space.matrix)
        overlay = build_overlay(BestResponsePolicy(), metric, 3, rng=6, br_rounds=2)
        graph = overlay.to_graph()
        forwarder = OverlayForwarder(graph)
        costs = all_pairs_shortest_costs(graph)
        rng = np.random.default_rng(0)
        for _ in range(25):
            src, dst = rng.integers(0, 15, size=2)
            if src == dst:
                continue
            report = forwarder.deliver(int(src), int(dst))
            assert report.delivered
            assert report.cost == pytest.approx(costs[src, dst])

    def test_delivery_report_fields(self):
        forwarder = OverlayForwarder(diamond())
        report = forwarder.deliver(0, 3)
        assert report.delivered
        assert report.path == [0, 1, 3]
        assert report.hops == 2

    def test_no_route(self):
        graph = OverlayGraph(3)
        graph.add_edge(0, 1, 1.0)
        forwarder = OverlayForwarder(graph)
        report = forwarder.deliver(0, 2)
        assert report.status is DeliveryStatus.NO_ROUTE
        assert not report.delivered

    def test_ttl_expiry(self):
        forwarder = OverlayForwarder(diamond())
        report = forwarder.deliver(0, 3, ttl=1)
        assert report.status is DeliveryStatus.TTL_EXPIRED

    def test_inconsistent_tables_detected_as_loop(self):
        """Stale per-node views can loop traffic; the forwarder detects it."""
        graph = diamond()
        tables = {node: ForwardingTable(node, graph) for node in range(4)}
        # Node 1 has a stale view in which the route to 3 goes back via 0.
        stale = OverlayGraph(4)
        stale.add_edge(1, 0, 1.0)
        stale.add_edge(0, 3, 1.0)
        tables[1] = ForwardingTable(1, stale)
        forwarder = OverlayForwarder(graph, tables=tables)
        report = forwarder.deliver(0, 3)
        assert report.status in (DeliveryStatus.LOOP_DETECTED, DeliveryStatus.NO_ROUTE)

    def test_delivery_ratio(self):
        forwarder = OverlayForwarder(diamond())
        pairs = [(0, 3), (1, 3), (2, 3), (3, 0)]
        assert forwarder.delivery_ratio(pairs) == 1.0
        assert forwarder.delivery_ratio([]) == 0.0

    def test_same_endpoints_rejected(self):
        with pytest.raises(ValidationError):
            OverlayForwarder(diamond()).deliver(1, 1)
