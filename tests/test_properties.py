"""Cross-cutting property-based tests on core invariants.

These use hypothesis to generate small random overlays and metric
instances and check the game-level invariants the paper's correctness
relies on: best responses never hurt, richer wirings never hurt, the
efficiency metric is bounded, and the connectivity-enforcement helpers
always deliver strong connectivity.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.best_response import WiringEvaluator, best_response
from repro.core.cost import DelayMetric, uniform_preferences
from repro.core.policies import (
    KClosestPolicy,
    KRandomPolicy,
    build_overlay,
    enforce_connectivity_cycle,
)
from repro.core.wiring import GlobalWiring, Wiring
from repro.churn.metrics import node_efficiency, overlay_efficiency
from repro.routing.graph import OverlayGraph
from repro.routing.shortest_path import all_pairs_shortest_costs

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def delay_metrics(draw):
    """Random small symmetric delay metrics (4-10 nodes)."""
    n = draw(st.integers(4, 10))
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    delays = rng.uniform(1.0, 100.0, size=(n, n))
    delays = (delays + delays.T) / 2.0
    np.fill_diagonal(delays, 0.0)
    return DelayMetric(delays)


@st.composite
def metric_and_ring(draw):
    """A metric plus the ring residual graph excluding node 0."""
    metric = draw(delay_metrics())
    n = metric.size
    graph = OverlayGraph(n)
    others = list(range(1, n))
    for idx, node in enumerate(others):
        nxt = others[(idx + 1) % len(others)]
        graph.add_edge(node, nxt, metric.link_weight(node, nxt))
    return metric, graph


class TestBestResponseInvariants:
    @SETTINGS
    @given(metric_and_ring(), st.integers(1, 3))
    def test_best_response_never_worse_than_any_single_candidate(self, setup, k):
        metric, residual = setup
        evaluator = WiringEvaluator(0, metric, residual)
        result = best_response(evaluator, k, rng=0)
        for candidate in evaluator.candidates[:5]:
            assert result.cost <= evaluator.evaluate({candidate}) + 1e-9

    @SETTINGS
    @given(metric_and_ring())
    def test_superset_wiring_never_hurts(self, setup):
        metric, residual = setup
        evaluator = WiringEvaluator(0, metric, residual)
        candidates = evaluator.candidates
        small = set(candidates[:1])
        large = set(candidates[:3])
        assert evaluator.evaluate(large) <= evaluator.evaluate(small) + 1e-9

    @SETTINGS
    @given(metric_and_ring(), st.integers(1, 3))
    def test_best_response_degree_at_most_k(self, setup, k):
        metric, residual = setup
        evaluator = WiringEvaluator(0, metric, residual)
        result = best_response(evaluator, k, rng=0)
        assert len(result.neighbors) <= k

    @SETTINGS
    @given(metric_and_ring())
    def test_evaluator_agrees_with_full_graph_cost(self, setup):
        metric, residual = setup
        evaluator = WiringEvaluator(0, metric, residual)
        chosen = set(evaluator.candidates[:2])
        fast = evaluator.evaluate(chosen)
        full = residual.copy()
        for v in chosen:
            full.add_edge(0, v, metric.link_weight(0, v))
        assert fast == pytest.approx(metric.node_cost(0, full), rel=1e-9)


class TestOverlayInvariants:
    @SETTINGS
    @given(delay_metrics(), st.integers(1, 3), st.integers(0, 1000))
    def test_built_overlays_strongly_connected(self, metric, k, seed):
        policy = KRandomPolicy() if seed % 2 == 0 else KClosestPolicy()
        wiring = build_overlay(policy, metric, k, rng=seed)
        assert wiring.to_graph().is_strongly_connected()

    @SETTINGS
    @given(delay_metrics(), st.integers(0, 500))
    def test_connectivity_cycle_idempotent(self, metric, seed):
        wiring = build_overlay(KRandomPolicy(), metric, 1, rng=seed)
        first = enforce_connectivity_cycle(wiring, metric)
        second = enforce_connectivity_cycle(wiring, metric)
        assert second == 0
        assert wiring.to_graph().is_strongly_connected()

    @SETTINGS
    @given(delay_metrics(), st.integers(1, 3), st.integers(0, 500))
    def test_social_cost_equals_sum_of_node_costs(self, metric, k, seed):
        wiring = build_overlay(KRandomPolicy(), metric, k, rng=seed)
        graph = wiring.to_graph()
        social = metric.social_cost(graph)
        summed = sum(metric.all_node_costs(graph).values())
        assert social == pytest.approx(summed)


class TestEfficiencyInvariants:
    @SETTINGS
    @given(delay_metrics(), st.integers(1, 3), st.integers(0, 500))
    def test_efficiency_bounded(self, metric, k, seed):
        wiring = build_overlay(KRandomPolicy(), metric, k, rng=seed)
        graph = wiring.to_graph()
        eff = overlay_efficiency(graph)
        assert 0.0 <= eff
        # Delays are >= 1 ms in these instances, so efficiency <= 1.
        assert eff <= 1.0 + 1e-9

    @SETTINGS
    @given(delay_metrics(), st.integers(0, 500))
    def test_removing_a_node_never_raises_survivor_efficiency(self, metric, seed):
        """Churn can only hurt each surviving node's own efficiency.

        (The overlay *mean* can rise when a poorly-connected node leaves the
        averaging set, so the invariant is per-node, not aggregate.)
        """
        wiring = build_overlay(KRandomPolicy(), metric, 2, rng=seed)
        graph = wiring.to_graph()
        survivors = list(range(metric.size - 1))
        for node in survivors[:4]:
            full = node_efficiency(graph, node)
            reduced = node_efficiency(graph, node, active=survivors)
            assert reduced <= full + 1e-9

    @SETTINGS
    @given(delay_metrics(), st.integers(0, 500))
    def test_node_efficiency_zero_when_isolated(self, metric, seed):
        graph = OverlayGraph(metric.size)
        assert node_efficiency(graph, 0) == 0.0


class TestRoutingInvariants:
    @SETTINGS
    @given(delay_metrics(), st.integers(1, 3), st.integers(0, 500))
    def test_shortest_paths_respect_direct_link_upper_bound(self, metric, k, seed):
        wiring = build_overlay(KClosestPolicy(), metric, k, rng=seed)
        graph = wiring.to_graph()
        costs = all_pairs_shortest_costs(graph)
        for u, v, w in graph.edges():
            assert costs[u, v] <= w + 1e-9
