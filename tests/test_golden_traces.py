"""Golden-trace regression tests for the simulation engine.

Each scenario runs a fully seeded :class:`~repro.core.EgoistEngine`
deployment for a handful of wiring epochs and compares the per-epoch
:class:`~repro.core.EpochRecord` stream — every field, exactly — against a
digest stored under ``tests/golden/``.  Floats are serialised with
``float.hex()`` so the comparison is bit-exact: any refactor that shifts a
cost by a single ULP, consumes RNG draws in a different order, or changes
tie-breaking in the best-response kernels fails these tests instead of
silently drifting the paper's figures.

To regenerate the digests after an *intentional* behaviour change::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_traces.py

and commit the refreshed JSON files together with the change.
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path

import numpy as np
import pytest

from repro.churn.models import trace_driven_churn
from repro.core import (
    BandwidthMetricProvider,
    BestResponsePolicy,
    DelayMetricProvider,
    EgoistEngine,
    HybridBRPolicy,
    LoadMetricProvider,
)
from repro.netsim.bandwidth import BandwidthModel
from repro.netsim.delayspace import DelaySpace
from repro.netsim.load import NodeLoadModel

GOLDEN_DIR = Path(__file__).parent / "golden"
REGEN = bool(os.environ.get("REPRO_REGEN_GOLDEN"))

FLOAT_FIELDS = ("time", "mean_cost", "mean_efficiency", "social_cost")
INT_FIELDS = ("epoch", "active_nodes", "rewirings", "linkstate_bits")


def _delay_space(n: int, seed: int, jitter_std: float = 0.0) -> DelaySpace:
    rng = np.random.default_rng(seed)
    matrix = rng.uniform(5.0, 150.0, size=(n, n))
    np.fill_diagonal(matrix, 0.0)
    return DelaySpace(matrix, jitter_std=jitter_std)


def _build_engine(scenario: str) -> tuple[EgoistEngine, int]:
    """The seeded engine plus epoch count for one golden scenario."""
    if scenario == "delay_true":
        provider = DelayMetricProvider(_delay_space(10, seed=11), estimator="true")
        return EgoistEngine(provider, BestResponsePolicy(), k=2, seed=101), 6
    if scenario == "delay_ping_drift":
        provider = DelayMetricProvider(
            _delay_space(8, seed=22, jitter_std=2.0),
            estimator="ping",
            drift_relative_std=0.05,
            seed=202,
        )
        return EgoistEngine(provider, BestResponsePolicy(), k=2, seed=102), 5
    if scenario == "load":
        provider = LoadMetricProvider(NodeLoadModel(10, seed=33))
        return EgoistEngine(provider, BestResponsePolicy(), k=2, seed=103), 5
    if scenario == "bandwidth":
        provider = BandwidthMetricProvider(BandwidthModel(8, seed=44), seed=404)
        return EgoistEngine(provider, BestResponsePolicy(), k=2, seed=104), 5
    if scenario == "delay_churn":
        provider = DelayMetricProvider(_delay_space(10, seed=55), estimator="true")
        churn = trace_driven_churn(
            10,
            horizon=8 * 60.0,
            mean_on=300.0,
            mean_off=120.0,
            initial_on_probability=0.8,
            seed=505,
        )
        engine = EgoistEngine(
            provider,
            BestResponsePolicy(),
            k=2,
            churn=churn,
            compute_efficiency=True,
            seed=105,
        )
        return engine, 8
    if scenario == "hybrid_epsilon":
        provider = DelayMetricProvider(_delay_space(10, seed=66), estimator="true")
        engine = EgoistEngine(
            provider, HybridBRPolicy(k2=2), k=4, epsilon=0.1, seed=106
        )
        return engine, 5
    raise ValueError(f"unknown scenario {scenario!r}")


SCENARIOS = (
    "delay_true",
    "delay_ping_drift",
    "load",
    "bandwidth",
    "delay_churn",
    "hybrid_epsilon",
)


def _digest(engine: EgoistEngine, epochs: int) -> list:
    history = engine.run(epochs)
    rows = []
    for record in history.records:
        row = {name: int(getattr(record, name)) for name in INT_FIELDS}
        row.update(
            {name: float(getattr(record, name)).hex() for name in FLOAT_FIELDS}
        )
        rows.append(row)
    return rows


def _assert_rows_equal(actual: list, expected: list, scenario: str) -> None:
    assert len(actual) == len(expected), f"{scenario}: epoch count changed"
    for idx, (got, want) in enumerate(zip(actual, expected)):
        for name in INT_FIELDS:
            assert got[name] == want[name], (
                f"{scenario} epoch {idx}: {name} {got[name]!r} != {want[name]!r}"
            )
        for name in FLOAT_FIELDS:
            got_value = float.fromhex(got[name])
            want_value = float.fromhex(want[name])
            if math.isnan(got_value) and math.isnan(want_value):
                continue
            assert got[name] == want[name], (
                f"{scenario} epoch {idx}: {name} {got_value!r} != {want_value!r}"
            )


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_golden_trace(scenario):
    engine, epochs = _build_engine(scenario)
    rows = _digest(engine, epochs)
    path = GOLDEN_DIR / f"{scenario}.json"
    if REGEN:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(rows, indent=2) + "\n")
        pytest.skip(f"regenerated {path.name}")
    assert path.exists(), (
        f"golden file {path} missing - run with REPRO_REGEN_GOLDEN=1 to create it"
    )
    expected = json.loads(path.read_text())
    _assert_rows_equal(rows, expected, scenario)


def test_golden_traces_are_deterministic():
    """The same scenario built twice yields byte-identical digests (guards
    against hidden global-RNG or ordering dependence in the engine)."""
    first = _digest(*_build_engine("delay_true"))
    second = _digest(*_build_engine("delay_true"))
    assert first == second


def test_golden_trace_vectorization_invariance():
    """Golden digests must not depend on the vectorized flag: the scalar
    reference path reproduces the stored trace of the default path."""
    provider = DelayMetricProvider(_delay_space(10, seed=11), estimator="true")
    engine = EgoistEngine(
        provider, BestResponsePolicy(vectorized=False), k=2, seed=101
    )
    rows = _digest(engine, 6)
    path = GOLDEN_DIR / "delay_true.json"
    if not path.exists():
        pytest.skip("golden file not generated yet")
    _assert_rows_equal(rows, json.loads(path.read_text()), "delay_true[scalar]")
