"""End-to-end integration tests across subsystems."""

import numpy as np
import pytest

from repro import quick_overlay
from repro.core.cost import DelayMetric
from repro.core.engine import EgoistEngine
from repro.core.policies import (
    BestResponsePolicy,
    FullMeshPolicy,
    KClosestPolicy,
    KRandomPolicy,
    KRegularPolicy,
    build_overlay,
)
from repro.core.providers import DelayMetricProvider
from repro.core.sampling import sampled_best_response, topology_biased_sample
from repro.netsim.planetlab import synthetic_planetlab
from repro.routing.linkstate import LinkStateProtocol


class TestQuickstart:
    def test_quick_overlay_headline_ordering(self):
        result = quick_overlay(n=18, k=3, seed=5)
        costs = result["mean_cost_by_policy"]
        assert costs["best-response"] <= min(
            costs["k-random"], costs["k-regular"], costs["k-closest"]
        ) * 1.02
        assert costs["full-mesh"] <= costs["best-response"] * 1.02


class TestHeadlineClaims:
    """The paper's core claims, verified end-to-end at reduced scale."""

    @pytest.fixture(scope="class")
    def setting(self):
        space, _nodes = synthetic_planetlab(24, seed=17)
        return DelayMetric(space.matrix)

    def test_br_beats_every_heuristic(self, setting):
        metric = setting
        br = build_overlay(BestResponsePolicy(), metric, 3, rng=0, br_rounds=3)
        br_cost = np.mean(list(metric.all_node_costs(br.to_graph()).values()))
        for policy in (KRandomPolicy(), KRegularPolicy(), KClosestPolicy()):
            other = build_overlay(policy, metric, 3, rng=0)
            other_cost = np.mean(list(metric.all_node_costs(other.to_graph()).values()))
            assert br_cost <= other_cost + 1e-9, type(policy).__name__

    def test_br_competitive_with_full_mesh(self, setting):
        """At k=4+ BR should be close to the full-mesh lower bound."""
        metric = setting
        br = build_overlay(BestResponsePolicy(), metric, 4, rng=1, br_rounds=3)
        mesh = build_overlay(FullMeshPolicy(), metric, 23, rng=1)
        br_cost = np.mean(list(metric.all_node_costs(br.to_graph()).values()))
        mesh_cost = np.mean(list(metric.all_node_costs(mesh.to_graph()).values()))
        assert br_cost <= mesh_cost * 1.6

    def test_scalability_nk_vs_n2(self, setting):
        metric = setting
        br = build_overlay(BestResponsePolicy(), metric, 3, rng=2, br_rounds=2)
        mesh = build_overlay(FullMeshPolicy(), metric, 23, rng=2)
        assert br.total_links() <= 24 * 3 + 24  # nk plus connectivity slack
        assert mesh.total_links() == 24 * 23


class TestProtocolIntegration:
    def test_linkstate_reconstructs_engine_overlay(self):
        space, _nodes = synthetic_planetlab(12, seed=8)
        provider = DelayMetricProvider(space, estimator="true")
        engine = EgoistEngine(provider, BestResponsePolicy(), 3, seed=0)
        engine.run(2)
        # Every node's protocol database should reconstruct the same overlay
        # the engine holds.
        reference = engine.wiring.to_graph()
        view = engine.protocol.view_of(0)
        assert sorted(view.edges()) == sorted(reference.edges())

    def test_newcomer_join_via_sampling(self):
        space, _nodes = synthetic_planetlab(30, seed=9)
        metric = DelayMetric(space.matrix)
        existing = list(range(29))
        overlay = build_overlay(
            BestResponsePolicy(), metric, 3, nodes=existing, rng=3, br_rounds=2
        )
        residual = overlay.to_graph(active=existing)
        sample = topology_biased_sample(
            29, metric, residual, 10, candidates=existing, rng=4
        )
        join = sampled_best_response(29, metric, residual, 3, sample, rng=4)
        assert len(join.neighbors) == 3
        assert join.neighbors <= set(sample)
