"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cost import BandwidthMetric, DelayMetric, NodeLoadMetric
from repro.netsim.bandwidth import BandwidthModel
from repro.netsim.delayspace import DelaySpace
from repro.netsim.load import NodeLoadModel
from repro.netsim.planetlab import synthetic_planetlab


@pytest.fixture
def rng():
    """A seeded generator for test determinism."""
    return np.random.default_rng(1234)


@pytest.fixture
def small_delay_matrix():
    """A hand-crafted 5-node asymmetric delay matrix with known structure.

    Node 0 is central (cheap to everyone); node 4 is remote (expensive).
    """
    return np.array(
        [
            [0.0, 10.0, 12.0, 15.0, 40.0],
            [11.0, 0.0, 8.0, 20.0, 45.0],
            [13.0, 9.0, 0.0, 18.0, 50.0],
            [16.0, 21.0, 19.0, 0.0, 30.0],
            [42.0, 44.0, 52.0, 31.0, 0.0],
        ]
    )


@pytest.fixture
def small_delay_space(small_delay_matrix):
    """DelaySpace over the 5-node matrix (no jitter)."""
    return DelaySpace(small_delay_matrix, jitter_std=0.0)


@pytest.fixture
def small_delay_metric(small_delay_matrix):
    """DelayMetric over the 5-node matrix."""
    return DelayMetric(small_delay_matrix)


@pytest.fixture
def planetlab20():
    """A 20-node synthetic PlanetLab delay space (deterministic)."""
    space, nodes = synthetic_planetlab(20, seed=7)
    return space, nodes


@pytest.fixture
def planetlab20_metric(planetlab20):
    """DelayMetric over the 20-node PlanetLab space."""
    space, _nodes = planetlab20
    return DelayMetric(space.matrix)


@pytest.fixture
def load_metric_small():
    """A 6-node NodeLoadMetric with a deliberately overloaded node 5."""
    return NodeLoadMetric([0.5, 1.0, 0.8, 1.5, 0.3, 9.0])


@pytest.fixture
def bandwidth_metric_small(rng):
    """A 6-node BandwidthMetric from a seeded bandwidth model."""
    model = BandwidthModel(6, seed=rng)
    return BandwidthMetric(model.matrix())


@pytest.fixture
def bandwidth_model8():
    """An 8-node bandwidth model (deterministic)."""
    return BandwidthModel(8, seed=42)


@pytest.fixture
def load_model8():
    """An 8-node load model (deterministic)."""
    return NodeLoadModel(8, seed=42)
