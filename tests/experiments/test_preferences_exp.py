"""Tests for the preference-skew ablation driver."""

import numpy as np
import pytest

from repro.experiments.preferences_exp import preference_skew_ablation


class TestPreferenceSkew:
    @pytest.fixture(scope="class")
    def result(self):
        return preference_skew_ablation(
            n=16, exponents=(0.0, 1.5), k=3, seed=5, br_rounds=2
        )

    def test_br_normalised_to_one(self, result):
        assert all(v == pytest.approx(1.0) for v in result.series["best-response"].y)

    def test_heuristics_no_better_than_br(self, result):
        for label in ("k-random", "k-regular", "k-closest"):
            assert all(v >= 0.9 for v in result.series[label].y), label

    def test_two_skew_levels_recorded(self, result):
        assert result.series["k-random"].x == [0.0, 1.5]

    def test_skew_does_not_shrink_br_advantage_much(self, result):
        """BR leverages skew, so its edge should not collapse as skew grows."""
        mean_at = lambda idx: np.mean(
            [
                result.series[l].y[idx]
                for l in ("k-random", "k-regular", "k-closest")
            ]
        )
        assert mean_at(1) >= mean_at(0) * 0.75
