"""Integration tests for the figure-level experiment drivers.

These run each driver at a reduced scale and check the *shape* of the
result the paper reports (who wins, monotone trends, normalisation), not
absolute values.
"""

import numpy as np
import pytest

from repro.experiments import (
    fig1_bandwidth,
    fig1_delay_ping,
    fig1_delay_pyxida,
    fig1_node_load,
    fig2_churn_rate_sweep,
    fig2_efficiency_vs_k,
    fig3_epsilon_comparison,
    fig3_rewirings_over_time,
    fig4_many_free_riders,
    fig4_one_free_rider,
    fig5_to_8_sampling,
    fig10_multipath_gain,
    fig11_disjoint_paths,
    overhead_table,
)
from repro.experiments.harness import ExperimentResult, Series, normalize_against


class TestHarness:
    def test_series_and_result(self):
        result = ExperimentResult("figX", "demo", "k", "cost")
        result.add_point("a", 1, 2.0)
        result.add_point("a", 2, 3.0)
        result.add_point("b", 1, 4.0)
        assert result.series["a"].y == [2.0, 3.0]
        table = result.table()
        assert "k" in table and "a" in table
        as_dict = result.as_dict()
        assert as_dict["series"]["b"]["y"] == [4.0]

    def test_normalize_against(self):
        values = {"br": 2.0, "rnd": 6.0}
        normalized = normalize_against(values, "br")
        assert normalized == {"br": 1.0, "rnd": 3.0}

    def test_table_renders_missing_x_values_as_dash(self):
        """Series without a point at some x deterministically render '-'."""
        result = ExperimentResult("figX", "demo", "k", "cost")
        result.add_point("a", 1, 2.0)
        result.add_point("a", 2, 3.0)
        result.add_point("b", 2, 4.0)  # no point at x=1
        lines = result.table().splitlines()
        assert lines[0] == "k\ta\tb"
        assert lines[1] == "1\t2\t-"
        assert lines[2] == "2\t3\t4"

    def test_table_tolerates_ragged_series(self):
        """A y-list shorter than its x-list renders '-' instead of raising."""
        result = ExperimentResult("figX", "demo", "k", "cost")
        result.add_point("a", 1, 2.0)
        ragged = result.series_for("b")
        ragged.x.extend([1.0, 2.0])
        ragged.y.append(5.0)  # second point lost its y
        lines = result.table().splitlines()
        assert lines[1] == "1\t2\t5"
        assert lines[2] == "2\t-\t-"


class TestFig1:
    @pytest.fixture(scope="class")
    def result(self):
        return fig1_delay_ping(n=20, k_values=(2, 4), seed=11, br_rounds=2)

    def test_br_normalised_to_one(self, result):
        assert all(v == pytest.approx(1.0) for v in result.series["best-response"].y)

    def test_heuristics_worse_than_br(self, result):
        for label in ("k-random", "k-regular", "k-closest"):
            assert all(v >= 0.95 for v in result.series[label].y), label

    def test_full_mesh_at_least_as_good(self, result):
        assert all(v <= 1.05 for v in result.series["full-mesh"].y)

    def test_advantage_shrinks_with_k(self, result):
        """BR's edge over the heuristics is largest for small k."""
        mean_at = lambda idx: np.mean(
            [result.series[l].y[idx] for l in ("k-random", "k-regular", "k-closest")]
        )
        assert mean_at(0) >= mean_at(1) * 0.8

    def test_pyxida_variant_runs(self):
        result = fig1_delay_pyxida(
            n=16, k_values=(3,), seed=1, br_rounds=2, coordinate_rounds=15
        )
        assert all(v >= 0.9 for v in result.series["k-regular"].y)

    def test_node_load_variant(self):
        result = fig1_node_load(n=16, k_values=(3,), seed=1, br_rounds=2)
        assert result.series["best-response"].y == [pytest.approx(1.0)]
        assert all(v >= 0.95 for v in result.series["k-closest"].y)

    def test_bandwidth_variant_ratios_below_one(self):
        result = fig1_bandwidth(n=16, k_values=(3,), seed=1, br_rounds=2)
        for label in ("k-random", "k-regular", "k-closest"):
            assert all(v <= 1.1 for v in result.series[label].y), label


class TestFig2:
    def test_efficiency_vs_k_shapes(self):
        result = fig2_efficiency_vs_k(
            n=14, k_values=(3, 5), seed=2, epochs=5, horizon=5 * 60.0
        )
        assert all(v == pytest.approx(1.0) for v in result.series["best-response"].y)
        for label in ("k-random", "k-regular", "k-closest", "hybrid-br"):
            assert all(0.0 <= v <= 1.5 for v in result.series[label].y), label

    def test_churn_rate_sweep_runs(self):
        result = fig2_churn_rate_sweep(
            n=12, churn_rates=(1e-3, 5e-2), k=4, seed=3, epochs=5, horizon=5 * 60.0
        )
        assert "hybrid-br" in result.series
        assert len(result.series["hybrid-br"].y) == 2


class TestFig3:
    def test_rewirings_decline_from_start(self):
        result = fig3_rewirings_over_time(n=16, k_values=(3,), epochs=6, seed=4)
        series = result.series["k=3"].y
        assert series[0] == 16  # initial wiring epoch
        assert min(series[1:]) < series[0]

    def test_epsilon_reduces_rewirings(self):
        result = fig3_epsilon_comparison(
            n=14, k_values=(3,), epochs=5, seed=5, epsilon=0.1
        )
        br = result.series["BR re-wirings"].y[0]
        br_eps = result.series["BR(0.1) re-wirings"].y[0]
        assert br_eps <= br + 1e-9
        # Cost stays within a reasonable factor of the full mesh.
        assert result.series["BR(0.1) cost/full mesh"].y[0] < 3.0


class TestFig4:
    def test_one_free_rider_bounded_impact(self):
        result = fig4_one_free_rider(n=16, k_values=(2, 4), seed=6, br_rounds=2)
        for label in ("free rider", "non free riders"):
            assert all(0.7 <= v <= 1.4 for v in result.series[label].y), label

    def test_many_free_riders_bounded_impact(self):
        result = fig4_many_free_riders(
            n=16, free_rider_counts=(0, 4), k=2, seed=7, br_rounds=2
        )
        assert result.series["free riders"].y[0] == pytest.approx(1.0)
        assert all(0.6 <= v <= 1.6 for v in result.series["non free riders"].y)


class TestFig5to8:
    def test_sampling_curves(self):
        result = fig5_to_8_sampling(
            "best-response", n=50, k=3, sample_sizes=(6, 14), trials=2, seed=8
        )
        for label in ("BR", "BRtp", "k-random", "k-regular", "k-closest"):
            assert label in result.series
            assert all(v >= 0.85 for v in result.series[label].y), label
        # BR-with-sampling should beat the sampled heuristics on average.
        br_mean = np.mean(result.series["BR"].y)
        worst = max(
            np.mean(result.series[l].y) for l in ("k-random", "k-regular")
        )
        assert br_mean <= worst + 1e-9

    def test_other_base_graphs_run(self):
        result = fig5_to_8_sampling(
            "k-random", n=40, k=3, sample_sizes=(8,), trials=1, seed=9
        )
        assert result.figure == "fig6"


class TestAppsAndOverhead:
    def test_fig10_gain_increases_with_k(self):
        result = fig10_multipath_gain(
            n=16, k_values=(2, 6), seed=10, br_rounds=2, pairs_per_k=30
        )
        parallel = result.series["source establ. parallel connections"].y
        ceiling = result.series["peers allow multipath redirections"].y
        assert parallel[1] >= parallel[0] * 0.9
        assert all(c >= p * 0.9 for c, p in zip(ceiling, parallel))

    def test_fig11_disjoint_paths_increase_with_k(self):
        result = fig11_disjoint_paths(
            n=16, k_values=(2, 6), seed=11, br_rounds=2, pairs_per_k=30
        )
        series = result.series["disjoint paths"].y
        assert series[1] > series[0]

    def test_overhead_table_matches_formulas(self):
        result = overhead_table(n=50, k_values=(5,))
        assert result.series["ping measurement (bps)"].y[0] == pytest.approx(
            (50 - 5 - 1) * 320 / 60.0
        )
        assert result.series["link-state protocol (bps)"].y[0] == pytest.approx(
            (192 + 32 * 5) / 20.0
        )
        assert result.series["scalability gain"].y[0] == pytest.approx(49 / 5)
