"""Benchmark: two concurrent sweep-worker processes vs one.

The acceptance gate for the ``repro.sweep.dist`` claim protocol: the
checked-in 12-cell corpus (``scenarios/bench_12cell.json``) drained by
two real ``repro sweep-worker`` processes sharing one store must beat a
single worker process by >= 1.4x wall-clock, with **byte-identical**
stored cells (the protocol's safety net: racing claimers can waste
work but never change a bit).

The 1.4x gate is deliberately below the ideal 2x: two workers pay claim
I/O, per-process interpreter start-up, and whatever contention the
per-worker corpus rotation fails to avoid on 12 cells.  Timing follows
the PR-3 interleaved best-of-2 scheme — each round times one
single-worker and one two-worker drain back to back, each side keeps
its best round — so sustained machine load drifts both sides equally.

Like the pool gate (``test_bench_sweep.py``), this one needs real
cores and is skipped where fewer than 4 CPUs are usable; the
byte-identity half of the contract stays covered everywhere by
``tests/sweep/test_dist_worker.py``.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time

import pytest

from repro.sweep import SweepStore, aggregate_cells, expand_corpus, load_templates

CORPUS = os.path.join(os.path.dirname(__file__), "..", "scenarios", "bench_12cell.json")
WORKER_PROCESSES = 2
REQUIRED_SPEEDUP = 1.4


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def _drain(store_root: str, processes: int) -> SweepStore:
    """Drain the corpus with ``processes`` concurrent sweep-worker CLIs."""
    env = dict(os.environ)
    src = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", "src"))
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src, env.get("PYTHONPATH")) if p
    )
    command = [
        sys.executable, "-m", "repro.cli", "sweep-worker", CORPUS,
        "--store", store_root, "--poll", "0.1", "--timeout", "600",
    ]
    workers = [
        subprocess.Popen(
            command, env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True,
        )
        for _ in range(processes)
    ]
    outputs = [worker.communicate()[0] for worker in workers]
    codes = [worker.returncode for worker in workers]
    assert codes == [0] * processes, f"worker exits {codes}:\n" + "\n".join(outputs)
    return SweepStore(store_root)


@pytest.mark.skipif(
    _usable_cpus() < 4,
    reason=f"distributed sweep gate needs >= 4 usable CPUs "
    f"(found {_usable_cpus()}); two worker processes cannot beat one on fewer",
)
def test_two_worker_processes_speedup(benchmark, report, tmp_path):
    cells = expand_corpus(load_templates(CORPUS))
    assert len(cells) == 12

    # Prime interpreter start-up and kernel dispatch outside the rounds.
    _drain(str(tmp_path / "warm"), processes=1)

    single_seconds = float("inf")
    double_seconds = float("inf")
    for round_index in range(2):
        start = time.perf_counter()
        single_store = _drain(str(tmp_path / f"single-{round_index}"), processes=1)
        single_seconds = min(single_seconds, time.perf_counter() - start)
        start = time.perf_counter()
        double_store = _drain(
            str(tmp_path / f"double-{round_index}"), processes=WORKER_PROCESSES
        )
        double_seconds = min(double_seconds, time.perf_counter() - start)
    benchmark.pedantic(
        _drain,
        args=(str(tmp_path / "bench-round"), WORKER_PROCESSES),
        rounds=1,
        iterations=1,
    )

    # Byte-identical stores on both paths — the hard gate.
    for cell in cells:
        assert single_store.get(cell.key) == double_store.get(cell.key), (
            f"sweep cell {cell.key} diverged between 1 and "
            f"{WORKER_PROCESSES} worker processes"
        )
    single_agg = aggregate_cells(cells, single_store)
    double_agg = aggregate_cells(cells, double_store)
    assert {k: v.as_dict() for k, v in single_agg.items()} == {
        k: v.as_dict() for k, v in double_agg.items()
    }

    speedup = single_seconds / double_seconds
    print(
        f"\n=== 12-cell corpus drain: 1 worker {single_seconds:.2f}s / "
        f"{WORKER_PROCESSES} workers {double_seconds:.2f}s = {speedup:.2f}x ==="
    )
    report(single_agg["fig1-delay-ping"])
    assert speedup >= REQUIRED_SPEEDUP, (
        f"two sweep-worker processes only {speedup:.2f}x faster than one "
        f"(required >= {REQUIRED_SPEEDUP}x)"
    )
