"""Benchmark E15 / Fig. 10: available-bandwidth gain of multipath transfer.

Paper shape: both curves grow with k; the "peers allow multipath
redirections" (max-flow) ceiling lies above the "source establishes
parallel connections" curve; gains are meaningful (well above 1) once k
exceeds the typical multihoming degree.
"""

from benchmarks.conftest import run_once
from repro.experiments import fig10_multipath_gain


def test_fig10_multipath_gain(benchmark, report):
    result = run_once(
        benchmark,
        fig10_multipath_gain,
        n=50,
        k_values=(2, 3, 4, 5, 6, 7, 8),
        seed=2008,
        br_rounds=2,
        pairs_per_k=80,
    )
    report(result)

    parallel = result.series["source establ. parallel connections"].y
    ceiling = result.series["peers allow multipath redirections"].y
    # The redirection ceiling dominates the parallel-connection gain.
    assert all(c >= p * 0.95 for c, p in zip(ceiling, parallel))
    # Both grow (weakly) with k and exceed the single-path baseline.
    assert parallel[-1] >= parallel[0] * 0.95
    assert ceiling[-1] > ceiling[0]
    assert ceiling[-1] > 1.5
    assert parallel[-1] > 1.0
