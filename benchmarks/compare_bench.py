#!/usr/bin/env python
"""Diff two pytest-benchmark JSON runs (``BENCH_*.json``).

The benchmark suite regenerates the paper's figures under timing; saving
each run with ``--benchmark-json=BENCH_<label>.json`` builds a trajectory
of timings across PRs.  This script compares two such files (or the two
most recent ``BENCH_*.json`` in a directory) benchmark-by-benchmark and
flags regressions beyond a threshold.

Usage::

    # explicit files (old, new)
    python benchmarks/compare_bench.py BENCH_prev.json BENCH_curr.json

    # or let it pick the two most recent BENCH_*.json in a directory
    python benchmarks/compare_bench.py .

    # custom regression threshold (default: 1.25x slower fails)
    python benchmarks/compare_bench.py old.json new.json --threshold 1.5

Exit status is 0 when no benchmark slowed down by more than the
threshold, 1 otherwise — suitable as a CI gate.  The last line of
output is always a machine-readable summary of the form::

    BENCH_COMPARE status=<ok|regressed|no_overlap> regressions=<count> \
        compared=<count> threshold=<ratio> worst=<name>:<ratio>

so CI steps can consume the verdict (and annotate logs) without parsing
the human-readable table; ``--summary-json PATH`` additionally writes
the same fields as JSON.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple


def load_benchmarks(path: Path) -> Dict[str, float]:
    """Map of benchmark name -> mean seconds from a pytest-benchmark JSON."""
    data = json.loads(path.read_text())
    result = {}
    for bench in data.get("benchmarks", []):
        name = bench.get("fullname") or bench.get("name")
        stats = bench.get("stats", {})
        if name and "mean" in stats:
            result[name] = float(stats["mean"])
    return result


def find_recent_pair(directory: Path) -> Tuple[Path, Path]:
    """The two most recent ``BENCH_*.json`` files in ``directory``."""
    candidates = sorted(
        directory.glob("BENCH_*.json"), key=lambda p: p.stat().st_mtime
    )
    if len(candidates) < 2:
        raise SystemExit(
            f"need at least two BENCH_*.json files in {directory} "
            f"(found {len(candidates)})"
        )
    return candidates[-2], candidates[-1]


def format_row(name: str, old: float, new: float, threshold: float) -> Tuple[str, bool]:
    ratio = new / old if old > 0 else float("inf")
    regressed = ratio > threshold
    marker = " !! REGRESSION" if regressed else ""
    return (
        f"{name:<70s} {old * 1000:>12.2f} {new * 1000:>12.2f} {ratio:>8.2f}x{marker}",
        regressed,
    )


def compare(
    old_path: Path,
    new_path: Path,
    threshold: float,
    *,
    summary_json: Optional[Path] = None,
) -> int:
    old = load_benchmarks(old_path)
    new = load_benchmarks(new_path)
    shared = sorted(set(old) & set(new))
    only_old = sorted(set(old) - set(new))
    only_new = sorted(set(new) - set(old))

    print(f"old: {old_path}  ({len(old)} benchmarks)")
    print(f"new: {new_path}  ({len(new)} benchmarks)")
    print()
    header = f"{'benchmark':<70s} {'old ms':>12s} {'new ms':>12s} {'ratio':>9s}"
    print(header)
    print("-" * len(header))
    regressions: List[str] = []
    worst_name, worst_ratio = "", 0.0
    for name in shared:
        row, regressed = format_row(name, old[name], new[name], threshold)
        print(row)
        ratio = new[name] / old[name] if old[name] > 0 else float("inf")
        if ratio > worst_ratio:
            worst_name, worst_ratio = name, ratio
        if regressed:
            regressions.append(name)
    for name in only_old:
        print(f"{name:<70s} {'(removed)':>12s}")
    for name in only_new:
        print(f"{name:<70s} {'(new)':>25s} {new[name] * 1000:>12.2f}")
    print()
    # Nothing compared (disjoint names, or two empty runs) is a dead
    # gate either way — never let it pass vacuously.
    no_overlap = not shared
    if regressions:
        print(
            f"{len(regressions)} benchmark(s) regressed beyond "
            f"{threshold:.2f}x: {', '.join(regressions)}"
        )
    elif no_overlap:
        # A gate that compares nothing is a dead gate: renamed suites
        # must fail loudly rather than pass vacuously until a fresh
        # baseline happens to land.
        print(
            "the two runs share no benchmark names - nothing was gated; "
            "refresh the baseline artifact"
        )
    else:
        print(
            f"no regressions beyond {threshold:.2f}x across {len(shared)} benchmarks"
        )
    if regressions:
        status = "regressed"
    elif no_overlap:
        status = "no_overlap"
    else:
        status = "ok"
    summary = {
        "status": status,
        "regressions": len(regressions),
        "regressed": regressions,
        "compared": len(shared),
        "threshold": threshold,
        "worst": worst_name,
        "worst_ratio": worst_ratio,
        "old": str(old_path),
        "new": str(new_path),
    }
    if summary_json is not None:
        summary_json.write_text(json.dumps(summary, indent=2) + "\n")
    worst = f"{worst_name}:{worst_ratio:.2f}" if worst_name else "-"
    print(
        f"BENCH_COMPARE status={status} regressions={len(regressions)} "
        f"compared={len(shared)} threshold={threshold:.2f} worst={worst}"
    )
    return 0 if status == "ok" else 1


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "paths",
        nargs="+",
        type=Path,
        help="two BENCH_*.json files (old new), or one directory",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=1.25,
        help="fail when new/old mean exceeds this ratio (default: 1.25)",
    )
    parser.add_argument(
        "--summary-json",
        type=Path,
        default=None,
        help="also write the machine-readable summary to this path",
    )
    args = parser.parse_args(argv)
    if len(args.paths) == 1 and args.paths[0].is_dir():
        old_path, new_path = find_recent_pair(args.paths[0])
    elif len(args.paths) == 2:
        old_path, new_path = args.paths
    else:
        parser.error("pass exactly two JSON files or one directory")
    return compare(
        old_path, new_path, args.threshold, summary_json=args.summary_json
    )


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
