#!/usr/bin/env python
"""Diff two pytest-benchmark JSON runs (``BENCH_*.json``).

The benchmark suite regenerates the paper's figures under timing; saving
each run with ``--benchmark-json=BENCH_<label>.json`` builds a trajectory
of timings across PRs.  This script compares two such files (or the two
most recent ``BENCH_*.json`` in a directory) benchmark-by-benchmark and
flags regressions beyond a threshold.

Usage::

    # explicit files (old, new)
    python benchmarks/compare_bench.py BENCH_prev.json BENCH_curr.json

    # or let it pick the two most recent BENCH_*.json in a directory
    python benchmarks/compare_bench.py .

    # custom regression threshold (default: 1.25x slower fails)
    python benchmarks/compare_bench.py old.json new.json --threshold 1.5

Exit status is 0 when no benchmark slowed down by more than the
threshold, 1 otherwise — suitable as a CI gate.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Tuple


def load_benchmarks(path: Path) -> Dict[str, float]:
    """Map of benchmark name -> mean seconds from a pytest-benchmark JSON."""
    data = json.loads(path.read_text())
    result = {}
    for bench in data.get("benchmarks", []):
        name = bench.get("fullname") or bench.get("name")
        stats = bench.get("stats", {})
        if name and "mean" in stats:
            result[name] = float(stats["mean"])
    return result


def find_recent_pair(directory: Path) -> Tuple[Path, Path]:
    """The two most recent ``BENCH_*.json`` files in ``directory``."""
    candidates = sorted(
        directory.glob("BENCH_*.json"), key=lambda p: p.stat().st_mtime
    )
    if len(candidates) < 2:
        raise SystemExit(
            f"need at least two BENCH_*.json files in {directory} "
            f"(found {len(candidates)})"
        )
    return candidates[-2], candidates[-1]


def format_row(name: str, old: float, new: float, threshold: float) -> Tuple[str, bool]:
    ratio = new / old if old > 0 else float("inf")
    regressed = ratio > threshold
    marker = " !! REGRESSION" if regressed else ""
    return (
        f"{name:<70s} {old * 1000:>12.2f} {new * 1000:>12.2f} {ratio:>8.2f}x{marker}",
        regressed,
    )


def compare(old_path: Path, new_path: Path, threshold: float) -> int:
    old = load_benchmarks(old_path)
    new = load_benchmarks(new_path)
    shared = sorted(set(old) & set(new))
    only_old = sorted(set(old) - set(new))
    only_new = sorted(set(new) - set(old))

    print(f"old: {old_path}  ({len(old)} benchmarks)")
    print(f"new: {new_path}  ({len(new)} benchmarks)")
    print()
    header = f"{'benchmark':<70s} {'old ms':>12s} {'new ms':>12s} {'ratio':>9s}"
    print(header)
    print("-" * len(header))
    regressions: List[str] = []
    for name in shared:
        row, regressed = format_row(name, old[name], new[name], threshold)
        print(row)
        if regressed:
            regressions.append(name)
    for name in only_old:
        print(f"{name:<70s} {'(removed)':>12s}")
    for name in only_new:
        print(f"{name:<70s} {'(new)':>25s} {new[name] * 1000:>12.2f}")
    print()
    if regressions:
        print(
            f"{len(regressions)} benchmark(s) regressed beyond "
            f"{threshold:.2f}x: {', '.join(regressions)}"
        )
        return 1
    print(f"no regressions beyond {threshold:.2f}x across {len(shared)} benchmarks")
    return 0


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "paths",
        nargs="+",
        type=Path,
        help="two BENCH_*.json files (old new), or one directory",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=1.25,
        help="fail when new/old mean exceeds this ratio (default: 1.25)",
    )
    args = parser.parse_args(argv)
    if len(args.paths) == 1 and args.paths[0].is_dir():
        old_path, new_path = find_recent_pair(args.paths[0])
    elif len(args.paths) == 2:
        old_path, new_path = args.paths
    else:
        parser.error("pass exactly two JSON files or one directory")
    return compare(old_path, new_path, args.threshold)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
