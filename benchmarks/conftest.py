"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's figures (or a section-level
table) at a reduced-but-faithful scale, times the run with
pytest-benchmark, and prints the regenerated series so the numbers can be
compared against the paper (see EXPERIMENTS.md).

Scale notes
-----------
* The paper's PlanetLab deployment has n = 50 nodes; the Fig. 1/3/4/10/11
  benchmarks use the same n = 50.
* The churn experiments (Fig. 2) and the sampling experiments (Figs. 5-8,
  paper n = 295) are run at reduced n so the whole suite stays in the
  minutes range; the experiment drivers accept the paper-scale parameters
  directly if you want the full run.
"""

from __future__ import annotations

import pytest


def pytest_collection_modifyitems(items):
    """Tag every test under benchmarks/ with the ``bench`` marker.

    Lets CI (and impatient humans) split the fast unit suite from the
    figure regenerations: ``pytest -m "not bench"`` vs ``pytest -m bench``.
    """
    for item in items:
        if item.nodeid.startswith("benchmarks/"):
            item.add_marker(pytest.mark.bench)


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark and return its result.

    The experiments are deterministic end-to-end simulations, not
    micro-kernels, so a single timed round is both sufficient and much
    cheaper than pytest-benchmark's default calibration.
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


def print_result(result) -> None:
    """Print a regenerated figure as a plain table below the benchmark."""
    print()
    print(f"=== {result.figure}: {result.description} ===")
    print(result.table())


@pytest.fixture
def report():
    """Fixture exposing :func:`print_result` to benchmark tests."""
    return print_result
