"""Benchmark: vectorised vs scalar best-response wiring epochs (n = 200).

The tentpole acceptance gate for the vectorised kernels: a full n = 200
delay-metric wiring epoch — every node computes its local-search best
response over 199 candidates — must run at least 5x faster on the batched
NumPy path than on the interpreted reference path, while producing
byte-identical wirings and epoch records.

Both paths share the residual Dijkstra sweeps, graph construction, and
epoch bookkeeping, so the measured ratio is an *end-to-end* speedup of
the wiring epoch, not a cherry-picked kernel microbenchmark.
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.core import BestResponsePolicy, DelayMetricProvider, EgoistEngine
from repro.netsim.delayspace import DelaySpace

N = 200
K = 8
SEED = 7
REQUIRED_SPEEDUP = 5.0


def _provider() -> DelayMetricProvider:
    rng = np.random.default_rng(99)
    matrix = rng.uniform(5.0, 150.0, size=(N, N))
    np.fill_diagonal(matrix, 0.0)
    return DelayMetricProvider(DelaySpace(matrix, jitter_std=0.0), estimator="true")


def _make_engine(vectorized: bool) -> EgoistEngine:
    return EgoistEngine(
        _provider(), BestResponsePolicy(vectorized=vectorized), k=K, seed=SEED
    )


def _record_key(record):
    return tuple(
        None if isinstance(v, float) and math.isnan(v) else v
        for v in (
            record.epoch,
            record.rewirings,
            record.mean_cost,
            record.social_cost,
            record.linkstate_bits,
        )
    )


def _warmup():
    """Prime NumPy/SciPy dispatch so neither timed path pays first-call
    costs (the benchmark compares steady-state throughput)."""
    rng = np.random.default_rng(1)
    matrix = rng.uniform(5.0, 150.0, size=(40, 40))
    np.fill_diagonal(matrix, 0.0)
    for vectorized in (True, False):
        provider = DelayMetricProvider(
            DelaySpace(matrix, jitter_std=0.0), estimator="true"
        )
        EgoistEngine(
            provider, BestResponsePolicy(vectorized=vectorized), k=4, seed=1
        ).run_epoch()


def test_wiring_epoch_vectorized_speedup(benchmark):
    _warmup()
    # The gate compares best-of-two *interleaved* rounds per path (fresh
    # engine each round — a second epoch on the same engine would be
    # served from the route cache): interleaving means sustained machine
    # load drifts both sides equally, and the min absorbs one-off spikes,
    # so a single slow round cannot decide the gate.  A final
    # pytest-benchmark round (outside the gate) keeps BENCH_*.json
    # trajectories charting the fast path.
    scalar_seconds = float("inf")
    vec_seconds = float("inf")
    scalar_engine = scalar_record = None
    vec_engine = vec_record = None
    for _round in range(2):
        engine = _make_engine(vectorized=False)
        start = time.perf_counter()
        record = engine.run_epoch()
        scalar_seconds = min(scalar_seconds, time.perf_counter() - start)
        if scalar_engine is None:
            scalar_engine, scalar_record = engine, record
        engine = _make_engine(vectorized=True)
        start = time.perf_counter()
        record = engine.run_epoch()
        vec_seconds = min(vec_seconds, time.perf_counter() - start)
        if vec_engine is None:
            vec_engine, vec_record = engine, record
    benchmark.pedantic(
        lambda: _make_engine(vectorized=True).run_epoch(), rounds=1, iterations=1
    )

    # Byte-identical simulation output on both paths.
    assert _record_key(vec_record) == _record_key(scalar_record)
    for node_id in range(N):
        vec_wiring = vec_engine.nodes[node_id].wiring
        scalar_wiring = scalar_engine.nodes[node_id].wiring
        assert (vec_wiring.neighbors if vec_wiring else None) == (
            scalar_wiring.neighbors if scalar_wiring else None
        ), f"node {node_id} wiring diverged between paths"

    speedup = scalar_seconds / vec_seconds
    print(
        f"\n=== vectorized wiring epoch (n={N}, k={K}): "
        f"scalar {scalar_seconds:.2f}s / vectorized {vec_seconds:.2f}s "
        f"= {speedup:.1f}x ==="
    )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"vectorized epoch only {speedup:.1f}x faster than scalar "
        f"(required >= {REQUIRED_SPEEDUP}x)"
    )
