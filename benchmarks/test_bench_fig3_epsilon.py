"""Benchmark E8 / Fig. 3 center & right: BR vs BR(eps = 10%).

Paper shape: BR(0.1) re-wires roughly an order of magnitude less than
exact BR while its routing cost relative to the full mesh stays within a
few percent of BR's (both in the 1.0-2.0x band over k = 2..8).
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import fig3_epsilon_comparison


def test_fig3_epsilon_comparison(benchmark, report):
    result = run_once(
        benchmark,
        fig3_epsilon_comparison,
        n=50,
        k_values=(2, 4, 6, 8),
        epsilon=0.1,
        epochs=8,
        seed=2008,
    )
    report(result)

    br_rewires = np.array(result.series["BR re-wirings"].y)
    eps_rewires = np.array(result.series["BR(0.1) re-wirings"].y)
    # The threshold variant re-wires (weakly) less at every k and
    # substantially less in aggregate.
    assert np.all(eps_rewires <= br_rewires + 1e-9)
    assert eps_rewires.sum() <= br_rewires.sum() * 0.8 + 1.0

    br_cost = np.array(result.series["BR cost/full mesh"].y)
    eps_cost = np.array(result.series["BR(0.1) cost/full mesh"].y)
    # Costs stay close to the full-mesh bound and BR(0.1) gives up little.
    assert np.all(br_cost >= 0.95)
    assert np.all(br_cost < 2.5)
    assert np.all(eps_cost <= br_cost * 1.25 + 0.05)
