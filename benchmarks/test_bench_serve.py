"""Benchmark: the live overlay service under a million-lookup workload.

The acceptance gate for the serve tentpole: a `repro serve` instance on
a unix socket, holding a paper-scale (n = 50) best-response deployment
live, must sustain **>= 10,000 route lookups per second** through the
full protocol stack — traffic-model pair generation, ``lookup_batch``
framing, the asyncio transport, the version-stamped row reads, and the
JSON responses — while a membership mutation commits mid-run.  The
reported p50/p95/p99 per-lookup latencies land in ``BENCH_*.json`` via
``extra_info`` so the latency trajectory is tracked alongside the
throughput trajectory across commits.

The workload is the Section 6.1 multipath traffic model (hot-target
skew, 1-4 parallel lookups per transfer session): the hottest sources
repeat, so the gate also exercises the per-version row memo rather than
just the cold sweep path.
"""

from __future__ import annotations

import os
import tempfile

from benchmarks.conftest import run_once

from repro.scenario.spec import ScenarioSpec
from repro.serve.client import ServeClient
from repro.serve.load import format_summary, run_load
from repro.serve.server import start_background_server
from repro.serve.service import OverlayService
from repro.util.validation import ValidationError

N = 50
K = 4
WARMUP_EPOCHS = 2
LOOKUPS = 200_000
BATCH = 512
SEED = 2008
REQUIRED_THROUGHPUT = 10_000.0


def _spec() -> ScenarioSpec:
    return ScenarioSpec(
        experiment="live-overlay",
        n=N,
        k_grid=(K,),
        policies=("best-response",),
        metric="delay-ping",
        epochs=WARMUP_EPOCHS,
        seed=SEED,
    )


def test_serve_lookup_throughput(benchmark):
    # Unix socket paths are length-limited (~104 bytes): mkdtemp in /tmp.
    sock = os.path.join(tempfile.mkdtemp(prefix="bench-serve-", dir="/tmp"), "ovl.sock")
    service = OverlayService(_spec())
    for _ in range(WARMUP_EPOCHS):
        service.tick()
    thread = start_background_server(service, socket_path=sock)
    try:
        report = run_once(
            benchmark,
            run_load,
            socket_path=sock,
            model="multipath",
            lookups=LOOKUPS,
            batch_size=BATCH,
            seed=SEED,
            mutate={"kind": "leave", "nodes": [5]},
        )
    finally:
        try:
            with ServeClient(socket_path=sock, timeout=10) as client:
                client.shutdown()
        except (ValidationError, OSError):
            pass
        thread.join(timeout=30)

    print()
    print(format_summary(report))

    benchmark.extra_info["lookups"] = report.lookups
    benchmark.extra_info["throughput_per_s"] = report.throughput
    benchmark.extra_info["p50_ms"] = report.p50_ms
    benchmark.extra_info["p95_ms"] = report.p95_ms
    benchmark.extra_info["p99_ms"] = report.p99_ms

    assert report.errors == 0
    assert report.lookups == LOOKUPS
    assert report.mutations == 1
    assert report.throughput >= REQUIRED_THROUGHPUT, (
        f"serve throughput {report.throughput:.0f}/s is below the "
        f"{REQUIRED_THROUGHPUT:.0f}/s gate"
    )
