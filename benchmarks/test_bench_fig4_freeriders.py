"""Benchmarks E9-E10 / Fig. 4: robustness to free riders.

Paper shape: with one free rider announcing 2x-inflated link costs (left
panel) and with up to a third of the population cheating at k = 2 (right
panel), both the cheaters' and the honest nodes' costs stay within a few
percent of the no-cheating baseline (the y-axis band of Fig. 4 is
0.9-1.2).
"""

from benchmarks.conftest import run_once
from repro.experiments import fig4_many_free_riders, fig4_one_free_rider


def test_fig4_one_free_rider(benchmark, report):
    result = run_once(
        benchmark,
        fig4_one_free_rider,
        n=50,
        k_values=(2, 3, 4, 5, 6, 7, 8),
        inflation=2.0,
        seed=2008,
        br_rounds=2,
    )
    report(result)

    for label in ("free rider", "non free riders"):
        series = result.series[label].y
        # Impact bounded: ratios stay in a narrow band around 1.
        assert all(0.75 <= v <= 1.35 for v in series), label
    # Honest nodes are essentially unaffected on average.
    honest = result.series["non free riders"].y
    assert abs(sum(honest) / len(honest) - 1.0) < 0.15


def test_fig4_many_free_riders(benchmark, report):
    result = run_once(
        benchmark,
        fig4_many_free_riders,
        n=50,
        free_rider_counts=(0, 4, 8, 12, 16),
        k=2,
        inflation=2.0,
        seed=2008,
        br_rounds=2,
    )
    report(result)

    for label in ("free riders", "non free riders"):
        series = result.series[label].y
        assert all(0.7 <= v <= 1.45 for v in series), label
