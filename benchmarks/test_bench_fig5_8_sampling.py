"""Benchmarks E11-E14 / Figs. 5-8: newcomer cost vs sample size.

The paper grows a 295-node overlay incrementally under a base strategy
(BR, k-Random, k-Regular, k-Closest), then has a newcomer join using each
strategy restricted to a sample of m = 6..20 nodes, reporting the
newcomer's cost normalised by BR-without-sampling.

Paper shape: BR-with-sampling beats the three sampled heuristics; the
cost ratio stays close to 1 even for small m/n; topology-biased sampling
(BRtp) improves on unbiased sampling, most visibly on the non-BR base
graphs.

Scale note: the base overlay here uses n = 120 (instead of 295) so the
four figures regenerate in minutes; pass ``n=295`` to
:func:`fig5_to_8_sampling` for the paper-scale run.
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.experiments import fig5_to_8_sampling

N = 120
SAMPLES = (6, 10, 14, 20)
FIGURES = {
    "best-response": "fig5",
    "k-random": "fig6",
    "k-regular": "fig7",
    "k-closest": "fig8",
}


@pytest.mark.parametrize("base_policy", list(FIGURES))
def test_sampling_figures(benchmark, report, base_policy):
    result = run_once(
        benchmark,
        fig5_to_8_sampling,
        base_policy,
        n=N,
        k=3,
        radius=2,
        sample_sizes=SAMPLES,
        trials=3,
        seed=2008,
    )
    report(result)
    assert result.figure == FIGURES[base_policy]

    mean = lambda label: float(np.mean(result.series[label].y))
    # BR restricted to a sample still tracks BR-without-sampling closely.
    assert mean("BR") < 1.6
    assert mean("BRtp") < 1.6
    # ... and beats the heuristics that pick within the same samples.
    worst_heuristic = max(mean(l) for l in ("k-random", "k-regular"))
    assert min(mean("BR"), mean("BRtp")) <= worst_heuristic + 1e-9
    # All ratios are sane (>= ~1 because the unsampled BR is the reference).
    for label, series in result.series.items():
        assert all(v > 0.8 for v in series.y), label
