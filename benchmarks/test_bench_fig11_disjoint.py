"""Benchmark E16 / Fig. 11: number of disjoint paths vs k.

Paper shape: the number of disjoint overlay paths between a source and a
target grows roughly linearly with the number of parallel connections k
(from ~1.5 at k = 2 towards ~5-6 at k = 8).
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import fig11_disjoint_paths

K_VALUES = (2, 3, 4, 5, 6, 7, 8)


def test_fig11_disjoint_paths(benchmark, report):
    result = run_once(
        benchmark,
        fig11_disjoint_paths,
        n=50,
        k_values=K_VALUES,
        seed=2008,
        br_rounds=2,
        pairs_per_k=80,
    )
    report(result)

    series = result.series["disjoint paths"].y
    # Monotone (weakly) increasing in k and roughly linear: the k=8 count is
    # several times the k=2 count.
    assert all(b >= a - 0.2 for a, b in zip(series, series[1:]))
    assert series[-1] >= 2.0 * series[0]
    # Roughly linear growth: correlation with k is very high.
    corr = np.corrcoef(K_VALUES, series)[0, 1]
    assert corr > 0.9
