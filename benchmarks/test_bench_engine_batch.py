"""Benchmark: lockstep vs sequential multi-deployment epoch sweep.

The acceptance gate for the engine batch: a Fig. 3-style epoch-loop sweep
— 14 engine deployments (BR and BR(ε=0.1) across the k grid) advancing
20 wiring epochs over a drifting ping-measured delay substrate — run
through :class:`~repro.core.engine_batch.EngineBatch` in lockstep
(``batched=True``: residual route-value sweeps stacked into shared
block-diagonal Dijkstra calls with speculative weight-refresh chains,
re-wiring opportunities fused into cross-engine broadcasts) against the
sequential engines preserved verbatim behind ``batched=False``, with
**byte-identical** figure series on both paths.

The wall-clock gate is 2x (it measures ~2.3-2.6x on an idle machine; the
drift keeps ~20% of the opportunities re-wiring, which is what bounds the
speculative chains — quieter scenarios batch better, this one is the
honest middle).  Each path is timed as the best of two interleaved
rounds, so neither sustained load drift nor a single transient spike on
a shared runner can tank the ratio.  The
scenario routes through the unified Scenario API
(``fig3_epsilon_comparison`` builds a ``ScenarioSpec`` and runs it via
``SimulationSession``), so the gate also covers the facade's epoch-loop
dispatch.
"""

from __future__ import annotations

import time

from repro.experiments import fig3_epsilon_comparison

N = 20
K_VALUES = (2, 3, 4, 5, 6, 7, 8)
EPOCHS = 20
DRIFT = 0.01
SEED = 2008
REQUIRED_SPEEDUP = 2.0


def _sweep(batched: bool):
    return fig3_epsilon_comparison(
        n=N,
        k_values=K_VALUES,
        epochs=EPOCHS,
        drift_relative_std=DRIFT,
        seed=SEED,
        batched=batched,
    )


def _warmup():
    """Prime NumPy/SciPy dispatch so neither timed path pays first-call
    costs (the benchmark compares steady-state throughput)."""
    for batched in (True, False):
        fig3_epsilon_comparison(
            n=12, k_values=(2,), epochs=2, seed=1, batched=batched
        )


def test_engine_batch_epoch_sweep_speedup(benchmark, report):
    _warmup()
    # The gate compares best-of-two *interleaved* rounds per path:
    # interleaving means sustained machine load drifts both sides
    # equally, and the min absorbs one-off spikes, so a single slow round
    # cannot decide the gate.  A final pytest-benchmark round (outside
    # the gate) keeps BENCH_*.json trajectories charting the fast path.
    sequential_seconds = float("inf")
    batched_seconds = float("inf")
    for _round in range(2):
        start = time.perf_counter()
        sequential_result = _sweep(batched=False)
        sequential_seconds = min(sequential_seconds, time.perf_counter() - start)
        start = time.perf_counter()
        batched_result = _sweep(batched=True)
        batched_seconds = min(batched_seconds, time.perf_counter() - start)
    benchmark.pedantic(_sweep, kwargs={"batched": True}, rounds=1, iterations=1)

    # Byte-identical epoch histories and series on both paths — the hard
    # gate: the lockstep prefills and fused broadcasts must not change a
    # single decision.  The route-cache counters in metadata["cache"]
    # are execution diagnostics and legitimately differ between the two
    # kernel paths (that difference *is* the point of the batch), so
    # they are excluded from the equality.
    batched_dict = batched_result.as_dict()
    sequential_dict = sequential_result.as_dict()
    batched_dict["metadata"].pop("cache", None)
    sequential_dict["metadata"].pop("cache", None)
    assert batched_dict == sequential_dict, (
        "engine batch: batched and sequential series diverged"
    )

    speedup = sequential_seconds / batched_seconds
    print(
        f"\n=== engine epoch sweep (n={N}, {2 * len(K_VALUES)} deployments, "
        f"{EPOCHS} epochs): sequential {sequential_seconds:.2f}s / "
        f"batched {batched_seconds:.2f}s = {speedup:.2f}x ==="
    )
    report(batched_result)
    assert speedup >= REQUIRED_SPEEDUP, (
        f"lockstep engine sweep only {speedup:.2f}x faster "
        f"(required >= {REQUIRED_SPEEDUP}x)"
    )
