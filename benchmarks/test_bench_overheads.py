"""Benchmark E17 / Section 4.3: measurement and protocol overheads.

Reproduces the paper's overhead arithmetic for the n = 50 deployment and
cross-checks the link-state figure against the traffic actually accounted
by a short engine run:

* ping measurement: (n - k - 1) * 320 / T bps per node,
* coordinate (pyxida) measurement: (320 + 32 n) / T bps per node,
* link-state protocol: (192 + 32 k) / T_announce bps per node,
* EGOIST monitors n*k links versus n*(n-1) for a full mesh.
"""

from benchmarks.conftest import run_once
from repro.experiments import overhead_table

K_VALUES = (2, 3, 4, 5, 6, 7, 8)


def test_overhead_table(benchmark, report):
    result = run_once(
        benchmark,
        overhead_table,
        n=50,
        k_values=K_VALUES,
        epoch_length_s=60.0,
        announce_interval_s=20.0,
        validate_with_engine=True,
        engine_epochs=2,
        seed=2008,
    )
    report(result)

    ping = result.series["ping measurement (bps)"].y
    coord = result.series["coordinate measurement (bps)"].y
    linkstate = result.series["link-state protocol (bps)"].y
    # All overheads are tiny (well under a kilobit per second per node).
    assert max(ping) < 300.0
    assert max(coord) < 50.0
    assert max(linkstate) < 30.0
    # Coordinates are cheaper than ping for this n, as the paper notes.
    assert all(c < p for c, p in zip(coord, ping))
    # Monitoring nk links beats the full mesh by a factor (n-1)/k.
    gains = result.series["scalability gain"].y
    assert gains[0] > gains[-1]
    assert abs(gains[K_VALUES.index(5)] - 49 / 5) < 1e-6
    # The simulated link-state traffic is the same order of magnitude as
    # the analytic per-epoch figure.
    simulated = result.series["link-state measured (bps, simulated)"].y
    assert all(s < 50.0 for s in simulated)
