"""Benchmark E3 / Fig. 1 bottom-left: node (CPU) load as the cost metric.

Paper shape: clear delineation — BR best for all k, k-Random second,
k-Closest worst ("it fails to predict anything beyond the immediate
neighbor" given the high variance of PlanetLab node load).
"""

from benchmarks.conftest import run_once
from repro.experiments import fig1_node_load

K_VALUES = (2, 3, 4, 5, 6, 7, 8)


def test_fig1_node_load(benchmark, report):
    result = run_once(
        benchmark,
        fig1_node_load,
        n=50,
        k_values=K_VALUES,
        seed=2008,
        br_rounds=3,
    )
    report(result)

    assert all(abs(v - 1.0) < 1e-9 for v in result.series["best-response"].y)
    mean = lambda label: sum(result.series[label].y) / len(result.series[label].y)
    # Every heuristic is worse than BR on average.
    for label in ("k-random", "k-regular", "k-closest"):
        assert mean(label) > 1.0, label
    # k-Closest does not beat k-Random on this metric (the paper's
    # delineation: closest is the worst policy under node load).
    assert mean("k-closest") >= mean("k-random") * 0.9
