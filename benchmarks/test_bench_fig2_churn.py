"""Benchmarks E5-E6 / Fig. 2: efficiency under churn.

Left panel (E5): node efficiency normalised by BR vs k under trace-driven
churn — BR best, HybridBR approaching BR as k grows, k-Closest decisively
better than k-Random and k-Regular.

Right panel (E6): efficiency vs churn rate at k = 5 — as churn approaches
one membership event per O(T/n), HybridBR catches up with (and eventually
overtakes) plain BR, while k-Random and k-Regular fall off.

Scale note: run at n = 24 (instead of the paper's 50) to keep the
engine-under-churn sweeps fast; the normalised comparison is unaffected.
"""

from benchmarks.conftest import run_once
from repro.experiments import fig2_churn_rate_sweep, fig2_efficiency_vs_k

N = 24


def test_fig2_efficiency_vs_k(benchmark, report):
    result = run_once(
        benchmark,
        fig2_efficiency_vs_k,
        n=N,
        k_values=(3, 5, 7),
        seed=2008,
        epochs=10,
        horizon=10 * 60.0,
    )
    report(result)

    assert all(abs(v - 1.0) < 1e-9 for v in result.series["best-response"].y)
    mean = lambda label: sum(result.series[label].y) / len(result.series[label].y)
    # No policy beats BR by more than noise, and the structured policies
    # (HybridBR, k-Closest) sit above the unstructured ones.
    for label in ("k-random", "k-regular", "k-closest", "hybrid-br"):
        assert mean(label) <= 1.1, label
    assert mean("hybrid-br") >= mean("k-random")
    assert mean("k-closest") >= mean("k-regular") * 0.9
    # HybridBR approaches BR as k grows (more selfish links left over).
    hybrid = result.series["hybrid-br"].y
    assert hybrid[-1] >= hybrid[0] * 0.9


def test_fig2_churn_rate_sweep(benchmark, report):
    result = run_once(
        benchmark,
        fig2_churn_rate_sweep,
        n=N,
        churn_rates=(1e-4, 1e-2, 1e-1),
        k=5,
        seed=2008,
        epochs=10,
        horizon=10 * 60.0,
    )
    report(result)

    hybrid = result.series["hybrid-br"].y
    random_series = result.series["k-random"].y
    # At the highest churn rates HybridBR holds up at least as well as the
    # unstructured policies and is competitive with BR.
    assert hybrid[-1] >= random_series[-1] * 0.9
    assert hybrid[-1] >= 0.5
