"""Ablation A1: local-search best response vs exact enumeration.

The paper replaces the NP-hard exact best response with a local-search
approximation and reports it stays within ~5% of optimal in the tested
scenarios.  This ablation measures that gap directly on instances small
enough to enumerate exactly, for both the delay and bandwidth objectives.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core.best_response import (
    WiringEvaluator,
    best_response_exact,
    best_response_local_search,
)
from repro.core.cost import BandwidthMetric, DelayMetric
from repro.netsim.bandwidth import BandwidthModel
from repro.netsim.planetlab import synthetic_planetlab
from repro.routing.graph import OverlayGraph


def _ring_residual(metric, exclude):
    n = metric.size
    others = [i for i in range(n) if i != exclude]
    graph = OverlayGraph(n)
    for idx, node in enumerate(others):
        nxt = others[(idx + 1) % len(others)]
        graph.add_edge(node, nxt, metric.link_weight(node, nxt))
    return graph


def _gap_study(n=14, k=3, trials=10, seed=2008):
    """Return per-trial relative optimality gaps for delay and bandwidth."""
    rng = np.random.default_rng(seed)
    delay_gaps = []
    bw_gaps = []
    for trial in range(trials):
        space, _nodes = synthetic_planetlab(n, seed=rng)
        delay_metric = DelayMetric(space.matrix)
        evaluator = WiringEvaluator(0, delay_metric, _ring_residual(delay_metric, 0))
        exact = best_response_exact(evaluator, k)
        approx = best_response_local_search(evaluator, k, rng=rng)
        delay_gaps.append(approx.cost / exact.cost - 1.0)

        bw_metric = BandwidthMetric(BandwidthModel(n, seed=rng).matrix())
        bw_eval = WiringEvaluator(0, bw_metric, _ring_residual(bw_metric, 0))
        bw_exact = best_response_exact(bw_eval, k)
        bw_approx = best_response_local_search(bw_eval, k, rng=rng)
        bw_gaps.append(1.0 - bw_approx.cost / bw_exact.cost)
    return np.array(delay_gaps), np.array(bw_gaps)


def test_local_search_optimality_gap(benchmark):
    delay_gaps, bw_gaps = run_once(benchmark, _gap_study)
    print()
    print("=== A1: local-search BR vs exact BR ===")
    print(f"delay metric    : mean gap {delay_gaps.mean():.3%}, worst {delay_gaps.max():.3%}")
    print(f"bandwidth metric: mean gap {bw_gaps.mean():.3%}, worst {bw_gaps.max():.3%}")

    # Local search never beats the exact optimum (sanity) ...
    assert np.all(delay_gaps >= -1e-9)
    assert np.all(bw_gaps >= -1e-9)
    # ... and stays within the paper's ~5% bound on average (we allow a
    # slightly looser worst case on these random instances).
    assert delay_gaps.mean() <= 0.05
    assert bw_gaps.mean() <= 0.05
    assert delay_gaps.max() <= 0.15
    assert bw_gaps.max() <= 0.15
