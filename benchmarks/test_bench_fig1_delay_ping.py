"""Benchmark E1 / Fig. 1 top-left: delay (via ping), cost vs k, with full mesh.

Paper shape to reproduce: BR normalised to 1; k-Random / k-Regular /
k-Closest between ~1.5x and ~4x of BR at k = 2, converging towards BR as k
grows; the full-mesh bound at or below 1 (about 0.7 at k = 2, nearly 1 by
k = 4-5); k-Regular worst overall.
"""

from benchmarks.conftest import run_once
from repro.experiments import fig1_delay_ping

K_VALUES = (2, 3, 4, 5, 6, 7, 8)


def test_fig1_delay_ping(benchmark, report):
    result = run_once(
        benchmark,
        fig1_delay_ping,
        n=50,
        k_values=K_VALUES,
        seed=2008,
        br_rounds=3,
        include_full_mesh=True,
    )
    report(result)

    br = result.series["best-response"].y
    assert all(abs(v - 1.0) < 1e-9 for v in br)
    # Every heuristic is at least as costly as BR at every k.
    for label in ("k-random", "k-regular", "k-closest"):
        assert all(v >= 0.99 for v in result.series[label].y), label
    # The BR advantage is most pronounced at the smallest k.
    heuristic_at = lambda idx: sum(
        result.series[l].y[idx] for l in ("k-random", "k-regular", "k-closest")
    ) / 3.0
    assert heuristic_at(0) > 1.15
    # Full mesh lower-bounds BR and BR approaches it for moderate k.
    mesh = result.series["full-mesh"].y
    assert all(v <= 1.02 for v in mesh)
    assert mesh[-1] >= 0.75
