"""Benchmark: parallel sweep execution vs the inline single-process path.

The acceptance gate for the ``repro.sweep`` executor: the checked-in
12-cell mixed delay/bandwidth corpus (``scenarios/bench_12cell.json`` —
2 metric panels x 6 per-k shards at n=80, ~0.5 s/cell) run through
:func:`repro.sweep.run_sweep` with a 4-worker pool against the inline
``workers=1`` path, with **byte-identical** stored cells and aggregated
tables on both paths (each cell is a pure function of its spec, so
scheduling cannot change a bit).

The wall-clock gate is 1.5x (a 4-worker pool over 12 roughly equal cells
measures ~2.5-3x on an idle 4-core machine; 1.5x absorbs shared-runner
noise and the pool's fork/IPC overhead).  Timing follows the PR-3
interleaved best-of-2 scheme: each round times one serial and one
parallel sweep back to back, and each path keeps its best round, so
sustained load drifts both sides equally and a single transient spike
cannot decide the gate.

Unlike the kernel-batching gates (whose speedups are algorithmic), this
one needs real cores: it is skipped where fewer than 4 CPUs are usable
(the CI bench job's runners have 4), while the byte-identity half of the
contract stays covered everywhere by ``tests/sweep/test_executor.py``.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.sweep import SweepStore, aggregate_cells, expand_corpus, load_templates, run_sweep

CORPUS = os.path.join(os.path.dirname(__file__), "..", "scenarios", "bench_12cell.json")
WORKERS = 4
REQUIRED_SPEEDUP = 1.5


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def _sweep(cells, store_root: str, workers: int):
    store = SweepStore(store_root)
    run_sweep(cells, store, workers=workers)
    return store


@pytest.mark.skipif(
    _usable_cpus() < WORKERS,
    reason=f"parallel sweep gate needs >= {WORKERS} usable CPUs "
    f"(found {_usable_cpus()}); the pool cannot beat inline on fewer cores",
)
def test_parallel_sweep_speedup(benchmark, report, tmp_path):
    cells = expand_corpus(load_templates(CORPUS))
    assert len(cells) == 12

    # Prime both paths (imports, first-call kernel dispatch, pool fork)
    # outside the timed rounds.
    warm = cells[:1]
    _sweep(warm, str(tmp_path / "warm-serial"), workers=1)
    _sweep(warm, str(tmp_path / "warm-pool"), workers=WORKERS)

    serial_seconds = float("inf")
    parallel_seconds = float("inf")
    for round_index in range(2):
        start = time.perf_counter()
        serial_store = _sweep(cells, str(tmp_path / f"serial-{round_index}"), workers=1)
        serial_seconds = min(serial_seconds, time.perf_counter() - start)
        start = time.perf_counter()
        parallel_store = _sweep(
            cells, str(tmp_path / f"parallel-{round_index}"), workers=WORKERS
        )
        parallel_seconds = min(parallel_seconds, time.perf_counter() - start)
    benchmark.pedantic(
        _sweep,
        args=(cells, str(tmp_path / "bench-round"), WORKERS),
        rounds=1,
        iterations=1,
    )

    # Byte-identical stores and aggregates on both paths — the hard gate.
    for cell in cells:
        assert serial_store.get(cell.key) == parallel_store.get(cell.key), (
            f"sweep cell {cell.key} diverged between workers=1 and workers={WORKERS}"
        )
    serial_agg = aggregate_cells(cells, serial_store)
    parallel_agg = aggregate_cells(cells, parallel_store)
    assert {k: v.as_dict() for k, v in serial_agg.items()} == {
        k: v.as_dict() for k, v in parallel_agg.items()
    }

    speedup = serial_seconds / parallel_seconds
    print(
        f"\n=== 12-cell corpus sweep: workers=1 {serial_seconds:.2f}s / "
        f"workers={WORKERS} {parallel_seconds:.2f}s = {speedup:.2f}x ==="
    )
    report(serial_agg["fig1-delay-ping"])
    assert speedup >= REQUIRED_SPEEDUP, (
        f"parallel sweep only {speedup:.2f}x faster than inline "
        f"(required >= {REQUIRED_SPEEDUP}x with {WORKERS} workers)"
    )
