"""Benchmark E2 / Fig. 1 top-right: delay estimated via pyxida coordinates.

Paper shape: same ordering as the ping panel (BR best, heuristics 1.5-4.5x
at small k), with the gap somewhat noisier because coordinate estimates are
less accurate than ping.
"""

from benchmarks.conftest import run_once
from repro.experiments import fig1_delay_pyxida

K_VALUES = (2, 3, 4, 5, 6, 7, 8)


def test_fig1_delay_pyxida(benchmark, report):
    result = run_once(
        benchmark,
        fig1_delay_pyxida,
        n=50,
        k_values=K_VALUES,
        seed=2008,
        br_rounds=3,
        coordinate_rounds=25,
    )
    report(result)

    assert all(abs(v - 1.0) < 1e-9 for v in result.series["best-response"].y)
    # BR computed from (noisier) coordinate estimates still wins on average.
    for label in ("k-random", "k-regular"):
        series = result.series[label].y
        assert sum(series) / len(series) > 1.05, label
    # k-Closest may occasionally tie BR under estimation noise but never
    # dominates it across the sweep.
    closest = result.series["k-closest"].y
    assert sum(closest) / len(closest) > 0.95
