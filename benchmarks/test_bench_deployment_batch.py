"""Benchmark: batched vs sequential full four-panel Fig. 1 sweep (n = 50).

The tentpole acceptance gate for the multi-deployment sweep kernels: the
complete four-panel Fig. 1 sweep — 140 deployments across the (policy,
k, metric) grid, built by lockstep best-response dynamics and scored
through the 3-D route-value tensor — against the preserved pre-batching
sequential implementation (``batched=False``: per-deployment builds with
per-node residual graph construction and per-source heap widest-path
sweeps), with **byte-identical** series on both paths.

Two wall-clock gates:

* the full four-panel aggregate must be at least 2.2x faster batched
  (it measures ~2.8-3.2x on an idle machine; one-shot wall-clock ratios
  on shared/loaded runners swing ~±15%, so the gate keeps the ~30%
  margin the vectorized-kernel gate uses);
* the bandwidth panel alone — the sweep the widest-path closure/
  avoid-one tensor port targets — must be at least 3x faster (it
  measures ~8-10x: the sequential path pays one interpreted per-source
  Dijkstra heap sweep per re-wiring opportunity).
"""

from __future__ import annotations

import time

from benchmarks.conftest import run_once
from repro.experiments import (
    fig1_bandwidth,
    fig1_delay_ping,
    fig1_delay_pyxida,
    fig1_node_load,
)

N = 50
K_VALUES = (2, 3, 4, 5, 6, 7, 8)
SEED = 2008
BR_ROUNDS = 3
REQUIRED_SWEEP_SPEEDUP = 2.2
REQUIRED_BANDWIDTH_SPEEDUP = 3.0


def _four_panel(batched: bool):
    kwargs = dict(
        n=N, k_values=K_VALUES, seed=SEED, br_rounds=BR_ROUNDS, batched=batched
    )
    return (
        fig1_delay_ping(include_full_mesh=True, **kwargs),
        fig1_delay_pyxida(**kwargs),
        fig1_node_load(**kwargs),
        fig1_bandwidth(**kwargs),
    )


def _warmup():
    """Prime NumPy/SciPy dispatch so neither timed path pays first-call
    costs (the benchmark compares steady-state throughput)."""
    for batched in (True, False):
        fig1_delay_ping(
            n=16, k_values=(2,), seed=1, br_rounds=1, batched=batched
        )
        fig1_bandwidth(n=16, k_values=(2,), seed=1, br_rounds=1, batched=batched)


def test_four_panel_sweep_batched_speedup(benchmark):
    _warmup()
    # Sequential baseline, timed by hand (pytest-benchmark tracks the
    # batched path so BENCH_*.json trajectories chart the fast path).
    start = time.perf_counter()
    scalar_results = _four_panel(batched=False)
    scalar_seconds = time.perf_counter() - start

    start = time.perf_counter()
    scalar_bandwidth = fig1_bandwidth(
        n=N, k_values=K_VALUES, seed=SEED, br_rounds=BR_ROUNDS, batched=False
    )
    scalar_bandwidth_seconds = time.perf_counter() - start

    batched_results = run_once(benchmark, _four_panel, batched=True)
    batched_seconds = benchmark.stats.stats.mean

    start = time.perf_counter()
    batched_bandwidth = fig1_bandwidth(
        n=N, k_values=K_VALUES, seed=SEED, br_rounds=BR_ROUNDS, batched=True
    )
    batched_bandwidth_seconds = time.perf_counter() - start

    # Byte-identical figure series on both paths — the hard gate.
    for batched_result, scalar_result in zip(batched_results, scalar_results):
        assert batched_result.as_dict() == scalar_result.as_dict(), (
            f"{batched_result.figure}: batched and sequential series diverged"
        )
    assert batched_bandwidth.as_dict() == scalar_bandwidth.as_dict()

    sweep_speedup = scalar_seconds / batched_seconds
    bandwidth_speedup = scalar_bandwidth_seconds / batched_bandwidth_seconds
    print(
        f"\n=== four-panel sweep (n={N}, k={K_VALUES[0]}..{K_VALUES[-1]}): "
        f"sequential {scalar_seconds:.2f}s / batched {batched_seconds:.2f}s "
        f"= {sweep_speedup:.2f}x; bandwidth panel "
        f"{scalar_bandwidth_seconds:.2f}s / {batched_bandwidth_seconds:.2f}s "
        f"= {bandwidth_speedup:.2f}x ==="
    )
    assert sweep_speedup >= REQUIRED_SWEEP_SPEEDUP, (
        f"batched four-panel sweep only {sweep_speedup:.2f}x faster "
        f"(required >= {REQUIRED_SWEEP_SPEEDUP}x)"
    )
    assert bandwidth_speedup >= REQUIRED_BANDWIDTH_SPEEDUP, (
        f"batched bandwidth panel only {bandwidth_speedup:.2f}x faster "
        f"(required >= {REQUIRED_BANDWIDTH_SPEEDUP}x)"
    )
