"""The zero-cost-when-off gate: disabled telemetry stays under 2% of an epoch.

The instrumented hot paths (engine epochs, batch kernels, routing
kernels, caches) call the :mod:`repro.telemetry.runtime` helpers
unconditionally; when telemetry is off each helper is one global read
plus a ``None`` check.  This bench makes the "(nearly) free" claim a
number instead of a promise:

1. time one full scenario run with telemetry disabled (the baseline);
2. count how many times each disabled helper actually fires during an
   identical run (wrapping the module attributes — call sites resolve
   them at call time);
3. microbenchmark each disabled helper's unit cost;
4. assert ``sum(calls * unit_cost) < 2%`` of the baseline wall-clock.

The product of measured call counts and measured unit costs bounds the
instrumentation's contribution without trying to resolve a sub-1%
difference between two noisy end-to-end timings.
"""

from __future__ import annotations

import time
from typing import Callable, Dict

from benchmarks.conftest import run_once
from repro.scenario.session import run_spec
from repro.scenario.spec import ScenarioSpec
from repro.telemetry import runtime as telemetry

#: Maximum tolerated disabled-telemetry overhead (fraction of wall-clock).
OVERHEAD_BUDGET = 0.02

#: Per-helper microbenchmark bodies, with representative arguments.
_UNIT_BODIES: Dict[str, Callable[[], None]] = {
    "span": lambda: telemetry.span("epoch.steps", epoch=3).__enter__(),
    "count": lambda: telemetry.count("engine.steps"),
    "observe": lambda: telemetry.observe("serve.request.lookup", 0.001),
    "set_gauge": lambda: telemetry.set_gauge("depth", 1.0),
    "kernel_call": lambda: telemetry.kernel_call("shortest.multi", 16),
    "event": lambda: telemetry.event("mark", key="k"),
    "record_span": lambda: telemetry.record_span("cell", 0.01, key="k"),
    "register_cache": lambda: telemetry.register_cache(None),
}


def _spec() -> ScenarioSpec:
    return ScenarioSpec(
        experiment="live-overlay",
        n=50,
        k_grid=(4,),
        policies=("best-response",),
        metric="delay-ping",
        epochs=5,
        seed=2008,
    )


def _count_helper_calls(spec: ScenarioSpec) -> Dict[str, int]:
    """How often each runtime helper fires during one (disabled) run."""
    calls = {name: 0 for name in _UNIT_BODIES}
    originals = {name: getattr(telemetry, name) for name in _UNIT_BODIES}

    def counting(name: str, real):
        def wrapper(*args, **kwargs):
            calls[name] += 1
            return real(*args, **kwargs)

        return wrapper

    try:
        for name, real in originals.items():
            setattr(telemetry, name, counting(name, real))
        run_spec(spec)
    finally:
        for name, real in originals.items():
            setattr(telemetry, name, real)
    return calls


def _unit_cost(body: Callable[[], None], iterations: int = 50_000) -> float:
    """Seconds per call of one disabled helper (spin-measured)."""
    body()  # warm: interning, bytecode specialisation
    start = time.perf_counter()
    for _ in range(iterations):
        body()
    return (time.perf_counter() - start) / iterations


def test_disabled_telemetry_overhead_under_budget(benchmark):
    assert not telemetry.enabled()
    spec = _spec()

    start = time.perf_counter()
    run_once(benchmark, run_spec, spec)
    baseline = time.perf_counter() - start

    calls = _count_helper_calls(spec)
    costs = {name: _unit_cost(body) for name, body in _UNIT_BODIES.items()}
    overhead = sum(calls[name] * costs[name] for name in calls)
    fraction = overhead / baseline

    print()
    print("=== telemetry: disabled-hook overhead ===")
    for name in sorted(calls, key=lambda n: -calls[n] * costs[n]):
        print(
            f"{name:<14} calls={calls[name]:>8d} "
            f"unit={costs[name] * 1e9:7.1f} ns "
            f"total={calls[name] * costs[name] * 1e6:9.2f} us"
        )
    print(
        f"baseline={baseline:.4f}s overhead={overhead * 1e3:.3f}ms "
        f"({fraction:.3%} of wall-clock, budget {OVERHEAD_BUDGET:.0%})"
    )
    assert sum(calls.values()) > 0, "instrumentation hooks never fired"
    assert fraction < OVERHEAD_BUDGET, (
        f"disabled telemetry costs {fraction:.3%} of an epoch run, "
        f"over the {OVERHEAD_BUDGET:.0%} budget"
    )
