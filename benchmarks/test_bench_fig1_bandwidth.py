"""Benchmark E4 / Fig. 1 bottom-right: available bandwidth (larger is better).

Paper shape: the ratio (policy bandwidth / BR bandwidth) sits well below 1
for all heuristics — BR delivers a two-fold to four-fold improvement over
the other policies across the k range.
"""

from benchmarks.conftest import run_once
from repro.experiments import fig1_bandwidth

K_VALUES = (2, 3, 4, 5, 6, 7, 8)


def test_fig1_bandwidth(benchmark, report):
    result = run_once(
        benchmark,
        fig1_bandwidth,
        n=50,
        k_values=K_VALUES,
        seed=2008,
        br_rounds=3,
    )
    report(result)

    assert all(abs(v - 1.0) < 1e-9 for v in result.series["best-response"].y)
    # The other policies achieve at most ~the BR bandwidth, typically much less.
    for label in ("k-random", "k-regular", "k-closest"):
        series = result.series[label].y
        assert all(v <= 1.05 for v in series), label
        assert sum(series) / len(series) < 1.0, label
