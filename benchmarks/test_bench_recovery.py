"""Benchmark: checkpoint-bounded recovery vs full-chain replay.

The point of the checkpoint subsystem is that restart cost is bounded by
the checkpoint interval, not by session age.  This benchmark crashes two
identical paper-scale (n = 50) sessions after ``EPOCHS`` epochs — one
with periodic checkpoints, one with only the mutation log — recovers
both, and gates the checkpointed recovery at **>= 2x** faster than the
full-chain replay.  The gap widens linearly with session age; at the
benchmarked 24 epochs the observed ratio is already well clear of the
gate, so a regression here means checkpoint restore started re-running
work it should have skipped.

Both timings go to ``BENCH_*.json`` via ``extra_info`` so the recovery
trajectory is tracked across commits alongside the serve throughput.
"""

from __future__ import annotations

import time

from benchmarks.conftest import run_once

from repro.scenario.spec import ScenarioSpec
from repro.serve.service import OverlayService

N = 50
K = 4
EPOCHS = 24
CKPT_EVERY = 4
SEED = 2008
REQUIRED_SPEEDUP = 2.0


def _spec() -> ScenarioSpec:
    return ScenarioSpec(
        experiment="live-overlay",
        n=N,
        k_grid=(K,),
        policies=("best-response",),
        metric="delay-ping",
        epochs=EPOCHS,
        seed=SEED,
    )


def _crashed_chain(root, *, checkpoint_dir):
    """Drive a session to ``EPOCHS`` epochs and abandon it SIGKILL-style."""
    log = str(root / "serve.jsonl")
    service = OverlayService(
        _spec(),
        log_path=log,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=CKPT_EVERY,
    )
    while service.session.epochs_completed < EPOCHS:
        if service.session.epochs_completed == EPOCHS // 2:
            service.mutate({"kind": "drift", "steps": 1}, idem="bench-drift")
        service.tick()
    service._log.close()
    service._log = None
    service.closed = True
    return log


def test_bounded_recovery_beats_full_replay(benchmark, tmp_path):
    ckpt_dir = str(tmp_path / "checkpoints")
    bounded_log = _crashed_chain(tmp_path / "bounded", checkpoint_dir=ckpt_dir)
    chain_log = _crashed_chain(tmp_path / "chain", checkpoint_dir=None)

    def recover_both():
        start = time.perf_counter()
        bounded = OverlayService.recover(
            bounded_log, checkpoint_dir=ckpt_dir, checkpoint_every=CKPT_EVERY
        )
        bounded_s = time.perf_counter() - start
        start = time.perf_counter()
        chain = OverlayService.recover(chain_log)
        chain_s = time.perf_counter() - start
        return bounded, chain, bounded_s, chain_s

    bounded, chain, bounded_s, chain_s = run_once(benchmark, recover_both)
    try:
        # Both recoveries land on the same state ...
        assert bounded.session.epochs_completed == EPOCHS
        assert chain.session.epochs_completed == EPOCHS
        # ... but the checkpointed one replays at most one interval
        # while the chain-only one re-runs the whole session.
        assert bounded.last_recovery.bounded
        assert bounded.last_recovery.replayed_epochs <= CKPT_EVERY
        assert chain.last_recovery.replayed_epochs == EPOCHS
    finally:
        bounded.close()
        chain.close()

    speedup = chain_s / bounded_s
    print()
    print(
        f"RECOVERY-BENCH epochs={EPOCHS} ckpt_every={CKPT_EVERY} "
        f"bounded={bounded_s * 1e3:.1f}ms chain={chain_s * 1e3:.1f}ms "
        f"speedup={speedup:.1f}x"
    )

    benchmark.extra_info["bounded_recovery_s"] = bounded_s
    benchmark.extra_info["chain_replay_s"] = chain_s
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["replayed_epochs"] = bounded.last_recovery.replayed_epochs

    assert speedup >= REQUIRED_SPEEDUP, (
        f"bounded recovery is only {speedup:.1f}x faster than full replay "
        f"(gate: {REQUIRED_SPEEDUP:.0f}x) — checkpoint restore is replaying "
        "too much of the log"
    )
