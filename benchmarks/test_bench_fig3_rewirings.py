"""Benchmark E7 / Fig. 3 left: total re-wirings per epoch over time.

Paper shape: the re-wiring rate drops quickly after start-up as EGOIST
reaches steady state, and larger k sustains more re-wiring than smaller k.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import fig3_rewirings_over_time


def test_fig3_rewirings_over_time(benchmark, report):
    result = run_once(
        benchmark,
        fig3_rewirings_over_time,
        n=50,
        k_values=(2, 5, 8),
        epochs=12,
        seed=2008,
    )
    report(result)

    for k in (2, 5, 8):
        series = result.series[f"k={k}"].y
        # Start-up epoch wires everyone; later epochs re-wire far fewer.
        assert series[0] == 50
        assert np.mean(series[-4:]) < series[0]
    # Larger k keeps re-wiring more than small k in steady state.
    steady = lambda k: np.mean(result.series[f"k={k}"].y[-4:])
    assert steady(8) >= steady(2)
