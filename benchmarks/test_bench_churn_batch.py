"""Benchmark: the Fig. 2 dynamic-membership path through the fused batch.

The acceptance gate for the churn tentpole: a Fig. 2-style churned
12-engine epoch sweep — BR and BR(ε=0.1) across the k grid, all sharing
one trace-driven churn schedule (mean ON 1500 s / mean OFF 300 s, the
paper's PlanetLab-like regime) over one delay substrate, with the
efficiency metric on — run through
:class:`~repro.core.engine_batch.EngineBatch` in lockstep against the
sequential engines behind ``batched=False``.

What the fused path exercises here, unlike the static engine-batch gate
(``test_bench_engine_batch.py``):

* membership is partial and different almost every epoch, so the fused
  re-wiring broadcasts run on *masked* (padded-to-group-width) via
  tensors with per-engine compact reductions;
* join/leave events re-derive each engine's active mask between epochs
  (the lockstep states persist across the whole run);
* the residual route caches stay warm through the incremental repair
  kernels and the speculative prefills, where the sequential engines
  miss on every single opportunity (their token — wiring version,
  metric fingerprint, membership — changes under them every epoch).

Three hard gates:

* **>= 2x wall clock** (measures ~2.2-2.5x on an idle machine; timed as
  best-of-two interleaved rounds per path so load drift hits both sides
  equally and a single spike cannot decide the gate);
* **byte-identical EpochRecord digests** between the two paths — the
  fused masked broadcasts and every repaired matrix must not change a
  single decision (digests cover every record field at full float
  precision via ``float.hex``);
* **cache hit-rate > 50 %** under churn (assert via
  :meth:`ResidualRouteCache.stats` aggregated over the batch), against
  ~0 % for the sequential engines.
"""

from __future__ import annotations

import time

from repro.core.codec import history_digest
from repro.core.engine_batch import EngineBatch, EngineSpec
from repro.core.policies import BestResponsePolicy
from repro.core.providers import DelayMetricProvider
from repro.churn.models import trace_driven_churn
from repro.netsim.planetlab import synthetic_planetlab
from repro.util.rng import as_generator, spawn_generators

N = 24
K_VALUES = (3, 4, 5, 6, 7, 8)
EPOCHS = 10
SEED = 2008
MEAN_ON = 1500.0
MEAN_OFF = 300.0
REQUIRED_SPEEDUP = 2.0
REQUIRED_HIT_RATE = 0.5


def _build_specs():
    """12 churned deployments: BR and BR(0.1) across the Fig. 2 k grid."""
    rng = as_generator(SEED)
    space, _nodes = synthetic_planetlab(N, seed=rng)
    churn = trace_driven_churn(
        N, EPOCHS * 60.0, mean_on=MEAN_ON, mean_off=MEAN_OFF, seed=rng
    )
    cells = [(k, eps) for eps in (0.0, 0.1) for k in K_VALUES]
    streams = spawn_generators(rng, len(cells))
    return [
        EngineSpec(
            label=f"br(eps={eps:g})@k={k}",
            provider=DelayMetricProvider(space, estimator="true", seed=stream),
            policy=BestResponsePolicy(epsilon=eps),
            k=k,
            churn=churn,
            epsilon=eps,
            compute_efficiency=True,
            seed=stream,
        )
        for (k, eps), stream in zip(cells, streams)
    ]


def _run(batched: bool) -> EngineBatch:
    batch = EngineBatch(_build_specs(), batched=batched)
    batch.run(EPOCHS)
    return batch


def _record_digest(batch: EngineBatch) -> str:
    """Hex digest over every EpochRecord field at full float precision.

    Delegates to the canonical codec digest (the one the serve layer's
    replay parity uses), so "byte-identical" means the same thing in
    every gate of the repo.
    """
    return history_digest(
        record for engine in batch.engines for record in engine.history.records
    )


def _warmup() -> None:
    """Prime NumPy/SciPy dispatch so neither timed path pays first-call
    costs (the benchmark compares steady-state throughput)."""
    for batched in (True, False):
        rng = as_generator(1)
        space, _nodes = synthetic_planetlab(12, seed=rng)
        churn = trace_driven_churn(12, 120.0, mean_on=300.0, mean_off=60.0, seed=rng)
        streams = spawn_generators(rng, 2)
        specs = [
            EngineSpec(
                label=f"warm-{i}",
                provider=DelayMetricProvider(space, estimator="true", seed=stream),
                policy=BestResponsePolicy(),
                k=2,
                churn=churn,
                compute_efficiency=True,
                seed=stream,
            )
            for i, stream in enumerate(streams)
        ]
        EngineBatch(specs, batched=batched).run(2)


def test_churned_engine_batch_speedup(benchmark, report):
    _warmup()
    # Best of three *interleaved* rounds per path (the PR-3 timing
    # scheme, one round deeper): sustained machine load drifts both
    # sides equally and the min absorbs one-off spikes — churn epochs
    # are shorter than the static engine-batch gate's, so an extra
    # round is cheap insurance against a single loaded window.
    sequential_seconds = float("inf")
    batched_seconds = float("inf")
    sequential_batch = batched_batch = None
    for _round in range(3):
        start = time.perf_counter()
        sequential_batch = _run(batched=False)
        sequential_seconds = min(sequential_seconds, time.perf_counter() - start)
        start = time.perf_counter()
        batched_batch = _run(batched=True)
        batched_seconds = min(batched_seconds, time.perf_counter() - start)
    benchmark.pedantic(_run, kwargs={"batched": True}, rounds=1, iterations=1)

    # Byte-identical epoch records: the masked fused broadcasts and the
    # incremental cache repairs must not change a single decision.
    sequential_digest = _record_digest(sequential_batch)
    batched_digest = _record_digest(batched_batch)
    assert batched_digest == sequential_digest, (
        "churned engine batch: EpochRecord digests diverged "
        f"({batched_digest} != {sequential_digest})"
    )

    # The dynamic-membership cache story: sequential engines cannot reuse
    # anything across churned epochs; the lockstep prefills + incremental
    # repairs keep the caches serving most lookups.
    sequential_stats = sequential_batch.cache_stats()
    batched_stats = batched_batch.cache_stats()
    print(
        f"\n=== churned epoch sweep (n={N}, {2 * len(K_VALUES)} deployments, "
        f"{EPOCHS} epochs): sequential {sequential_seconds:.2f}s / "
        f"batched {batched_seconds:.2f}s = "
        f"{sequential_seconds / batched_seconds:.2f}x | cache hit-rate "
        f"{sequential_stats['hit_rate']:.3f} -> {batched_stats['hit_rate']:.3f} "
        f"(repairs={batched_stats['repairs']:.0f}) ==="
    )
    assert sequential_stats["hit_rate"] < 0.05, (
        "sequential churn baseline unexpectedly reuses the route cache; "
        "the scenario no longer represents the dynamic-membership gap"
    )
    assert batched_stats["hit_rate"] > REQUIRED_HIT_RATE, (
        f"churned cache hit-rate only {batched_stats['hit_rate']:.3f} "
        f"(required > {REQUIRED_HIT_RATE})"
    )

    speedup = sequential_seconds / batched_seconds
    assert speedup >= REQUIRED_SPEEDUP, (
        f"churned lockstep sweep only {speedup:.2f}x faster "
        f"(required >= {REQUIRED_SPEEDUP}x)"
    )
