"""Ablation A2: effect of the BRtp neighbourhood radius and oversampling.

The topology-biased sampler ranks candidates by the size and proximity of
their radius-r neighbourhood, after oversampling m' = oversample * m
random candidates.  The paper fixes r = 2; this ablation sweeps r in
{1, 2, 3} and the oversampling factor in {1, 3} and reports the newcomer's
cost (normalised by BR without sampling) for each setting.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core.best_response import WiringEvaluator
from repro.core.cost import DelayMetric
from repro.core.sampling import sampled_best_response, topology_biased_sample
from repro.experiments.sampling_exp import incremental_overlay
from repro.netsim.planetlab import synthetic_planetlab_trace


def _radius_study(n=100, k=3, m=10, trials=4, seed=2008):
    rng = np.random.default_rng(seed)
    space = synthetic_planetlab_trace(n, seed=rng)
    metric = DelayMetric(space.matrix)
    newcomer = n - 1
    existing = [v for v in range(n) if v != newcomer]
    base = incremental_overlay(metric, k, "best-response", nodes=existing, rng=rng)
    residual = base.to_graph(active=existing)
    evaluator = WiringEvaluator(
        newcomer, metric, residual, candidates=existing, destinations=existing
    )
    reference = sampled_best_response(newcomer, metric, residual, k, existing, rng=rng)
    reference_cost = evaluator.evaluate(reference.neighbors)

    results = {}
    for radius in (1, 2, 3):
        for oversample in (1, 3):
            costs = []
            for _ in range(trials):
                sample = topology_biased_sample(
                    newcomer,
                    metric,
                    residual,
                    m,
                    oversample=oversample,
                    radius=radius,
                    candidates=existing,
                    rng=rng,
                )
                join = sampled_best_response(
                    newcomer, metric, residual, k, sample, rng=rng
                )
                costs.append(evaluator.evaluate(join.neighbors))
            results[(radius, oversample)] = float(np.mean(costs)) / reference_cost
    return results


def test_sampling_radius_ablation(benchmark):
    results = run_once(benchmark, _radius_study)
    print()
    print("=== A2: BRtp radius / oversampling ablation ===")
    print("radius\toversample\tnewcomer cost / BR-no-sampling")
    for (radius, oversample), ratio in sorted(results.items()):
        print(f"{radius}\t{oversample}\t{ratio:.3f}")

    # All configurations stay within a modest factor of unsampled BR.
    assert all(ratio < 2.0 for ratio in results.values())
    # Oversampling (m' = 3m) never hurts materially relative to m' = m at
    # the paper's radius r = 2.
    assert results[(2, 3)] <= results[(2, 1)] * 1.15
    # The paper's choice r = 2 is no worse than r = 1 with oversampling.
    assert results[(2, 3)] <= results[(1, 3)] * 1.15
