"""Lockstep execution of several epoch-driven engine deployments.

The paper's epoch-loop experiments (Figures 2-4's engine runs) sweep many
*independent* :class:`~repro.core.engine.EgoistEngine` deployments — one
per (policy, k) pair, or per churn rate — over one underlay.  Running them
one after another leaves the stacked route-value kernels from
:mod:`repro.core.deployment_batch` idle: every re-wiring opportunity pays
its own residual graph construction and its own multi-source sweep.

:class:`EngineBatch` advances the deployments epoch by epoch in lockstep
and *prefills* each engine's
:class:`~repro.core.route_cache.ResidualRouteCache` with the residual
route-value matrices its upcoming re-wiring opportunities will ask for:

* additive metrics (delay, load) stack the ``(engine, node)`` residual
  weight matrices of all engines' next waves into one block-diagonal CSR
  Dijkstra call (:func:`repro.core.deployment_batch._batched_route_matrices`);
* the bandwidth metric closes residual adjacencies with Floyd-Warshall
  max-min pivoting, switching to one divide-and-conquer
  :func:`~repro.routing.widest_path.bottleneck_avoid_one` pass (all
  residual matrices of the overlay version at once) when a quiet streak
  makes whole-round speculation worthwhile.

Wave sizes adapt per engine exactly like the deployment batch: they grow
while nothing re-wires and reset whenever the engine's wiring (topology
*or* announced weights) changes, since a wiring-version bump invalidates
the speculative entries through the cache token anyway.

Byte identity
-------------
The engines themselves are untouched: every step runs
:meth:`EgoistEngine.step_node`, which consumes the same RNG streams and
applies the same decision rules whether its evaluator's matrices come from
the cache or from a fresh sweep — and the injected matrices are bitwise
identical to the sweeps they replace (selections and block-separated
Dijkstra runs, no arithmetic reordering).  ``batched=False`` does not
prefill at all: it runs each engine's ``run(epochs)`` sequentially, i.e.
today's engine byte-for-byte, which is the parity anchor and the
benchmark baseline (``benchmarks/test_bench_engine_batch.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.churn.models import ChurnSchedule
from repro.core.best_response import should_rewire
from repro.core.cheating import CheatingModel
from repro.core.deployment_batch import (
    _AVOID_ONE_MIN_WAVE,
    _batched_route_matrices,
)
from repro.core.engine import EgoistEngine, EngineHistory, EpochPlan, EpochRecord
from repro.core.hybrid import HybridBRPolicy
from repro.core.node import RewireMode
from repro.core.policies import BestResponsePolicy, NeighborSelectionPolicy
from repro.core.providers import MetricProvider
from repro.core.wiring import Wiring
from repro.routing.widest_path import (
    CLOSURE_MAX_NODES,
    bottleneck_avoid_one,
    bottleneck_closure_fw,
)
from repro.util.rng import SeedLike
from repro.util.validation import ValidationError

#: Stacked-node cap per block-diagonal Dijkstra call.  The engine batch
#: stacks many *small* residual problems per round, where the call's dense
#: ``(blocks*n)^2`` distance output — not the Dijkstra itself — dominates;
#: a tighter cap than the deployment sweep's keeps that output near 8 MB.
_ENGINE_BLOCK_NODES = 1024


@dataclass
class EngineSpec:
    """One epoch-driven deployment of an engine sweep.

    The fields mirror :class:`~repro.core.engine.EgoistEngine`'s
    constructor.  Give every spec its own ``seed`` stream (e.g. via
    :func:`repro.util.rng.spawn_generators`) and its own provider; the
    batched and sequential paths then consume identical draws per
    deployment regardless of epoch interleaving.
    """

    label: str
    provider: MetricProvider
    policy: NeighborSelectionPolicy
    k: int
    epoch_length: float = 60.0
    announce_interval: float = 20.0
    churn: Optional[ChurnSchedule] = None
    cheating: Optional[CheatingModel] = None
    epsilon: float = 0.0
    rewire_mode: RewireMode = RewireMode.DELAYED
    preferences: Optional[np.ndarray] = None
    compute_efficiency: bool = False
    route_cache_size: Optional[int] = None
    seed: SeedLike = None

    def build_engine(self) -> EgoistEngine:
        """Construct the deployment's engine."""
        return EgoistEngine(
            self.provider,
            self.policy,
            self.k,
            epoch_length=self.epoch_length,
            announce_interval=self.announce_interval,
            churn=self.churn,
            cheating=self.cheating,
            epsilon=self.epsilon,
            rewire_mode=self.rewire_mode,
            preferences=self.preferences,
            compute_efficiency=self.compute_efficiency,
            route_cache_size=self.route_cache_size,
            seed=self.seed,
        )


class _LockstepState:
    """Per-engine bookkeeping of one lockstep epoch."""

    __slots__ = (
        "engine",
        "plan",
        "wave",
        "dense",
        "hops_key",
        "hops_rows",
        "version",
        "fusable",
        "pending",
    )

    def __init__(self, engine: EgoistEngine):
        self.engine = engine
        self.plan: Optional[EpochPlan] = None
        self.wave = 1
        self.dense: Optional[np.ndarray] = None
        self.hops_key: Dict[int, Tuple[int, ...]] = {}
        self.hops_rows: Dict[int, np.ndarray] = {}
        self.version = -1
        self.fusable = False
        #: Speculative cache entries not yet consumed: node -> entry token.
        self.pending: Dict[int, Tuple] = {}

    # ------------------------------------------------------------------ #
    def begin_epoch(self) -> None:
        self.plan = self.engine.begin_epoch()
        self.hops_key.clear()
        self.hops_rows.clear()
        self.pending.clear()
        self._rebuild_dense()
        self.version = self.engine.wiring.version
        self.wave = 1
        # The fused broadcasts replicate the engine step's greedy-seeded
        # local search at full membership; engines that would take another
        # branch — churned-down membership, exact enumeration on small
        # candidate pools, k = 0, interpreted kernels, HybridBR, or a
        # disabled route cache — step through their own evaluator instead.
        policy = self.engine.policy
        self.fusable = (
            isinstance(policy, BestResponsePolicy)
            and not isinstance(policy, HybridBRPolicy)
            and policy.vectorized
            and int(self.engine.k) >= 1
            and self.engine.route_cache is not None
            and len(self.plan.active_list) == self.engine.n
            and self.engine.n - 1 > int(policy.exact_threshold)
        )

    def _rebuild_dense(self) -> None:
        """Dense announced-weight matrix of the active wiring (NaN absent)."""
        n = self.engine.n
        dense = np.full((n, n), np.nan)
        active_set = set(self.plan.active_list)
        for node in self.plan.active_list:
            for v, w in self.engine.wiring.weights_of(node).items():
                if v in active_set:
                    dense[node, v] = w
        self.dense = dense

    def hops_of(self, node: int) -> Tuple[int, ...]:
        """The node's candidate first hops, in evaluator (sorted) order."""
        key = self.hops_key.get(node)
        if key is None:
            hops = [c for c in self.plan.active_list if c != node]
            key = tuple(hops)
            self.hops_key[node] = key
            self.hops_rows[node] = np.array(hops, dtype=int)
        return key

    def token(self) -> Tuple:
        """The cache token :meth:`EgoistEngine.step_node` will stamp."""
        return (self.engine.wiring.version, self.plan.metric_fp, self.plan.active_key)

    def step(self) -> None:
        """Advance one re-wiring opportunity; adapt the wave to the outcome."""
        node = self.plan.order[self.plan.pos]
        rewired = self.engine.step_node(self.plan)
        self.after_step(node, rewired)

    def after_step(self, node: int, rewired: bool) -> None:
        """Dense/wave/speculation bookkeeping after ``node``'s step ran."""
        self.pending.pop(node, None)
        if rewired:
            # The speculative chain assumed no re-wire; every pending
            # entry was computed from a now-wrong wiring (and, since the
            # wiring version still advanced by one, its predicted token
            # WILL match) — drop them before any step can consume one.
            cache = self.engine.route_cache
            if cache is not None:
                for other in self.pending:
                    cache.drop(other)
            self.pending.clear()
        version_changed = self.engine.wiring.version != self.version
        if version_changed:
            self.version = self.engine.wiring.version
            row = self.dense[node]
            row[:] = np.nan
            active_set = set(self.plan.active_list)
            for v, w in self.engine.wiring.weights_of(node).items():
                if v in active_set:
                    row[v] = w
        if rewired or (version_changed and self.plan.announced.maximize):
            # A re-wire breaks the speculative chain; for bandwidth even
            # an in-place weight refresh does (its prefill does not
            # speculate, and a wasted wave member costs a full n^3
            # closure).
            self.wave = 1
        else:
            # Additive in-place weight refreshes are predicted by the
            # speculative prefill, so only a re-wire resets the streak.
            cap = 8 if self.plan.announced.maximize else 16
            self.wave = min(self.wave + 1, cap)


class EngineBatch:
    """A sweep of independent epoch-driven deployments over one underlay.

    Parameters
    ----------
    specs:
        The deployments, all over providers of the same size.  Mixed
        metric families are allowed (prefills group by objective
        direction).
    batched:
        ``True`` (default) advances the engines in lockstep with shared
        residual route-value prefills; ``False`` runs each engine's
        ``run(epochs)`` sequentially — today's engine byte-for-byte.
        Both produce bit-identical epoch histories.
    """

    def __init__(self, specs: Sequence[EngineSpec], *, batched: bool = True):
        specs = list(specs)
        if not specs:
            raise ValidationError("an EngineBatch needs at least one spec")
        sizes = {spec.provider.size for spec in specs}
        if len(sizes) != 1:
            raise ValidationError(
                f"all deployments must share one overlay size, got {sorted(sizes)}"
            )
        self.specs: List[EngineSpec] = specs
        self.batched = bool(batched)
        self.n = specs[0].provider.size
        self.engines: List[EgoistEngine] = [spec.build_engine() for spec in specs]

    # ------------------------------------------------------------------ #
    def run(self, epochs: int) -> List[EngineHistory]:
        """Simulate ``epochs`` wiring epochs per deployment."""
        if not self.batched:
            for engine in self.engines:
                engine.run(epochs)
            return [engine.history for engine in self.engines]
        for _ in range(int(epochs)):
            self.run_epoch()
        return [engine.history for engine in self.engines]

    def run_epoch(self) -> List[EpochRecord]:
        """Advance every deployment by one wiring epoch, in lockstep."""
        states = [_LockstepState(engine) for engine in self.engines]
        for st in states:
            st.begin_epoch()
        live = [st for st in states if not st.plan.done]
        while live:
            self._prefill(live)
            # Fused groups must share the full objective convention —
            # direction AND disconnection value — since the broadcast
            # clamps use one value for the whole group; a fusable engine
            # whose matrix is somehow uncached falls back to its own step.
            # The matrix fetched here is handed to the fused step, so the
            # cache sees exactly one lookup per opportunity (its hit/miss
            # stats stay comparable with the sequential path).
            groups: Dict[Tuple[bool, float], List[Tuple[_LockstepState, np.ndarray]]] = {}
            fallback: List[_LockstepState] = []
            for st in live:
                node = st.plan.order[st.plan.pos]
                resid = (
                    st.engine.route_cache.get(node, st.hops_of(node))
                    if st.fusable
                    else None
                )
                if resid is not None:
                    metric = st.plan.announced
                    key = (bool(metric.maximize), float(metric.unreachable_value))
                    groups.setdefault(key, []).append((st, resid))
                else:
                    fallback.append(st)
            for group in groups.values():
                self._fused_engine_steps(group)
            for st in fallback:
                st.step()
            live = [st for st in live if not st.plan.done]
        return [st.engine.finish_epoch(st.plan) for st in states]

    # ------------------------------------------------------------------ #
    # Residual route-value prefills
    # ------------------------------------------------------------------ #
    def _prefill(self, live: Sequence[_LockstepState]) -> None:
        """Inject residual matrices for each engine's next wave of nodes.

        Bandwidth entries are computed from the engine's *current* wiring
        and stamped with the current token, so a mid-wave wiring change
        simply stops later entries from matching and the engine falls
        back to its own (bitwise-identical) sweep.  Additive entries are
        *speculative*: within an epoch the announced metric is fixed, so
        the in-place weight refresh each step performs is predictable as
        long as the node does not re-wire — the planner simulates those
        refreshes (including the wiring-version bumps they cause) and
        stamps each entry with the token of the state it will be valid
        under.  A re-wire falsifies the chain; :meth:`_LockstepState.after_step`
        then drops the not-yet-consumed entries before any step could
        match one against a wrong wiring.
        """
        jobs: List[Tuple[_LockstepState, int, Tuple, np.ndarray]] = []
        for st in live:
            cache = st.engine.route_cache
            if cache is None:
                continue
            cache.set_token(st.token())
            plan = st.plan
            if plan.announced.maximize:
                missing = [
                    node
                    for node in plan.order[plan.pos : plan.pos + st.wave]
                    if st.hops_of(node) and cache.get(node, st.hops_of(node)) is None
                ]
                if missing:
                    self._prefill_bandwidth(st, missing)
                continue
            # Replan only when the speculative chain ran dry (or broke):
            # while the next node's entry is valid, the earlier plan
            # already covers this round and the walk would be pure
            # overhead.
            next_node = plan.order[plan.pos]
            next_hops = st.hops_of(next_node)
            if not next_hops or cache.get(next_node, next_hops) is not None:
                continue
            jobs.extend(self._plan_speculative_jobs(st))
        if not jobs:
            return
        stack = np.stack([dense for (_st, _node, _token, dense) in jobs])
        matrices = _batched_route_matrices(
            stack, maximize=False, block_nodes=_ENGINE_BLOCK_NODES
        )
        for (st, node, token, _dense), matrix in zip(jobs, matrices):
            st.engine.route_cache.put(
                node, st.hops_of(node), matrix[st.hops_rows[node], :], token=token
            )
            st.pending[node] = token

    def _plan_speculative_jobs(
        self, st: _LockstepState
    ) -> List[Tuple[_LockstepState, int, Tuple, np.ndarray]]:
        """Residual jobs for ``st``'s next wave under predicted refreshes.

        Walks the upcoming nodes simulating each step's weight re-install
        against the epoch's announced metric: the wiring version advances
        exactly when the refreshed weights differ (the same dict
        comparison :meth:`GlobalWiring.set_wiring` performs), and the
        predicted dense matrix tracks the refreshed rows.  Each returned
        job carries the dense snapshot and cache token of its position in
        the chain.
        """
        engine = st.engine
        plan = st.plan
        cache = engine.route_cache
        fp = plan.metric_fp
        key = plan.active_key
        pred_version = engine.wiring.version
        pred_dense: Optional[np.ndarray] = None
        jobs: List[Tuple[_LockstepState, int, Tuple, np.ndarray]] = []
        for node in plan.order[plan.pos : plan.pos + st.wave]:
            hops = st.hops_of(node)
            if hops:
                token = (pred_version, fp, key)
                have = st.pending.get(node) == token or (
                    pred_version == engine.wiring.version
                    and cache.get(node, hops) is not None
                )
                if not have:
                    dense = (pred_dense if pred_dense is not None else st.dense).copy()
                    dense[node, :] = np.nan
                    jobs.append((st, node, token, dense))
            # Simulate the node's in-place weight refresh (step_node
            # re-installs the current neighbours at announced weights).
            weights = engine.wiring.weights_of(node)
            if weights:
                row_weights = plan.announced.link_weight_row(node)
                new_weights = {v: float(row_weights[v]) for v in weights}
                if new_weights != weights:
                    pred_version += 1
                    if pred_dense is None:
                        pred_dense = st.dense.copy()
                    row = pred_dense[node]
                    row[:] = np.nan
                    for v, w in new_weights.items():
                        row[v] = w
        return jobs

    def _fused_engine_steps(
        self, group: Sequence[Tuple[_LockstepState, np.ndarray]]
    ) -> None:
        """One re-wiring opportunity per engine, in shared broadcasts.

        ``group`` pairs each engine's lockstep state with the cached
        residual route-value matrix of its next node (fetched once by the
        grouping pass in :meth:`run_epoch`).

        The engine analogue of
        :meth:`repro.core.deployment_batch.DeploymentBatch._fused_rewire_steps`:
        all engines in ``group`` share the objective direction, so their
        ``(hops x destinations)`` via matrices stack into one
        ``(engines x hops x destinations)`` tensor and every kernel of the
        sequential step — scoring the node's current wiring, each
        greedy-seed pass, and each local-search swap pass — becomes a
        single broadcast over it.  The adoption rule is the engine's
        (:meth:`~repro.core.node.EgoistNode.consider_rewiring`): BR(ε)
        with the *node's* epsilon, empty-wiring nodes adopting any
        different wiring, followed by the weight re-install and the
        link-state broadcast of :meth:`EgoistEngine.step_node`.  Values
        resolve through the same argmin/argsort lanes as the
        per-engine evaluator path, so decisions — and with them the epoch
        histories — are bitwise identical.
        """
        D = len(group)
        n = self.n
        H = n - 1
        metric0 = group[0][0].plan.announced
        maximize = bool(metric0.maximize)
        unreachable = metric0.unreachable_value
        combine = np.maximum if maximize else np.minimum
        identity = -np.inf if maximize else np.inf
        sentinel = identity

        # Largest budgets first: the engines still seeding at greedy step s
        # then form a prefix, so per-pass kernels slice views instead of
        # masking lanes.  Order inside the group is free — engines are
        # independent and draw from their own streams.
        pairs = sorted(group, key=lambda pair: -min(int(pair[0].engine.k), H))
        group = [st for st, _resid in pairs]
        nodes = [st.plan.order[st.plan.pos] for st in group]
        via = np.empty((D, H + 1, H))
        prefs = np.empty((D, H))
        directs = np.empty((D, H))
        resid_dest = np.empty((D, H, H))
        ks = np.empty(D, dtype=int)
        for d, ((st, resid), node) in enumerate(zip(pairs, nodes)):
            hops_rows = st.hops_rows[node]
            resid_dest[d] = resid[:, hops_rows]
            directs[d] = st.plan.announced.link_weight_row(node)[hops_rows]
            prefs[d] = st.engine.preferences[node, hops_rows]
            ks[d] = min(int(st.engine.k), H)
        if maximize:
            np.minimum(directs[:, :, None], resid_dest, out=via[:, :H, :])
        else:
            np.add(directs[:, :, None], resid_dest, out=via[:, :H, :])
        via[:, H, :] = identity
        d_idx = np.arange(D)
        # Mirrors WiringEvaluator._via_clean: when every via value is
        # reachable the clamp is an identity and the kernels skip it.
        if maximize:
            via_clean = bool(
                np.all(np.isfinite(via[:, :H, :]) & (via[:, :H, :] > 0))
            )
        else:
            via_clean = bool(np.all(np.isfinite(via[:, :H, :])))

        def objective(rows: np.ndarray) -> np.ndarray:
            """Objective of one padded wiring per engine (rows (D, R))."""
            vals = via[d_idx[:, None], rows]
            best = vals.max(axis=1) if maximize else vals.min(axis=1)
            if maximize:
                best = np.where(
                    np.isfinite(best) & (best > 0), best, unreachable
                )
            else:
                best = np.where(np.isfinite(best), best, unreachable)
            return (prefs * best).sum(axis=1)

        def clamp_(values: np.ndarray) -> np.ndarray:
            if via_clean:
                return values
            if maximize:
                bad = ~(np.isfinite(values) & (values > 0))
            else:
                bad = ~np.isfinite(values)
            values[bad] = unreachable
            return values

        # --- score each node's current wiring ------------------------- #
        neighbor_rows = []
        for st, node in zip(group, nodes):
            wiring = st.engine.nodes[node].wiring
            neighbors = wiring.neighbors if wiring is not None else frozenset()
            neighbor_rows.append([c - (c > node) for c in neighbors])
        width = max(1, max(len(rows) for rows in neighbor_rows))
        existing = np.full((D, width), H, dtype=int)
        for d, rows in enumerate(neighbor_rows):
            existing[d, : len(rows)] = rows
        existing_cost = objective(existing)
        for d, rows in enumerate(neighbor_rows):
            if not rows:
                # consider_rewiring charges an unwired node the evaluator's
                # empty cost, which multiplies the *summed* preferences by
                # the disconnection value — not bitwise the same as the
                # padded reduction above.
                existing_cost[d] = float(np.sum(prefs[d]) * unreachable)

        # --- greedy marginal-gain seeding ----------------------------- #
        k_max = int(ks.max())
        running = np.full((D, H), identity)
        taken = np.zeros((D, H), dtype=bool)
        chosen = np.full((D, k_max), H, dtype=int)
        for step in range(k_max):
            live = int(np.count_nonzero(step < ks))  # a prefix: ks sorted desc
            trial = combine(running[:live, None, :], via[:live, :H, :])
            clamp_(trial)
            trial *= prefs[:live, None, :]
            costs = trial.sum(axis=2)
            costs[taken[:live]] = sentinel
            pos = costs.argmax(axis=1) if maximize else costs.argmin(axis=1)
            sel = d_idx[:live]
            chosen[sel, step] = pos
            taken[sel, pos] = True
            running[:live] = combine(running[:live], via[sel, pos])
        current_cost = objective(chosen)

        # --- single-swap local search --------------------------------- #
        current_rows = chosen
        occupied = taken
        caps = np.array([int(st.engine.policy.max_iterations) for st in group])
        active = caps > 0
        slot_range = np.arange(k_max)
        iteration = 0
        while active.any():
            cur_vals = via[d_idx[:, None], current_rows]
            if k_max == 1:
                loo = np.full((D, 1, H), identity)
            else:
                order = np.argsort(cur_vals, axis=1)
                ext_slot = order[:, -1, :] if maximize else order[:, 0, :]
                second_slot = order[:, -2, :] if maximize else order[:, 1, :]
                ext = np.take_along_axis(
                    cur_vals, ext_slot[:, None, :], axis=1
                )[:, 0, :]
                second = np.take_along_axis(
                    cur_vals, second_slot[:, None, :], axis=1
                )[:, 0, :]
                loo = np.where(
                    slot_range[None, :, None] == ext_slot[:, None, :],
                    second[:, None, :],
                    ext[:, None, :],
                )
            trial = combine(loo[:, :, None, :], via[:, None, :H, :])
            clamp_(trial)
            trial *= prefs[:, None, None, :]
            swap = trial.sum(axis=3)
            swap = np.where(occupied[:, None, :], sentinel, swap)
            if k_max > 1:
                swap = np.where(
                    slot_range[None, :, None] >= ks[:, None, None], sentinel, swap
                )
            flat = swap.reshape(D, k_max * H)
            pos = flat.argmax(axis=1) if maximize else flat.argmin(axis=1)
            val = flat[d_idx, pos]
            improved = (val > current_cost) if maximize else (val < current_cost)
            improved &= active
            sel = d_idx[improved]
            if len(sel):
                out_slot = pos[sel] // H
                in_pos = pos[sel] % H
                occupied[sel, current_rows[sel, out_slot]] = False
                occupied[sel, in_pos] = True
                current_rows[sel, out_slot] = in_pos
                current_cost[sel] = val[sel]
            iteration += 1
            active = improved & (iteration < caps)

        # --- adopt per engine (consider_rewiring semantics) ------------ #
        for d, (st, node) in enumerate(zip(group, nodes)):
            engine = st.engine
            eng_node = engine.nodes[node]
            metric = st.plan.announced
            rows = [int(r) for r in current_rows[d, : ks[d]]]
            new_neighbors = frozenset(r + (r >= node) for r in rows)
            old = eng_node.wiring
            old_neighbors = (
                frozenset(old.neighbors) if old is not None else frozenset()
            )
            if old_neighbors:
                adopt = should_rewire(
                    metric,
                    float(existing_cost[d]),
                    float(current_cost[d]),
                    eng_node.epsilon,
                )
            else:
                adopt = new_neighbors != old_neighbors
            rewired = bool(adopt and new_neighbors != old_neighbors)
            if rewired:
                eng_node.wiring = Wiring.of(node, new_neighbors)
                eng_node.rewire_count += 1
            plan = st.plan
            plan.pos += 1
            if eng_node.wiring is not None:
                direct = directs[d]
                weights = {
                    v: float(direct[v - (v > node)])
                    for v in eng_node.wiring.neighbors
                }
                engine.wiring.set_wiring(eng_node.wiring, weights)
                engine.protocol.broadcast(
                    node,
                    engine.wiring.weights_of(node),
                    active=plan.active_list,
                    timestamp=engine.clock.now,
                )
            if rewired:
                plan.rewirings += 1
            st.after_step(node, rewired)

    def _prefill_bandwidth(self, st: _LockstepState, missing: Sequence[int]) -> None:
        """Residual bottleneck matrices for one bandwidth deployment.

        Mirrors the deployment batch: small waves close each node's
        residual adjacency directly; a quiet streak long enough to ask
        for :data:`_AVOID_ONE_MIN_WAVE` nodes switches to one
        divide-and-conquer pass serving every node of the overlay
        version.  Past :data:`CLOSURE_MAX_NODES` nothing is prefilled
        and the engine's own auto-mode sweep (bitwise identical) runs.
        """
        n = self.n
        if n > CLOSURE_MAX_NODES:
            return
        cache = st.engine.route_cache
        adjacency = np.where(np.isnan(st.dense), 0.0, st.dense)
        np.fill_diagonal(adjacency, np.inf)
        if len(missing) >= _AVOID_ONE_MIN_WAVE:
            tensor = bottleneck_avoid_one(adjacency)
            for node in st.plan.active_list:
                hops = st.hops_of(node)
                if hops:
                    cache.put(node, hops, tensor[node][st.hops_rows[node], :])
            return
        for node in missing:
            residual = adjacency.copy()
            residual[node, :] = 0.0
            residual[node, node] = np.inf
            closure = bottleneck_closure_fw(residual)
            cache.put(node, st.hops_of(node), closure[st.hops_rows[node], :])
