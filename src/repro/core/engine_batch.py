"""Lockstep execution of several epoch-driven engine deployments.

The paper's epoch-loop experiments (Figures 2-4's engine runs) sweep many
*independent* :class:`~repro.core.engine.EgoistEngine` deployments — one
per (policy, k) pair, or per churn rate — over one underlay.  Running them
one after another leaves the stacked route-value kernels from
:mod:`repro.core.deployment_batch` idle: every re-wiring opportunity pays
its own residual graph construction and its own multi-source sweep.

:class:`EngineBatch` advances the deployments epoch by epoch in lockstep
and *prefills* each engine's
:class:`~repro.core.route_cache.ResidualRouteCache` with the residual
route-value matrices its upcoming re-wiring opportunities will ask for:

* additive metrics (delay, load) stack the ``(engine, node)`` residual
  weight matrices of all engines' next waves into one block-diagonal CSR
  Dijkstra call (:func:`repro.core.deployment_batch._batched_route_matrices`);
* the bandwidth metric closes residual adjacencies with Floyd-Warshall
  max-min pivoting, switching to one divide-and-conquer
  :func:`~repro.routing.widest_path.bottleneck_avoid_one` pass (all
  residual matrices of the overlay version at once) when a quiet streak
  makes whole-round speculation worthwhile.

Wave sizes adapt per engine exactly like the deployment batch: they grow
while nothing re-wires and fall back to single-step lookahead while
re-wires keep falsifying the speculative chain.

Dynamic membership (the Fig. 2 churn path) is first-class: fused
re-wiring broadcasts pad each engine's hop/destination axes to the
group's widest member and reduce over per-engine compact prefixes, so
churned-down engines share the same kernels as full ones; join/leave
events between epochs re-derive the active mask instead of rebuilding
the batch; and the engines' residual route caches are kept warm through
the *incremental repair* kernels
(:func:`repro.routing.shortest_path.repair_shortest_rows` /
:func:`repro.routing.widest_path.repair_widest_rows`) — a re-wire or a
membership delta becomes a masked update of the cached matrices (exact,
see the kernels) instead of a full invalidation, with the
:meth:`GlobalWiring.changed_since` changelog supplying the deltas.

Byte identity
-------------
The engines themselves are untouched: every step runs
:meth:`EgoistEngine.step_node`, which consumes the same RNG streams and
applies the same decision rules whether its evaluator's matrices come from
the cache or from a fresh sweep — and the injected matrices are bitwise
identical to the sweeps they replace (selections and block-separated
Dijkstra runs, no arithmetic reordering).  ``batched=False`` does not
prefill at all: it runs each engine's ``run(epochs)`` sequentially, i.e.
today's engine byte-for-byte, which is the parity anchor and the
benchmark baseline (``benchmarks/test_bench_engine_batch.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.churn.models import ChurnSchedule
from repro.core.best_response import should_rewire
from repro.core.cheating import CheatingModel
from repro.core.deployment_batch import (
    _AVOID_ONE_MIN_WAVE,
    _batched_route_matrices,
)
from repro.core.engine import EgoistEngine, EngineHistory, EpochPlan, EpochRecord
from repro.core.failures import FailureSpec
from repro.core.hybrid import HybridBRPolicy
from repro.core.node import RewireMode
from repro.core.policies import BestResponsePolicy, NeighborSelectionPolicy
from repro.core.providers import MetricProvider
from repro.core.wiring import Wiring
from repro.routing.shortest_path import shortest_inbound_tables
from repro.routing.widest_path import (
    CLOSURE_MAX_NODES,
    bottleneck_avoid_one,
    bottleneck_closure_fw,
    widest_inbound_tables,
)
from repro.telemetry import runtime as telemetry
from repro.telemetry.diagnostics import pooled_cache_stats
from repro.util.rng import SeedLike
from repro.util.validation import ValidationError

#: Stacked-node cap per block-diagonal Dijkstra call.  The engine batch
#: stacks many *small* residual problems per round, where the call's dense
#: ``(blocks*n)^2`` distance output — not the Dijkstra itself — dominates;
#: a tighter cap than the deployment sweep's keeps that output near 8 MB.
_ENGINE_BLOCK_NODES = 1024

#: Wave cap while re-wires keep breaking the speculative chain: under
#: sustained re-wiring a planned-ahead entry is usually falsified (and at
#: best repaired, at worst recomputed) before it is consumed, so the
#: chain stops looking ahead entirely until a quiet streak re-earns the
#: deeper pipeline.
_REPAIR_WAVE_CAP = 1

#: Repair-vs-recompute bound for the batch: the lockstep prefills
#: amortise fresh sweeps across engines in C-level stacked calls, so an
#: incremental repair only pays while the suspect region stays small.
#: (The sequential engine applies its own, independently tuned bound —
#: see ``repro.core.engine._STEP_REPAIR_MAX_SUSPECT``.)
_REPAIR_MAX_SUSPECT = 0.35


@dataclass
class EngineSpec:
    """One epoch-driven deployment of an engine sweep.

    The fields mirror :class:`~repro.core.engine.EgoistEngine`'s
    constructor.  Give every spec its own ``seed`` stream (e.g. via
    :func:`repro.util.rng.spawn_generators`) and its own provider; the
    batched and sequential paths then consume identical draws per
    deployment regardless of epoch interleaving.
    """

    label: str
    provider: MetricProvider
    policy: NeighborSelectionPolicy
    k: int
    epoch_length: float = 60.0
    announce_interval: float = 20.0
    churn: Optional[ChurnSchedule] = None
    cheating: Optional[CheatingModel] = None
    failures: Optional[FailureSpec] = None
    epsilon: float = 0.0
    rewire_mode: RewireMode = RewireMode.DELAYED
    preferences: Optional[np.ndarray] = None
    compute_efficiency: bool = False
    route_cache_size: Optional[int] = None
    seed: SeedLike = None

    def build_engine(self) -> EgoistEngine:
        """Construct the deployment's engine."""
        return EgoistEngine(
            self.provider,
            self.policy,
            self.k,
            epoch_length=self.epoch_length,
            announce_interval=self.announce_interval,
            churn=self.churn,
            cheating=self.cheating,
            failures=self.failures,
            epsilon=self.epsilon,
            rewire_mode=self.rewire_mode,
            preferences=self.preferences,
            compute_efficiency=self.compute_efficiency,
            route_cache_size=self.route_cache_size,
            seed=self.seed,
        )


class _LockstepState:
    """Per-engine bookkeeping of one lockstep epoch."""

    __slots__ = (
        "engine",
        "plan",
        "wave",
        "dense",
        "hops_key",
        "hops_rows",
        "version",
        "fusable",
        "pending",
        "_tables",
        "_tables_version",
    )

    def __init__(self, engine: EgoistEngine):
        self.engine = engine
        self.plan: Optional[EpochPlan] = None
        self.wave = 1
        self.dense: Optional[np.ndarray] = None
        self.hops_key: Dict[int, Tuple[int, ...]] = {}
        self.hops_rows: Dict[int, np.ndarray] = {}
        self.version = -1
        self.fusable = False
        #: Speculative cache entries not yet consumed:
        #: node -> (entry token, epoch-order positions of the predicted
        #: weight refreshes baked into the entry's residual baseline).
        self.pending: Dict[int, Tuple[Tuple, Tuple[int, ...]]] = {}
        #: Shared repair tables over the current dense wiring, keyed by
        #: the wiring version they were built at.
        self._tables = None
        self._tables_version = -1

    # ------------------------------------------------------------------ #
    def begin_epoch(self) -> None:
        self.plan = self.engine.begin_epoch()
        self.hops_key.clear()
        self.hops_rows.clear()
        self.pending.clear()
        # Membership (and with it the dense matrix) can change without a
        # version bump, so the shared tables never survive an epoch.
        self._tables = None
        self._tables_version = -1
        self._rebuild_dense()
        self.version = self.engine.wiring.version
        self.wave = 1
        # The fused broadcasts replicate the engine step's greedy-seeded
        # local search at any membership (churned-down engines pad their
        # hop/destination axes to the group's widest member and reduce
        # over their own compact prefix); engines that would take another
        # branch — exact enumeration on small candidate pools, k = 0,
        # interpreted kernels, HybridBR, or a disabled route cache — step
        # through their own evaluator instead.  Join/leave events between
        # epochs only re-derive this mask (via the re-begun plan's active
        # list); the batch and its states persist.
        policy = self.engine.policy
        self.fusable = (
            isinstance(policy, BestResponsePolicy)
            and not isinstance(policy, HybridBRPolicy)
            and policy.vectorized
            and int(self.engine.k) >= 1
            and self.engine.route_cache is not None
            and len(self.plan.active_list) - 1 > int(policy.exact_threshold)
        )

    def _rebuild_dense(self) -> None:
        """Dense announced-weight matrix of the active wiring (NaN absent)."""
        n = self.engine.n
        dense = np.full((n, n), np.nan)
        active_set = set(self.plan.active_list)
        for node in self.plan.active_list:
            for v, w in self.engine.wiring.weights_of(node).items():
                if v in active_set:
                    dense[node, v] = w
        self.dense = dense

    def hops_of(self, node: int) -> Tuple[int, ...]:
        """The node's candidate first hops, in evaluator (sorted) order."""
        key = self.hops_key.get(node)
        if key is None:
            hops = [c for c in self.plan.active_list if c != node]
            key = tuple(hops)
            self.hops_key[node] = key
            self.hops_rows[node] = np.array(hops, dtype=int)
        return key

    def token(self) -> Tuple:
        """The cache token :meth:`EgoistEngine.step_node` will stamp."""
        return (self.engine.wiring.version, self.plan.metric_fp, self.plan.active_key)

    def step(self) -> None:
        """Advance one re-wiring opportunity; adapt the wave to the outcome."""
        node = self.plan.order[self.plan.pos]
        rewired = self.engine.step_node(self.plan)
        self.after_step(node, rewired)

    def after_step(self, node: int, rewired: bool) -> None:
        """Dense/wave/speculation bookkeeping after ``node``'s step ran."""
        self.pending.pop(node, None)
        version_changed = self.engine.wiring.version != self.version
        if version_changed:
            self.version = self.engine.wiring.version
            row = self.dense[node]
            row[:] = np.nan
            active_set = set(self.plan.active_list)
            for v, w in self.engine.wiring.weights_of(node).items():
                if v in active_set:
                    row[v] = w
        settled = True
        if rewired:
            settled = self._settle_pending(node)
        if (rewired and not settled) or (
            version_changed and self.plan.announced.maximize
        ):
            # A dropped speculative chain starts over; for bandwidth even
            # an in-place weight refresh resets (its prefill does not
            # speculate, and a wasted wave member costs a full n^3
            # closure).  An additive re-wire whose pending entries were
            # all *repaired* keeps its streak — the chain is back on the
            # real wiring, so the planned-ahead sweeps stay consumable —
            # but under the shallow repair-mode cap.
            self.wave = 1
        elif rewired:
            # Not min(wave + 1, cap): with the cap at 1 this is a plain
            # reset-to-cap; raise _REPAIR_WAVE_CAP to let repaired chains
            # keep a deeper lookahead through sustained re-wiring.
            self.wave = _REPAIR_WAVE_CAP
        else:
            cap = 8 if self.plan.announced.maximize else 16
            self.wave = min(self.wave + 1, cap)

    def _settle_pending(self, rewired_node: int) -> bool:
        """Repair (or drop) the speculative entries a re-wire falsified.

        The speculative chain assumed ``rewired_node`` would refresh its
        weights in place; every pending entry was computed from that
        now-wrong wiring (and, since the wiring version still advanced by
        one, its predicted token WILL match), so none may survive as is.
        But an entry whose predicted weight refreshes have all actually
        happened by now differs from the *current* wiring in exactly the
        re-wired node's out-links — the incremental repair kernels bring
        it up to date bit-exactly instead of throwing the sweep away.
        Entries that also baked in not-yet-materialised future refreshes
        (drifting metrics) are dropped as before.

        Returns True when every pending entry was repaired onto the
        current wiring (so the speculative streak may continue), False
        when any had to be dropped.
        """
        cache = self.engine.route_cache
        if cache is None or not self.pending:
            dropped = bool(self.pending)
            self.pending.clear()
            return not dropped
        plan = self.plan
        position = plan.pos - 1  # the re-wired node's slot in the epoch order
        cache.set_token(self.token())
        maximize = plan.announced.maximize
        all_repaired = True
        for other, (_token, applied) in self.pending.items():
            repaired = None
            if all(q <= position for q in applied):
                # One shared table of the whole overlay serves every
                # residual repair of this settle; each call masks out
                # its own node's out-links via ``exclude``.  Entries the
                # screen refuses (most of the matrix suspect) are
                # dropped and return to the stacked fresh path.
                repaired = cache.repair(
                    other,
                    (rewired_node,),
                    None,
                    maximize=maximize,
                    exclude=other,
                    tables=self.repair_tables(),
                    max_fraction=_REPAIR_MAX_SUSPECT,
                )
            else:
                cache.drop(other)
            if repaired is None:
                all_repaired = False
        self.pending.clear()
        return all_repaired

    def repair_tables(self):
        """Shared repair tables over the current dense wiring (cached).

        Rebuilt whenever the wiring version moves; built with each
        metric family's edge conventions (the additive zero-nudge
        matching ``_to_csr``; raw bandwidths for max-min).
        """
        version = self.engine.wiring.version
        if self._tables is None or self._tables_version != version:
            if self.plan.announced.maximize:
                self._tables = widest_inbound_tables(self.dense)
            else:
                self._tables = shortest_inbound_tables(self.dense)
            self._tables_version = version
        return self._tables


class EngineBatch:
    """A sweep of independent epoch-driven deployments over one underlay.

    Parameters
    ----------
    specs:
        The deployments, all over providers of the same size.  Mixed
        metric families are allowed (prefills group by objective
        direction).
    batched:
        ``True`` (default) advances the engines in lockstep with shared
        residual route-value prefills; ``False`` runs each engine's
        ``run(epochs)`` sequentially — today's engine byte-for-byte.
        Both produce bit-identical epoch histories.
    """

    def __init__(self, specs: Sequence[EngineSpec], *, batched: bool = True):
        specs = list(specs)
        if not specs:
            raise ValidationError("an EngineBatch needs at least one spec")
        sizes = {spec.provider.size for spec in specs}
        if len(sizes) != 1:
            raise ValidationError(
                f"all deployments must share one overlay size, got {sorted(sizes)}"
            )
        self.specs: List[EngineSpec] = specs
        self.batched = bool(batched)
        self.n = specs[0].provider.size
        self.engines: List[EgoistEngine] = [spec.build_engine() for spec in specs]
        self._states: Optional[List[_LockstepState]] = None

    # ------------------------------------------------------------------ #
    def step_epoch(self) -> List[EpochRecord]:
        """Advance every deployment by exactly one epoch.

        The single execution planner both the batch ``run()`` loop and
        the live serve scheduler step: batched, one lockstep epoch with
        shared prefills; sequential, one ``run_epoch`` per engine.  The
        deployments are mutually independent (own RNG streams, own
        providers), so per-epoch interleaving of the sequential engines
        is byte-identical to running each engine's epochs back to back.
        Records come back in spec order.
        """
        if self.batched:
            return self.run_epoch()
        return [engine.run_epoch() for engine in self.engines]

    def run(self, epochs: int) -> List[EngineHistory]:
        """Simulate ``epochs`` wiring epochs per deployment."""
        for _ in range(int(epochs)):
            self.step_epoch()
        return [engine.history for engine in self.engines]

    def cache_stats(self) -> Dict[str, float]:
        """Aggregated :meth:`ResidualRouteCache.stats` over all engines.

        Summed counters plus the pooled hit rate — what the churn bench
        gate and ``ExperimentResult.metadata["cache"]`` report.

        Deprecation shim: the aggregation lives in
        :func:`repro.telemetry.diagnostics.pooled_cache_stats` (and,
        live, in the metrics registry's ``cache.*`` snapshot); this
        method remains for the dict shape existing callers expect.
        """
        return pooled_cache_stats(engine.route_cache for engine in self.engines)

    def run_epoch(self) -> List[EpochRecord]:
        """Advance every deployment by one wiring epoch, in lockstep.

        The lockstep states persist across epochs: churn-driven join and
        leave events between epochs re-derive each engine's active-node
        mask (and with it the padded fused-kernel layout) inside
        ``begin_epoch`` instead of rebuilding any batch structure.
        """
        if self._states is None:
            self._states = [_LockstepState(engine) for engine in self.engines]
        states = self._states
        with telemetry.span("batch.begin"):
            for st in states:
                st.begin_epoch()
        live = [st for st in states if not st.plan.done]
        while live:
            with telemetry.span("batch.prefill"):
                self._prefill(live)
            # Fused groups must share the full objective convention —
            # direction AND disconnection value — since the broadcast
            # clamps use one value for the whole group; a fusable engine
            # whose matrix is somehow uncached falls back to its own step.
            # The matrix fetched here is handed to the fused step, so the
            # cache sees exactly one lookup per opportunity (its hit/miss
            # stats stay comparable with the sequential path).
            groups: Dict[Tuple[bool, float], List[Tuple[_LockstepState, np.ndarray]]] = {}
            fallback: List[_LockstepState] = []
            for st in live:
                node = st.plan.order[st.plan.pos]
                resid = (
                    st.engine.route_cache.get(node, st.hops_of(node))
                    if st.fusable
                    else None
                )
                if resid is not None:
                    metric = st.plan.announced
                    key = (bool(metric.maximize), float(metric.unreachable_value))
                    groups.setdefault(key, []).append((st, resid))
                else:
                    fallback.append(st)
            # The fused-vs-sequential ledger: opportunities served by the
            # broadcast kernels vs engines stepping their own path.
            telemetry.count(
                "batch.steps.fused", sum(len(members) for members in groups.values())
            )
            telemetry.count("batch.steps.sequential", len(fallback))
            with telemetry.span("batch.steps"):
                for group in groups.values():
                    self._fused_engine_steps(group)
                for st in fallback:
                    st.step()
            live = [st for st in live if not st.plan.done]
        with telemetry.span("batch.finish"):
            return self._finish_epochs(states)

    def _finish_epochs(self, states: Sequence[_LockstepState]) -> List[EpochRecord]:
        """Score every deployment's finished epoch through stacked sweeps.

        The epoch record needs each engine's routing values over its
        *built* overlay (the true-metric cost objective) and, for churn
        experiments, the all-pairs distance matrix behind the efficiency
        metric.  Both are the same multi-source sweeps the re-wiring
        prefills already stack, so one block-diagonal Dijkstra serves
        every additive scoring (and every bandwidth deployment's
        efficiency distances), and one closure pass per bandwidth
        deployment serves its bottleneck values — handed to
        :meth:`EgoistEngine.finish_epoch`, which consumes them exactly
        where its own (bit-identical) sweeps would run.
        """
        # Engines needing an additive all-pairs matrix: every additive
        # deployment (costs + possibly efficiency), plus bandwidth
        # deployments that compute efficiency (defined over shortest
        # distances whatever the metric family).
        additive = [
            st
            for st in states
            if not st.plan.truth.maximize or st.engine.compute_efficiency
        ]
        distance_of: Dict[int, np.ndarray] = {}
        if additive:
            stack = np.stack([st.dense for st in additive])
            matrices = _batched_route_matrices(
                stack, maximize=False, block_nodes=_ENGINE_BLOCK_NODES
            )
            for st, matrix in zip(additive, matrices):
                distance_of[id(st)] = matrix
        bandwidth = [st for st in states if st.plan.truth.maximize]
        closure_of: Dict[int, np.ndarray] = {}
        if bandwidth:
            stack = np.stack([st.dense for st in bandwidth])
            matrices = _batched_route_matrices(
                stack, maximize=True, block_nodes=_ENGINE_BLOCK_NODES
            )
            for st, matrix in zip(bandwidth, matrices):
                closure_of[id(st)] = matrix
        records = []
        for st in states:
            active_rows = np.asarray(st.plan.active_list, dtype=int)
            if st.plan.truth.maximize:
                route_values = closure_of[id(st)][active_rows]
            else:
                route_values = distance_of[id(st)][active_rows]
            distances = distance_of.get(id(st)) if st.engine.compute_efficiency else None
            records.append(
                st.engine.finish_epoch(
                    st.plan, route_values=route_values, distances=distances
                )
            )
        return records

    # ------------------------------------------------------------------ #
    # Residual route-value prefills
    # ------------------------------------------------------------------ #
    def _prefill(self, live: Sequence[_LockstepState]) -> None:
        """Inject residual matrices for each engine's next wave of nodes.

        Bandwidth entries are computed from the engine's *current* wiring
        and stamped with the current token, so a mid-wave wiring change
        simply stops later entries from matching and the engine falls
        back to its own (bitwise-identical) sweep.  Additive entries are
        *speculative*: within an epoch the announced metric is fixed, so
        the in-place weight refresh each step performs is predictable as
        long as the node does not re-wire — the planner simulates those
        refreshes (including the wiring-version bumps they cause) and
        stamps each entry with the token of the state it will be valid
        under.  A re-wire falsifies the chain; :meth:`_LockstepState.after_step`
        then drops the not-yet-consumed entries before any step could
        match one against a wrong wiring.
        """
        jobs: List[Tuple[_LockstepState, int, Tuple, Tuple[int, ...], np.ndarray]] = []
        for st in live:
            cache = st.engine.route_cache
            if cache is None:
                continue
            cache.set_token(st.token())
            plan = st.plan
            if plan.announced.maximize:
                # A stale-but-repairable entry (a re-wire bumped the
                # version under an unchanged metric and membership) is
                # brought up to date by the incremental kernel instead of
                # joining the closure wave; the lookup that follows then
                # finds it like any other live entry.
                missing = []
                for node in plan.order[plan.pos : plan.pos + st.wave]:
                    if not st.hops_of(node):
                        continue
                    st.engine.repair_route_entry(
                        plan,
                        node,
                        hops=st.hops_key[node],
                        tables=st.repair_tables,
                        max_fraction=_REPAIR_MAX_SUSPECT,
                    )
                    if cache.get(node, st.hops_of(node)) is None:
                        missing.append(node)
                if missing:
                    self._prefill_bandwidth(st, missing)
                continue
            # Replan only when the speculative chain ran dry (or broke):
            # while the next node's entry is valid — possibly because the
            # incremental repair just mended it — the earlier plan
            # already covers this round and the walk would be pure
            # overhead.
            next_node = plan.order[plan.pos]
            next_hops = st.hops_of(next_node)
            if not next_hops:
                continue
            st.engine.repair_route_entry(
                plan,
                next_node,
                hops=st.hops_key[next_node],
                tables=st.repair_tables,
                max_fraction=_REPAIR_MAX_SUSPECT,
            )
            if cache.get(next_node, next_hops) is not None:
                continue
            jobs.extend(self._plan_speculative_jobs(st))
        if not jobs:
            return
        stack = np.stack([dense for (_st, _node, _token, _applied, dense) in jobs])
        matrices = _batched_route_matrices(
            stack, maximize=False, block_nodes=_ENGINE_BLOCK_NODES
        )
        for (st, node, token, applied, _dense), matrix in zip(jobs, matrices):
            st.engine.route_cache.put(
                node, st.hops_of(node), matrix[st.hops_rows[node], :], token=token
            )
            st.pending[node] = (token, applied)

    def _plan_speculative_jobs(
        self, st: _LockstepState
    ) -> List[Tuple[_LockstepState, int, Tuple, Tuple[int, ...], np.ndarray]]:
        """Residual jobs for ``st``'s next wave under predicted refreshes.

        Walks the upcoming nodes simulating each step's weight re-install
        against the epoch's announced metric: the wiring version advances
        exactly when the refreshed weights differ (the same dict
        comparison :meth:`GlobalWiring.set_wiring` performs), and the
        predicted dense matrix tracks the refreshed rows.  Each returned
        job carries the dense snapshot, the cache token of its position
        in the chain, and the epoch-order positions of the predicted
        refreshes it baked in (which is what lets
        :meth:`_LockstepState._settle_pending` repair — rather than drop
        — the entry when a re-wire later falsifies the chain).  A
        stale-but-repairable entry at the head of the chain is repaired
        in place instead of becoming a job.
        """
        engine = st.engine
        plan = st.plan
        cache = engine.route_cache
        fp = plan.metric_fp
        key = plan.active_key
        pred_version = engine.wiring.version
        pred_dense: Optional[np.ndarray] = None
        applied: List[int] = []
        jobs: List[Tuple[_LockstepState, int, Tuple, Tuple[int, ...], np.ndarray]] = []
        for offset, node in enumerate(plan.order[plan.pos : plan.pos + st.wave]):
            hops = st.hops_of(node)
            if hops:
                token = (pred_version, fp, key)
                if offset == 0:
                    # The caller's replan check just missed (and failed to
                    # repair) this very node — re-probing would only skew
                    # the hit/miss statistics.
                    have = False
                else:
                    pend = st.pending.get(node)
                    have = pend is not None and pend[0] == token
                    if not have and pred_version == engine.wiring.version:
                        engine.repair_route_entry(
                            plan,
                            node,
                            hops=st.hops_key[node],
                            tables=st.repair_tables,
                            max_fraction=_REPAIR_MAX_SUSPECT,
                        )
                        have = cache.get(node, hops) is not None
                if not have:
                    dense = (pred_dense if pred_dense is not None else st.dense).copy()
                    dense[node, :] = np.nan
                    jobs.append((st, node, token, tuple(applied), dense))
            # Simulate the node's in-place weight refresh (step_node
            # re-installs the current neighbours at announced weights).
            weights = engine.wiring.weights_of(node)
            if weights:
                row_weights = plan.announced.link_weight_row(node)
                new_weights = {v: float(row_weights[v]) for v in weights}
                if new_weights != weights:
                    pred_version += 1
                    applied.append(plan.pos + offset)
                    if pred_dense is None:
                        pred_dense = st.dense.copy()
                    row = pred_dense[node]
                    row[:] = np.nan
                    for v, w in new_weights.items():
                        row[v] = w
        return jobs

    def _fused_engine_steps(
        self, group: Sequence[Tuple[_LockstepState, np.ndarray]]
    ) -> None:
        """One re-wiring opportunity per engine, in shared broadcasts.

        ``group`` pairs each engine's lockstep state with the cached
        residual route-value matrix of its next node (fetched once by the
        grouping pass in :meth:`run_epoch`).

        The engine analogue of
        :meth:`repro.core.deployment_batch.DeploymentBatch._fused_rewire_steps`:
        all engines in ``group`` share the objective direction, so their
        ``(hops x destinations)`` via matrices stack into one
        ``(engines x hops x destinations)`` tensor and every kernel of the
        sequential step — scoring the node's current wiring, each
        greedy-seed pass, and each local-search swap pass — becomes a
        single broadcast over it.  Membership may differ per engine: a
        churned-down engine occupies the compact prefix of ``h = |active|
        - 1`` hop rows and destination columns (in its evaluator's sorted
        candidate order), the rest padded with reduction identities; its
        padded hop lanes are pre-masked like already-taken candidates,
        and every preference-weighted destination sum reduces over the
        engine's own compact prefix only, so objective values — computed
        over exactly the arrays the per-engine evaluator would reduce —
        stay bitwise identical.  The adoption rule is the engine's
        (:meth:`~repro.core.node.EgoistNode.consider_rewiring`): BR(ε)
        with the *node's* epsilon, empty-wiring nodes adopting any
        different wiring, followed by the weight re-install and the
        link-state broadcast of :meth:`EgoistEngine.step_node`.  Values
        resolve through the same argmin/argsort lanes as the
        per-engine evaluator path, so decisions — and with them the epoch
        histories — are bitwise identical.
        """
        D = len(group)
        metric0 = group[0][0].plan.announced
        maximize = bool(metric0.maximize)
        unreachable = metric0.unreachable_value
        combine = np.maximum if maximize else np.minimum
        identity = -np.inf if maximize else np.inf
        sentinel = identity

        # Largest budgets first: the engines still seeding at greedy step s
        # then form a prefix, so per-pass kernels slice views instead of
        # masking lanes.  Order inside the group is free — engines are
        # independent and draw from their own streams.
        pairs = sorted(
            group,
            key=lambda pair: -min(
                int(pair[0].engine.k), len(pair[0].plan.active_list) - 1
            ),
        )
        group = [st for st, _resid in pairs]
        nodes = [st.plan.order[st.plan.pos] for st in group]
        h_arr = np.array([len(st.plan.active_list) - 1 for st in group], dtype=int)
        H = int(h_arr.max())
        uniform_width = bool((h_arr == H).all())
        via = np.full((D, H + 1, H), identity)
        # Padded destination columns carry 0, not the reduction identity:
        # they are never summed (every destination reduction stops at the
        # engine's compact prefix), but they do flow through the
        # preference multiplies, where identity-valued (infinite) cells
        # would turn the zero preferences into NaNs and noisy warnings.
        for d, h in enumerate(h_arr):
            via[d, :, h:] = 0.0
        prefs = np.zeros((D, H))
        directs = np.zeros((D, H))
        ks = np.empty(D, dtype=int)
        hop_ids: List[np.ndarray] = []
        for d, ((st, resid), node) in enumerate(zip(pairs, nodes)):
            h = int(h_arr[d])
            hops_rows = st.hops_rows[node]
            hop_ids.append(hops_rows)
            direct = st.plan.announced.link_weight_row(node)[hops_rows]
            directs[d, :h] = direct
            prefs[d, :h] = st.engine.preferences[node, hops_rows]
            if maximize:
                np.minimum(direct[:, None], resid[:, hops_rows], out=via[d, :h, :h])
            else:
                np.add(direct[:, None], resid[:, hops_rows], out=via[d, :h, :h])
            ks[d] = min(int(st.engine.k), h)
        d_idx = np.arange(D)
        # Mirrors WiringEvaluator._via_clean per engine (over its compact
        # block): when every via value is reachable the clamp is an
        # identity and the kernels skip it.  A mixed group clamps for
        # everyone — a no-op on the clean members' blocks, so still
        # bitwise identical.
        if maximize:
            via_clean = all(
                bool(
                    np.all(
                        np.isfinite(via[d, :h, :h]) & (via[d, :h, :h] > 0)
                    )
                )
                for d, h in enumerate(h_arr)
            )
        else:
            via_clean = all(
                bool(np.all(np.isfinite(via[d, :h, :h])))
                for d, h in enumerate(h_arr)
            )

        def dest_sums(values: np.ndarray) -> np.ndarray:
            """Per-engine destination sums over the compact prefixes.

            ``values`` has destinations on the last axis (padded to the
            group width); engine ``d`` sums its first ``h_arr[d]``
            columns — the very same contiguous value runs its evaluator
            would reduce, so the pairwise summations agree bit for bit
            (a fused sum over the zero-padded width would regroup the
            additions).
            """
            if uniform_width:
                # Every engine's compact prefix is the full width: one
                # fused reduction, row-wise identical to the per-slice
                # sums below.
                return values.sum(axis=-1)
            out = np.empty(values.shape[:-1])
            for d in range(values.shape[0]):  # a prefix of the sorted group
                out[d] = values[d, ..., : h_arr[d]].sum(axis=-1)
            return out

        def objective(rows: np.ndarray) -> np.ndarray:
            """Objective of one padded wiring per engine (rows (D, R))."""
            vals = via[d_idx[:, None], rows]
            best = vals.max(axis=1) if maximize else vals.min(axis=1)
            if maximize:
                best = np.where(
                    np.isfinite(best) & (best > 0), best, unreachable
                )
            else:
                best = np.where(np.isfinite(best), best, unreachable)
            return dest_sums(prefs * best)

        def clamp_(values: np.ndarray) -> np.ndarray:
            if via_clean:
                return values
            if maximize:
                bad = ~(np.isfinite(values) & (values > 0))
            else:
                bad = ~np.isfinite(values)
            values[bad] = unreachable
            return values

        # --- score each node's current wiring ------------------------- #
        neighbor_rows = []
        for d, (st, node) in enumerate(zip(group, nodes)):
            wiring = st.engine.nodes[node].wiring
            neighbors = wiring.neighbors if wiring is not None else frozenset()
            ids = hop_ids[d]
            if neighbors:
                rows = np.searchsorted(ids, sorted(neighbors))
                neighbor_rows.append([int(r) for r in rows])
            else:
                neighbor_rows.append([])
        width = max(1, max(len(rows) for rows in neighbor_rows))
        existing = np.full((D, width), H, dtype=int)
        for d, rows in enumerate(neighbor_rows):
            existing[d, : len(rows)] = rows
        existing_cost = objective(existing)
        for d, rows in enumerate(neighbor_rows):
            if not rows:
                # consider_rewiring charges an unwired node the evaluator's
                # empty cost, which multiplies the *summed* preferences by
                # the disconnection value — not bitwise the same as the
                # padded reduction above.
                existing_cost[d] = float(
                    np.sum(prefs[d, : h_arr[d]]) * unreachable
                )

        # --- greedy marginal-gain seeding ----------------------------- #
        k_max = int(ks.max())
        running = np.full((D, H), identity)
        taken = np.zeros((D, H), dtype=bool)
        # Padded hop lanes behave like already-taken candidates: their
        # scores read as the sentinel, so the argmin/argmax lanes resolve
        # over each engine's real candidates exactly as its evaluator's.
        taken[np.arange(H)[None, :] >= h_arr[:, None]] = True
        chosen = np.full((D, k_max), H, dtype=int)
        for step in range(k_max):
            live = int(np.count_nonzero(step < ks))  # a prefix: ks sorted desc
            trial = combine(running[:live, None, :], via[:live, :H, :])
            clamp_(trial)
            trial *= prefs[:live, None, :]
            costs = dest_sums(trial)
            costs[taken[:live]] = sentinel
            pos = costs.argmax(axis=1) if maximize else costs.argmin(axis=1)
            sel = d_idx[:live]
            chosen[sel, step] = pos
            taken[sel, pos] = True
            running[:live] = combine(running[:live], via[sel, pos])
        current_cost = objective(chosen)

        # --- single-swap local search --------------------------------- #
        # Engines converge at different speeds, so each pass gathers the
        # still-active lanes into compact tensors: per-engine values are
        # untouched by the compression (every kernel below is engine-wise
        # independent), so decisions stay bitwise identical while late
        # passes stop paying for the engines that already stopped.
        current_rows = chosen
        occupied = taken
        caps = np.array([int(st.engine.policy.max_iterations) for st in group])
        active = caps > 0
        slot_range = np.arange(k_max)
        iteration = 0
        while active.any():
            act = np.flatnonzero(active)
            A = len(act)
            a_idx = np.arange(A)
            via_a = via[act]
            prefs_a = prefs[act]
            rows_a = current_rows[act]
            cur_vals = via_a[a_idx[:, None], rows_a]
            if k_max == 1:
                loo = np.full((A, 1, H), identity)
            else:
                order = np.argsort(cur_vals, axis=1)
                ext_slot = order[:, -1, :] if maximize else order[:, 0, :]
                second_slot = order[:, -2, :] if maximize else order[:, 1, :]
                ext = np.take_along_axis(
                    cur_vals, ext_slot[:, None, :], axis=1
                )[:, 0, :]
                second = np.take_along_axis(
                    cur_vals, second_slot[:, None, :], axis=1
                )[:, 0, :]
                loo = np.where(
                    slot_range[None, :, None] == ext_slot[:, None, :],
                    second[:, None, :],
                    ext[:, None, :],
                )
            trial = combine(loo[:, :, None, :], via_a[:, None, :H, :])
            clamp_(trial)
            trial *= prefs_a[:, None, None, :]
            swap = np.empty((A, k_max, H))
            if uniform_width:
                np.sum(trial, axis=3, out=swap)
            else:
                for a, d in enumerate(act):
                    swap[a] = trial[a, :, :, : h_arr[d]].sum(axis=-1)
            swap = np.where(occupied[act][:, None, :], sentinel, swap)
            if k_max > 1:
                swap = np.where(
                    slot_range[None, :, None] >= ks[act][:, None, None],
                    sentinel,
                    swap,
                )
            flat = swap.reshape(A, k_max * H)
            pos = flat.argmax(axis=1) if maximize else flat.argmin(axis=1)
            val = flat[a_idx, pos]
            improved = (val > current_cost[act]) if maximize else (val < current_cost[act])
            sel = act[improved]
            if len(sel):
                out_slot = pos[improved] // H
                in_pos = pos[improved] % H
                occupied[sel, current_rows[sel, out_slot]] = False
                occupied[sel, in_pos] = True
                current_rows[sel, out_slot] = in_pos
                current_cost[sel] = val[improved]
            iteration += 1
            active[:] = False
            active[sel] = iteration < caps[sel]

        # --- adopt per engine (consider_rewiring semantics) ------------ #
        for d, (st, node) in enumerate(zip(group, nodes)):
            engine = st.engine
            eng_node = engine.nodes[node]
            metric = st.plan.announced
            ids = hop_ids[d]
            rows = [int(r) for r in current_rows[d, : ks[d]]]
            new_neighbors = frozenset(int(ids[r]) for r in rows)
            old = eng_node.wiring
            old_neighbors = (
                frozenset(old.neighbors) if old is not None else frozenset()
            )
            if old_neighbors:
                adopt = should_rewire(
                    metric,
                    float(existing_cost[d]),
                    float(current_cost[d]),
                    eng_node.epsilon,
                )
            else:
                adopt = new_neighbors != old_neighbors
            rewired = bool(adopt and new_neighbors != old_neighbors)
            if rewired:
                eng_node.wiring = Wiring.of(node, new_neighbors)
                eng_node.rewire_count += 1
            plan = st.plan
            plan.pos += 1
            if eng_node.wiring is not None:
                direct = directs[d]
                neighbors = sorted(eng_node.wiring.neighbors)
                positions = np.searchsorted(ids, neighbors)
                weights = {
                    int(v): float(direct[p])
                    for v, p in zip(neighbors, positions)
                }
                engine.wiring.set_wiring(eng_node.wiring, weights)
                engine.protocol.broadcast(
                    node,
                    engine.wiring.weights_of(node),
                    active=plan.active_list,
                    timestamp=engine.clock.now,
                )
            if rewired:
                plan.rewirings += 1
            st.after_step(node, rewired)

    def _prefill_bandwidth(self, st: _LockstepState, missing: Sequence[int]) -> None:
        """Residual bottleneck matrices for one bandwidth deployment.

        Mirrors the deployment batch: small waves close each node's
        residual adjacency directly; a quiet streak long enough to ask
        for :data:`_AVOID_ONE_MIN_WAVE` nodes switches to one
        divide-and-conquer pass serving every node of the overlay
        version.  Past :data:`CLOSURE_MAX_NODES` nothing is prefilled
        and the engine's own auto-mode sweep (bitwise identical) runs.
        """
        n = self.n
        if n > CLOSURE_MAX_NODES:
            return
        cache = st.engine.route_cache
        adjacency = np.where(np.isnan(st.dense), 0.0, st.dense)
        np.fill_diagonal(adjacency, np.inf)
        if len(missing) >= _AVOID_ONE_MIN_WAVE:
            tensor = bottleneck_avoid_one(adjacency)
            for node in st.plan.active_list:
                hops = st.hops_of(node)
                if hops:
                    cache.put(node, hops, tensor[node][st.hops_rows[node], :])
            return
        for node in missing:
            residual = adjacency.copy()
            residual[node, :] = 0.0
            residual[node, node] = np.inf
            closure = bottleneck_closure_fw(residual)
            cache.put(node, st.hops_of(node), closure[st.hops_rows[node], :])
