"""Bootstrap service (Section 3.1).

A newcomer joins EGOIST by querying a bootstrap node, which returns a list
of potential overlay neighbours.  The newcomer connects to at least one of
them, starts participating in the link-state protocol, and — once it has
assembled the residual graph — computes its proper (possibly sampled) best
response.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

from repro.util.rng import SeedLike, as_generator
from repro.util.validation import ValidationError


class BootstrapServer:
    """Registry of overlay members handing candidate lists to newcomers."""

    def __init__(self, seed: SeedLike = None):
        self._members: Set[int] = set()
        self._rng = as_generator(seed)

    # ------------------------------------------------------------------ #
    # Membership maintenance
    # ------------------------------------------------------------------ #
    def register(self, node: int) -> None:
        """Record ``node`` as a live overlay member."""
        if node < 0:
            raise ValidationError("node ids must be non-negative")
        self._members.add(int(node))

    def deregister(self, node: int) -> None:
        """Remove ``node`` from the member list (it left or crashed)."""
        self._members.discard(int(node))

    @property
    def members(self) -> Set[int]:
        """Current live members (copy)."""
        return set(self._members)

    def __len__(self) -> int:
        return len(self._members)

    # ------------------------------------------------------------------ #
    # Newcomer support
    # ------------------------------------------------------------------ #
    def candidates_for(
        self,
        newcomer: int,
        *,
        max_candidates: Optional[int] = None,
    ) -> List[int]:
        """Candidate neighbour list for ``newcomer``.

        Returns all current members except the newcomer itself, optionally
        truncated to a uniform random subset of ``max_candidates`` (large
        deployments would not ship the full membership to every joiner).
        """
        pool = sorted(self._members - {int(newcomer)})
        if max_candidates is None or max_candidates >= len(pool):
            return pool
        if max_candidates <= 0:
            return []
        idx = self._rng.choice(len(pool), size=max_candidates, replace=False)
        return sorted(pool[i] for i in idx)

    def initial_contact(self, newcomer: int) -> Optional[int]:
        """A single member the newcomer should connect to first.

        Connecting to one member is enough to start receiving link-state
        announcements and learn the rest of the topology.
        """
        pool = sorted(self._members - {int(newcomer)})
        if not pool:
            return None
        return int(pool[int(self._rng.integers(0, len(pool)))])
