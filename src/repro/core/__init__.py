"""The core EGOIST library: selfish neighbour selection for overlay routing.

This subpackage implements the paper's primary contribution:

* wirings and cost functions of the SNS game (:mod:`repro.core.wiring`,
  :mod:`repro.core.cost`),
* Best-Response neighbour selection, exact and local-search, with the
  BR(ε) re-wiring threshold (:mod:`repro.core.best_response`),
* the comparison policies k-Random, k-Closest, k-Regular and the full-mesh
  bound (:mod:`repro.core.policies`),
* HybridBR and its donated-cycle connectivity backbone
  (:mod:`repro.core.hybrid`, :mod:`repro.core.backbone`),
* scalability via random and topology-biased sampling
  (:mod:`repro.core.sampling`),
* free riders and audits (:mod:`repro.core.cheating`),
* the epoch-driven overlay engine, per-node behaviour, bootstrap service,
  metric providers, and overhead accounting
  (:mod:`repro.core.engine`, :mod:`repro.core.node`,
  :mod:`repro.core.bootstrap`, :mod:`repro.core.providers`,
  :mod:`repro.core.overhead`).
"""

from repro.core.wiring import GlobalWiring, Wiring
from repro.core.cost import (
    BandwidthMetric,
    DelayMetric,
    Metric,
    NodeLoadMetric,
    normalize_preferences,
    uniform_preferences,
    zipf_preferences,
)
from repro.core.best_response import (
    BestResponseResult,
    WiringEvaluator,
    best_response,
    best_response_exact,
    best_response_local_search,
    should_rewire,
)
from repro.core.policies import (
    BestResponsePolicy,
    FullMeshPolicy,
    KClosestPolicy,
    KRandomPolicy,
    KRegularPolicy,
    NeighborSelectionPolicy,
    STANDARD_POLICIES,
    build_overlay,
    enforce_connectivity_cycle,
)
from repro.core.backbone import backbone_links, backbone_offsets, is_backbone_connected
from repro.core.hybrid import HybridBRPolicy, build_hybrid_overlay
from repro.core.sampling import (
    SampledJoinResult,
    bias_rank,
    neighborhood,
    random_sample,
    sampled_best_response,
    topology_biased_sample,
)
from repro.core.cheating import AuditFinding, CheatingModel, audit_announcements
from repro.core.bootstrap import BootstrapServer
from repro.core.node import EgoistNode, RewireDecision, RewireMode
from repro.core.providers import (
    BandwidthMetricProvider,
    DelayMetricProvider,
    LoadMetricProvider,
    MetricProvider,
)
from repro.core.engine import EgoistEngine, EngineHistory, EpochRecord
from repro.core.overhead import (
    OverheadReport,
    coordinate_measurement_rate_bps,
    linkstate_rate_bps,
    overhead_report,
    ping_measurement_rate_bps,
)

__all__ = [
    "GlobalWiring",
    "Wiring",
    "BandwidthMetric",
    "DelayMetric",
    "Metric",
    "NodeLoadMetric",
    "normalize_preferences",
    "uniform_preferences",
    "zipf_preferences",
    "BestResponseResult",
    "WiringEvaluator",
    "best_response",
    "best_response_exact",
    "best_response_local_search",
    "should_rewire",
    "BestResponsePolicy",
    "FullMeshPolicy",
    "KClosestPolicy",
    "KRandomPolicy",
    "KRegularPolicy",
    "NeighborSelectionPolicy",
    "STANDARD_POLICIES",
    "build_overlay",
    "enforce_connectivity_cycle",
    "backbone_links",
    "backbone_offsets",
    "is_backbone_connected",
    "HybridBRPolicy",
    "build_hybrid_overlay",
    "SampledJoinResult",
    "bias_rank",
    "neighborhood",
    "random_sample",
    "sampled_best_response",
    "topology_biased_sample",
    "AuditFinding",
    "CheatingModel",
    "audit_announcements",
    "BootstrapServer",
    "EgoistNode",
    "RewireDecision",
    "RewireMode",
    "BandwidthMetricProvider",
    "DelayMetricProvider",
    "LoadMetricProvider",
    "MetricProvider",
    "EgoistEngine",
    "EngineHistory",
    "EpochRecord",
    "OverheadReport",
    "coordinate_measurement_rate_bps",
    "linkstate_rate_bps",
    "overhead_report",
    "ping_measurement_rate_bps",
]
