"""The core EGOIST library: selfish neighbour selection for overlay routing.

This subpackage implements the paper's primary contribution:

* wirings and cost functions of the SNS game (:mod:`repro.core.wiring`,
  :mod:`repro.core.cost`),
* Best-Response neighbour selection, exact and local-search, with the
  BR(ε) re-wiring threshold (:mod:`repro.core.best_response`),
* the comparison policies k-Random, k-Closest, k-Regular and the full-mesh
  bound (:mod:`repro.core.policies`),
* HybridBR and its donated-cycle connectivity backbone
  (:mod:`repro.core.hybrid`, :mod:`repro.core.backbone`),
* scalability via random and topology-biased sampling
  (:mod:`repro.core.sampling`),
* free riders and audits (:mod:`repro.core.cheating`),
* the epoch-driven overlay engine, per-node behaviour, bootstrap service,
  metric providers, and overhead accounting
  (:mod:`repro.core.engine`, :mod:`repro.core.node`,
  :mod:`repro.core.bootstrap`, :mod:`repro.core.providers`,
  :mod:`repro.core.overhead`).

Performance
-----------
The best-response hot path ships two implementations selected by the
``vectorized`` flag on :func:`best_response` and friends (and carried by
:class:`BestResponsePolicy` / :class:`HybridBRPolicy`):

* **Vectorized (default).**  Candidate wirings are scored as broadcast
  reductions over a precomputed ``(hops x destinations)`` route-value
  matrix: exhaustive enumeration batches whole blocks of k-subsets
  (:meth:`WiringEvaluator.evaluate_batch`), and each local-search pass
  scores all ``k * (m - k)`` single-swap neighbours in one kernel call
  (:meth:`WiringEvaluator.swap_costs`, a leave-one-out top-2 reduction).
* **Scalar (``vectorized=False``).**  The interpreted per-wiring
  reference path, kept for parity testing and debugging.

Both paths share the same exact elementwise reductions (min/max, multiply
then pairwise sum), so objective values are bitwise identical and ties
break identically — seeded runs produce byte-identical wirings either
way; only the wall-clock differs (see
``benchmarks/test_bench_vectorized_kernels.py``).

On top of the kernels, :class:`EgoistEngine` shares the expensive
multi-source residual route-value sweeps through a
:class:`ResidualRouteCache`: within one re-wiring opportunity the node's
current-cost evaluation and its best-response computation reuse a single
sweep, and across quiescent epochs (no re-wiring anywhere, announced
metric and membership unchanged) each node's matrices are reused
verbatim, so a converged deployment with a static substrate performs no
routing sweeps at all during the re-wiring loop.

One level higher, :class:`DeploymentBatch`
(:mod:`repro.core.deployment_batch`) stacks many *independent*
deployments of a k-sweep: best-response dynamics run in lockstep with
residual sweeps computed in block-diagonal (or avoid-one closure)
kernel calls, re-wiring opportunities are scored in fused broadcasts
across deployments, and the built overlays are evaluated through one
``(deployments x hops x destinations)`` route-value tensor — all
bit-identical to building and scoring the deployments one by one
(``batched=False``), which is gated by
``benchmarks/test_bench_deployment_batch.py``.
"""

from repro.core.wiring import GlobalWiring, Wiring
from repro.core.cost import (
    BandwidthMetric,
    DelayMetric,
    Metric,
    NodeLoadMetric,
    normalize_preferences,
    uniform_preferences,
    zipf_preferences,
)
from repro.core.best_response import (
    BestResponseResult,
    WiringEvaluator,
    best_response,
    best_response_exact,
    best_response_local_search,
    should_rewire,
)
from repro.core.policies import (
    BestResponsePolicy,
    FullMeshPolicy,
    KClosestPolicy,
    KRandomPolicy,
    KRegularPolicy,
    NeighborSelectionPolicy,
    STANDARD_POLICIES,
    build_overlay,
    enforce_connectivity_cycle,
)
from repro.core.backbone import backbone_links, backbone_offsets, is_backbone_connected
from repro.core.hybrid import HybridBRPolicy, build_hybrid_overlay
from repro.core.sampling import (
    SampledJoinResult,
    bias_rank,
    neighborhood,
    random_sample,
    sampled_best_response,
    topology_biased_sample,
)
from repro.core.cheating import AuditFinding, CheatingModel, audit_announcements
from repro.core.bootstrap import BootstrapServer
from repro.core.deployment_batch import DeploymentBatch, DeploymentSpec
from repro.core.route_cache import ResidualRouteCache, metric_fingerprint
from repro.core.node import EgoistNode, RewireDecision, RewireMode
from repro.core.providers import (
    BandwidthMetricProvider,
    DelayMetricProvider,
    LoadMetricProvider,
    MetricProvider,
)
from repro.core.engine import EgoistEngine, EngineHistory, EpochPlan, EpochRecord
from repro.core.engine_batch import EngineBatch, EngineSpec
from repro.core.overhead import (
    OverheadReport,
    coordinate_measurement_rate_bps,
    linkstate_rate_bps,
    overhead_report,
    ping_measurement_rate_bps,
)

__all__ = [
    "GlobalWiring",
    "Wiring",
    "BandwidthMetric",
    "DelayMetric",
    "Metric",
    "NodeLoadMetric",
    "normalize_preferences",
    "uniform_preferences",
    "zipf_preferences",
    "BestResponseResult",
    "WiringEvaluator",
    "best_response",
    "best_response_exact",
    "best_response_local_search",
    "should_rewire",
    "BestResponsePolicy",
    "FullMeshPolicy",
    "KClosestPolicy",
    "KRandomPolicy",
    "KRegularPolicy",
    "NeighborSelectionPolicy",
    "STANDARD_POLICIES",
    "build_overlay",
    "enforce_connectivity_cycle",
    "backbone_links",
    "backbone_offsets",
    "is_backbone_connected",
    "HybridBRPolicy",
    "build_hybrid_overlay",
    "SampledJoinResult",
    "bias_rank",
    "neighborhood",
    "random_sample",
    "sampled_best_response",
    "topology_biased_sample",
    "AuditFinding",
    "CheatingModel",
    "audit_announcements",
    "BootstrapServer",
    "DeploymentBatch",
    "DeploymentSpec",
    "ResidualRouteCache",
    "metric_fingerprint",
    "EgoistNode",
    "RewireDecision",
    "RewireMode",
    "BandwidthMetricProvider",
    "DelayMetricProvider",
    "LoadMetricProvider",
    "MetricProvider",
    "EgoistEngine",
    "EngineBatch",
    "EngineHistory",
    "EngineSpec",
    "EpochPlan",
    "EpochRecord",
    "OverheadReport",
    "coordinate_measurement_rate_bps",
    "linkstate_rate_bps",
    "overhead_report",
    "ping_measurement_rate_bps",
]
