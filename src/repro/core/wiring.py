"""Wirings: the strategy objects of the Selfish Neighbor Selection game.

Following Section 2.1 of the paper, node ``v_i`` establishes a *wiring*
``s_i = {v_i1, ..., v_ik}`` — a set of ``k`` directed links to other nodes.
A *global wiring* ``S = {s_1, ..., s_n}`` is the collection of everyone's
wirings, which together with the link weights induces the overlay graph
that shortest-path routing operates on.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

import numpy as np

from repro.routing.graph import OverlayGraph
from repro.util.validation import ValidationError, check_index


@dataclass(frozen=True)
class Wiring:
    """One node's choice of overlay neighbours.

    Attributes
    ----------
    node:
        The node that owns this wiring.
    neighbors:
        The chosen out-neighbours (no self-links, no duplicates).
    donated:
        The subset of ``neighbors`` that are *donated* backbone links in a
        HybridBR configuration (empty for pure strategies).
    """

    node: int
    neighbors: FrozenSet[int]
    donated: FrozenSet[int] = frozenset()

    def __post_init__(self):
        if self.node in self.neighbors:
            raise ValidationError("a node may not wire to itself")
        if not self.donated <= self.neighbors:
            raise ValidationError("donated links must be a subset of neighbors")

    @classmethod
    def of(
        cls,
        node: int,
        neighbors: Iterable[int],
        donated: Iterable[int] = (),
    ) -> "Wiring":
        """Convenience constructor accepting any iterables."""
        return cls(
            node=int(node),
            neighbors=frozenset(int(v) for v in neighbors),
            donated=frozenset(int(v) for v in donated),
        )

    @property
    def degree(self) -> int:
        """Number of chosen neighbours (k actually in use)."""
        return len(self.neighbors)

    @property
    def selfish(self) -> FrozenSet[int]:
        """The selfishly chosen (non-donated) neighbours."""
        return self.neighbors - self.donated

    def replace(self, old: int, new: int) -> "Wiring":
        """Return a wiring with ``old`` swapped for ``new``."""
        if old not in self.neighbors:
            raise ValidationError(f"{old} is not a neighbor of node {self.node}")
        neighbors = set(self.neighbors)
        neighbors.discard(old)
        neighbors.add(new)
        donated = set(self.donated)
        if old in donated:
            donated.discard(old)
            donated.add(new)
        return Wiring.of(self.node, neighbors, donated)

    def __iter__(self) -> Iterator[int]:
        return iter(sorted(self.neighbors))


class GlobalWiring:
    """The global wiring ``S``: everyone's neighbour choices plus weights.

    The object stores, for every node, its :class:`Wiring` and the weight
    of each established link (the announced/measured link cost used by the
    routing layer).  Conversion to an :class:`OverlayGraph` gives the
    structure the routing algorithms operate on.
    """

    def __init__(self, n: int):
        if n < 1:
            raise ValidationError("n must be >= 1")
        self.n = int(n)
        self._wirings: Dict[int, Wiring] = {}
        self._weights: Dict[int, Dict[int, float]] = {}
        self._version = 0
        # One entry per version bump: (version after the change, node whose
        # out-links changed), version-ascending.  Bounded: the residual
        # route cache only ever repairs across a few epochs' worth of
        # re-wires; older deltas age out and repair falls back to a fresh
        # sweep.  Kept as a list so :meth:`changed_since` can bisect to
        # the queried tail instead of walking the whole window.
        self._changelog: List[Tuple[int, int]] = []
        self._changelog_limit = max(64, 4 * self.n)

    @property
    def version(self) -> int:
        """Monotone counter bumped whenever the wiring content changes.

        Re-installing a node's existing wiring with identical weights is a
        no-op and does *not* bump the version, so the counter is a cheap
        fingerprint of the induced overlay — the engine keys its residual
        route-value cache on it.
        """
        return self._version

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def set_wiring(
        self, wiring: Wiring, weights: Dict[int, float]
    ) -> None:
        """Install ``wiring`` with per-neighbour link weights."""
        check_index(wiring.node, self.n, "wiring.node")
        for neighbor in wiring.neighbors:
            check_index(neighbor, self.n, "neighbor")
            if neighbor not in weights:
                raise ValidationError(
                    f"missing weight for link {wiring.node} -> {neighbor}"
                )
        new_weights = {v: float(weights[v]) for v in wiring.neighbors}
        for v, w in new_weights.items():
            if w < 0:
                raise ValidationError(
                    f"negative weight for link {wiring.node} -> {v}"
                )
        if (
            self._wirings.get(wiring.node) == wiring
            and self._weights.get(wiring.node) == new_weights
        ):
            return
        self._wirings[wiring.node] = wiring
        self._weights[wiring.node] = new_weights
        self._version += 1
        self._log_change(wiring.node)

    def _log_change(self, node: int) -> None:
        log = self._changelog
        log.append((self._version, node))
        if len(log) > 2 * self._changelog_limit:
            del log[: len(log) - self._changelog_limit]

    def remove_wiring(self, node: int) -> None:
        """Remove ``node``'s wiring entirely (e.g. the node went OFF)."""
        if node in self._wirings:
            self._version += 1
            self._log_change(node)
        self._wirings.pop(node, None)
        self._weights.pop(node, None)

    def changed_since(self, version: int) -> Optional[Set[int]]:
        """Nodes whose out-links changed after ``version``, if known.

        Returns the set of nodes behind every version bump in
        ``(version, current]`` — exactly what the residual route cache's
        incremental repair needs — or ``None`` when the bounded changelog
        no longer reaches back that far (or ``version`` is from the
        future), in which case the caller must fall back to a fresh
        sweep.
        """
        if version == self._version:
            return set()
        if version > self._version:
            return None
        log = self._changelog
        if len(log) < self._version - max(version, 0):
            return None
        start = bisect.bisect_right(log, (version, self.n))
        return {node for _v, node in log[start:]}

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def wiring_of(self, node: int) -> Optional[Wiring]:
        """The wiring of ``node`` (None if it has not wired yet)."""
        return self._wirings.get(node)

    def weights_of(self, node: int) -> Dict[int, float]:
        """Link weights of ``node``'s established links (copy)."""
        return dict(self._weights.get(node, {}))

    def wired_nodes(self) -> Set[int]:
        """Nodes that currently have a wiring installed."""
        return set(self._wirings)

    def degree_of(self, node: int) -> int:
        """Out-degree of ``node`` under the current wiring."""
        wiring = self._wirings.get(node)
        return wiring.degree if wiring is not None else 0

    def residual(self, node: int) -> "GlobalWiring":
        """The residual wiring ``S_{-i}``: everyone's wiring except ``node``'s."""
        residual = GlobalWiring(self.n)
        for other, wiring in self._wirings.items():
            if other == node:
                continue
            residual.set_wiring(wiring, self._weights[other])
        return residual

    def copy(self) -> "GlobalWiring":
        """Deep copy."""
        clone = GlobalWiring(self.n)
        for node, wiring in self._wirings.items():
            clone.set_wiring(wiring, self._weights[node])
        return clone

    # ------------------------------------------------------------------ #
    # Conversion
    # ------------------------------------------------------------------ #
    def _weight_rows(
        self, active: Optional[Iterable[int]], exclude: Optional[int]
    ) -> Iterable:
        """(node, weights) rows restricted to ``active``, minus ``exclude``.

        Contents are pre-validated by :meth:`set_wiring`, which is what
        entitles the graph conversions below to the trusted bulk
        constructor.
        """
        if active is None:
            return (
                (node, weights)
                for node, weights in self._weights.items()
                if node != exclude
            )
        active_set = set(active)
        return (
            (node, {v: w for v, w in weights.items() if v in active_set})
            for node, weights in self._weights.items()
            if node != exclude and node in active_set
        )

    def to_graph(self, active: Optional[Iterable[int]] = None) -> OverlayGraph:
        """Overlay graph induced by the wiring (optionally restricted)."""
        return OverlayGraph.from_weight_maps(self.n, self._weight_rows(active, None))

    def residual_graph(
        self, node: int, active: Optional[Iterable[int]] = None
    ) -> OverlayGraph:
        """Overlay graph of the residual wiring ``S_{-node}``.

        Equivalent to ``residual(node).to_graph(active)`` but built in one
        pass without copying the wiring — this runs once per re-wiring
        opportunity in the engine's epoch loop.
        """
        return OverlayGraph.from_weight_maps(self.n, self._weight_rows(active, node))

    def dense_residual(
        self, node: int, active: Optional[Iterable[int]] = None
    ) -> np.ndarray:
        """Dense ``NaN``-absent weight matrix of ``S_{-node}``.

        The matrix form of :meth:`residual_graph`, feeding the
        incremental repair kernels of the residual route cache (which
        relax over dense in-edge tables rather than an
        :class:`OverlayGraph`).
        """
        dense = np.full((self.n, self.n), np.nan)
        for other, weights in self._weight_rows(active, node):
            for v, w in weights.items():
                dense[other, v] = w
        return dense

    def announcements(self) -> Dict[int, Dict[int, float]]:
        """Per-node link announcements (node -> {neighbor: cost})."""
        return {node: dict(weights) for node, weights in self._weights.items()}

    def total_links(self) -> int:
        """Total number of established directed links."""
        return sum(len(w) for w in self._weights.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GlobalWiring(n={self.n}, wired={len(self._wirings)})"
