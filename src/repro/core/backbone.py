"""Connectivity backbones built from donated links (Section 3.3).

In HybridBR each node donates ``k2`` of its ``k`` links to the system to
maintain global connectivity under churn.  Rather than maintaining
k-MSTs (which require centralised upkeep), EGOIST forms ``k2 / 2``
bidirectional cycles over the ring of node ids: the system picks ``k2 / 2``
offsets and every node wires to its id plus and minus each offset
(modulo the current membership).  Newcomers are spliced into the cycles
and departures are healed by re-closing them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.util.validation import ValidationError


def backbone_offsets(n_active: int, k2: int) -> List[int]:
    """Choose the ``k2 / 2`` cycle offsets for ``n_active`` participants.

    Offsets are spread over the ring so that the cycles provide routes of
    diverse "stride": the first cycle is the successor ring (offset 1), the
    remaining ones split the ring roughly evenly.
    """
    if k2 < 0:
        raise ValidationError("k2 must be non-negative")
    if k2 % 2 != 0:
        raise ValidationError("k2 must be even (each cycle uses two links)")
    if n_active < 2 or k2 == 0:
        return []
    n_cycles = k2 // 2
    offsets: List[int] = []
    for j in range(n_cycles):
        if j == 0:
            offset = 1
        else:
            offset = max(1, int(round(j * (n_active - 1) / (n_cycles + 1))) + 1)
        offset = offset % n_active
        if offset == 0:
            offset = 1
        # Avoid duplicate offsets (possible for tiny memberships).
        while offset in offsets and offset < n_active - 1:
            offset += 1
        offsets.append(offset)
    return offsets[:n_cycles]


def backbone_links(
    active_nodes: Sequence[int], k2: int
) -> Dict[int, Set[int]]:
    """Donated backbone links for every active node.

    Parameters
    ----------
    active_nodes:
        The nodes currently participating (any iterable of ids); they are
        arranged on a ring in sorted order.
    k2:
        Number of donated links per node (even).  ``k2 = 2`` yields a
        single bidirectional cycle.

    Returns
    -------
    dict
        Mapping ``node -> set of donated out-neighbours``.  Each node gets
        at most ``k2`` donated links (fewer when the membership is small).
    """
    ring = sorted(set(int(v) for v in active_nodes))
    n_active = len(ring)
    links: Dict[int, Set[int]] = {node: set() for node in ring}
    if n_active < 2 or k2 <= 0:
        return links
    offsets = backbone_offsets(n_active, k2)
    position = {node: idx for idx, node in enumerate(ring)}
    for node in ring:
        idx = position[node]
        for offset in offsets:
            forward = ring[(idx + offset) % n_active]
            backward = ring[(idx - offset) % n_active]
            for target in (forward, backward):
                if target != node:
                    links[node].add(target)
    # Cap at k2 donated links per node (overlapping offsets on tiny rings
    # can otherwise exceed the budget).
    for node in ring:
        if len(links[node]) > k2:
            links[node] = set(sorted(links[node])[:k2])
    return links


def splice_newcomer(
    links: Dict[int, Set[int]], newcomer: int, k2: int
) -> Dict[int, Set[int]]:
    """Return backbone links for the membership including ``newcomer``.

    The paper describes the ``k2 = 2`` case explicitly (the predecessor on
    the ring disconnects from its old successor and adopts the newcomer,
    who closes the cycle); recomputing the ring wiring for the new
    membership generalises this to any number of cycles and is what a
    deployment's membership view would converge to.
    """
    members = set(links) | {int(newcomer)}
    return backbone_links(sorted(members), k2)


def heal_departure(
    links: Dict[int, Set[int]], departed: int, k2: int
) -> Dict[int, Set[int]]:
    """Return backbone links after ``departed`` leaves the membership."""
    members = set(links) - {int(departed)}
    return backbone_links(sorted(members), k2)


def is_backbone_connected(links: Dict[int, Set[int]]) -> bool:
    """True if the donated links alone strongly connect the membership."""
    members = sorted(links)
    if len(members) <= 1:
        return True
    index = {node: i for i, node in enumerate(members)}
    # Simple DFS over the donated-link digraph from the first member.
    def reachable_from(start: int) -> Set[int]:
        seen = {start}
        stack = [start]
        while stack:
            u = stack.pop()
            for v in links.get(u, ()):  # donated out-links
                if v in index and v not in seen:
                    seen.add(v)
                    stack.append(v)
        return seen

    target = set(members)
    return all(target <= reachable_from(node) for node in members)
