"""Failure injection: scheduled link/node outages and announcement masks.

The paper's only resilience story is churn (Section 4.4); production
overlays also die of link and router failures, flapping routes, and
partitions.  This module adds a declarative failure schedule executed by
:class:`~repro.core.engine.EgoistEngine` (and, unchanged, by the fused
:class:`~repro.core.engine_batch.EngineBatch` — every mutation happens in
``begin_epoch``, which both paths share):

* a :class:`FailureSpec` holds an epoch-indexed list of
  :class:`FailureEvent` s — kill/restore individual links, take whole
  nodes down and up, partition the overlay along a node cut, and heal
  everything — plus a delayed re-announce window and a probabilistic
  per-recipient announcement-loss rate;
* a :class:`FailureState` tracks which links/nodes are currently down as
  the schedule advances epoch by epoch;
* a :class:`LinkMaskMetric` wraps any announced/true metric so that a
  down link *measures* as disconnected (the metric family's disconnection
  value), which is what keeps every policy — including the structural
  heuristics that never consult the wiring — off dead links.

Failed links become masked link removals: the engine drops them from the
:class:`~repro.core.wiring.GlobalWiring` (feeding the changelog and the
dynamic-SSSP repair path exactly like a churn departure), and the mask
keeps re-adopting policies away.  Because both the drops and the mask are
applied inside ``begin_epoch``, the fused and sequential engines stay
byte-identical under any schedule by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.core.cost import (
    DISCONNECTION_BANDWIDTH,
    DISCONNECTION_COST,
    Metric,
)
from repro.util.validation import ValidationError

#: Actions a failure event may perform.
FAILURE_ACTIONS = (
    "link-down",
    "link-up",
    "node-down",
    "node-up",
    "partition",
    "heal",
)

#: Actions that name links.
_LINK_ACTIONS = ("link-down", "link-up")

#: Actions that name nodes ("partition" names one side of the cut).
_NODE_ACTIONS = ("node-down", "node-up", "partition")


def canonical_link(u: int, v: int) -> Tuple[int, int]:
    """The undirected link ``{u, v}`` in canonical ``(min, max)`` form."""
    u, v = int(u), int(v)
    return (u, v) if u < v else (v, u)


@dataclass(frozen=True)
class FailureEvent:
    """One scheduled failure (or repair) applied at the start of an epoch.

    Parameters
    ----------
    epoch:
        Wiring epoch at whose start the event applies.
    action:
        One of :data:`FAILURE_ACTIONS`.  ``link-down``/``link-up`` kill or
        restore the named ``links``; ``node-down``/``node-up`` take the
        named ``nodes`` out of (back into) the overlay; ``partition``
        kills every link crossing between ``nodes`` and the rest;
        ``heal`` restores every currently-down link and node.
    nodes:
        Node ids for node actions (one side of the cut for ``partition``).
    links:
        ``(u, v)`` pairs for link actions (undirected; order-insensitive).
    """

    epoch: int
    action: str
    nodes: Tuple[int, ...] = ()
    links: Tuple[Tuple[int, int], ...] = ()

    def validate(self) -> None:
        """Check the event is well-formed (ranges are checked per-spec)."""
        if int(self.epoch) < 0:
            raise ValidationError("failure event epoch must be >= 0")
        if self.action not in FAILURE_ACTIONS:
            raise ValidationError(
                f"unknown failure action {self.action!r}; "
                f"expected one of {FAILURE_ACTIONS}"
            )
        if self.action in _LINK_ACTIONS and not self.links:
            raise ValidationError(f"{self.action!r} events need at least one link")
        if self.action in _NODE_ACTIONS and not self.nodes:
            raise ValidationError(f"{self.action!r} events need at least one node")
        for u, v in self.links:
            if int(u) == int(v):
                raise ValidationError(f"failure link ({u}, {v}) is a self-loop")


@dataclass(frozen=True)
class FailureSpec:
    """Declarative failure schedule for one scenario.

    Parameters
    ----------
    events:
        The schedule, applied in epoch order (ties keep declaration
        order).
    reannounce_delay:
        Epochs a restored *link* stays masked in the announced metric
        after coming back up — models the link-state re-announce lag
        (ground truth unmasks immediately).  Restored nodes re-announce
        naturally at their next re-wiring opportunity, so the delay is
        link-only.
    message_loss:
        Probability in ``[0, 1)`` that any single recipient of a flooded
        link-state announcement drops it (the origin always keeps its
        own); see :meth:`repro.routing.linkstate.LinkStateProtocol.configure_loss`.
    """

    events: Tuple[FailureEvent, ...] = ()
    reannounce_delay: int = 0
    message_loss: float = 0.0

    def validate(self) -> None:
        """Check the spec is well-formed."""
        for event in self.events:
            event.validate()
        if int(self.reannounce_delay) < 0:
            raise ValidationError("reannounce_delay must be >= 0")
        loss = float(self.message_loss)
        if not 0.0 <= loss < 1.0:
            raise ValidationError("message_loss must be in [0, 1)")

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FailureSpec":
        """Build (and validate) a spec from its JSON dictionary form."""
        data = dict(data)
        unknown = set(data) - {"events", "reannounce_delay", "message_loss"}
        if unknown:
            raise ValidationError(f"unknown failure spec fields {sorted(unknown)}")
        try:
            events = tuple(
                FailureEvent(
                    epoch=int(entry["epoch"]),
                    action=str(entry["action"]),
                    nodes=tuple(int(v) for v in entry.get("nodes", ())),
                    links=tuple(
                        (int(u), int(v)) for u, v in entry.get("links", ())
                    ),
                )
                for entry in data.pop("events", ())
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ValidationError(f"malformed failure events: {error}")
        try:
            spec = cls(events=events, **data)
        except TypeError as error:
            raise ValidationError(f"malformed failure spec: {error}")
        spec.validate()
        return spec

    def to_dict(self) -> Dict[str, object]:
        """Canonical (JSON-ready) dictionary form."""
        self.validate()
        return {
            "events": [
                {
                    "epoch": int(event.epoch),
                    "action": event.action,
                    "nodes": [int(v) for v in event.nodes],
                    "links": [[int(u), int(v)] for u, v in event.links],
                }
                for event in self.events
            ],
            "reannounce_delay": int(self.reannounce_delay),
            "message_loss": float(self.message_loss),
        }


class FailureState:
    """Runtime tracker of a :class:`FailureSpec` over the epoch clock.

    ``advance_to(epoch)`` applies every not-yet-applied event scheduled at
    or before ``epoch``; the engine calls it once at the start of each
    epoch, so events land deterministically on both the sequential and
    fused execution paths.
    """

    def __init__(self, spec: FailureSpec, n: int):
        spec.validate()
        self.spec = spec
        self.n = int(n)
        for event in spec.events:
            for node in event.nodes:
                if not 0 <= int(node) < self.n:
                    raise ValidationError(
                        f"failure event node {node} out of range for n={self.n}"
                    )
            for u, v in event.links:
                if not (0 <= int(u) < self.n and 0 <= int(v) < self.n):
                    raise ValidationError(
                        f"failure event link ({u}, {v}) out of range for n={self.n}"
                    )
        #: Nodes currently down.
        self.down_nodes: Set[int] = set()
        #: Canonical ``(min, max)`` links currently down.
        self.down_links: Set[Tuple[int, int]] = set()
        #: Restored links still inside the re-announce window:
        #: link -> first epoch it is announced again.
        self._masked_until: Dict[Tuple[int, int], int] = {}
        # Stable sort: same-epoch events keep their declaration order.
        self._events: List[FailureEvent] = sorted(
            spec.events, key=lambda event: int(event.epoch)
        )
        self._applied = 0

    def schedule(self, event: FailureEvent) -> None:
        """Insert ``event`` into the not-yet-applied tail of the schedule.

        The live session-control API injects failures into a running
        engine through this: the event is validated against the state's
        ``n``, slotted into epoch order among the pending events (stable,
        so same-epoch events keep arrival order), and then applied by
        the ordinary :meth:`advance_to` at the next epoch boundary.  An
        event dated at or before an already-advanced epoch is not lost —
        it simply applies at the next boundary.
        """
        event.validate()
        for node in event.nodes:
            if not 0 <= int(node) < self.n:
                raise ValidationError(
                    f"failure event node {node} out of range for n={self.n}"
                )
        for u, v in event.links:
            if not (0 <= int(u) < self.n and 0 <= int(v) < self.n):
                raise ValidationError(
                    f"failure event link ({u}, {v}) out of range for n={self.n}"
                )
        tail = self._events[self._applied :]
        tail.append(event)
        tail.sort(key=lambda pending: int(pending.epoch))
        self._events[self._applied :] = tail

    def advance_to(self, epoch: int) -> None:
        """Apply every pending event scheduled at or before ``epoch``."""
        epoch = int(epoch)
        while (
            self._applied < len(self._events)
            and int(self._events[self._applied].epoch) <= epoch
        ):
            self._apply(self._events[self._applied])
            self._applied += 1
        expired = [
            link for link, until in self._masked_until.items() if until <= epoch
        ]
        for link in expired:
            del self._masked_until[link]

    def _apply(self, event: FailureEvent) -> None:
        if event.action == "link-down":
            for u, v in event.links:
                link = canonical_link(u, v)
                self.down_links.add(link)
                self._masked_until.pop(link, None)
        elif event.action == "link-up":
            for u, v in event.links:
                self._restore_link(canonical_link(u, v), int(event.epoch))
        elif event.action == "node-down":
            self.down_nodes.update(int(v) for v in event.nodes)
        elif event.action == "node-up":
            self.down_nodes.difference_update(int(v) for v in event.nodes)
        elif event.action == "partition":
            group = {int(v) for v in event.nodes}
            rest = [v for v in range(self.n) if v not in group]
            for u in group:
                for v in rest:
                    link = canonical_link(u, v)
                    self.down_links.add(link)
                    self._masked_until.pop(link, None)
        else:  # heal
            for link in sorted(self.down_links):
                self._restore_link(link, int(event.epoch))
            self.down_nodes.clear()

    def _restore_link(self, link: Tuple[int, int], epoch: int) -> None:
        if link not in self.down_links:
            return
        self.down_links.discard(link)
        if int(self.spec.reannounce_delay) > 0:
            self._masked_until[link] = epoch + int(self.spec.reannounce_delay)

    def announced_masked_links(self, epoch: int) -> Set[Tuple[int, int]]:
        """Links masked in the *announced* metric at ``epoch``.

        Down links plus restored links still inside their re-announce
        window — nodes keep measuring a restored link as dead until its
        state is flooded again.
        """
        links = set(self.down_links)
        epoch = int(epoch)
        links.update(
            link for link, until in self._masked_until.items() if epoch < until
        )
        return links

    def truth_masked_links(self) -> Set[Tuple[int, int]]:
        """Links masked in the *true* metric: exactly the down links."""
        return set(self.down_links)


class LinkMaskMetric(Metric):
    """A metric with a set of undirected links forced to "disconnected".

    Generic wrapper over any :class:`~repro.core.cost.Metric`: the masked
    links weigh the base metric's disconnection value in both directions
    (:data:`~repro.core.cost.DISCONNECTION_COST` for minimised families,
    :data:`~repro.core.cost.DISCONNECTION_BANDWIDTH` for maximised ones
    — large-but-finite values that no best response or k-closest
    selection ever picks, without feeding infinities into the fused
    kernels).  Everything else — objective direction, disconnection
    value, routing semantics — delegates to the base metric, so fused
    grouping keys and :func:`~repro.core.route_cache.metric_fingerprint`
    tokens (which hash the *masked* weight matrix, auto-invalidating
    cache entries across mask changes) behave exactly like any other
    announced-metric change.
    """

    def __init__(self, base: Metric, links: Iterable[Tuple[int, int]]):
        self._base = base
        self.name = f"{base.name}+failures"
        self.maximize = bool(base.maximize)
        self._mask_value = (
            DISCONNECTION_BANDWIDTH if self.maximize else DISCONNECTION_COST
        )
        by_src: Dict[int, Set[int]] = {}
        for u, v in links:
            u, v = int(u), int(v)
            by_src.setdefault(u, set()).add(v)
            by_src.setdefault(v, set()).add(u)
        self._masked_of: Dict[int, Set[int]] = by_src
        self._rows_of: Dict[int, np.ndarray] = {
            src: np.array(sorted(dsts), dtype=int) for src, dsts in by_src.items()
        }

    @property
    def size(self) -> int:
        return self._base.size

    @property
    def base(self) -> Metric:
        """The wrapped metric."""
        return self._base

    def masked_links(self) -> Set[Tuple[int, int]]:
        """The masked links, in canonical form."""
        return {
            canonical_link(src, dst)
            for src, dsts in self._masked_of.items()
            for dst in dsts
        }

    def link_weight(self, src: int, dst: int) -> float:
        if dst in self._masked_of.get(src, ()):
            return float(self._mask_value)
        return self._base.link_weight(src, dst)

    def link_weight_row(self, src: int) -> np.ndarray:
        row = self._base.link_weight_row(src)
        dsts = self._rows_of.get(src)
        if dsts is not None:
            row[dsts] = self._mask_value
        return row

    def link_weight_matrix(self) -> np.ndarray:
        matrix = self._base.link_weight_matrix()
        for src, dsts in self._rows_of.items():
            matrix[src, dsts] = self._mask_value
        return matrix

    def route_values(self, graph) -> np.ndarray:
        return self._base.route_values(graph)


def mask_metric(
    metric: Metric, links: Optional[Set[Tuple[int, int]]]
) -> Metric:
    """``metric`` with ``links`` masked (unwrapped when nothing is down)."""
    if not links:
        return metric
    return LinkMaskMetric(metric, links)
