"""Per-node residual route-value caching for the wiring epoch hot path.

Building a :class:`~repro.core.best_response.WiringEvaluator` requires the
routing values of the *residual* graph from every candidate first hop — a
multi-source Dijkstra (or widest-path) sweep that dominates the cost of a
re-wiring opportunity once candidate evaluation itself is vectorised.

Within (and across) wiring epochs this work is highly redundant:

* a node's re-wiring opportunity evaluates its current wiring *and* runs a
  best-response computation — both need the same residual matrix;
* once best-response dynamics have converged, no node re-wires, so the
  global wiring (and with it every node's residual graph) is unchanged
  from one epoch to the next; with a static announced metric the matrices
  can be reused verbatim.

:class:`ResidualRouteCache` makes both kinds of sharing explicit.  The
engine owns one cache and stamps it with an opaque *token* — a fingerprint
of everything the residual matrices depend on (global-wiring version,
announced-metric fingerprint, active membership).  Evaluator construction
consults the cache; an entry is valid only if its token matches the
cache's current token, so a single re-wiring anywhere (which bumps the
wiring version) invalidates every stale entry implicitly.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Dict, Hashable, Optional, Tuple

import numpy as np

from repro.telemetry import runtime as telemetry
from repro.util.validation import ValidationError


def array_fingerprint(array: np.ndarray) -> str:
    """Content digest of a dense array (weight matrices, graphs).

    blake2b, not md5: a non-cryptographic fingerprint that also works on
    FIPS-restricted Python builds.  Shared by every fingerprint in the
    cache/batch machinery so the digest convention cannot drift between
    call sites.
    """
    return hashlib.blake2b(array.tobytes(), digest_size=16).hexdigest()


def metric_fingerprint(metric) -> str:
    """Fingerprint of a metric's announced link-weight matrix.

    The token the engine (and the multi-deployment batch kernels) stamp
    residual route caches with includes this digest, so that two
    deployments sharing one underlay snapshot — the same announced metric
    object or an identical matrix — also share cache validity.
    """
    return array_fingerprint(metric.link_weight_matrix())


class ResidualRouteCache:
    """LRU cache of per-node residual route-value matrices.

    Parameters
    ----------
    max_entries:
        Maximum number of node entries kept (each entry is a dense
        ``hops x n`` matrix, so memory is roughly ``max_entries * n**2``
        floats).  Must be positive; use ``None`` on the engine side to
        size the cache to the deployment.

    Notes
    -----
    Entries are keyed by node id and validated against both the cache's
    current :attr:`token` and the tuple of first hops the matrix was
    computed for.  :meth:`set_token` is cheap and does *not* clear the
    store — entries stamped with an older token simply stop matching and
    age out of the LRU.
    """

    def __init__(self, max_entries: int = 128):
        if max_entries < 1:
            raise ValidationError("max_entries must be >= 1")
        self.max_entries = int(max_entries)
        self.token: Optional[Hashable] = None
        self.hits: int = 0
        self.misses: int = 0
        self.repairs: int = 0
        self.restamps: int = 0
        self.drops: int = 0
        self._store: "OrderedDict[int, Tuple[Hashable, Tuple[int, ...], np.ndarray]]" = (
            OrderedDict()
        )
        # Fold this cache's counters into the process metrics registry
        # (weakly held; a no-op when telemetry is off).
        telemetry.register_cache(self)

    # ------------------------------------------------------------------ #
    # Token management
    # ------------------------------------------------------------------ #
    def set_token(self, token: Hashable) -> None:
        """Stamp the cache with the current residual-state fingerprint."""
        self.token = token

    def invalidate(self) -> None:
        """Drop every entry (e.g. when the substrate changed wholesale)."""
        self._store.clear()

    # ------------------------------------------------------------------ #
    # Lookup / insertion
    # ------------------------------------------------------------------ #
    def get(self, node: int, hops: Tuple[int, ...]) -> Optional[np.ndarray]:
        """The cached residual matrix for ``node``, or None on miss.

        A hit requires the stored token to equal the cache's current
        token and the stored hop tuple to equal ``hops`` exactly (rows of
        the matrix are indexed by hop order).
        """
        entry = self._store.get(node)
        if entry is not None and entry[0] == self.token and entry[1] == hops:
            self._store.move_to_end(node)
            self.hits += 1
            return entry[2]
        self.misses += 1
        return None

    def versioned_get(
        self, node: int, hops: Tuple[int, ...]
    ) -> Optional[Tuple[np.ndarray, Hashable]]:
        """A token-transparent read: the entry's matrix *and* its token.

        The version-stamped read of the serve layer: a live lookup that
        consumes a cached residual matrix must attribute its answer to
        the overlay state the matrix was computed under, so a hop-matched
        entry is returned as ``(matrix, token)`` regardless of the
        cache's current token, and the caller screens the entry's token
        against the live :class:`~repro.core.wiring.GlobalWiring`
        changelog before trusting the rows (the same screen
        :meth:`Engine.repair_route_entry` applies between epochs).
        Whether the read ultimately served is only known caller-side, so
        no hit/miss is accounted here — the serve layer keeps its own
        ``rows_from_cache``/``rows_from_sweep`` counters instead.
        """
        entry = self._store.get(node)
        if entry is not None and entry[1] == hops:
            self._store.move_to_end(node)
            return entry[2], entry[0]
        return None

    def put(
        self,
        node: int,
        hops: Tuple[int, ...],
        matrix: np.ndarray,
        *,
        token: Optional[Hashable] = None,
    ) -> None:
        """Store ``matrix`` (``len(hops) x n``) for ``node`` under the token.

        ``token`` overrides the cache's current token for this entry —
        speculative producers (the lockstep engine batch) stamp entries
        with the *predicted* residual-state fingerprint they will be
        valid under, so the entry only ever matches once that state
        materialises.
        """
        self._store[node] = (self.token if token is None else token, tuple(hops), matrix)
        self._store.move_to_end(node)
        while len(self._store) > self.max_entries:
            self._store.popitem(last=False)
            self.drops += 1

    def drop(self, node: int) -> None:
        """Remove ``node``'s entry (mispredicted speculative state)."""
        if self._store.pop(node, None) is not None:
            self.drops += 1

    # ------------------------------------------------------------------ #
    # Incremental repair
    # ------------------------------------------------------------------ #
    def entry_info(self, node: int) -> Optional[Tuple[Hashable, Tuple[int, ...]]]:
        """The stored entry's ``(token, hops)``, or None without one.

        Unlike :meth:`get` this neither counts hit/miss statistics nor
        touches the LRU order, and it does not require the hop tuple to
        match — it lets the cache's owner decide whether a *stale* entry
        is repairable (same metric, a known chain of re-wires between
        the tokens, possibly a membership change that moved the hops)
        before spending any work on it.
        """
        entry = self._store.get(node)
        if entry is None:
            return None
        return entry[0], entry[1]

    def repair(
        self,
        node: int,
        changed_links,
        adjacency: Optional[np.ndarray],
        *,
        maximize: bool,
        exclude: Optional[int] = None,
        tables=None,
        max_fraction: Optional[float] = None,
        new_hops: Optional[Tuple[int, ...]] = None,
    ) -> Optional[np.ndarray]:
        """Repair ``node``'s stale entry onto the cache's current token.

        ``changed_links`` is the set of nodes whose out-links changed
        between the entry's token and the current one, as established by
        the owner (``node`` itself is ignored: its own links are outside
        its residual graph).  ``adjacency`` is the dense ``NaN``-absent
        announced-weight matrix of ``node``'s *current* residual graph
        (may be None when ``changed_links`` is empty); alternatively the
        owner passes the full overlay matrix with ``exclude=node`` (and
        optionally precomputed in-edge ``tables``) to share one matrix
        across many nodes' repairs.  The entry's rows
        are repaired through the incremental dynamic-SSSP kernels
        (:func:`repro.routing.shortest_path.repair_shortest_rows` /
        :func:`repro.routing.widest_path.repair_widest_rows`) — bit
        identical to the fresh sweeps they replace — and re-stamped with
        the current token.  An empty ``changed_links`` means the
        residual graph is unchanged and only the stamp moves.

        ``max_fraction`` bounds how much of the matrix may be suspect
        (by the kernels' coarse through-a-changed-node screen) for a
        repair to be worth it; a stale entry beyond the bound is
        *dropped* — it must not linger, a later token could collide —
        and the caller recomputes through its (amortised) fresh path.

        ``new_hops`` extends the repair across a *membership* change:
        the entry's rows are re-sliced to the new hop tuple before the
        link-delta pass — surviving hops keep their rows, joined hops
        get the exact row of a not-yet-wired node (unreachable
        everywhere but themselves; a joiner that has already re-wired is
        in ``changed_links`` and is recomputed outright) — so a join or
        leave is a masked, incremental update rather than a rebuild.
        The caller must include every node whose out-links changed since
        the entry's epoch (departures included) in ``changed_links``.

        Returns the (repaired) matrix; None when there is no entry or
        the repair was refused.
        """
        entry = self._store.get(node)
        if entry is None:
            return None
        _token, hops, matrix = entry
        # No early return on a matching token: a *speculative* entry's
        # predicted token can collide with the real current token (a
        # re-wire bumps the version by one exactly like the predicted
        # refresh it displaced) while its matrix describes a wiring that
        # never materialised.  The caller asserts the delta; the repair
        # always runs against it.
        changed = {int(c) for c in changed_links} - {int(node)}
        remapped_rows = False
        if new_hops is not None and tuple(new_hops) != hops:
            remapped_rows = True
            new_hops = tuple(new_hops)
            n = matrix.shape[1]
            row_of = {h: i for i, h in enumerate(hops)}
            remapped = np.empty((len(new_hops), n))
            for i, h in enumerate(new_hops):
                j = row_of.get(h)
                if j is not None:
                    remapped[i] = matrix[j]
                elif maximize:
                    remapped[i] = 0.0
                    remapped[i, h] = np.inf
                else:
                    remapped[i] = np.inf
                    remapped[i, h] = 0.0
            hops, matrix = new_hops, remapped
        if changed and max_fraction is not None:
            cols = matrix[:, sorted(changed)]
            if maximize:
                suspect = matrix <= cols.max(axis=1)[:, None]
            else:
                suspect = matrix >= cols.min(axis=1)[:, None]
            if suspect.mean() > max_fraction:
                self._store.pop(node, None)
                self.drops += 1
                return None
        if changed:
            # Resolved only past the refusal screen: shared tables and
            # dense matrices are lazily built, so screened-out entries
            # cost nothing beyond the screen itself.
            if callable(tables):
                tables = tables()
            if callable(adjacency):
                adjacency = adjacency()
            sources = np.asarray(hops, dtype=int)
            if maximize:
                from repro.routing.widest_path import repair_widest_rows

                matrix = repair_widest_rows(
                    matrix, sources, changed, adjacency,
                    exclude=exclude, tables=tables,
                )
            else:
                from repro.routing.shortest_path import repair_shortest_rows

                matrix = repair_shortest_rows(
                    matrix, sources, changed, adjacency,
                    exclude=exclude, tables=tables,
                )
            self.repairs += 1
        elif remapped_rows:
            self.repairs += 1
        else:
            self.restamps += 1
        self._store[node] = (self.token, hops, matrix)
        self._store.move_to_end(node)
        return matrix

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._store)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        """Hit/miss/repair counters for benchmarks and tests.

        Compatibility shim: the forward-looking surface for these
        counters is the process metrics registry (they appear in
        :meth:`~repro.telemetry.MetricsRegistry.snapshot` under
        ``cache.*`` when telemetry is enabled); this dict form remains
        the stable shape behind ``metadata["cache"]`` and the pooled
        aggregations in :mod:`repro.telemetry.diagnostics`.
        """
        return {
            "hits": float(self.hits),
            "misses": float(self.misses),
            "repairs": float(self.repairs),
            "restamps": float(self.restamps),
            "drops": float(self.drops),
            "entries": float(len(self._store)),
            "hit_rate": self.hit_rate,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResidualRouteCache(entries={len(self._store)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
