"""Per-node residual route-value caching for the wiring epoch hot path.

Building a :class:`~repro.core.best_response.WiringEvaluator` requires the
routing values of the *residual* graph from every candidate first hop — a
multi-source Dijkstra (or widest-path) sweep that dominates the cost of a
re-wiring opportunity once candidate evaluation itself is vectorised.

Within (and across) wiring epochs this work is highly redundant:

* a node's re-wiring opportunity evaluates its current wiring *and* runs a
  best-response computation — both need the same residual matrix;
* once best-response dynamics have converged, no node re-wires, so the
  global wiring (and with it every node's residual graph) is unchanged
  from one epoch to the next; with a static announced metric the matrices
  can be reused verbatim.

:class:`ResidualRouteCache` makes both kinds of sharing explicit.  The
engine owns one cache and stamps it with an opaque *token* — a fingerprint
of everything the residual matrices depend on (global-wiring version,
announced-metric fingerprint, active membership).  Evaluator construction
consults the cache; an entry is valid only if its token matches the
cache's current token, so a single re-wiring anywhere (which bumps the
wiring version) invalidates every stale entry implicitly.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Dict, Hashable, Optional, Tuple

import numpy as np

from repro.util.validation import ValidationError


def array_fingerprint(array: np.ndarray) -> str:
    """Content digest of a dense array (weight matrices, graphs).

    blake2b, not md5: a non-cryptographic fingerprint that also works on
    FIPS-restricted Python builds.  Shared by every fingerprint in the
    cache/batch machinery so the digest convention cannot drift between
    call sites.
    """
    return hashlib.blake2b(array.tobytes(), digest_size=16).hexdigest()


def metric_fingerprint(metric) -> str:
    """Fingerprint of a metric's announced link-weight matrix.

    The token the engine (and the multi-deployment batch kernels) stamp
    residual route caches with includes this digest, so that two
    deployments sharing one underlay snapshot — the same announced metric
    object or an identical matrix — also share cache validity.
    """
    return array_fingerprint(metric.link_weight_matrix())


class ResidualRouteCache:
    """LRU cache of per-node residual route-value matrices.

    Parameters
    ----------
    max_entries:
        Maximum number of node entries kept (each entry is a dense
        ``hops x n`` matrix, so memory is roughly ``max_entries * n**2``
        floats).  Must be positive; use ``None`` on the engine side to
        size the cache to the deployment.

    Notes
    -----
    Entries are keyed by node id and validated against both the cache's
    current :attr:`token` and the tuple of first hops the matrix was
    computed for.  :meth:`set_token` is cheap and does *not* clear the
    store — entries stamped with an older token simply stop matching and
    age out of the LRU.
    """

    def __init__(self, max_entries: int = 128):
        if max_entries < 1:
            raise ValidationError("max_entries must be >= 1")
        self.max_entries = int(max_entries)
        self.token: Optional[Hashable] = None
        self.hits: int = 0
        self.misses: int = 0
        self._store: "OrderedDict[int, Tuple[Hashable, Tuple[int, ...], np.ndarray]]" = (
            OrderedDict()
        )

    # ------------------------------------------------------------------ #
    # Token management
    # ------------------------------------------------------------------ #
    def set_token(self, token: Hashable) -> None:
        """Stamp the cache with the current residual-state fingerprint."""
        self.token = token

    def invalidate(self) -> None:
        """Drop every entry (e.g. when the substrate changed wholesale)."""
        self._store.clear()

    # ------------------------------------------------------------------ #
    # Lookup / insertion
    # ------------------------------------------------------------------ #
    def get(self, node: int, hops: Tuple[int, ...]) -> Optional[np.ndarray]:
        """The cached residual matrix for ``node``, or None on miss.

        A hit requires the stored token to equal the cache's current
        token and the stored hop tuple to equal ``hops`` exactly (rows of
        the matrix are indexed by hop order).
        """
        entry = self._store.get(node)
        if entry is not None and entry[0] == self.token and entry[1] == hops:
            self._store.move_to_end(node)
            self.hits += 1
            return entry[2]
        self.misses += 1
        return None

    def put(
        self,
        node: int,
        hops: Tuple[int, ...],
        matrix: np.ndarray,
        *,
        token: Optional[Hashable] = None,
    ) -> None:
        """Store ``matrix`` (``len(hops) x n``) for ``node`` under the token.

        ``token`` overrides the cache's current token for this entry —
        speculative producers (the lockstep engine batch) stamp entries
        with the *predicted* residual-state fingerprint they will be
        valid under, so the entry only ever matches once that state
        materialises.
        """
        self._store[node] = (self.token if token is None else token, tuple(hops), matrix)
        self._store.move_to_end(node)
        while len(self._store) > self.max_entries:
            self._store.popitem(last=False)

    def drop(self, node: int) -> None:
        """Remove ``node``'s entry (mispredicted speculative state)."""
        self._store.pop(node, None)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._store)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        """Hit/miss counters for benchmarks and tests."""
        return {
            "hits": float(self.hits),
            "misses": float(self.misses),
            "entries": float(len(self._store)),
            "hit_rate": self.hit_rate,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResidualRouteCache(entries={len(self._store)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
