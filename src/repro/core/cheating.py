"""Cheaters and free riders (Sections 3.4 and 4.5).

A free rider announces inflated costs for its potential outgoing links via
the link-state protocol, hoping to discourage other nodes from choosing it
as an upstream neighbour (so it carries less transit traffic) while still
enjoying the overlay for its own traffic.

This module provides:

* :class:`CheatingModel` — wraps a truthful :class:`~repro.core.cost.Metric`
  and produces the *announced* view in which designated free riders inflate
  (or deflate) the costs of their outgoing links by a factor;
* audit helpers that reproduce the detection mechanisms sketched in the
  paper (comparing announced link costs against an independent estimate
  such as the virtual coordinate system, and flagging nodes whose
  announcements deviate beyond a tolerance).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set

import numpy as np

from repro.core.cost import BandwidthMetric, DelayMetric, Metric, NodeLoadMetric
from repro.util.validation import ValidationError, check_positive


class CheatingModel:
    """Announced-cost view of a metric with free riders inflating costs.

    Parameters
    ----------
    true_metric:
        The truthful metric (what links actually cost).
    free_riders:
        Nodes that misrepresent their outgoing link costs.
    inflation_factor:
        Multiplicative factor applied by free riders to their outgoing
        links' announced costs.  The paper's experiment uses 2.0 ("twice as
        high as the real ones"); values below 1 model the opposite abuse
        (advertising lower-than-actual delays).
    """

    def __init__(
        self,
        true_metric: Metric,
        free_riders: Iterable[int],
        inflation_factor: float = 2.0,
    ):
        check_positive(inflation_factor, "inflation_factor")
        self.true_metric = true_metric
        self.free_riders: Set[int] = {int(v) for v in free_riders}
        for rider in self.free_riders:
            if not 0 <= rider < true_metric.size:
                raise ValidationError(f"free rider {rider} out of range")
        self.inflation_factor = float(inflation_factor)

    def announced_metric(self) -> Metric:
        """The metric as seen through link-state announcements.

        Outgoing links of free riders have their weights multiplied by the
        inflation factor (divided, for the bandwidth metric, since there a
        *lower* announced bandwidth discourages selection).
        """
        weights = self.true_metric.link_weight_matrix().copy()
        for rider in self.free_riders:
            if self.true_metric.maximize:
                weights[rider, :] = weights[rider, :] / self.inflation_factor
            else:
                weights[rider, :] = weights[rider, :] * self.inflation_factor
        np.fill_diagonal(weights, 0.0 if not self.true_metric.maximize else np.inf)
        return self._rebuild(weights)

    def _rebuild(self, weights: np.ndarray) -> Metric:
        if isinstance(self.true_metric, DelayMetric):
            return DelayMetric(weights)
        if isinstance(self.true_metric, BandwidthMetric):
            return BandwidthMetric(weights)
        if isinstance(self.true_metric, NodeLoadMetric):
            # Node-load announcements are per-node; inflating outgoing link
            # costs is equivalent to inflating the node's announced load.
            loads = self.true_metric.loads
            for rider in self.free_riders:
                loads[rider] *= self.inflation_factor
            return NodeLoadMetric(loads)
        raise ValidationError(
            f"unsupported metric type {type(self.true_metric).__name__}"
        )

    def is_free_rider(self, node: int) -> bool:
        """True if ``node`` is one of the configured free riders."""
        return int(node) in self.free_riders


@dataclass(frozen=True)
class AuditFinding:
    """Result of auditing one node's announcements."""

    node: int
    mean_relative_deviation: float
    flagged: bool


def audit_announcements(
    announced: Metric,
    reference: Metric,
    *,
    nodes: Optional[Iterable[int]] = None,
    tolerance: float = 0.5,
    samples_per_node: Optional[int] = None,
    rng=None,
) -> List[AuditFinding]:
    """Audit announced link costs against an independent reference estimate.

    For each audited node, the mean relative deviation between its
    announced outgoing link costs and the reference estimates (e.g. virtual
    coordinate distances or active-probe measurements) is computed; nodes
    deviating by more than ``tolerance`` are flagged.

    Parameters
    ----------
    announced:
        Metric built from link-state announcements.
    reference:
        Independent estimate of the same quantity.
    nodes:
        Which nodes to audit (default: all).
    tolerance:
        Relative deviation above which a node is flagged.
    samples_per_node:
        If given, only this many random outgoing links per node are checked
        (the paper suggests auditing random subsets to bound cost).
    rng:
        Randomness for the sampled audit.
    """
    from repro.util.rng import as_generator

    if announced.size != reference.size:
        raise ValidationError("announced and reference metrics differ in size")
    rng = as_generator(rng)
    node_list = list(nodes) if nodes is not None else list(range(announced.size))
    findings: List[AuditFinding] = []
    n = announced.size
    for node in node_list:
        targets = [j for j in range(n) if j != node]
        if samples_per_node is not None and samples_per_node < len(targets):
            idx = rng.choice(len(targets), size=samples_per_node, replace=False)
            targets = [targets[i] for i in np.atleast_1d(idx)]
        deviations = []
        for j in targets:
            announced_cost = announced.link_weight(node, j)
            reference_cost = reference.link_weight(node, j)
            if not np.isfinite(announced_cost) or not np.isfinite(reference_cost):
                continue
            if reference_cost <= 0:
                continue
            deviations.append(abs(announced_cost - reference_cost) / reference_cost)
        mean_dev = float(np.mean(deviations)) if deviations else 0.0
        findings.append(
            AuditFinding(
                node=int(node),
                mean_relative_deviation=mean_dev,
                flagged=mean_dev > tolerance,
            )
        )
    return findings


def detected_cheaters(findings: Sequence[AuditFinding]) -> Set[int]:
    """Convenience: the set of flagged nodes from audit findings."""
    return {f.node for f in findings if f.flagged}
