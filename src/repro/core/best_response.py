"""Best-Response (BR) neighbour selection.

Given the residual wiring ``S_{-i}`` (everyone else's links), node ``v_i``'s
best response is the wiring ``s_i`` of at most ``k`` links minimising its
cost ``C_i(S_{-i} + s_i)`` — or maximising its aggregate bottleneck
bandwidth under the bandwidth metric.  Computing an exact BR is NP-hard
(asymmetric k-median for delay; Appendix A.1 for bandwidth), so EGOIST uses
fast local-search approximations; both the exact enumeration (for small
instances, tests, and ablations) and the local search are implemented here.

The evaluation exploits the structure noted in the paper: once the
destination-indexed routing values of the *residual* graph are known, the
value a wiring ``s`` delivers for destination ``j`` is

* delay/load (minimise):  ``min_{w in s} (d_iw + D_resid[w, j])``
* bandwidth (maximise):   ``max_{w in s} min(bw_iw, B_resid[w, j])``

so each candidate wiring is a row reduction over a precomputed
``(hops x destinations)`` "via" matrix — and, crucially, *batches* of
candidate wirings are a single broadcast reduction over a
``(candidates x hops x destinations)`` view of the same matrix.  The
batched kernels (:meth:`WiringEvaluator.evaluate_batch`,
:meth:`WiringEvaluator.swap_costs`) are what the vectorised local search
and exact enumeration are built on; the interpreted per-wiring path is
kept behind ``vectorized=False`` so parity is testable.  Both paths share
the same elementwise reductions (exact min/max, multiply then pairwise
sum), so their objective values — and therefore the selected wirings —
are bitwise identical.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.cost import Metric, uniform_preferences
from repro.core.route_cache import ResidualRouteCache
from repro.core.wiring import Wiring
from repro.routing.graph import OverlayGraph
from repro.util.rng import SeedLike, as_generator
from repro.util.validation import ValidationError, check_index

#: Soft cap on the number of (wiring x destination) value cells
#: materialised per batched-kernel chunk (~32 MB of float64).
_KERNEL_CHUNK_CELLS = 4_000_000


def _ordered_unique(values: Iterable[int], exclude: int) -> List[int]:
    """Normalise a node list: ints, no ``exclude``, duplicates dropped
    while preserving first-occurrence order."""
    seen: Set[int] = set()
    out: List[int] = []
    for value in values:
        value = int(value)
        if value == exclude or value in seen:
            continue
        seen.add(value)
        out.append(value)
    return out


@dataclass
class WiringEvaluator:
    """Fast evaluator of candidate wirings for one node.

    Parameters
    ----------
    node:
        The node choosing its neighbours.
    metric:
        The cost metric in use.
    residual_graph:
        The overlay graph *without* ``node``'s outgoing links.
    candidates:
        Nodes that may be chosen as neighbours (defaults to everyone else).
    preferences:
        Preference matrix; defaults to uniform.
    destinations:
        Destinations included in the objective (defaults to all other
        nodes); under churn only active destinations are passed.
    required:
        Neighbours that must be part of every evaluated wiring (the donated
        backbone links of HybridBR).
    route_cache:
        Optional :class:`~repro.core.route_cache.ResidualRouteCache`; when
        supplied (and stamped with a current token by its owner), the
        multi-source residual route-value sweep — the expensive part of
        construction — is reused instead of recomputed.
    """

    node: int
    metric: Metric
    residual_graph: OverlayGraph
    candidates: Optional[Sequence[int]] = None
    preferences: Optional[np.ndarray] = None
    destinations: Optional[Sequence[int]] = None
    required: FrozenSet[int] = frozenset()
    route_cache: Optional[ResidualRouteCache] = None

    def __post_init__(self):
        n = self.metric.size
        check_index(self.node, n, "node")
        self.candidates = _ordered_unique(
            self.candidates if self.candidates is not None else range(n), self.node
        )
        if self.preferences is None:
            self.preferences = uniform_preferences(n)
        self.destinations = _ordered_unique(
            self.destinations if self.destinations is not None else range(n), self.node
        )
        self.required = frozenset(int(r) for r in self.required)
        for r in self.required:
            if r == self.node:
                raise ValidationError("a node cannot be required to wire to itself")
        # Pre-compute, for every potential first hop w and destination j,
        # the value of routing to j via w ("via matrix").  Candidate
        # wirings are then evaluated with cheap row reductions.
        self._relevant_hops = sorted(set(self.candidates) | self.required)
        self._hop_index = {w: idx for idx, w in enumerate(self._relevant_hops)}
        if self._relevant_hops:
            resid = self._residual_route_values()
            direct = self.metric.link_weight_row(self.node)[
                np.array(self._relevant_hops, dtype=int)
            ]
            self._direct = dict(zip(self._relevant_hops, direct.tolist()))
            if self.metric.maximize:
                # via[w, j] = min(direct bw to w, residual bw from w to j);
                # the +inf diagonal of resid leaves via[w, w] = direct bw.
                self._via = np.minimum(direct[:, None], resid)
            else:
                # via[w, j] = direct cost to w + residual cost from w to j;
                # resid[w, w] = 0 so the direct link itself is covered.
                self._via = direct[:, None] + resid
        else:
            self._direct = {}
            self._via = np.zeros((0, self.metric.size))
        self._pref_row = self.preferences[self.node]
        self._dest_array = np.array(self.destinations, dtype=int)
        self._dest_prefs = (
            self._pref_row[self._dest_array] if len(self._dest_array) else np.zeros(0)
        )
        # Destination-restricted via matrix: rows index hops, columns index
        # self.destinations.  Every kernel below reduces over this.
        self._via_dest = self._via[:, self._dest_array]
        self._required_rows = np.array(
            [self._hop_index[r] for r in sorted(self.required)], dtype=int
        )
        self._empty_cost = float(
            np.sum(self._dest_prefs) * self.metric.unreachable_value
        )
        # When every via value is already reachable, the unreachable clamp
        # is an identity and the batched kernels skip it (reductions over
        # reachable values stay reachable).
        if self.metric.maximize:
            self._via_clean = bool(
                np.all(np.isfinite(self._via_dest) & (self._via_dest > 0))
            )
        else:
            self._via_clean = bool(np.all(np.isfinite(self._via_dest)))

    def _residual_route_values(self) -> np.ndarray:
        """``(hops x n)`` residual route values, via the cache if possible."""
        hops_key = tuple(self._relevant_hops)
        if self.route_cache is not None:
            cached = self.route_cache.get(self.node, hops_key)
            if cached is not None:
                return cached
        if self.metric.maximize:
            from repro.routing.widest_path import widest_path_bandwidths_multi

            resid = widest_path_bandwidths_multi(
                self.residual_graph, list(self._relevant_hops)
            )
        else:
            from repro.routing.shortest_path import shortest_path_costs_multi

            resid = shortest_path_costs_multi(
                self.residual_graph, list(self._relevant_hops)
            )
        if self.route_cache is not None:
            self.route_cache.put(self.node, hops_key, resid)
        return resid

    # ------------------------------------------------------------------ #
    # Objective evaluation
    # ------------------------------------------------------------------ #
    def value_for_destination(self, neighbors: Iterable[int], j: int) -> float:
        """Routing value from ``node`` to ``j`` given first hops ``neighbors``.

        Delay/load: ``min_w (d_iw + D_resid[w, j])``; when ``w == j`` the
        residual term is zero (the direct link reaches the destination).
        Bandwidth: ``max_w min(bw_iw, B_resid[w, j])``; when ``w == j`` the
        value is just the direct link's bandwidth.
        """
        rows = [self._hop_index[w] for w in neighbors if w in self._hop_index]
        if not rows:
            return self.metric.unreachable_value
        column = self._via[rows, j]
        if self.metric.maximize:
            best = float(np.max(column))
            if best <= 0 or not np.isfinite(best):
                return self.metric.unreachable_value
            return best
        best = float(np.min(column))
        if not np.isfinite(best):
            return self.metric.unreachable_value
        return best

    def _clamp(self, best: np.ndarray) -> np.ndarray:
        """Replace unreachable per-destination values by the metric's
        disconnection value (shared by the scalar and batched paths)."""
        if self.metric.maximize:
            return np.where(
                np.isfinite(best) & (best > 0), best, self.metric.unreachable_value
            )
        return np.where(np.isfinite(best), best, self.metric.unreachable_value)

    def _clamp_inplace(self, values: np.ndarray) -> np.ndarray:
        """In-place variant of :meth:`_clamp` for the batched kernels.

        Fills the same positions with the same disconnection value, so
        results stay bitwise identical to the scalar path; it is skipped
        entirely when the via matrix is clean (see ``_via_clean``).
        """
        if self._via_clean:
            return values
        if self.metric.maximize:
            bad = ~(np.isfinite(values) & (values > 0))
        else:
            bad = ~np.isfinite(values)
        values[bad] = self.metric.unreachable_value
        return values

    def _rows_of(self, neighbors: Iterable[int]) -> List[int]:
        """Via-matrix rows of ``neighbors`` (ValidationError on unknowns)."""
        rows = []
        for w in neighbors:
            idx = self._hop_index.get(int(w))
            if idx is None:
                raise ValidationError(f"{w} is not an allowed neighbor")
            rows.append(idx)
        return rows

    def evaluate(self, neighbors: Iterable[int]) -> float:
        """Objective value of the wiring ``neighbors`` (plus required links)."""
        chosen = set(int(v) for v in neighbors) | self.required
        if not chosen:
            # A node with no links reaches nobody.
            return self._empty_cost
        rows = self._rows_of(chosen)
        if len(self._dest_array) == 0:
            return 0.0
        values = self._via_dest[rows]
        best = values.max(axis=0) if self.metric.maximize else values.min(axis=0)
        best = self._clamp(best)
        return float((self._dest_prefs * best).sum())

    def _evaluate_rows(self, rows: np.ndarray) -> np.ndarray:
        """Batched objective for a ``(wirings x hops-per-wiring)`` row matrix.

        Duplicate rows within a wiring are harmless (min/max reductions are
        idempotent), which lets callers append the required rows uniformly.
        """
        batch, width = rows.shape
        if width == 0:
            return np.full(batch, self._empty_cost)
        if len(self._dest_array) == 0:
            return np.zeros(batch)
        values = self._via_dest[rows]  # (batch, width, dests)
        best = values.max(axis=1) if self.metric.maximize else values.min(axis=1)
        self._clamp_inplace(best)
        best *= self._dest_prefs
        return best.sum(axis=1)

    def evaluate_batch(self, wirings: Sequence[Iterable[int]]) -> np.ndarray:
        """Objective values of many candidate wirings in one broadcast.

        Each wiring is an iterable of neighbour ids; required links are
        added automatically.  The result is bitwise identical to calling
        :meth:`evaluate` on each wiring, but a large batch costs a single
        fancy-indexed reduction instead of one Python round-trip per
        wiring.  Ragged batches are supported (wirings are grouped by
        size internally).
        """
        costs = np.empty(len(wirings))
        req = list(self._required_rows)
        groups: Dict[int, Tuple[List[int], List[List[int]]]] = {}
        for pos, wiring in enumerate(wirings):
            rows = self._rows_of(wiring) + req
            indices, members = groups.setdefault(len(rows), ([], []))
            indices.append(pos)
            members.append(rows)
        for width, (indices, members) in groups.items():
            rows = np.array(members, dtype=int).reshape(len(members), width)
            chunk = max(1, _KERNEL_CHUNK_CELLS // max(1, width * len(self._dest_array)))
            for start in range(0, len(members), chunk):
                block = rows[start : start + chunk]
                costs[np.array(indices[start : start + chunk], dtype=int)] = (
                    self._evaluate_rows(block)
                )
        return costs

    def swap_costs(
        self, current: Sequence[int], candidates: Sequence[int]
    ) -> np.ndarray:
        """Objective values of every single-swap neighbour of ``current``.

        Entry ``[o, c]`` is ``evaluate(current with current[o] replaced by
        candidates[c])`` — the full neighbourhood the local search scans —
        computed as one broadcast over the via matrix: a leave-one-out
        reduction over the incumbent's rows (top-2 trick) combined with
        every candidate's row.  Values are bitwise identical to the scalar
        :meth:`evaluate` on each trial wiring.

        ``current`` must not contain duplicates; ``candidates`` may
        include members of ``current`` (callers mask those columns).
        """
        cur = [int(c) for c in current]
        if len(set(cur)) != len(cur):
            raise ValidationError("current wiring must not contain duplicates")
        k = len(cur)
        cand_rows = np.array(self._rows_of(candidates), dtype=int)
        n_cand = len(cand_rows)
        n_dest = len(self._dest_array)
        if k == 0 or n_cand == 0:
            return np.zeros((k, n_cand))
        if n_dest == 0:
            return np.zeros((k, n_cand))
        maximize = self.metric.maximize
        combine = np.maximum if maximize else np.minimum
        identity = -np.inf if maximize else np.inf

        cur_vals = self._via_dest[np.array(self._rows_of(cur), dtype=int)]  # (k, D)
        if len(self._required_rows):
            req_vals = self._via_dest[self._required_rows]
            fixed = req_vals.max(axis=0) if maximize else req_vals.min(axis=0)
        else:
            fixed = np.full(n_dest, identity)
        if k == 1:
            loo = np.full((1, n_dest), identity)
        else:
            # Leave-one-out reduction via the top-2 trick: dropping row o
            # changes the column reduction only where o was the extreme.
            order = np.argsort(cur_vals, axis=0)
            cols = np.arange(n_dest)
            ext_row = order[-1] if maximize else order[0]
            ext = cur_vals[ext_row, cols]
            second = cur_vals[order[-2] if maximize else order[1], cols]
            loo = np.where(
                np.arange(k)[:, None] == ext_row[None, :],
                second[None, :],
                ext[None, :],
            )
        base = combine(loo, fixed[None, :])  # (k, D)

        out = np.empty((k, n_cand))
        chunk = max(1, _KERNEL_CHUNK_CELLS // max(1, k * n_dest))
        for start in range(0, n_cand, chunk):
            rows = cand_rows[start : start + chunk]
            trial = combine(base[:, None, :], self._via_dest[rows][None, :, :])
            self._clamp_inplace(trial)
            trial *= self._dest_prefs
            out[:, start : start + len(rows)] = trial.sum(axis=2)
        return out

    def better(self, a: float, b: float) -> bool:
        """Delegate to the metric's objective direction."""
        return self.metric.better(a, b)


@dataclass(frozen=True)
class BestResponseResult:
    """Outcome of a best-response computation."""

    node: int
    neighbors: FrozenSet[int]
    cost: float
    evaluations: int
    method: str

    def as_wiring(self, donated: Iterable[int] = ()) -> Wiring:
        """Convert to a :class:`Wiring` (marking ``donated`` links)."""
        return Wiring.of(self.node, self.neighbors, donated)


def best_response_exact(
    evaluator: WiringEvaluator, k: int, *, vectorized: bool = True
) -> BestResponseResult:
    """Exact best response by exhaustive enumeration of all k-subsets.

    Exponential in ``k`` — only use for small instances (tests, ablation
    A1).  ``k`` counts only the selfish links; any ``required`` links of
    the evaluator come on top.  With ``vectorized=True`` (the default)
    subsets are scored in batched broadcasts; ``vectorized=False`` keeps
    the per-subset reference path.  Both pick the same wiring: scores are
    bitwise identical and ties fall to the first subset in enumeration
    order either way.
    """
    candidates = [c for c in evaluator.candidates if c not in evaluator.required]
    k = min(k, len(candidates))
    if k < 0:
        raise ValidationError("k must be non-negative")
    best_set: Optional[Tuple[int, ...]] = None
    best_cost: Optional[float] = None
    evaluations = 0
    if vectorized:
        maximize = evaluator.metric.maximize
        combos = itertools.combinations(candidates, k)
        while True:
            batch = list(itertools.islice(combos, 2048))
            if not batch:
                break
            costs = evaluator.evaluate_batch(batch)
            pos = int(np.argmax(costs)) if maximize else int(np.argmin(costs))
            evaluations += len(batch)
            if best_cost is None or evaluator.better(float(costs[pos]), best_cost):
                best_cost = float(costs[pos])
                best_set = batch[pos]
    else:
        for combo in itertools.combinations(candidates, k):
            cost = evaluator.evaluate(combo)
            evaluations += 1
            if best_cost is None or evaluator.better(cost, best_cost):
                best_cost = cost
                best_set = combo
    if best_set is None:
        best_set = ()
        best_cost = evaluator.evaluate(())
        evaluations += 1
    return BestResponseResult(
        node=evaluator.node,
        neighbors=frozenset(best_set) | evaluator.required,
        cost=float(best_cost),
        evaluations=evaluations,
        method="exact",
    )


def _greedy_seed(
    evaluator: WiringEvaluator, k: int, *, vectorized: bool = True
) -> List[int]:
    """Greedy marginal-gain seeding for the local search.

    The vectorised path scores every remaining candidate's marginal gain
    in one kernel call per step, maintaining the running per-destination
    reduction of the chosen set; ties resolve to the first candidate in
    order, exactly like the reference loop.
    """
    candidates = [c for c in evaluator.candidates if c not in evaluator.required]
    target = min(k, len(candidates))
    chosen: List[int] = []
    if target <= 0:
        return chosen
    if not vectorized:
        while len(chosen) < target:
            best_candidate = None
            best_cost = None
            for c in candidates:
                if c in chosen:
                    continue
                cost = evaluator.evaluate(chosen + [c])
                if best_cost is None or evaluator.better(cost, best_cost):
                    best_cost = cost
                    best_candidate = c
            if best_candidate is None:
                break
            chosen.append(best_candidate)
        return chosen

    maximize = evaluator.metric.maximize
    combine = np.maximum if maximize else np.minimum
    identity = -np.inf if maximize else np.inf
    sentinel = -np.inf if maximize else np.inf
    pick = np.argmax if maximize else np.argmin
    n_dest = len(evaluator._dest_array)
    cand_rows = np.array(evaluator._rows_of(candidates), dtype=int)
    # Running reduction over chosen + required rows (pre-clamp values).
    if len(evaluator._required_rows):
        req_vals = evaluator._via_dest[evaluator._required_rows]
        running = req_vals.max(axis=0) if maximize else req_vals.min(axis=0)
    else:
        running = np.full(n_dest, identity)
    taken = np.zeros(len(candidates), dtype=bool)
    for _ in range(target):
        if n_dest:
            trial = combine(running[None, :], evaluator._via_dest[cand_rows])
            evaluator._clamp_inplace(trial)
            trial *= evaluator._dest_prefs
            costs = trial.sum(axis=1)
        else:
            costs = np.zeros(len(candidates))
        costs[taken] = sentinel
        pos = int(pick(costs))
        taken[pos] = True
        chosen.append(candidates[pos])
        if n_dest:
            running = combine(running, evaluator._via_dest[cand_rows[pos]])
    return chosen


def best_response_local_search(
    evaluator: WiringEvaluator,
    k: int,
    *,
    rng: SeedLike = None,
    max_iterations: int = 100,
    seed_wiring: Optional[Iterable[int]] = None,
    greedy_seed: bool = True,
    vectorized: bool = True,
) -> BestResponseResult:
    """Approximate best response via single-swap local search.

    Starting from a greedy (or supplied) wiring, repeatedly try replacing
    one chosen neighbour with one unchosen candidate, accepting the best
    improving swap, until no swap improves the objective or
    ``max_iterations`` passes are exhausted.  This is the "fast approximate
    version based on local search" the paper deploys (verified there to be
    within ~5% of optimal).

    With ``vectorized=True`` every pass scores all ``k * (m - k)``
    single-swap neighbours in one :meth:`WiringEvaluator.swap_costs`
    broadcast; ``vectorized=False`` keeps the per-trial reference loop.
    The two paths draw the same RNG values, produce bitwise-identical
    objective values, and break ties identically (first swap in
    out-neighbour-major order), so they return the same wiring.
    """
    rng = as_generator(rng)
    candidates = [c for c in evaluator.candidates if c not in evaluator.required]
    k = min(k, len(candidates))
    evaluations = 0

    if seed_wiring is not None:
        current = [c for c in seed_wiring if c in set(candidates)][:k]
        # Top up with random candidates if the seed is short.
        missing = k - len(current)
        if missing > 0:
            pool = [c for c in candidates if c not in current]
            extra = rng.choice(len(pool), size=missing, replace=False) if pool else []
            current += [pool[i] for i in np.atleast_1d(extra)]
    elif greedy_seed:
        current = _greedy_seed(evaluator, k, vectorized=vectorized)
        evaluations += k * max(1, len(candidates))
    else:
        idx = rng.choice(len(candidates), size=k, replace=False) if candidates else []
        current = [candidates[i] for i in np.atleast_1d(idx)]

    current_cost = evaluator.evaluate(current)
    evaluations += 1
    # The batched swap kernel assumes a duplicate-free incumbent (always
    # true for greedy/random seeds; a pathological seed_wiring may not be).
    use_batched = vectorized and len(set(current)) == len(current)

    for _ in range(int(max_iterations)):
        if not current or not candidates:
            break
        if use_batched:
            chosen_set = set(current)
            costs = evaluator.swap_costs(current, candidates)
            sentinel = -np.inf if evaluator.metric.maximize else np.inf
            mask = np.fromiter(
                (c in chosen_set for c in candidates), dtype=bool, count=len(candidates)
            )
            costs[:, mask] = sentinel
            evaluations += len(current) * int(np.count_nonzero(~mask))
            flat = costs.ravel()
            pos = (
                int(np.argmax(flat))
                if evaluator.metric.maximize
                else int(np.argmin(flat))
            )
            if not evaluator.better(float(flat[pos]), current_cost):
                break
            out_node = current[pos // len(candidates)]
            in_node = candidates[pos % len(candidates)]
            current = [in_node if c == out_node else c for c in current]
            current_cost = float(flat[pos])
        else:
            best_swap = None
            best_cost = current_cost
            chosen_set = set(current)
            for out_node in current:
                for in_node in candidates:
                    if in_node in chosen_set:
                        continue
                    trial = [in_node if c == out_node else c for c in current]
                    cost = evaluator.evaluate(trial)
                    evaluations += 1
                    if evaluator.better(cost, best_cost):
                        best_cost = cost
                        best_swap = (out_node, in_node)
            if best_swap is None:
                break
            out_node, in_node = best_swap
            current = [in_node if c == out_node else c for c in current]
            current_cost = best_cost

    return BestResponseResult(
        node=evaluator.node,
        neighbors=frozenset(current) | evaluator.required,
        cost=float(current_cost),
        evaluations=evaluations,
        method="local-search",
    )


def best_response(
    evaluator: WiringEvaluator,
    k: int,
    *,
    exact_threshold: int = 12,
    rng: SeedLike = None,
    max_iterations: int = 100,
    vectorized: bool = True,
) -> BestResponseResult:
    """Compute a best response, choosing exact vs local search automatically.

    Exhaustive enumeration is used when the number of k-subsets of the
    candidate pool is small (at most ``C(exact_threshold, k)``-ish work);
    otherwise the local-search approximation is used.  ``vectorized``
    selects the batched kernels (default) or the interpreted reference
    path; both produce the same wiring.
    """
    candidates = [c for c in evaluator.candidates if c not in evaluator.required]
    n_candidates = len(candidates)
    k_eff = min(k, n_candidates)
    # Rough subset count guard, avoiding overflow for large inputs.
    subsets = 1.0
    for i in range(k_eff):
        subsets *= (n_candidates - i) / (i + 1)
        if subsets > 5000:
            break
    if n_candidates <= exact_threshold and subsets <= 5000:
        return best_response_exact(evaluator, k, vectorized=vectorized)
    return best_response_local_search(
        evaluator, k, rng=rng, max_iterations=max_iterations, vectorized=vectorized
    )


def should_rewire(
    metric: Metric, current_cost: float, candidate_cost: float, epsilon: float = 0.0
) -> bool:
    """BR(ε) re-wiring rule: re-wire only for a relative improvement > ε.

    With ``epsilon = 0`` this reduces to plain BR (any strict improvement
    triggers a re-wire); the paper's Fig. 3 uses ε = 10% to trade a small
    amount of routing cost for far fewer re-wirings.
    """
    if epsilon < 0:
        raise ValidationError("epsilon must be non-negative")
    if not metric.better(candidate_cost, current_cost):
        return False
    return metric.improvement(candidate_cost, current_cost) > epsilon
