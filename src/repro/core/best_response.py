"""Best-Response (BR) neighbour selection.

Given the residual wiring ``S_{-i}`` (everyone else's links), node ``v_i``'s
best response is the wiring ``s_i`` of at most ``k`` links minimising its
cost ``C_i(S_{-i} + s_i)`` — or maximising its aggregate bottleneck
bandwidth under the bandwidth metric.  Computing an exact BR is NP-hard
(asymmetric k-median for delay; Appendix A.1 for bandwidth), so EGOIST uses
fast local-search approximations; both the exact enumeration (for small
instances, tests, and ablations) and the local search are implemented here.

The evaluation exploits the structure noted in the paper: once the
destination-indexed routing values of the *residual* graph are known, the
value a wiring ``s`` delivers for destination ``j`` is

* delay/load (minimise):  ``min_{w in s} (d_iw + D_resid[w, j])``
* bandwidth (maximise):   ``max_{w in s} min(bw_iw, B_resid[w, j])``

so each candidate wiring is evaluated in ``O(|s| * n)`` without re-running
Dijkstra.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.cost import Metric, uniform_preferences
from repro.core.wiring import Wiring
from repro.routing.graph import OverlayGraph
from repro.util.rng import SeedLike, as_generator
from repro.util.validation import ValidationError, check_index


@dataclass
class WiringEvaluator:
    """Fast evaluator of candidate wirings for one node.

    Parameters
    ----------
    node:
        The node choosing its neighbours.
    metric:
        The cost metric in use.
    residual_graph:
        The overlay graph *without* ``node``'s outgoing links.
    candidates:
        Nodes that may be chosen as neighbours (defaults to everyone else).
    preferences:
        Preference matrix; defaults to uniform.
    destinations:
        Destinations included in the objective (defaults to all other
        nodes); under churn only active destinations are passed.
    required:
        Neighbours that must be part of every evaluated wiring (the donated
        backbone links of HybridBR).
    """

    node: int
    metric: Metric
    residual_graph: OverlayGraph
    candidates: Optional[Sequence[int]] = None
    preferences: Optional[np.ndarray] = None
    destinations: Optional[Sequence[int]] = None
    required: FrozenSet[int] = frozenset()

    def __post_init__(self):
        n = self.metric.size
        check_index(self.node, n, "node")
        if self.candidates is None:
            self.candidates = [j for j in range(n) if j != self.node]
        self.candidates = [int(c) for c in self.candidates if c != self.node]
        if self.preferences is None:
            self.preferences = uniform_preferences(n)
        if self.destinations is None:
            self.destinations = [j for j in range(n) if j != self.node]
        self.destinations = [int(d) for d in self.destinations if d != self.node]
        self.required = frozenset(int(r) for r in self.required)
        for r in self.required:
            if r == self.node:
                raise ValidationError("a node cannot be required to wire to itself")
        # Pre-compute, for every potential first hop w and destination j,
        # the value of routing to j via w ("via matrix").  Candidate
        # wirings are then evaluated with cheap row reductions.
        self._relevant_hops = sorted(set(self.candidates) | self.required)
        self._hop_index = {w: idx for idx, w in enumerate(self._relevant_hops)}
        self._direct = {
            w: self.metric.link_weight(self.node, w) for w in self._relevant_hops
        }
        if self._relevant_hops:
            if self.metric.maximize:
                from repro.routing.widest_path import widest_path_bandwidths_from

                resid = np.vstack(
                    [
                        widest_path_bandwidths_from(self.residual_graph, w)
                        for w in self._relevant_hops
                    ]
                )
                direct = np.array([self._direct[w] for w in self._relevant_hops])
                # via[w, j] = min(direct bw to w, residual bw from w to j);
                # the +inf diagonal of resid leaves via[w, w] = direct bw.
                self._via = np.minimum(direct[:, None], resid)
            else:
                from repro.routing.shortest_path import shortest_path_costs_multi

                resid = shortest_path_costs_multi(
                    self.residual_graph, list(self._relevant_hops)
                )
                direct = np.array([self._direct[w] for w in self._relevant_hops])
                # via[w, j] = direct cost to w + residual cost from w to j;
                # resid[w, w] = 0 so the direct link itself is covered.
                self._via = direct[:, None] + resid
        else:
            self._via = np.zeros((0, self.metric.size))
        self._pref_row = self.preferences[self.node]
        self._dest_array = np.array(self.destinations, dtype=int)
        self._dest_prefs = self._pref_row[self._dest_array] if len(self._dest_array) else np.zeros(0)
        self._resid_values: Dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------ #
    # Objective evaluation
    # ------------------------------------------------------------------ #
    def value_for_destination(self, neighbors: Iterable[int], j: int) -> float:
        """Routing value from ``node`` to ``j`` given first hops ``neighbors``.

        Delay/load: ``min_w (d_iw + D_resid[w, j])``; when ``w == j`` the
        residual term is zero (the direct link reaches the destination).
        Bandwidth: ``max_w min(bw_iw, B_resid[w, j])``; when ``w == j`` the
        value is just the direct link's bandwidth.
        """
        rows = [self._hop_index[w] for w in neighbors if w in self._hop_index]
        if not rows:
            return self.metric.unreachable_value
        column = self._via[rows, j]
        if self.metric.maximize:
            best = float(np.max(column))
            if best <= 0 or not np.isfinite(best):
                return self.metric.unreachable_value
            return best
        best = float(np.min(column))
        if not np.isfinite(best):
            return self.metric.unreachable_value
        return best

    def evaluate(self, neighbors: Iterable[int]) -> float:
        """Objective value of the wiring ``neighbors`` (plus required links)."""
        chosen = set(int(v) for v in neighbors) | self.required
        if not chosen:
            # A node with no links reaches nobody.
            return float(np.sum(self._dest_prefs) * self.metric.unreachable_value)
        rows = []
        for w in chosen:
            idx = self._hop_index.get(w)
            if idx is None:
                raise ValidationError(f"{w} is not an allowed neighbor")
            rows.append(idx)
        if len(self._dest_array) == 0:
            return 0.0
        values = self._via[np.ix_(rows, self._dest_array)]
        if self.metric.maximize:
            best = values.max(axis=0)
            best = np.where(np.isfinite(best) & (best > 0), best, self.metric.unreachable_value)
        else:
            best = values.min(axis=0)
            best = np.where(np.isfinite(best), best, self.metric.unreachable_value)
        return float(np.dot(self._dest_prefs, best))

    def better(self, a: float, b: float) -> bool:
        """Delegate to the metric's objective direction."""
        return self.metric.better(a, b)


@dataclass(frozen=True)
class BestResponseResult:
    """Outcome of a best-response computation."""

    node: int
    neighbors: FrozenSet[int]
    cost: float
    evaluations: int
    method: str

    def as_wiring(self, donated: Iterable[int] = ()) -> Wiring:
        """Convert to a :class:`Wiring` (marking ``donated`` links)."""
        return Wiring.of(self.node, self.neighbors, donated)


def best_response_exact(
    evaluator: WiringEvaluator, k: int
) -> BestResponseResult:
    """Exact best response by exhaustive enumeration of all k-subsets.

    Exponential in ``k`` — only use for small instances (tests, ablation
    A1).  ``k`` counts only the selfish links; any ``required`` links of
    the evaluator come on top.
    """
    candidates = [c for c in evaluator.candidates if c not in evaluator.required]
    k = min(k, len(candidates))
    if k < 0:
        raise ValidationError("k must be non-negative")
    best_set: Optional[Tuple[int, ...]] = None
    best_cost: Optional[float] = None
    evaluations = 0
    for combo in itertools.combinations(candidates, k):
        cost = evaluator.evaluate(combo)
        evaluations += 1
        if best_cost is None or evaluator.better(cost, best_cost):
            best_cost = cost
            best_set = combo
    if best_set is None:
        best_set = ()
        best_cost = evaluator.evaluate(())
        evaluations += 1
    return BestResponseResult(
        node=evaluator.node,
        neighbors=frozenset(best_set) | evaluator.required,
        cost=float(best_cost),
        evaluations=evaluations,
        method="exact",
    )


def _greedy_seed(evaluator: WiringEvaluator, k: int) -> List[int]:
    """Greedy marginal-gain seeding for the local search."""
    candidates = [c for c in evaluator.candidates if c not in evaluator.required]
    chosen: List[int] = []
    while len(chosen) < min(k, len(candidates)):
        best_candidate = None
        best_cost = None
        for c in candidates:
            if c in chosen:
                continue
            cost = evaluator.evaluate(chosen + [c])
            if best_cost is None or evaluator.better(cost, best_cost):
                best_cost = cost
                best_candidate = c
        if best_candidate is None:
            break
        chosen.append(best_candidate)
    return chosen


def best_response_local_search(
    evaluator: WiringEvaluator,
    k: int,
    *,
    rng: SeedLike = None,
    max_iterations: int = 100,
    seed_wiring: Optional[Iterable[int]] = None,
    greedy_seed: bool = True,
) -> BestResponseResult:
    """Approximate best response via single-swap local search.

    Starting from a greedy (or supplied) wiring, repeatedly try replacing
    one chosen neighbour with one unchosen candidate, accepting the best
    improving swap, until no swap improves the objective or
    ``max_iterations`` passes are exhausted.  This is the "fast approximate
    version based on local search" the paper deploys (verified there to be
    within ~5% of optimal).
    """
    rng = as_generator(rng)
    candidates = [c for c in evaluator.candidates if c not in evaluator.required]
    k = min(k, len(candidates))
    evaluations = 0

    if seed_wiring is not None:
        current = [c for c in seed_wiring if c in set(candidates)][:k]
        # Top up with random candidates if the seed is short.
        missing = k - len(current)
        if missing > 0:
            pool = [c for c in candidates if c not in current]
            extra = rng.choice(len(pool), size=missing, replace=False) if pool else []
            current += [pool[i] for i in np.atleast_1d(extra)]
    elif greedy_seed:
        current = _greedy_seed(evaluator, k)
        evaluations += k * max(1, len(candidates))
    else:
        idx = rng.choice(len(candidates), size=k, replace=False) if candidates else []
        current = [candidates[i] for i in np.atleast_1d(idx)]

    current_cost = evaluator.evaluate(current)
    evaluations += 1

    for _ in range(int(max_iterations)):
        best_swap = None
        best_cost = current_cost
        chosen_set = set(current)
        for out_node in current:
            for in_node in candidates:
                if in_node in chosen_set:
                    continue
                trial = [in_node if c == out_node else c for c in current]
                cost = evaluator.evaluate(trial)
                evaluations += 1
                if evaluator.better(cost, best_cost):
                    best_cost = cost
                    best_swap = (out_node, in_node)
        if best_swap is None:
            break
        out_node, in_node = best_swap
        current = [in_node if c == out_node else c for c in current]
        current_cost = best_cost

    return BestResponseResult(
        node=evaluator.node,
        neighbors=frozenset(current) | evaluator.required,
        cost=float(current_cost),
        evaluations=evaluations,
        method="local-search",
    )


def best_response(
    evaluator: WiringEvaluator,
    k: int,
    *,
    exact_threshold: int = 12,
    rng: SeedLike = None,
    max_iterations: int = 100,
) -> BestResponseResult:
    """Compute a best response, choosing exact vs local search automatically.

    Exhaustive enumeration is used when the number of k-subsets of the
    candidate pool is small (at most ``C(exact_threshold, k)``-ish work);
    otherwise the local-search approximation is used.
    """
    candidates = [c for c in evaluator.candidates if c not in evaluator.required]
    n_candidates = len(candidates)
    k_eff = min(k, n_candidates)
    # Rough subset count guard, avoiding overflow for large inputs.
    subsets = 1.0
    for i in range(k_eff):
        subsets *= (n_candidates - i) / (i + 1)
        if subsets > 5000:
            break
    if n_candidates <= exact_threshold and subsets <= 5000:
        return best_response_exact(evaluator, k)
    return best_response_local_search(
        evaluator, k, rng=rng, max_iterations=max_iterations
    )


def should_rewire(
    metric: Metric, current_cost: float, candidate_cost: float, epsilon: float = 0.0
) -> bool:
    """BR(ε) re-wiring rule: re-wire only for a relative improvement > ε.

    With ``epsilon = 0`` this reduces to plain BR (any strict improvement
    triggers a re-wire); the paper's Fig. 3 uses ε = 10% to trade a small
    amount of routing cost for far fewer re-wirings.
    """
    if epsilon < 0:
        raise ValidationError("epsilon must be non-negative")
    if not metric.better(candidate_cost, current_cost):
        return False
    return metric.improvement(candidate_cost, current_cost) > epsilon
