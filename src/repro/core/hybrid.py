"""HybridBR: selfish wiring plus a donated connectivity backbone.

HybridBR (Section 3.3) splits a node's ``k`` links into ``k1`` selfish
links chosen by Best-Response and ``k2 = k - k1`` links donated to the
system's connectivity backbone (``k2 / 2`` bidirectional cycles; see
:mod:`repro.core.backbone`).  The BR computation then treats the donated
links as fixed ("the decision variables set to 1 for the nodes that
receive high-maintenance links") and optimises only the remaining budget.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Set

import numpy as np

from repro.core.backbone import backbone_links
from repro.core.best_response import WiringEvaluator, best_response
from repro.core.cost import Metric
from repro.core.policies import BestResponsePolicy, NeighborSelectionPolicy
from repro.core.wiring import GlobalWiring, Wiring
from repro.routing.graph import OverlayGraph
from repro.util.rng import SeedLike, as_generator
from repro.util.validation import ValidationError


class HybridBRPolicy(NeighborSelectionPolicy):
    """Best-Response over ``k1`` links with ``k2`` links donated.

    Parameters
    ----------
    k2:
        Number of donated (backbone) links per node; must be even and
        smaller than the total budget ``k`` passed to :meth:`select`.
    epsilon:
        BR(ε) re-wiring threshold applied to the selfish links.
    exact_threshold, max_iterations:
        Passed through to the underlying best-response computation.
    vectorized:
        Use the batched best-response kernels (default); ``False`` selects
        the interpreted reference path.
    """

    name = "hybrid-br"

    def __init__(
        self,
        k2: int = 2,
        *,
        epsilon: float = 0.0,
        exact_threshold: int = 12,
        max_iterations: int = 100,
        vectorized: bool = True,
    ):
        if k2 < 0 or k2 % 2 != 0:
            raise ValidationError("k2 must be a non-negative even integer")
        self.k2 = int(k2)
        self.epsilon = float(epsilon)
        self.exact_threshold = int(exact_threshold)
        self.max_iterations = int(max_iterations)
        self.vectorized = bool(vectorized)
        self._br = BestResponsePolicy(
            epsilon=epsilon,
            exact_threshold=exact_threshold,
            max_iterations=max_iterations,
            vectorized=vectorized,
        )

    def donated_links_for(
        self, node: int, active_nodes: Sequence[int]
    ) -> Set[int]:
        """Backbone neighbours donated by ``node`` given current membership."""
        links = backbone_links(active_nodes, self.k2)
        return set(links.get(int(node), set()))

    def select(
        self,
        node: int,
        k: int,
        metric: Metric,
        residual_graph: OverlayGraph,
        *,
        candidates: Optional[Sequence[int]] = None,
        rng: SeedLike = None,
        preferences: Optional[np.ndarray] = None,
        destinations: Optional[Sequence[int]] = None,
        evaluator: Optional[WiringEvaluator] = None,
    ) -> Set[int]:
        rng = as_generator(rng)
        n = metric.size
        if candidates is None:
            candidates = [j for j in range(n) if j != node]
        active = sorted(set(candidates) | {node})
        donated = self.donated_links_for(node, active)
        # Donated links consume part of the budget; never exceed k total.
        donated = set(sorted(donated)[: min(len(donated), k)])
        k1 = max(0, k - len(donated))
        # A caller-supplied evaluator lacks the donated links as `required`,
        # so it cannot be reused directly — but its route cache can: the
        # hop set (candidates + donated) is identical, so the residual
        # sweep computed for the node's cost evaluation is shared.
        route_cache = evaluator.route_cache if evaluator is not None else None
        hybrid_evaluator = WiringEvaluator(
            node=node,
            metric=metric,
            residual_graph=residual_graph,
            candidates=[c for c in candidates if c not in donated],
            preferences=preferences,
            destinations=destinations,
            required=frozenset(donated),
            route_cache=route_cache,
        )
        result = best_response(
            hybrid_evaluator,
            k1,
            exact_threshold=self.exact_threshold,
            rng=rng,
            max_iterations=self.max_iterations,
            vectorized=self.vectorized,
        )
        return set(result.neighbors)

    def select_wiring(
        self,
        node: int,
        k: int,
        metric: Metric,
        residual_graph: OverlayGraph,
        *,
        candidates: Optional[Sequence[int]] = None,
        rng: SeedLike = None,
        preferences: Optional[np.ndarray] = None,
        destinations: Optional[Sequence[int]] = None,
        evaluator: Optional[WiringEvaluator] = None,
    ) -> Wiring:
        """Like :meth:`select` but returns a :class:`Wiring` with the donated
        links marked, which the engine uses for aggressive vs lazy monitoring."""
        n = metric.size
        if candidates is None:
            candidates = [j for j in range(n) if j != node]
        active = sorted(set(candidates) | {node})
        donated = self.donated_links_for(node, active)
        donated = set(sorted(donated)[: min(len(donated), k)])
        chosen = self.select(
            node,
            k,
            metric,
            residual_graph,
            candidates=candidates,
            rng=rng,
            preferences=preferences,
            destinations=destinations,
            evaluator=evaluator,
        )
        return Wiring.of(node, chosen, donated & chosen)


def build_hybrid_overlay(
    metric: Metric,
    k: int,
    k2: int = 2,
    *,
    nodes: Optional[Sequence[int]] = None,
    preferences: Optional[np.ndarray] = None,
    rng: SeedLike = None,
    rounds: int = 4,
) -> GlobalWiring:
    """Build a HybridBR overlay by best-response dynamics over the k1 links.

    The donated backbone is installed first (it depends only on the
    membership), then nodes iteratively best-respond with the remaining
    budget.
    """
    rng = as_generator(rng)
    n = metric.size
    node_list = sorted(nodes) if nodes is not None else list(range(n))
    policy = HybridBRPolicy(k2=k2)
    wiring = GlobalWiring(n)

    # Install the backbone plus a random selfish seed.
    donated_map = backbone_links(node_list, k2)
    for node in node_list:
        donated = set(sorted(donated_map[node])[: min(k, len(donated_map[node]))])
        weights = {v: metric.link_weight(node, v) for v in donated}
        wiring.set_wiring(Wiring.of(node, donated, donated), weights)

    order = list(node_list)
    for _round in range(int(rounds)):
        rng.shuffle(order)
        changed = 0
        for node in order:
            residual = wiring.residual_graph(node, active=node_list)
            new_wiring = policy.select_wiring(
                node,
                k,
                metric,
                residual,
                candidates=[c for c in node_list if c != node],
                rng=rng,
                preferences=preferences,
                destinations=[d for d in node_list if d != node],
            )
            current = wiring.wiring_of(node)
            if current is None or set(current.neighbors) != set(new_wiring.neighbors):
                weights = {v: metric.link_weight(node, v) for v in new_wiring.neighbors}
                wiring.set_wiring(new_wiring, weights)
                changed += 1
        if changed == 0:
            break
    return wiring
