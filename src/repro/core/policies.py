"""Neighbour selection policies (Section 3.2).

EGOIST's default policy is Best-Response; for comparative evaluation the
paper also implements:

* **k-Random** — each node selects k neighbours uniformly at random; a
  cycle is enforced if the resulting graph is not connected.
* **k-Closest** — each node selects the k nodes with minimum direct link
  cost (or maximum bandwidth); a cycle is enforced if disconnected.
* **k-Regular** — all nodes follow a common offset vector
  ``o_j = 1 + (j - 1) * (n - 1) / (k + 1)`` around the id ring, splitting
  the ring periphery evenly.
* **Full mesh** — every node links to every other node (k = n - 1), the
  RON-like upper bound on performance and lower bound on scalability.

Policies produce, per node, the set of chosen neighbours; the module-level
:func:`build_overlay` helper assembles a complete
:class:`~repro.core.wiring.GlobalWiring` and, for Best-Response, runs
best-response dynamics until convergence (or a round limit).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.best_response import (
    BestResponseResult,
    WiringEvaluator,
    best_response,
    best_response_local_search,
    should_rewire,
)
from repro.core.cost import Metric, uniform_preferences
from repro.core.wiring import GlobalWiring, Wiring
from repro.routing.graph import OverlayGraph
from repro.util.rng import SeedLike, as_generator
from repro.util.validation import ValidationError, check_index


class NeighborSelectionPolicy(abc.ABC):
    """Interface: pick a node's overlay neighbours."""

    #: Human-readable policy name (used in reports and figures).
    name: str = "abstract"

    #: Whether :meth:`select` reads the residual graph.  Cost-driven
    #: policies (Best-Response) do; structural policies (k-random,
    #: k-regular, k-closest, full mesh) pick neighbours from ids or direct
    #: link weights alone and are marked ``False`` so overlay builders can
    #: skip constructing a residual graph per node.  Subclasses default to
    #: ``True`` — the conservative assumption.
    uses_residual: bool = True

    @abc.abstractmethod
    def select(
        self,
        node: int,
        k: int,
        metric: Metric,
        residual_graph: OverlayGraph,
        *,
        candidates: Optional[Sequence[int]] = None,
        rng: SeedLike = None,
        preferences: Optional[np.ndarray] = None,
        destinations: Optional[Sequence[int]] = None,
        evaluator: Optional[WiringEvaluator] = None,
    ) -> Set[int]:
        """Return the chosen neighbour set for ``node`` (size <= k).

        ``evaluator`` optionally supplies a pre-built
        :class:`WiringEvaluator` over the same residual graph and
        candidate/destination sets, letting cost-driven policies reuse its
        residual route-value matrices instead of recomputing them;
        structural policies ignore it.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


def _default_candidates(
    node: int, n: int, candidates: Optional[Sequence[int]]
) -> List[int]:
    if candidates is None:
        return [j for j in range(n) if j != node]
    return [int(c) for c in candidates if int(c) != node]


class KRandomPolicy(NeighborSelectionPolicy):
    """k-Random: uniform random neighbours."""

    name = "k-random"
    uses_residual = False

    def select(
        self,
        node: int,
        k: int,
        metric: Metric,
        residual_graph: OverlayGraph,
        *,
        candidates: Optional[Sequence[int]] = None,
        rng: SeedLike = None,
        preferences: Optional[np.ndarray] = None,
        destinations: Optional[Sequence[int]] = None,
        evaluator: Optional[WiringEvaluator] = None,
    ) -> Set[int]:
        rng = as_generator(rng)
        pool = _default_candidates(node, metric.size, candidates)
        k = min(k, len(pool))
        if k == 0:
            return set()
        idx = rng.choice(len(pool), size=k, replace=False)
        return {pool[i] for i in np.atleast_1d(idx)}


class KClosestPolicy(NeighborSelectionPolicy):
    """k-Closest: minimum link cost (or maximum link bandwidth) neighbours."""

    name = "k-closest"
    uses_residual = False

    def select(
        self,
        node: int,
        k: int,
        metric: Metric,
        residual_graph: OverlayGraph,
        *,
        candidates: Optional[Sequence[int]] = None,
        rng: SeedLike = None,
        preferences: Optional[np.ndarray] = None,
        destinations: Optional[Sequence[int]] = None,
        evaluator: Optional[WiringEvaluator] = None,
    ) -> Set[int]:
        pool = _default_candidates(node, metric.size, candidates)
        k = min(k, len(pool))
        if k == 0:
            return set()
        # One row lookup + stable argsort instead of n link_weight calls;
        # ties at the budget boundary resolve in pool order, as before.
        row = metric.link_weight_row(node)[np.array(pool, dtype=int)]
        order = np.argsort(-row if metric.maximize else row, kind="stable")
        return {pool[i] for i in order[:k]}


class KRegularPolicy(NeighborSelectionPolicy):
    """k-Regular: the common offset-vector wiring around the id ring.

    Node ``i`` connects to ``i + o_j (mod n)`` for each offset
    ``o_j = 1 + (j - 1) * (n - 1) / (k + 1)``, ``j = 1..k`` (offsets are
    rounded and deduplicated when ``n - 1`` is not a multiple of ``k + 1``).
    """

    name = "k-regular"
    uses_residual = False

    @staticmethod
    def offsets(n: int, k: int) -> List[int]:
        """The paper's offset vector for an n-node, degree-k overlay."""
        if n < 2:
            raise ValidationError("n must be >= 2")
        if k < 1:
            return []
        raw = [1 + (j - 1) * (n - 1) / (k + 1) for j in range(1, k + 1)]
        offsets: List[int] = []
        for value in raw:
            offset = int(round(value)) % n
            if offset == 0:
                offset = 1
            if offset not in offsets:
                offsets.append(offset)
        # Top up with unused offsets if rounding collapsed some.
        candidate = 1
        while len(offsets) < min(k, n - 1):
            if candidate % n != 0 and candidate not in offsets:
                offsets.append(candidate)
            candidate += 1
        return offsets[: min(k, n - 1)]

    def select(
        self,
        node: int,
        k: int,
        metric: Metric,
        residual_graph: OverlayGraph,
        *,
        candidates: Optional[Sequence[int]] = None,
        rng: SeedLike = None,
        preferences: Optional[np.ndarray] = None,
        destinations: Optional[Sequence[int]] = None,
        evaluator: Optional[WiringEvaluator] = None,
    ) -> Set[int]:
        n = metric.size
        allowed = set(_default_candidates(node, n, candidates))
        chosen: Set[int] = set()
        for offset in self.offsets(n, k):
            target = (node + offset) % n
            if target != node and target in allowed:
                chosen.add(target)
        # If candidate restriction removed some targets, fill from the ring.
        step = 1
        while len(chosen) < min(k, len(allowed)) and step < n:
            target = (node + step) % n
            if target != node and target in allowed:
                chosen.add(target)
            step += 1
        return chosen


class FullMeshPolicy(NeighborSelectionPolicy):
    """Full mesh: connect to every other node (the RON-like bound)."""

    name = "full-mesh"
    uses_residual = False

    def select(
        self,
        node: int,
        k: int,
        metric: Metric,
        residual_graph: OverlayGraph,
        *,
        candidates: Optional[Sequence[int]] = None,
        rng: SeedLike = None,
        preferences: Optional[np.ndarray] = None,
        destinations: Optional[Sequence[int]] = None,
        evaluator: Optional[WiringEvaluator] = None,
    ) -> Set[int]:
        return set(_default_candidates(node, metric.size, candidates))


class BestResponsePolicy(NeighborSelectionPolicy):
    """Best-Response: minimise the node's own cost given everyone else.

    Parameters
    ----------
    epsilon:
        BR(ε) threshold: when used inside re-wiring loops, a node only
        adopts the new wiring if it improves its cost by more than ε
        (relative).  ε = 0 is plain BR.
    exact_threshold:
        Candidate-pool size below which exhaustive enumeration is used.
    max_iterations:
        Local-search iteration budget.
    vectorized:
        Use the batched NumPy kernels (default).  ``False`` selects the
        interpreted per-wiring reference path, which returns the same
        wirings (seeded parity is tested) but far slower.
    """

    name = "best-response"

    def __init__(
        self,
        epsilon: float = 0.0,
        *,
        exact_threshold: int = 12,
        max_iterations: int = 100,
        vectorized: bool = True,
    ):
        if epsilon < 0:
            raise ValidationError("epsilon must be non-negative")
        self.epsilon = float(epsilon)
        self.exact_threshold = int(exact_threshold)
        self.max_iterations = int(max_iterations)
        self.vectorized = bool(vectorized)
        if self.epsilon > 0:
            self.name = f"best-response(eps={self.epsilon:g})"

    def compute(
        self,
        node: int,
        k: int,
        metric: Metric,
        residual_graph: OverlayGraph,
        *,
        candidates: Optional[Sequence[int]] = None,
        rng: SeedLike = None,
        preferences: Optional[np.ndarray] = None,
        destinations: Optional[Sequence[int]] = None,
        required: Iterable[int] = (),
        evaluator: Optional[WiringEvaluator] = None,
    ) -> BestResponseResult:
        """Full best-response computation returning cost and diagnostics.

        A pre-built ``evaluator`` (over the same residual graph and
        candidate/destination/required sets) skips the multi-source
        route-value sweep of evaluator construction — the engine passes
        the one it already built to score the node's current wiring.
        """
        if evaluator is None:
            evaluator = WiringEvaluator(
                node=node,
                metric=metric,
                residual_graph=residual_graph,
                candidates=candidates,
                preferences=preferences,
                destinations=destinations,
                required=frozenset(required),
            )
        return best_response(
            evaluator,
            k,
            exact_threshold=self.exact_threshold,
            rng=rng,
            max_iterations=self.max_iterations,
            vectorized=self.vectorized,
        )

    def select(
        self,
        node: int,
        k: int,
        metric: Metric,
        residual_graph: OverlayGraph,
        *,
        candidates: Optional[Sequence[int]] = None,
        rng: SeedLike = None,
        preferences: Optional[np.ndarray] = None,
        destinations: Optional[Sequence[int]] = None,
        evaluator: Optional[WiringEvaluator] = None,
    ) -> Set[int]:
        result = self.compute(
            node,
            k,
            metric,
            residual_graph,
            candidates=candidates,
            rng=rng,
            preferences=preferences,
            destinations=destinations,
            evaluator=evaluator,
        )
        return set(result.neighbors)


# ---------------------------------------------------------------------- #
# Overlay construction
# ---------------------------------------------------------------------- #
def enforce_connectivity_cycle(
    wiring: GlobalWiring,
    metric: Metric,
    *,
    nodes: Optional[Sequence[int]] = None,
) -> int:
    """Add ring edges until the overlay is strongly connected.

    k-Random and k-Closest "enforce a cycle" when their graphs come out
    disconnected; we add successive-id ring edges (i -> i+1 mod n) among
    the participating nodes until strong connectivity holds.  Returns the
    number of edges added.
    """
    node_list = sorted(nodes) if nodes is not None else list(range(wiring.n))
    if len(node_list) < 2:
        return 0
    added = 0
    graph = wiring.to_graph(active=node_list)
    if graph.is_strongly_connected(node_list):
        return 0
    for idx, node in enumerate(node_list):
        successor = node_list[(idx + 1) % len(node_list)]
        current = wiring.wiring_of(node)
        neighbors = set(current.neighbors) if current is not None else set()
        if successor in neighbors or successor == node:
            continue
        neighbors.add(successor)
        weights = wiring.weights_of(node)
        weights[successor] = metric.link_weight(node, successor)
        donated = current.donated if current is not None else frozenset()
        wiring.set_wiring(Wiring.of(node, neighbors, donated), weights)
        added += 1
    return added


def build_overlay(
    policy: NeighborSelectionPolicy,
    metric: Metric,
    k: int,
    *,
    nodes: Optional[Sequence[int]] = None,
    preferences: Optional[np.ndarray] = None,
    rng: SeedLike = None,
    br_rounds: int = 6,
    ensure_connected: bool = True,
) -> GlobalWiring:
    """Build a complete overlay under ``policy``.

    For the empirical policies every node selects independently and a
    connectivity cycle is enforced if needed.  For Best-Response the
    overlay is built by best-response dynamics: starting from a random
    wiring, nodes repeatedly (in random order) recompute their best
    response to everyone else until no node changes or ``br_rounds``
    rounds elapse.

    Parameters
    ----------
    policy:
        The neighbour selection policy.
    metric:
        Cost metric supplying link weights and objectives.
    k:
        Neighbour budget per node.
    nodes:
        Participating nodes (defaults to all of ``metric.size``).
    preferences:
        Preference matrix (uniform by default).
    rng:
        Seed or generator.
    br_rounds:
        Maximum best-response dynamics rounds (BR policy only).
    ensure_connected:
        Whether to enforce the connectivity cycle for empirical policies.
    """
    rng = as_generator(rng)
    n = metric.size
    node_list = sorted(nodes) if nodes is not None else list(range(n))
    wiring = GlobalWiring(n)

    if isinstance(policy, BestResponsePolicy):
        return _build_best_response_overlay(
            policy,
            metric,
            k,
            node_list,
            preferences=preferences,
            rng=rng,
            rounds=br_rounds,
        )

    # Structural policies never read the residual graph (see
    # ``NeighborSelectionPolicy.uses_residual``); building one per node is
    # pure overhead, so they all get a single empty placeholder.
    needs_residual = getattr(policy, "uses_residual", True)
    placeholder = OverlayGraph(n) if not needs_residual else None
    for node in node_list:
        residual = (
            wiring.to_graph(active=node_list) if needs_residual else placeholder
        )
        chosen = policy.select(
            node,
            k,
            metric,
            residual,
            candidates=[c for c in node_list if c != node],
            rng=rng,
            preferences=preferences,
            destinations=[d for d in node_list if d != node],
        )
        # One row lookup instead of len(chosen) link_weight calls; the
        # row holds the same floats, so wirings are unchanged.
        row = metric.link_weight_row(node)
        weights = {v: float(row[v]) for v in chosen}
        wiring.set_wiring(Wiring.of(node, chosen), weights)

    if ensure_connected and not isinstance(policy, FullMeshPolicy):
        enforce_connectivity_cycle(wiring, metric, nodes=node_list)
    return wiring


def seed_random_overlay(
    metric: Metric,
    k: int,
    node_list: Sequence[int],
    rng: np.random.Generator,
) -> GlobalWiring:
    """The k-Random starting wiring of best-response dynamics.

    Shared by the sequential overlay builder and the batched
    multi-deployment sweep (:mod:`repro.core.deployment_batch`) so that
    both consume the deployment's RNG stream identically.
    """
    wiring = GlobalWiring(metric.size)
    seed_policy = KRandomPolicy()
    placeholder = OverlayGraph(metric.size)
    for node in node_list:
        chosen = seed_policy.select(
            node,
            k,
            metric,
            placeholder,
            candidates=[c for c in node_list if c != node],
            rng=rng,
        )
        row = metric.link_weight_row(node)
        weights = {v: float(row[v]) for v in chosen}
        wiring.set_wiring(Wiring.of(node, chosen), weights)
    return wiring


def best_response_rewire_step(
    policy: "BestResponsePolicy",
    metric: Metric,
    k: int,
    node: int,
    wiring: GlobalWiring,
    evaluator: WiringEvaluator,
    rng: np.random.Generator,
) -> bool:
    """One re-wiring opportunity of best-response dynamics.

    Scores the node's current wiring and its best response on the
    supplied evaluator, adopts the new wiring under the BR(ε) rule, and
    returns whether the node actually re-wired.  This is the unit of work
    both the sequential builder and the batched lockstep share — byte
    identity between the two paths reduces to feeding this step the same
    evaluator values and RNG state.
    """
    current = wiring.wiring_of(node)
    current_cost = evaluator.evaluate(current.neighbors if current else ())
    result = best_response(
        evaluator,
        k,
        exact_threshold=policy.exact_threshold,
        rng=rng,
        max_iterations=policy.max_iterations,
        vectorized=policy.vectorized,
    )
    adopt = current is None or should_rewire(
        metric, current_cost, result.cost, policy.epsilon
    )
    if adopt and (current is None or set(result.neighbors) != set(current.neighbors)):
        weights = {v: metric.link_weight(node, v) for v in result.neighbors}
        wiring.set_wiring(result.as_wiring(), weights)
        return True
    return False


def _build_best_response_overlay(
    policy: BestResponsePolicy,
    metric: Metric,
    k: int,
    node_list: Sequence[int],
    *,
    preferences: Optional[np.ndarray],
    rng: np.random.Generator,
    rounds: int,
) -> GlobalWiring:
    """Best-response dynamics starting from a random wiring."""
    wiring = seed_random_overlay(metric, k, node_list, rng)
    order = list(node_list)
    for _round in range(int(rounds)):
        rng.shuffle(order)
        changed = 0
        for node in order:
            residual = wiring.residual_graph(node, active=node_list)
            evaluator = WiringEvaluator(
                node=node,
                metric=metric,
                residual_graph=residual,
                candidates=[c for c in node_list if c != node],
                preferences=preferences,
                destinations=[d for d in node_list if d != node],
            )
            if best_response_rewire_step(
                policy, metric, k, node, wiring, evaluator, rng
            ):
                changed += 1
        if changed == 0:
            break
    return wiring


#: Registry of the standard policies keyed by their figure labels.
STANDARD_POLICIES: Dict[str, NeighborSelectionPolicy] = {
    "k-random": KRandomPolicy(),
    "k-closest": KClosestPolicy(),
    "k-regular": KRegularPolicy(),
    "best-response": BestResponsePolicy(),
    "full-mesh": FullMeshPolicy(),
}
