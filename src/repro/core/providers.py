"""Metric providers: bridge between the substrate models and the metrics.

A provider owns a substrate model (delay space, load model, bandwidth
model), exposes the *announced* metric a node would compute its wiring from
(built from ping probes, coordinate queries, chirp probes, or local load
measurements) and the *true* metric used to evaluate the resulting overlay,
and advances the substrate's dynamics between wiring epochs.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.core.cost import BandwidthMetric, DelayMetric, Metric, NodeLoadMetric
from repro.netsim.bandwidth import BandwidthModel
from repro.netsim.coordinates import VivaldiCoordinateSystem
from repro.netsim.delayspace import DelaySpace
from repro.netsim.load import NodeLoadModel
from repro.util.rng import SeedLike, as_generator
from repro.util.validation import ValidationError


class MetricProvider(abc.ABC):
    """Supplies announced and true metrics, epoch after epoch."""

    @property
    @abc.abstractmethod
    def size(self) -> int:
        """Number of overlay nodes."""

    @abc.abstractmethod
    def announced_metric(self) -> Metric:
        """The metric as nodes would measure/announce it right now."""

    @abc.abstractmethod
    def true_metric(self) -> Metric:
        """The ground-truth metric for performance evaluation."""

    def advance(self, epochs: int = 1) -> None:
        """Advance substrate dynamics by ``epochs`` wiring epochs."""


class DelayMetricProvider(MetricProvider):
    """Delay metric from a :class:`DelaySpace`, measured by ping or pyxida.

    Parameters
    ----------
    delay_space:
        Ground-truth one-way delays.
    estimator:
        ``"ping"`` (RTT/2 averaged over a few noisy samples), ``"pyxida"``
        (Vivaldi coordinate estimates), or ``"true"`` (oracle, useful for
        tests and upper bounds).
    drift_relative_std:
        Relative standard deviation of the multiplicative drift applied to
        the ground-truth delays at every epoch (Internet path dynamics).
    ping_samples:
        Samples averaged per ping estimate.
    coordinate_rounds:
        Vivaldi training rounds performed initially (pyxida estimator).
    seed:
        Seed or generator.
    """

    def __init__(
        self,
        delay_space: DelaySpace,
        *,
        estimator: str = "ping",
        drift_relative_std: float = 0.0,
        ping_samples: int = 3,
        coordinate_rounds: int = 40,
        seed: SeedLike = None,
    ):
        if estimator not in ("ping", "pyxida", "true"):
            raise ValidationError(f"unknown estimator {estimator!r}")
        self._space = delay_space
        self.estimator = estimator
        self.drift_relative_std = float(drift_relative_std)
        self.ping_samples = int(ping_samples)
        self._rng = as_generator(seed)
        self._coords: Optional[VivaldiCoordinateSystem] = None
        if estimator == "pyxida":
            self._coords = VivaldiCoordinateSystem(delay_space.size, seed=self._rng)
            self._coords.train(
                delay_space, rounds=coordinate_rounds, rng=self._rng
            )

    @property
    def size(self) -> int:
        return self._space.size

    @property
    def delay_space(self) -> DelaySpace:
        """The current ground-truth delay space."""
        return self._space

    def true_metric(self) -> DelayMetric:
        return DelayMetric(self._space.matrix)

    def announced_metric(self) -> DelayMetric:
        if self.estimator == "true":
            return self.true_metric()
        if self.estimator == "pyxida":
            estimates = self._coords.estimate_matrix()
            return DelayMetric(np.maximum(estimates, 0.0))
        # ping: RTT/2 averaged over a few jittered samples, vectorised.
        n = self._space.size
        truth = self._space.matrix
        estimates = np.zeros((n, n))
        for _ in range(self.ping_samples):
            jitter_fwd = self._rng.normal(0.0, self._space.jitter_std, size=(n, n))
            jitter_rev = self._rng.normal(0.0, self._space.jitter_std, size=(n, n))
            rtt = np.maximum(0.0, truth + jitter_fwd) + np.maximum(0.0, truth.T + jitter_rev)
            estimates += rtt / 2.0
        estimates /= self.ping_samples
        np.fill_diagonal(estimates, 0.0)
        return DelayMetric(estimates)

    def advance(self, epochs: int = 1) -> None:
        for _ in range(int(epochs)):
            if self.drift_relative_std > 0:
                self._space = self._space.perturbed(
                    self.drift_relative_std, rng=self._rng
                )
            if self._coords is not None:
                # Coordinates keep gossiping a little every epoch.
                self._coords.train(
                    self._space, rounds=1, samples_per_round=4, rng=self._rng
                )


class LoadMetricProvider(MetricProvider):
    """Node-load metric from a :class:`NodeLoadModel`."""

    def __init__(self, load_model: NodeLoadModel):
        self._model = load_model

    @property
    def size(self) -> int:
        return self._model.n

    @property
    def load_model(self) -> NodeLoadModel:
        """The underlying load process."""
        return self._model

    def announced_metric(self) -> NodeLoadMetric:
        return NodeLoadMetric(self._model.measured_loads())

    def true_metric(self) -> NodeLoadMetric:
        return NodeLoadMetric(self._model.true_loads())

    def advance(self, epochs: int = 1) -> None:
        self._model.advance(epochs)


class BandwidthMetricProvider(MetricProvider):
    """Available-bandwidth metric from a :class:`BandwidthModel`."""

    def __init__(
        self,
        bandwidth_model: BandwidthModel,
        *,
        probe_relative_error: float = 0.1,
        seed: SeedLike = None,
    ):
        self._model = bandwidth_model
        self.probe_relative_error = float(probe_relative_error)
        self._rng = as_generator(seed)

    @property
    def size(self) -> int:
        return self._model.n

    @property
    def bandwidth_model(self) -> BandwidthModel:
        """The underlying bandwidth process."""
        return self._model

    def true_metric(self) -> BandwidthMetric:
        return BandwidthMetric(self._model.matrix())

    def announced_metric(self) -> BandwidthMetric:
        truth = self._model.matrix()
        n = self._model.n
        noise = 1.0 + self._rng.normal(0.0, self.probe_relative_error, size=(n, n))
        estimates = np.maximum(0.1, truth * np.abs(noise))
        np.fill_diagonal(estimates, np.inf)
        return BandwidthMetric(estimates)

    def advance(self, epochs: int = 1) -> None:
        self._model.advance(epochs)
