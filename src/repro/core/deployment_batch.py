"""Batched multi-deployment sweep kernels.

The paper's k-sweeps (Fig. 1 and friends) compare many *independent*
overlay deployments — one per (policy, k, metric) triple — that share one
underlay.  Building and scoring them one after another leaves the
vectorised best-response kernels idle between deployments; this module
stacks the per-deployment work instead:

* **Construction.**  Best-response dynamics of all deployments run in
  lockstep.  The expensive part of a re-wiring opportunity is the
  multi-source sweep producing the node's residual route-value matrix;
  the batch precomputes those matrices for *waves* of upcoming
  ``(deployment, node)`` opportunities in shared kernel calls — a
  single block-diagonal CSR Dijkstra for the additive metrics;
  Floyd-Warshall max-min closures
  (:func:`repro.routing.widest_path.bottleneck_closure_fw`), or one
  divide-and-conquer
  :func:`~repro.routing.widest_path.bottleneck_avoid_one` pass serving
  *every* node of an overlay version at once, for bandwidth — and
  injects them through each deployment's
  :class:`~repro.core.route_cache.ResidualRouteCache`.  Cache tokens are
  the engine's ``(wiring version, metric fingerprint, membership)``
  triples, with :func:`~repro.core.route_cache.metric_fingerprint`
  computed once per distinct underlay snapshot and shared by every
  deployment announcing the same matrix; a re-wire bumps the wiring
  version, so stale wave entries stop matching without explicit
  invalidation.  Wave sizes adapt per deployment (grow on a quiet run,
  reset on a re-wire) so quiescent rounds cost one kernel call while
  churning rounds waste almost no speculative work.  The re-wiring
  opportunities themselves are also fused: the current-wiring
  evaluation, every greedy-seed pass, and every local-search swap pass
  of all same-objective deployments run as single broadcasts over one
  stacked via tensor (:meth:`DeploymentBatch._fused_rewire_steps`).

* **Scoring.**  The built overlays' route-value matrices are stacked
  into a single ``(deployments x hops x destinations)`` tensor — one
  block-diagonal Dijkstra, or max-min closures, per objective group —
  and every node cost of every deployment falls out of one
  preference-weighted broadcast.  Deployments whose graph and objective
  fingerprints match (e.g. full-mesh overlays over a drift-free
  underlay) share one tensor slice.

Both phases are bitwise identical to the sequential reference path:
``batched=False`` preserves the pre-batching implementation verbatim
(per-deployment builds with per-node residual graph construction and
per-source heap widest-path sweeps, then one ``all_node_costs`` per
deployment) as the parity anchor and benchmark baseline, the same way
the best-response kernels keep their interpreted path behind
``vectorized=False``.  Route values are computed by the same exact
selections/summations on block-separated problems, objective reductions
use the same elementwise operations in the same order, and each
deployment consumes its own spawned RNG stream in the same sequence
either way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra as _csgraph_dijkstra

from repro.core.best_response import WiringEvaluator, should_rewire
from repro.core.cost import Metric, uniform_preferences
from repro.core.policies import (
    BestResponsePolicy,
    FullMeshPolicy,
    KRandomPolicy,
    NeighborSelectionPolicy,
    best_response_rewire_step,
    build_overlay,
    enforce_connectivity_cycle,
    seed_random_overlay,
)
from repro.core.route_cache import (
    ResidualRouteCache,
    array_fingerprint,
    metric_fingerprint,
)
from repro.core.wiring import GlobalWiring, Wiring
from repro.routing.graph import OverlayGraph
from repro.telemetry import runtime as telemetry
from repro.routing.widest_path import (
    CLOSURE_MAX_NODES,
    bottleneck_avoid_one,
    bottleneck_closure_fw,
    reference_kernels,
    widest_path_bandwidths_multi,
)
from repro.util.rng import SeedLike, as_generator
from repro.util.validation import ValidationError

#: Soft cap on the stacked node count of one block-diagonal Dijkstra call
#: (the dense distance output is ``blocks*n x blocks*n`` float64, so 4096
#: keeps a call's output near 128 MB).
_DIJKSTRA_BLOCK_NODES = 4096

#: Wave size from which one divide-and-conquer avoid-one pass (all
#: residual matrices of the overlay version at once) beats closing the
#: requested residuals one by one.
_AVOID_ONE_MIN_WAVE = 8

class _CacheOnlyResidual:
    """Placeholder residual graph for cache-fed evaluators.

    The batched build guarantees every :class:`WiringEvaluator` it
    constructs finds its residual route-value matrix in the deployment's
    route cache, so the residual graph is never consulted.  Touching it
    anyway means the guarantee broke — fail loudly instead of silently
    recomputing from a wrong graph.
    """

    def __getattr__(self, name: str):
        raise ValidationError(
            "batched sweep expected the residual route matrix to be cached; "
            f"evaluator tried to read residual_graph.{name}"
        )


_CACHE_ONLY_RESIDUAL = _CacheOnlyResidual()


@dataclass
class DeploymentSpec:
    """One independent overlay deployment of a sweep.

    Parameters
    ----------
    label:
        Series label (e.g. the policy name) — not required to be unique.
    policy:
        Neighbour-selection policy building the overlay.
    k:
        Per-node neighbour budget.
    announced:
        The metric wirings are chosen from (what nodes measured).
    truth:
        The metric the built overlay is evaluated on.
    br_rounds:
        Best-response dynamics round limit (BR policies only).
    preferences:
        Preference matrix (uniform by default).
    ensure_connected:
        Whether structural policies enforce the connectivity cycle.
    rng:
        The deployment's *own* RNG stream.  Give every spec an
        independent stream (e.g. via
        :func:`repro.util.rng.spawn_generators`) — the batched and
        sequential paths then consume identical draws per deployment
        regardless of build interleaving.
    """

    label: str
    policy: NeighborSelectionPolicy
    k: int
    announced: Metric
    truth: Metric
    br_rounds: int = 6
    preferences: Optional[np.ndarray] = None
    ensure_connected: bool = True
    rng: SeedLike = None


class _BRBuildState:
    """Lockstep best-response dynamics state of one deployment."""

    __slots__ = (
        "index",
        "spec",
        "rng",
        "node_list",
        "candidates",
        "hops_key",
        "hops_rows",
        "active_key",
        "metric_fp",
        "preferences",
        "fusable",
        "direct_rows",
        "pref_rows",
        "wiring",
        "dense",
        "cache",
        "order",
        "pos",
        "changed",
        "round",
        "wave",
    )

    def __init__(self, index: int, spec: DeploymentSpec, metric_fp: str):
        self.index = index
        self.spec = spec
        self.rng = as_generator(spec.rng)
        n = spec.announced.size
        self.node_list = list(range(n))
        self.active_key = tuple(self.node_list)
        self.metric_fp = metric_fp
        # Per-node candidate/hop structures (full membership, so they are
        # the same "everyone else" lists the sequential builder passes).
        self.candidates = [
            [c for c in self.node_list if c != node] for node in self.node_list
        ]
        self.hops_key = [tuple(c) for c in self.candidates]
        self.hops_rows = [np.array(c, dtype=int) for c in self.candidates]
        # Same values an evaluator would default to; precomputed once so
        # the fused kernels can gather preference rows per step.
        self.preferences = (
            spec.preferences
            if spec.preferences is not None
            else uniform_preferences(n)
        )
        # The fused broadcasts replicate best_response's greedy-seeded
        # local search; deployments that would take another branch
        # (exact enumeration on small candidate pools, k = 0, or the
        # interpreted kernels) step through a per-deployment evaluator.
        policy = spec.policy
        self.fusable = (
            policy.vectorized
            and int(spec.k) >= 1
            and n - 1 > int(policy.exact_threshold)
        )
        # Static per-node rows (the announced metric and preferences do
        # not change during a build): direct link weights to the node's
        # hops, and the node's preference weights over its destinations.
        self.direct_rows: Dict[int, np.ndarray] = {}
        self.pref_rows: Dict[int, np.ndarray] = {}
        self.wiring = seed_random_overlay(spec.announced, spec.k, self.node_list, self.rng)
        self.dense = _announced_dense(spec.announced, self.wiring, n)
        self.cache = ResidualRouteCache(max_entries=n)
        self.order = list(self.node_list)
        self.pos = len(self.order)
        self.changed = 0
        self.round = 0
        self.wave = 1

    def static_rows(self, node: int) -> Tuple[np.ndarray, np.ndarray]:
        """Cached ``(direct link weights, preference weights)`` over hops."""
        direct = self.direct_rows.get(node)
        if direct is None:
            hops = self.hops_rows[node]
            direct = self.spec.announced.link_weight_row(node)[hops]
            self.direct_rows[node] = direct
            self.pref_rows[node] = self.preferences[node, hops]
        return direct, self.pref_rows[node]

    # ------------------------------------------------------------------ #
    def refresh_token(self) -> None:
        self.cache.set_token(
            (self.wiring.version, self.metric_fp, self.active_key)
        )

    def start_round(self) -> None:
        self.rng.shuffle(self.order)
        self.pos = 0
        self.changed = 0
        self.round += 1

    def round_finished(self) -> bool:
        return self.pos >= len(self.order)

    def converged(self) -> bool:
        return self.round >= int(self.spec.br_rounds) or (
            self.round > 0 and self.changed == 0
        )

    def note_rewired(self, node: int) -> None:
        """Track a re-wire: refresh the dense row, reset the wave."""
        row = self.dense[node]
        row[:] = np.nan
        for v, w in self.wiring.weights_of(node).items():
            row[v] = w
        self.wave = 1

    def grow_wave(self) -> None:
        # Linear growth bets on a quiet streak continuing roughly as long
        # as it has lasted; a re-wire throws the rest of the wave away,
        # so speculation is capped harder for the bandwidth closures (a
        # wasted member costs a full n^3 closure) than for the additive
        # Dijkstra blocks.
        cap = 8 if self.spec.announced.maximize else 16
        self.wave = min(self.wave + 1, cap)


def _announced_dense(metric: Metric, wiring: GlobalWiring, n: int) -> np.ndarray:
    """Dense announced-weight matrix of ``wiring`` (NaN marks absent edges)."""
    dense = np.full((n, n), np.nan)
    for node in range(n):
        for v, w in wiring.weights_of(node).items():
            dense[node, v] = w
    return dense


def _graph_dense(graph) -> np.ndarray:
    """Dense weight matrix of an :class:`OverlayGraph` (NaN absent)."""
    dense = np.full((graph.n, graph.n), np.nan)
    for u, v, w in graph.edges():
        dense[u, v] = w
    return dense


def _graph_from_bandwidth_dense(adjacency: np.ndarray) -> OverlayGraph:
    """Overlay graph of a dense bottleneck adjacency (0 absent, inf diag)."""
    n = adjacency.shape[0]
    graph = OverlayGraph(n)
    offdiag = ~np.eye(n, dtype=bool)
    for u, v in zip(*np.nonzero((adjacency > 0) & offdiag)):
        graph.add_edge(int(u), int(v), float(adjacency[u, v]))
    return graph


def _block_dijkstra(stack: np.ndarray) -> np.ndarray:
    """All-sources shortest-path costs of every member of ``stack``.

    ``stack`` is a ``(members, n, n)`` tensor of additive weight matrices
    with NaN marking absent edges.  The members are packed into one
    block-diagonal CSR matrix and swept by a single csgraph Dijkstra call
    with every node as a source; since blocks are disconnected from each
    other, slicing the diagonal blocks of the result reproduces exactly
    the per-member ``shortest_path_costs_multi`` matrices (unreachable
    stays ``+inf``).  Zero weights get the same ``1e-12`` nudge as
    :func:`repro.routing.shortest_path._to_csr`.
    """
    members, n, _ = stack.shape
    mask = ~np.isnan(stack)
    counts = mask.sum(axis=2).reshape(members * n)
    indptr = np.zeros(members * n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    member_idx, _row_idx, col_idx = np.nonzero(mask)
    data = stack[mask]
    data = np.where(data > 0, data, 1e-12)
    indices = member_idx * n + col_idx
    big = csr_matrix(
        (data, indices.astype(np.int64), indptr),
        shape=(members * n, members * n),
    )
    dist = _csgraph_dijkstra(big, directed=True, indices=np.arange(members * n))
    dist = np.asarray(dist, dtype=float).reshape(members, n, members, n)
    member_idx = np.arange(members)
    # Diagonal blocks only: member m's sources against member m's columns.
    return dist[member_idx, :, member_idx, :]


def _batched_route_matrices(
    stack: np.ndarray, maximize: bool, *, block_nodes: int = _DIJKSTRA_BLOCK_NODES
) -> np.ndarray:
    """Route-value matrices of stacked deployments, chunked by memory.

    Additive metrics go through the block-diagonal Dijkstra; bandwidth
    through the max-min closure tensor (NaN-marked absences become the
    closure's 0/``+inf`` conventions).  ``block_nodes`` caps the stacked
    node count per Dijkstra call (its dense distance output is quadratic
    in it); callers batching many small members per round (the lockstep
    engine batch) pass a lower cap than the sweep default.
    """
    members, n, _ = stack.shape
    telemetry.kernel_call(
        "batched_route_matrices.widest" if maximize else "batched_route_matrices.dijkstra",
        members * n,
    )
    out = np.empty_like(stack)
    if maximize:
        adjacency = np.where(np.isnan(stack), 0.0, stack)
        idx = np.arange(n)
        adjacency[:, idx, idx] = np.inf
        if n > CLOSURE_MAX_NODES:
            # Dense closures are O(n^3) per member; past the cutoff the
            # per-source heap search (bitwise identical) wins.
            for m in range(members):
                graph = _graph_from_bandwidth_dense(adjacency[m])
                out[m] = widest_path_bandwidths_multi(
                    graph, list(range(n)), batched=False
                )
        else:
            for m in range(members):
                out[m] = bottleneck_closure_fw(adjacency[m])
    else:
        chunk = max(1, int(block_nodes) // max(1, n))
        for start in range(0, members, chunk):
            stop = min(start + chunk, members)
            out[start:stop] = _block_dijkstra(stack[start:stop])
    return out


def _structural_overlay(spec: DeploymentSpec) -> GlobalWiring:
    """Build a structural (non-BR) deployment on the batched path.

    Structural policies select from ids and direct link weights alone, so
    there is nothing to stack — this is one pass of per-node selections
    plus the connectivity cycle, sharing the deployment's RNG stream with
    the reference path.
    """
    return build_overlay(
        spec.policy,
        spec.announced,
        spec.k,
        preferences=spec.preferences,
        rng=spec.rng,
        br_rounds=spec.br_rounds,
        ensure_connected=spec.ensure_connected,
    )


def _reference_build_overlay(spec: DeploymentSpec) -> GlobalWiring:
    """The pre-batching overlay construction, preserved as the baseline.

    This is the sequential implementation the batch subsystem replaced,
    kept verbatim so ``batched=False`` measures it: a residual graph is
    rebuilt per node even for structural policies, the best-response seed
    phase rebuilds the growing overlay graph per node, and every
    re-wiring opportunity runs its own multi-source residual sweep
    (per-source heap widest paths under :func:`reference_kernels`).  It
    consumes the deployment's RNG stream exactly like the batched build,
    so the two return bit-identical wirings — parity tests pin this.
    """
    rng = as_generator(spec.rng)
    metric = spec.announced
    n = metric.size
    node_list = list(range(n))
    candidates_of = {
        node: [c for c in node_list if c != node] for node in node_list
    }
    wiring = GlobalWiring(n)

    if not isinstance(spec.policy, BestResponsePolicy):
        for node in node_list:
            residual = wiring.to_graph(active=node_list)
            chosen = spec.policy.select(
                node,
                spec.k,
                metric,
                residual,
                candidates=candidates_of[node],
                rng=rng,
                preferences=spec.preferences,
                destinations=candidates_of[node],
            )
            weights = {v: metric.link_weight(node, v) for v in chosen}
            wiring.set_wiring(Wiring.of(node, chosen), weights)
        if spec.ensure_connected and not isinstance(spec.policy, FullMeshPolicy):
            enforce_connectivity_cycle(wiring, metric, nodes=node_list)
        return wiring

    seed_policy = KRandomPolicy()
    for node in node_list:
        chosen = seed_policy.select(
            node,
            spec.k,
            metric,
            wiring.to_graph(active=node_list),
            candidates=candidates_of[node],
            rng=rng,
        )
        weights = {v: metric.link_weight(node, v) for v in chosen}
        wiring.set_wiring(Wiring.of(node, chosen), weights)

    order = list(node_list)
    for _round in range(int(spec.br_rounds)):
        rng.shuffle(order)
        changed = 0
        for node in order:
            residual = wiring.residual_graph(node, active=node_list)
            evaluator = WiringEvaluator(
                node=node,
                metric=metric,
                residual_graph=residual,
                candidates=candidates_of[node],
                preferences=spec.preferences,
                destinations=candidates_of[node],
            )
            if best_response_rewire_step(
                spec.policy, metric, spec.k, node, wiring, evaluator, rng
            ):
                changed += 1
        if changed == 0:
            break
    return wiring


class DeploymentBatch:
    """A sweep of independent deployments over one shared underlay.

    Parameters
    ----------
    specs:
        The deployments, all over metrics of the same size.  Mixed metric
        families are allowed (the kernels group by objective direction).
    batched:
        ``True`` (default) uses the stacked kernels; ``False`` is the
        sequential reference path — the pre-batching implementation
        preserved verbatim (:func:`_reference_build_overlay` per
        deployment, then ``Metric.all_node_costs`` with per-source
        widest-path sweeps) — kept for parity testing and as the
        benchmark baseline, exactly as the best-response kernels keep
        their interpreted path behind ``vectorized=False``.  Both
        produce bit-identical results.
    """

    def __init__(self, specs: Sequence[DeploymentSpec], *, batched: bool = True):
        specs = list(specs)
        if not specs:
            raise ValidationError("a DeploymentBatch needs at least one spec")
        sizes = {spec.announced.size for spec in specs}
        sizes |= {spec.truth.size for spec in specs}
        if len(sizes) != 1:
            raise ValidationError(
                f"all deployments must share one overlay size, got {sorted(sizes)}"
            )
        self.specs: List[DeploymentSpec] = specs
        self.batched = bool(batched)
        self.n = specs[0].announced.size
        # "Underlay snapshot" fingerprints, shared across deployments that
        # announce the same metric object.
        self._metric_fps: Dict[int, str] = {}

    # ------------------------------------------------------------------ #
    # Fingerprints
    # ------------------------------------------------------------------ #
    def announced_fingerprint(self, metric: Metric) -> str:
        """Cached :func:`metric_fingerprint` of an announced metric."""
        key = id(metric)
        fp = self._metric_fps.get(key)
        if fp is None:
            fp = metric_fingerprint(metric)
            self._metric_fps[key] = fp
        return fp

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def build(self) -> List[GlobalWiring]:
        """Build every deployment's overlay (order-independent per spec)."""
        if not self.batched:
            with reference_kernels():
                return [_reference_build_overlay(spec) for spec in self.specs]
        wirings: List[Optional[GlobalWiring]] = [None] * len(self.specs)
        lockstep: List[Tuple[int, DeploymentSpec]] = []
        for i, spec in enumerate(self.specs):
            if isinstance(spec.policy, BestResponsePolicy):
                lockstep.append((i, spec))
            else:
                wirings[i] = _structural_overlay(spec)
        if lockstep:
            for (i, _spec), wiring in zip(lockstep, self._build_lockstep(lockstep)):
                wirings[i] = wiring
        return [w for w in wirings if w is not None]

    def _build_lockstep(
        self, items: Sequence[Tuple[int, DeploymentSpec]]
    ) -> List[GlobalWiring]:
        """Best-response dynamics of many deployments, in lockstep.

        Every loop iteration advances each live deployment by exactly one
        re-wiring opportunity: residual matrices for the current nodes
        (plus adaptive lookahead waves) come from one kernel call, and
        the opportunities themselves — current-wiring evaluation, greedy
        seeding, and local-search swap passes — are scored for all fused
        deployments in shared broadcasts (:meth:`_fused_rewire_steps`).
        """
        states = [
            _BRBuildState(i, spec, self.announced_fingerprint(spec.announced))
            for i, spec in items
        ]
        # A zero-round deployment keeps its seed wiring (and, like the
        # sequential path, never draws a round shuffle).
        live = [st for st in states if int(st.spec.br_rounds) > 0]
        for st in live:
            st.start_round()
        while live:
            self._refill_waves(live)
            # Fused groups must share the full objective convention —
            # direction AND disconnection value — since the broadcast
            # clamps use one value for the whole group.
            groups: Dict[Tuple[bool, float], List[_BRBuildState]] = {}
            for st in live:
                if st.fusable:
                    metric = st.spec.announced
                    key = (bool(metric.maximize), float(metric.unreachable_value))
                    groups.setdefault(key, []).append(st)
            for group in groups.values():
                self._fused_rewire_steps(group)
            for st in live:
                if not st.fusable:
                    self._evaluator_rewire_step(st)
            finished: List[_BRBuildState] = []
            for st in live:
                if st.round_finished():
                    if st.converged():
                        finished.append(st)
                    else:
                        st.start_round()
            if finished:
                live = [st for st in live if st not in finished]
        return [st.wiring for st in states]

    def _refill_waves(self, live: Sequence[_BRBuildState]) -> None:
        """Precompute residual route matrices for each state's next wave."""
        additive: List[Tuple[_BRBuildState, int]] = []
        for st in live:
            st.refresh_token()
            missing = [
                node
                for node in st.order[st.pos : st.pos + st.wave]
                if st.hops_key[node]
                and st.cache.get(node, st.hops_key[node]) is None
            ]
            if not missing:
                continue
            if st.spec.announced.maximize:
                self._refill_bandwidth(st, missing)
            else:
                additive.extend((st, node) for node in missing)
        if not additive:
            return
        n = self.n
        stack = np.empty((len(additive), n, n))
        for j, (st, node) in enumerate(additive):
            stack[j] = st.dense
            stack[j, node, :] = np.nan
        matrices = _batched_route_matrices(stack, maximize=False)
        for j, (st, node) in enumerate(additive):
            st.cache.put(
                node, st.hops_key[node], matrices[j][st.hops_rows[node], :]
            )

    def _refill_bandwidth(self, st: _BRBuildState, missing: Sequence[int]) -> None:
        """Residual bottleneck matrices for one bandwidth deployment.

        Small waves close each node's residual adjacency directly
        (Floyd-Warshall pivoting); once the wave says the overlay is
        quiet, one divide-and-conquer :func:`bottleneck_avoid_one` pass
        yields the residual matrices of *every* node of the current
        overlay version at once, and the whole round is served from the
        cache until the next re-wire.  Both produce bitwise-identical
        slices (max-min values are selections, not arithmetic).
        """
        n = self.n
        if n > CLOSURE_MAX_NODES:
            # Dense closures (and the (n, n, n) avoid-one tensor) are
            # O(n^3) in time/memory; past the cutoff run the per-source
            # heap search on each residual graph — bitwise identical.
            for node in missing:
                residual = st.wiring.residual_graph(node, active=st.node_list)
                rows = widest_path_bandwidths_multi(
                    residual, st.candidates[node], batched=False
                )
                st.cache.put(node, st.hops_key[node], rows)
            return
        adjacency = np.where(np.isnan(st.dense), 0.0, st.dense)
        np.fill_diagonal(adjacency, np.inf)
        if len(missing) >= _AVOID_ONE_MIN_WAVE:
            tensor = bottleneck_avoid_one(adjacency)
            for node in st.node_list:
                if st.hops_key[node]:
                    st.cache.put(
                        node, st.hops_key[node], tensor[node][st.hops_rows[node], :]
                    )
            return
        for node in missing:
            residual = adjacency.copy()
            residual[node, :] = 0.0
            residual[node, node] = np.inf
            closure = bottleneck_closure_fw(residual)
            st.cache.put(node, st.hops_key[node], closure[st.hops_rows[node], :])

    def _evaluator_rewire_step(self, st: _BRBuildState) -> None:
        """One re-wiring opportunity through a cache-fed evaluator.

        Fallback for deployments the fused kernels do not cover (small
        candidate pools that take the exact-enumeration branch, k = 0,
        or interpreted-kernel policies): same step semantics, one
        deployment at a time.
        """
        spec = st.spec
        node = st.order[st.pos]
        st.refresh_token()
        evaluator = WiringEvaluator(
            node=node,
            metric=spec.announced,
            residual_graph=_CACHE_ONLY_RESIDUAL,
            candidates=st.candidates[node],
            preferences=spec.preferences,
            destinations=st.candidates[node],
            route_cache=st.cache,
        )
        rewired = best_response_rewire_step(
            spec.policy, spec.announced, spec.k, node, st.wiring, evaluator, st.rng
        )
        st.pos += 1
        if rewired:
            st.changed += 1
            st.note_rewired(node)
        else:
            st.grow_wave()

    def _fused_rewire_steps(self, group: Sequence[_BRBuildState]) -> None:
        """One re-wiring opportunity per deployment, in shared broadcasts.

        All deployments in ``group`` share the objective direction, so
        their ``(hops x destinations)`` via matrices stack into one
        ``(deployments x hops x destinations)`` tensor and every kernel of
        the sequential step — scoring the node's current wiring, each
        greedy-seed pass, and each local-search swap pass — becomes a
        single broadcast over it.  Deployments are padded to common
        widths with identity rows (a hop index ``H`` pointing at an
        all-identity via row), which min/max reductions ignore, so the
        per-deployment values are bitwise identical to running
        :func:`~repro.core.policies.best_response_rewire_step` with a
        per-deployment evaluator — including tie-breaking, which resolves
        through the same argmin/argsort lanes.
        """
        D = len(group)
        n = self.n
        H = n - 1
        metric0 = group[0].spec.announced
        maximize = bool(metric0.maximize)
        unreachable = metric0.unreachable_value
        combine = np.maximum if maximize else np.minimum
        identity = -np.inf if maximize else np.inf
        sentinel = identity

        # Largest budgets first: the deployments still seeding at greedy
        # step s then form a prefix, so per-pass kernels slice views
        # instead of masking lanes.  Order inside the group is free —
        # deployments are independent and draw from their own streams.
        group = sorted(group, key=lambda st: -min(int(st.spec.k), H))
        nodes = [st.order[st.pos] for st in group]
        via = np.empty((D, H + 1, H))
        prefs = np.empty((D, H))
        directs = np.empty((D, H))
        resid_dest = np.empty((D, H, H))
        ks = np.empty(D, dtype=int)
        for d, (st, node) in enumerate(zip(group, nodes)):
            resid = st.cache.get(node, st.hops_key[node])
            if resid is None:  # pragma: no cover - refill guarantees this
                raise ValidationError(
                    "fused step expected the residual route matrix to be cached"
                )
            resid_dest[d] = resid[:, st.hops_rows[node]]
            directs[d], prefs[d] = st.static_rows(node)
            ks[d] = min(int(st.spec.k), H)
        if maximize:
            np.minimum(directs[:, :, None], resid_dest, out=via[:, :H, :])
        else:
            np.add(directs[:, :, None], resid_dest, out=via[:, :H, :])
        via[:, H, :] = identity
        d_idx = np.arange(D)
        # Mirrors WiringEvaluator._via_clean: when every via value is
        # reachable the clamp is an identity and the kernels skip it
        # (the padded identity row is reachable by construction for the
        # reductions that consult it, so it is excluded from the check).
        if maximize:
            via_clean = bool(
                np.all(np.isfinite(via[:, :H, :]) & (via[:, :H, :] > 0))
            )
        else:
            via_clean = bool(np.all(np.isfinite(via[:, :H, :])))

        def objective(rows: np.ndarray) -> np.ndarray:
            """Objective of one padded wiring per deployment (rows (D, R))."""
            vals = via[d_idx[:, None], rows]
            best = vals.max(axis=1) if maximize else vals.min(axis=1)
            if maximize:
                best = np.where(
                    np.isfinite(best) & (best > 0), best, unreachable
                )
            else:
                best = np.where(np.isfinite(best), best, unreachable)
            return (prefs * best).sum(axis=1)

        def clamp_(values: np.ndarray) -> np.ndarray:
            if via_clean:
                # Reductions over reachable values stay reachable, so
                # the clamp is an identity (same rule as the scalar
                # kernels' _via_clean gate).
                return values
            if maximize:
                bad = ~(np.isfinite(values) & (values > 0))
            else:
                bad = ~np.isfinite(values)
            values[bad] = unreachable
            return values

        # --- score each node's current wiring ------------------------- #
        neighbor_rows = []
        for st, node in zip(group, nodes):
            wiring = st.wiring.wiring_of(node)
            neighbors = wiring.neighbors if wiring is not None else frozenset()
            neighbor_rows.append([c - (c > node) for c in neighbors])
        width = max(1, max(len(rows) for rows in neighbor_rows))
        existing = np.full((D, width), H, dtype=int)
        for d, rows in enumerate(neighbor_rows):
            existing[d, : len(rows)] = rows
        existing_cost = objective(existing)

        # --- greedy marginal-gain seeding ----------------------------- #
        k_max = int(ks.max())
        running = np.full((D, H), identity)
        taken = np.zeros((D, H), dtype=bool)
        chosen = np.full((D, k_max), H, dtype=int)
        for step in range(k_max):
            live = int(np.count_nonzero(step < ks))  # a prefix: ks sorted desc
            trial = combine(running[:live, None, :], via[:live, :H, :])
            clamp_(trial)
            trial *= prefs[:live, None, :]
            costs = trial.sum(axis=2)
            costs[taken[:live]] = sentinel
            pos = costs.argmax(axis=1) if maximize else costs.argmin(axis=1)
            sel = d_idx[:live]
            chosen[sel, step] = pos
            taken[sel, pos] = True
            running[:live] = combine(running[:live], via[sel, pos])
        current_cost = objective(chosen)

        # --- single-swap local search --------------------------------- #
        current_rows = chosen
        occupied = taken
        caps = np.array([int(st.spec.policy.max_iterations) for st in group])
        active = caps > 0
        slot_range = np.arange(k_max)
        iteration = 0
        while active.any():
            cur_vals = via[d_idx[:, None], current_rows]
            if k_max == 1:
                loo = np.full((D, 1, H), identity)
            else:
                order = np.argsort(cur_vals, axis=1)
                ext_slot = order[:, -1, :] if maximize else order[:, 0, :]
                second_slot = order[:, -2, :] if maximize else order[:, 1, :]
                ext = np.take_along_axis(
                    cur_vals, ext_slot[:, None, :], axis=1
                )[:, 0, :]
                second = np.take_along_axis(
                    cur_vals, second_slot[:, None, :], axis=1
                )[:, 0, :]
                loo = np.where(
                    slot_range[None, :, None] == ext_slot[:, None, :],
                    second[:, None, :],
                    ext[:, None, :],
                )
            trial = combine(loo[:, :, None, :], via[:, None, :H, :])
            clamp_(trial)
            trial *= prefs[:, None, None, :]
            swap = trial.sum(axis=3)
            swap = np.where(occupied[:, None, :], sentinel, swap)
            if k_max > 1:
                swap = np.where(
                    slot_range[None, :, None] >= ks[:, None, None], sentinel, swap
                )
            flat = swap.reshape(D, k_max * H)
            pos = flat.argmax(axis=1) if maximize else flat.argmin(axis=1)
            val = flat[d_idx, pos]
            improved = (val > current_cost) if maximize else (val < current_cost)
            improved &= active
            sel = d_idx[improved]
            if len(sel):
                out_slot = pos[sel] // H
                in_pos = pos[sel] % H
                occupied[sel, current_rows[sel, out_slot]] = False
                occupied[sel, in_pos] = True
                current_rows[sel, out_slot] = in_pos
                current_cost[sel] = val[sel]
            iteration += 1
            active = improved & (iteration < caps)

        # --- adopt per deployment ------------------------------------- #
        for d, (st, node) in enumerate(zip(group, nodes)):
            metric = st.spec.announced
            rows = [int(r) for r in current_rows[d, : ks[d]]]
            neighbors = frozenset(r + (r >= node) for r in rows)
            current = st.wiring.wiring_of(node)
            adopt = current is None or should_rewire(
                metric,
                float(existing_cost[d]),
                float(current_cost[d]),
                st.spec.policy.epsilon,
            )
            rewired = adopt and (
                current is None or neighbors != set(current.neighbors)
            )
            if rewired:
                direct = directs[d]
                weights = {
                    r + (r >= node): float(direct[r]) for r in rows
                }
                st.wiring.set_wiring(Wiring.of(node, neighbors), weights)
            st.pos += 1
            if rewired:
                st.changed += 1
                st.note_rewired(node)
            else:
                st.grow_wave()

    # ------------------------------------------------------------------ #
    # Scoring
    # ------------------------------------------------------------------ #
    def route_value_tensor(self, graphs: Sequence) -> np.ndarray:
        """``(deployments x hops x destinations)`` true route values.

        Stacks each deployment graph's all-sources route-value matrix
        (shortest-path costs, or bottleneck bandwidths for maximising
        metrics) into one tensor, deduplicating members whose dense
        weight matrix and objective direction fingerprint-match.
        """
        if len(graphs) != len(self.specs):
            raise ValidationError("one graph per deployment expected")
        n = self.n
        tensor = np.empty((len(graphs), n, n))
        slots: Dict[Tuple[bool, str], List[int]] = {}
        denses: Dict[Tuple[bool, str], np.ndarray] = {}
        representatives: Dict[Tuple[bool, str], object] = {}
        for i, (spec, graph) in enumerate(zip(self.specs, graphs)):
            dense = _graph_dense(graph)
            key = (bool(spec.truth.maximize), array_fingerprint(dense))
            slots.setdefault(key, []).append(i)
            denses.setdefault(key, dense)
            representatives.setdefault(key, graph)
        for maximize in (False, True):
            keys = [key for key in slots if key[0] == maximize]
            if not keys:
                continue
            if maximize and n > CLOSURE_MAX_NODES:
                # Past the dense-closure cutoff sweep the original
                # graphs directly with the per-source search (bitwise
                # identical) instead of round-tripping through dense.
                matrices = [
                    widest_path_bandwidths_multi(
                        representatives[key], list(range(n)), batched=False
                    )
                    for key in keys
                ]
            else:
                stack = np.stack([denses[key] for key in keys])
                matrices = _batched_route_matrices(stack, maximize)
            for key, matrix in zip(keys, matrices):
                for i in slots[key]:
                    tensor[i] = matrix
        return tensor

    def mean_true_costs(self, wirings: Sequence[GlobalWiring]) -> np.ndarray:
        """Mean per-node cost of every deployment on its true metric.

        The batched path computes the whole sweep in one
        preference-weighted broadcast over :meth:`route_value_tensor`;
        the sequential path is one ``all_node_costs`` call per
        deployment.  Both are bitwise identical (same route values, same
        elementwise clamp/multiply, same pairwise summation order).
        """
        if len(wirings) != len(self.specs):
            raise ValidationError("one wiring per deployment expected")
        graphs = [wiring.to_graph() for wiring in wirings]
        if not self.batched:
            means = np.empty(len(graphs))
            with reference_kernels():
                for i, (spec, graph) in enumerate(zip(self.specs, graphs)):
                    costs = spec.truth.all_node_costs(graph, spec.preferences)
                    means[i] = float(np.mean(list(costs.values())))
            return means
        values = self.route_value_tensor(graphs)
        n = self.n
        rows = np.arange(n)[:, None]
        # Destination columns per node, in the ascending "everyone else"
        # order Metric._weighted_cost iterates.
        cols = np.array([[j for j in range(n) if j != i] for i in range(n)])
        picked = values[:, rows, cols]  # (deployments, n, n - 1)
        prefs = np.empty((len(self.specs), n, n - 1))
        for i, spec in enumerate(self.specs):
            matrix = (
                spec.preferences
                if spec.preferences is not None
                else uniform_preferences(n)
            )
            prefs[i] = matrix[rows, cols]
        costs = np.empty((len(self.specs), n))
        # Group by the full objective convention (direction AND
        # disconnection value), since the clamp applies one value per
        # group; metrics overriding unreachable_value get their own.
        groups: Dict[Tuple[bool, float], List[int]] = {}
        for i, spec in enumerate(self.specs):
            key = (bool(spec.truth.maximize), float(spec.truth.unreachable_value))
            groups.setdefault(key, []).append(i)
        for (maximize, unreachable_value), members in groups.items():
            block = picked[members]
            if maximize:
                reachable = np.isfinite(block) & (block > 0)
            else:
                reachable = np.isfinite(block)
            block = np.where(reachable, block, unreachable_value)
            costs[members] = (prefs[members] * block).sum(axis=2)
        return costs.mean(axis=1)

    # ------------------------------------------------------------------ #
    def run(self) -> np.ndarray:
        """Build every deployment and return the mean true-metric costs."""
        return self.mean_true_costs(self.build())
