"""Cost metrics and node cost functions.

EGOIST supports several notions of the "cost" of traversing an overlay
link (Section 4.1): end-to-end delay, node load, and available bandwidth.
A :class:`Metric` bundles everything the wiring policies and the routing
layer need to know about one such notion:

* the weight of a (potential) direct overlay link between any two nodes —
  as measured/announced, which is what best responses are computed from;
* how per-link weights combine along a path and across the overlay
  (additive shortest-path cost vs bottleneck/widest-path bandwidth);
* whether the node objective is minimised (delay, load) or maximised
  (bandwidth); and
* the node cost function ``C_i(S)`` itself — the preference-weighted sum
  over destinations of the per-destination routing value.

Preferences ``p_ij`` default to uniform, as in all the paper's
experiments, but arbitrary (e.g. traffic-skewed) preference matrices are
supported.
"""

from __future__ import annotations

import abc
from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from repro.routing.graph import OverlayGraph
from repro.routing.shortest_path import all_pairs_shortest_costs
from repro.routing.widest_path import all_pairs_widest_bandwidth
from repro.util.validation import ValidationError, check_matrix_square

#: Cost assigned to a destination that cannot be reached at all.  The paper
#: uses "M >> n"; a large finite constant keeps arithmetic well-behaved
#: while still dwarfing any realistic path cost.
DISCONNECTION_COST = 1.0e7

#: Bandwidth credited for an unreachable destination under the bandwidth
#: metric (the maximisation analogue of the disconnection cost).
DISCONNECTION_BANDWIDTH = 0.0


def uniform_preferences(n: int) -> np.ndarray:
    """The uniform preference matrix used throughout the paper.

    ``p_ij = 1 / (n - 1)`` for ``j != i`` and 0 on the diagonal, so that a
    node's cost is simply its average routing cost over all destinations.
    """
    if n < 2:
        raise ValidationError("n must be >= 2 for a preference matrix")
    prefs = np.full((n, n), 1.0 / (n - 1))
    np.fill_diagonal(prefs, 0.0)
    return prefs


def normalize_preferences(raw: np.ndarray) -> np.ndarray:
    """Normalise an arbitrary non-negative preference matrix row-wise.

    Rows must have a positive sum; the diagonal is zeroed.
    """
    prefs = check_matrix_square(raw, "preferences").copy()
    if np.any(prefs < 0):
        raise ValidationError("preferences must be non-negative")
    np.fill_diagonal(prefs, 0.0)
    sums = prefs.sum(axis=1, keepdims=True)
    if np.any(sums <= 0):
        raise ValidationError("every node needs positive total preference")
    return prefs / sums


def zipf_preferences(n: int, exponent: float = 1.0, seed=None) -> np.ndarray:
    """A skewed (Zipf-like) preference matrix.

    Useful for exploring the paper's footnote that uniform preferences are
    *conservative* for BR: skew lets BR leverage popular destinations.
    Each node ranks the other nodes in a random order and assigns
    preference proportional to ``1 / rank**exponent``.
    """
    from repro.util.rng import as_generator

    if n < 2:
        raise ValidationError("n must be >= 2")
    rng = as_generator(seed)
    prefs = np.zeros((n, n))
    for i in range(n):
        others = [j for j in range(n) if j != i]
        rng.shuffle(others)
        weights = 1.0 / np.arange(1, n) ** float(exponent)
        for rank, j in enumerate(others):
            prefs[i, j] = weights[rank]
    return normalize_preferences(prefs)


class Metric(abc.ABC):
    """A cost metric: direct link weights + routing semantics + objective."""

    #: Human-readable metric name.
    name: str = "abstract"
    #: True if larger objective values are better (bandwidth), False if
    #: smaller values are better (delay, load).
    maximize: bool = False

    @abc.abstractmethod
    def link_weight(self, src: int, dst: int) -> float:
        """Weight of a (potential) direct overlay link ``src -> dst``."""

    @abc.abstractmethod
    def link_weight_matrix(self) -> np.ndarray:
        """Dense ``n x n`` matrix of direct-link weights."""

    def link_weight_row(self, src: int) -> np.ndarray:
        """Direct-link weights from ``src`` to every node (length ``n``).

        The concrete metrics override this with a row slice; the default
        loops over :meth:`link_weight` (O(n), never O(n²)) so arbitrary
        metric subclasses stay safe to use in the evaluator hot path.
        """
        return np.array([self.link_weight(src, j) for j in range(self.size)])

    @abc.abstractmethod
    def route_values(self, graph: OverlayGraph) -> np.ndarray:
        """Per-pair routing value over ``graph``.

        For additive metrics this is the all-pairs shortest-path cost; for
        the bandwidth metric it is the all-pairs maximum bottleneck
        bandwidth.
        """

    @property
    @abc.abstractmethod
    def size(self) -> int:
        """Number of overlay nodes the metric covers."""

    # ------------------------------------------------------------------ #
    # Objective helpers shared by all metrics
    # ------------------------------------------------------------------ #
    @property
    def unreachable_value(self) -> float:
        """Routing value assigned to unreachable destinations."""
        return DISCONNECTION_BANDWIDTH if self.maximize else DISCONNECTION_COST

    def better(self, a: float, b: float) -> bool:
        """True if objective value ``a`` is strictly better than ``b``."""
        return a > b if self.maximize else a < b

    def improvement(self, new: float, old: float) -> float:
        """Relative improvement of ``new`` over ``old`` (>= 0 when better)."""
        if old == 0:
            return 0.0 if new == old else float("inf")
        gain = (new - old) / abs(old)
        return gain if self.maximize else -gain

    def node_cost(
        self,
        node: int,
        graph: OverlayGraph,
        preferences: Optional[np.ndarray] = None,
        *,
        destinations: Optional[Iterable[int]] = None,
    ) -> float:
        """The node cost ``C_i(S)`` (or bandwidth objective) over ``graph``.

        Parameters
        ----------
        node:
            The node whose cost is evaluated.
        graph:
            Overlay graph induced by the global wiring.
        preferences:
            Preference matrix ``p_ij``; defaults to uniform.
        destinations:
            Optional subset of destinations to include (used under churn,
            where only active destinations count).
        """
        n = self.size
        if preferences is None:
            preferences = uniform_preferences(n)
        values = self.route_values_from(graph, node)
        return self._weighted_cost(node, values, preferences, destinations)

    def _weighted_cost(
        self,
        node: int,
        values: np.ndarray,
        preferences: np.ndarray,
        destinations: Optional[Iterable[int]],
    ) -> float:
        """Preference-weighted objective of per-destination ``values``.

        Unreachable destinations (non-finite values, and non-positive
        bandwidths under maximisation) are charged the metric's
        disconnection value; the node itself is always excluded.
        """
        if destinations is not None:
            dests = np.array([j for j in destinations if j != node], dtype=int)
        else:
            dests = np.array([j for j in range(self.size) if j != node], dtype=int)
        if len(dests) == 0:
            return 0.0
        picked = values[dests]
        if self.maximize:
            reachable = np.isfinite(picked) & (picked > 0)
        else:
            reachable = np.isfinite(picked)
        picked = np.where(reachable, picked, self.unreachable_value)
        return float((preferences[node, dests] * picked).sum())

    def route_values_from(self, graph: OverlayGraph, node: int) -> np.ndarray:
        """Routing values from ``node`` to every destination over ``graph``."""
        if self.maximize:
            from repro.routing.widest_path import widest_path_bandwidths_from

            return widest_path_bandwidths_from(graph, node)
        from repro.routing.shortest_path import shortest_path_costs_from

        return shortest_path_costs_from(graph, node)

    def route_values_rows(
        self, graph: OverlayGraph, sources: Iterable[int]
    ) -> np.ndarray:
        """Routing values from each of ``sources`` (``len(sources) x n``).

        The additive metrics batch all sources into one sparse Dijkstra
        sweep; the bandwidth metric stacks per-source widest-path runs.
        This is the matrix entry point behind :meth:`all_node_costs`.
        """
        source_list = list(sources)
        if self.maximize:
            from repro.routing.widest_path import widest_path_bandwidths_multi

            return widest_path_bandwidths_multi(graph, source_list)
        from repro.routing.shortest_path import shortest_path_costs_multi

        return shortest_path_costs_multi(graph, source_list)

    def all_node_costs(
        self,
        graph: Optional[OverlayGraph],
        preferences: Optional[np.ndarray] = None,
        *,
        nodes: Optional[Iterable[int]] = None,
        destinations: Optional[Iterable[int]] = None,
        route_values: Optional[np.ndarray] = None,
    ) -> Dict[int, float]:
        """Costs of all (or the given) nodes over ``graph``.

        Route values for every requested node are computed in one batched
        sweep (:meth:`route_values_rows`) rather than one single-source
        query per node; callers that already hold the
        ``len(nodes) x n`` route-value rows (the lockstep engine batch
        scores every deployment's epoch through one stacked sweep) pass
        them via ``route_values``, in which case ``graph`` may be None.
        """
        node_list = list(nodes) if nodes is not None else list(range(self.size))
        if not node_list:
            return {}
        if preferences is None:
            preferences = uniform_preferences(self.size)
        dest_list = list(destinations) if destinations is not None else None
        values = (
            route_values
            if route_values is not None
            else self.route_values_rows(graph, node_list)
        )
        return {
            i: self._weighted_cost(i, values[row], preferences, dest_list)
            for row, i in enumerate(node_list)
        }

    def social_cost(
        self, graph: OverlayGraph, preferences: Optional[np.ndarray] = None
    ) -> float:
        """Sum of all node costs (the social cost of the SNS game)."""
        return float(sum(self.all_node_costs(graph, preferences).values()))


class DelayMetric(Metric):
    """End-to-end delay metric: additive link delays, minimised.

    Parameters
    ----------
    delays:
        ``n x n`` matrix of (estimated) one-way link delays in ms — ping
        estimates, coordinate estimates, or announced values depending on
        what the caller measured.
    """

    name = "delay"
    maximize = False

    def __init__(self, delays: np.ndarray):
        self._delays = check_matrix_square(delays, "delays").copy()
        np.fill_diagonal(self._delays, 0.0)
        if np.any(self._delays < 0):
            raise ValidationError("delays must be non-negative")

    @property
    def size(self) -> int:
        return self._delays.shape[0]

    def link_weight(self, src: int, dst: int) -> float:
        return float(self._delays[src, dst])

    def link_weight_row(self, src: int) -> np.ndarray:
        return self._delays[src].copy()

    def link_weight_matrix(self) -> np.ndarray:
        return self._delays.copy()

    def route_values(self, graph: OverlayGraph) -> np.ndarray:
        return all_pairs_shortest_costs(graph)


class NodeLoadMetric(Metric):
    """Node-load metric: every outgoing link of ``u`` costs ``load(u)``.

    The cost of a path is then the sum of the loads of the nodes along it
    (excluding the destination), matching Section 4.1's description.
    """

    name = "node-load"
    maximize = False

    def __init__(self, loads: Sequence[float]):
        loads = np.asarray(list(loads), dtype=float)
        if loads.ndim != 1:
            raise ValidationError("loads must be a 1-D sequence")
        if np.any(loads < 0):
            raise ValidationError("loads must be non-negative")
        self._loads = loads

    @property
    def size(self) -> int:
        return self._loads.shape[0]

    @property
    def loads(self) -> np.ndarray:
        """The per-node load vector."""
        return self._loads.copy()

    def link_weight(self, src: int, dst: int) -> float:
        if src == dst:
            return 0.0
        return float(self._loads[src])

    def link_weight_row(self, src: int) -> np.ndarray:
        row = np.full(self.size, self._loads[src])
        row[src] = 0.0
        return row

    def link_weight_matrix(self) -> np.ndarray:
        n = self.size
        mat = np.repeat(self._loads[:, None], n, axis=1)
        np.fill_diagonal(mat, 0.0)
        return mat

    def route_values(self, graph: OverlayGraph) -> np.ndarray:
        return all_pairs_shortest_costs(graph)


class BandwidthMetric(Metric):
    """Available-bandwidth metric: bottleneck bandwidth, maximised.

    Parameters
    ----------
    available:
        ``n x n`` matrix of estimated available bandwidth (Mbps) of the
        direct IP path between each ordered pair.
    """

    name = "bandwidth"
    maximize = True

    def __init__(self, available: np.ndarray):
        self._bw = check_matrix_square(available, "available").copy()
        if np.any(self._bw < 0):
            raise ValidationError("available bandwidth must be non-negative")
        np.fill_diagonal(self._bw, np.inf)

    @property
    def size(self) -> int:
        return self._bw.shape[0]

    def link_weight(self, src: int, dst: int) -> float:
        return float(self._bw[src, dst])

    def link_weight_row(self, src: int) -> np.ndarray:
        return self._bw[src].copy()

    def link_weight_matrix(self) -> np.ndarray:
        return self._bw.copy()

    def route_values(self, graph: OverlayGraph) -> np.ndarray:
        return all_pairs_widest_bandwidth(graph)
