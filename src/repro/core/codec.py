"""Versioned JSON codec for execution telemetry.

:class:`~repro.core.engine.EpochRecord` and the residual route-cache
diagnostics dict used to travel in three ad-hoc shapes — the sweep
store's result metadata, ``repro run --verbose``'s cache line, and
whatever a consumer pickled out of ``EngineHistory``.  This module is
the single codec for both: every wire/disk form carries a ``schema``
version so readers can reject (or migrate) payloads from a different
era, and non-finite floats — legal in records (``mean_efficiency`` is
NaN when efficiency is not computed) but not in strict JSON — are
encoded losslessly.

The serve layer's replay-parity contract also lives here:
:func:`epoch_records_digest` is the canonical digest of a list of
records (hex-float fields, blake2b), shared by the service's mutation
log, the replay checker, and the churn benchmark's parity gate, so
"byte-identical epochs" means the same bytes everywhere.
"""

from __future__ import annotations

import hashlib
import math
from typing import Dict, Iterable, List, Optional

from repro.core.engine import EpochRecord
from repro.util.validation import ValidationError

#: Schema version of the EpochRecord JSON form.
RECORD_SCHEMA_VERSION = 1

#: Schema version of the cache-diagnostics JSON form.
CACHE_SCHEMA_VERSION = 1

#: EpochRecord fields in canonical (digest and JSON) order.
_RECORD_INT_FIELDS = ("epoch", "active_nodes", "rewirings", "linkstate_bits", "routes_stuck")
_RECORD_FLOAT_FIELDS = ("time", "mean_cost", "mean_efficiency", "social_cost")
RECORD_FIELDS = (
    "epoch",
    "time",
    "active_nodes",
    "rewirings",
    "mean_cost",
    "mean_efficiency",
    "social_cost",
    "linkstate_bits",
    "routes_stuck",
)

#: Counters every cache-diagnostics payload carries.
CACHE_FIELDS = ("hits", "misses", "repairs", "restamps", "entries", "hit_rate")


def encode_float(value: float):
    """A float as a strict-JSON value (NaN/±inf become tagged strings)."""
    value = float(value)
    if math.isnan(value):
        return "nan"
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return value


def decode_float(value) -> float:
    """Inverse of :func:`encode_float`."""
    if isinstance(value, str):
        if value == "nan":
            return float("nan")
        if value == "inf":
            return float("inf")
        if value == "-inf":
            return float("-inf")
        raise ValidationError(f"malformed encoded float {value!r}")
    return float(value)


def _check_schema(data: Dict[str, object], expected: int, what: str) -> None:
    schema = data.get("schema")
    if schema != expected:
        raise ValidationError(
            f"{what} payload has schema {schema!r}; this codec reads version {expected}"
        )


def epoch_record_to_json(record: EpochRecord) -> Dict[str, object]:
    """The canonical JSON form of one :class:`EpochRecord`."""
    payload: Dict[str, object] = {"schema": RECORD_SCHEMA_VERSION}
    for name in _RECORD_INT_FIELDS:
        payload[name] = int(getattr(record, name))
    for name in _RECORD_FLOAT_FIELDS:
        payload[name] = encode_float(getattr(record, name))
    return payload


def epoch_record_from_json(data: Dict[str, object]) -> EpochRecord:
    """Inverse of :func:`epoch_record_to_json` (schema-checked)."""
    _check_schema(data, RECORD_SCHEMA_VERSION, "EpochRecord")
    missing = set(RECORD_FIELDS) - set(data)
    if missing:
        raise ValidationError(f"EpochRecord payload is missing fields {sorted(missing)}")
    kwargs: Dict[str, object] = {}
    try:
        for name in _RECORD_INT_FIELDS:
            kwargs[name] = int(data[name])
        for name in _RECORD_FLOAT_FIELDS:
            kwargs[name] = decode_float(data[name])
    except (TypeError, ValueError) as error:
        raise ValidationError(f"malformed EpochRecord payload: {error}")
    return EpochRecord(**kwargs)


def cache_stats_to_json(stats: Dict[str, float]) -> Dict[str, object]:
    """The canonical JSON form of a route-cache diagnostics dict.

    Accepts any dict holding (at least) :data:`CACHE_FIELDS` — both
    :meth:`ResidualRouteCache.stats` and the batch/session aggregates —
    and passes extra numeric keys through, so aggregate payloads stay
    self-describing.  The plain counter keys stay top-level: existing
    consumers (the ``--verbose`` format string, the fig2 CI smoke)
    read them positionally by name.
    """
    payload: Dict[str, object] = {"schema": CACHE_SCHEMA_VERSION}
    for name in CACHE_FIELDS:
        if name not in stats:
            raise ValidationError(f"cache diagnostics are missing counter {name!r}")
    for name, value in stats.items():
        if name == "schema":
            continue
        payload[name] = encode_float(value)
    return payload


def cache_stats_from_json(data: Dict[str, object]) -> Dict[str, float]:
    """Inverse of :func:`cache_stats_to_json` (schema-checked)."""
    _check_schema(data, CACHE_SCHEMA_VERSION, "cache diagnostics")
    stats: Dict[str, float] = {}
    try:
        for name, value in data.items():
            if name == "schema":
                continue
            stats[name] = decode_float(value)
    except (TypeError, ValueError) as error:
        raise ValidationError(f"malformed cache diagnostics payload: {error}")
    missing = set(CACHE_FIELDS) - set(stats)
    if missing:
        raise ValidationError(f"cache diagnostics are missing counters {sorted(missing)}")
    return stats


def epoch_record_digest(records: Iterable[EpochRecord]) -> str:
    """Canonical digest of a sequence of records.

    Hex-float formatting makes the digest exact: two runs agree iff
    every float of every record is bit-identical, which is precisely
    the serve/replay (and fused/sequential) parity contract.
    """
    parts: List[str] = []
    for record in records:
        fields = []
        for name in RECORD_FIELDS:
            value = getattr(record, name)
            if isinstance(value, float):
                fields.append(float(value).hex())
            else:
                fields.append(str(int(value)))
        parts.append("|".join(fields))
    payload = ";".join(parts).encode()
    return hashlib.blake2b(payload, digest_size=16).hexdigest()


def history_digest(records: Iterable[EpochRecord]) -> str:
    """Alias of :func:`epoch_record_digest` for whole-history callers."""
    return epoch_record_digest(records)


__all__ = [
    "CACHE_FIELDS",
    "CACHE_SCHEMA_VERSION",
    "RECORD_FIELDS",
    "RECORD_SCHEMA_VERSION",
    "cache_stats_from_json",
    "cache_stats_to_json",
    "decode_float",
    "encode_float",
    "epoch_record_digest",
    "epoch_record_from_json",
    "epoch_record_to_json",
    "history_digest",
]
