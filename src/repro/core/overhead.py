"""Measurement and protocol overhead accounting (Section 4.3).

The paper quantifies three overheads and argues they are all small:

* **Active measurement load** — once per wiring epoch ``T`` a node probes
  the candidate links it does not already maintain:
  ``(n - k - 1) * 320 / T`` bps with ping, or ``(320 + 32 n) / T`` bps with
  a coordinate-system query; node load needs no network traffic; bandwidth
  probing consumes < 2% of the probed path's available bandwidth.
* **Link-state protocol load** — ``(192 + 32 k) / T_announce`` bps per node.
* **Re-wiring overhead** — the number of re-wirings per epoch, which drops
  quickly as the overlay reaches steady state and can be reduced further
  with BR(ε).

The functions here implement those formulas so benchmarks can compare the
analytic expectations against the traffic actually accounted by the
simulated probers and the link-state protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.netsim.probing import (
    COORDINATE_QUERY_BASE_BITS,
    COORDINATE_QUERY_PER_NODE_BITS,
    ICMP_MESSAGE_BITS,
)
from repro.routing.messages import announcement_size_bits
from repro.util.validation import ValidationError, check_positive


def ping_measurement_rate_bps(n: int, k: int, epoch_length_s: float) -> float:
    """Per-node active ping measurement load in bits per second.

    Established links need no extra probing (their cost is known from
    use), so only the ``n - k - 1`` candidate links are probed once per
    epoch, with one 320-bit ICMP message each way.
    """
    check_positive(epoch_length_s, "epoch_length_s")
    if n < 1 or k < 0:
        raise ValidationError("need n >= 1 and k >= 0")
    candidates = max(0, n - k - 1)
    return candidates * ICMP_MESSAGE_BITS / epoch_length_s


def coordinate_measurement_rate_bps(n: int, epoch_length_s: float) -> float:
    """Per-node pyxida-style measurement load in bits per second.

    A single request/reply returns distances to all ``n`` nodes:
    ``(320 + 32 n) / T`` bps.
    """
    check_positive(epoch_length_s, "epoch_length_s")
    if n < 1:
        raise ValidationError("n must be >= 1")
    return (COORDINATE_QUERY_BASE_BITS + COORDINATE_QUERY_PER_NODE_BITS * n) / epoch_length_s


def linkstate_rate_bps(k: int, announce_interval_s: float) -> float:
    """Per-node link-state protocol load: ``(192 + 32 k) / T_announce`` bps."""
    check_positive(announce_interval_s, "announce_interval_s")
    if k < 0:
        raise ValidationError("k must be non-negative")
    return announcement_size_bits(k) / announce_interval_s


def bandwidth_probe_fraction() -> float:
    """Fraction of a path's available bandwidth consumed by chirp probing."""
    return 0.02


def fullmesh_monitored_links(n: int) -> int:
    """Links a full-mesh (RON-like) overlay must monitor: ``n * (n - 1)``."""
    if n < 1:
        raise ValidationError("n must be >= 1")
    return n * (n - 1)


def egoist_monitored_links(n: int, k: int) -> int:
    """Links an EGOIST overlay monitors continuously: ``n * k``."""
    if n < 1 or k < 0:
        raise ValidationError("need n >= 1 and k >= 0")
    return n * min(k, max(0, n - 1))


@dataclass(frozen=True)
class OverheadReport:
    """Per-node overhead summary for one configuration."""

    n: int
    k: int
    epoch_length_s: float
    announce_interval_s: float
    ping_bps: float
    coordinate_bps: float
    linkstate_bps: float
    monitored_links: int
    fullmesh_monitored_links: int

    @property
    def total_active_bps(self) -> float:
        """Ping + link-state load (the paper's default configuration)."""
        return self.ping_bps + self.linkstate_bps

    @property
    def scalability_gain(self) -> float:
        """Ratio of full-mesh monitored links to EGOIST monitored links."""
        if self.monitored_links == 0:
            return float("inf")
        return self.fullmesh_monitored_links / self.monitored_links


def overhead_report(
    n: int,
    k: int,
    *,
    epoch_length_s: float = 60.0,
    announce_interval_s: float = 20.0,
) -> OverheadReport:
    """Assemble the Section 4.3 overhead figures for one configuration."""
    return OverheadReport(
        n=n,
        k=k,
        epoch_length_s=epoch_length_s,
        announce_interval_s=announce_interval_s,
        ping_bps=ping_measurement_rate_bps(n, k, epoch_length_s),
        coordinate_bps=coordinate_measurement_rate_bps(n, epoch_length_s),
        linkstate_bps=linkstate_rate_bps(k, announce_interval_s),
        monitored_links=egoist_monitored_links(n, k),
        fullmesh_monitored_links=fullmesh_monitored_links(n),
    )
