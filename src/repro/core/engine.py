"""The EGOIST overlay engine: epoch-driven simulation of a deployment.

The engine ties everything together the way the PlanetLab prototype did:

* a :class:`~repro.core.providers.MetricProvider` supplies measured and
  ground-truth link costs and advances substrate dynamics each epoch;
* every node runs a neighbour-selection policy (BR, BR(ε), HybridBR, or
  one of the empirical heuristics) and re-wires once per wiring epoch
  ``T`` (nodes are unsynchronised: within an epoch they re-wire in random
  order, one every ``T/n`` on average);
* an optional churn schedule turns nodes ON and OFF;
* an optional cheating model distorts what free riders announce;
* the link-state protocol floods announcements and its traffic is
  accounted;
* per-epoch history records re-wiring counts, node costs (on the true
  metric), and efficiency — the quantities behind Figures 1-4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.churn.metrics import overlay_efficiency
from repro.churn.models import ChurnSchedule
from repro.core.best_response import WiringEvaluator
from repro.core.bootstrap import BootstrapServer
from repro.core.cheating import CheatingModel
from repro.core.cost import DISCONNECTION_COST, Metric, uniform_preferences
from repro.core.failures import FailureSpec, FailureState, mask_metric
from repro.core.node import EgoistNode, RewireMode
from repro.core.policies import NeighborSelectionPolicy
from repro.core.providers import MetricProvider
from repro.core.route_cache import ResidualRouteCache, metric_fingerprint
from repro.core.wiring import GlobalWiring, Wiring
from repro.routing.linkstate import LinkStateProtocol
from repro.routing.shortest_path import all_pairs_shortest_costs
from repro.telemetry import runtime as telemetry
from repro.util.rng import SeedLike, as_generator, spawn_generators
from repro.util.simclock import SimClock
from repro.util.validation import ValidationError

#: Sanity bound on how many accumulated re-wires a single repair may
#: span.  The kernels stay exact (and internally fall back to one
#: C-level sweep of the shared tables once the suspect region grows),
#: so the cap only exists to skip hopeless changelog walks.
_REPAIR_CHANGED_CAP = 256

#: Repair-vs-recompute bound for a sequential re-wiring opportunity:
#: past this suspect fraction the incremental rounds cost about as much
#: as the fresh sweep the evaluator would run anyway, so the entry is
#: dropped and the sweep keeps its job.  Small-delta staleness — the
#: quiet-epoch re-wired case — stays far below the bound.
_STEP_REPAIR_MAX_SUSPECT = 0.25


class _LazyResidualGraph:
    """Residual graph built on first attribute access.

    A re-wiring opportunity needs the node's residual graph only when its
    route-value matrix misses the residual route cache; building the
    :class:`~repro.routing.graph.OverlayGraph` eagerly would waste the
    dominant share of a cache-hit step.  The proxy materialises the graph
    via :meth:`GlobalWiring.residual_graph` on first use and delegates
    every attribute to it, so consumers see exactly the graph the eager
    construction would have produced.
    """

    __slots__ = ("_wiring", "_node", "_active", "_graph")

    def __init__(self, wiring: GlobalWiring, node: int, active: Sequence[int]):
        self._wiring = wiring
        self._node = node
        self._active = active
        self._graph = None

    def materialize(self):
        """The real residual graph (built once)."""
        if self._graph is None:
            self._graph = self._wiring.residual_graph(self._node, active=self._active)
        return self._graph

    def __getattr__(self, name: str):
        return getattr(self.materialize(), name)


@dataclass
class EpochPlan:
    """Mutable state of one in-progress wiring epoch.

    :meth:`EgoistEngine.begin_epoch` produces a plan; repeated
    :meth:`EgoistEngine.step_node` calls consume ``order`` one re-wiring
    opportunity at a time; :meth:`EgoistEngine.finish_epoch` scores the
    epoch and advances the clock and substrate.  ``run_epoch`` chains the
    three, and :class:`~repro.core.engine_batch.EngineBatch` interleaves
    the steps of several engines to share residual route-value sweeps.
    """

    epoch: int
    active_list: List[int]
    active_key: Tuple[int, ...]
    announced: Metric
    truth: Metric
    order: List[int]
    bits_before: int
    metric_fp: Optional[str]
    pos: int = 0
    rewirings: int = 0

    @property
    def done(self) -> bool:
        """True once every re-wiring opportunity of the epoch ran."""
        return self.pos >= len(self.order)


@dataclass
class EpochView:
    """Read-only view of the last *committed* epoch, for live lookups.

    ``repro serve`` answers route lookups between epoch ticks; every
    answer must be attributable to a specific overlay state (the S-Bus
    stale-read discipline).  The view pins that attribution: the epoch
    number, the :class:`GlobalWiring` version at scoring time, the
    active membership, and the announced metric snapshot the epoch
    wired under.  The engine refreshes it in :meth:`finish_epoch`; the
    wiring is frozen between epochs (mutations only apply inside
    ``begin_epoch``), so a view whose ``version`` still equals
    ``engine.wiring.version`` describes the live overlay exactly.
    """

    epoch: int
    version: int
    active_list: List[int]
    active_key: Tuple[int, ...]
    announced: Metric
    metric_fp: Optional[str]


@dataclass
class EpochRecord:
    """Summary of one wiring epoch.

    ``routes_stuck`` counts ordered active pairs whose route over the
    built overlay is effectively dead at the end of the epoch — either
    unreachable or priced at/beyond the disconnection value because the
    path crosses a failed link.  Zero in healthy overlays; the resilience
    experiments track its decay after an injected failure.
    """

    epoch: int
    time: float
    active_nodes: int
    rewirings: int
    mean_cost: float
    mean_efficiency: float
    social_cost: float
    linkstate_bits: int
    routes_stuck: int = 0


@dataclass
class EngineHistory:
    """Per-epoch records plus final state of a simulation run."""

    records: List[EpochRecord] = field(default_factory=list)

    def rewirings_per_epoch(self) -> List[int]:
        """Total re-wirings in each epoch (Fig. 3 left)."""
        return [r.rewirings for r in self.records]

    def mean_costs(self) -> List[float]:
        """Mean node cost per epoch."""
        return [r.mean_cost for r in self.records]

    def mean_efficiencies(self) -> List[float]:
        """Mean node efficiency per epoch (churn experiments)."""
        return [r.mean_efficiency for r in self.records]

    def _steady_tail(self, warmup_fraction: float) -> List[EpochRecord]:
        """Post-warm-up records: at least the final record is always kept.

        ``warmup_fraction`` must lie in ``[0, 1]``; 1.0 means "the last
        epoch only" (not, as a naive slice would give, an empty tail).
        """
        if not 0.0 <= warmup_fraction <= 1.0:
            raise ValidationError("warmup_fraction must be in [0, 1]")
        if not self.records:
            return []
        start = min(int(len(self.records) * warmup_fraction), len(self.records) - 1)
        return self.records[start:]

    def steady_state_mean_cost(self, warmup_fraction: float = 0.5) -> float:
        """Mean cost over the post-warm-up epochs."""
        tail = self._steady_tail(warmup_fraction)
        if not tail:
            return float("nan")
        return float(np.mean([r.mean_cost for r in tail]))

    def steady_state_efficiency(self, warmup_fraction: float = 0.5) -> float:
        """Mean efficiency over the post-warm-up epochs."""
        tail = self._steady_tail(warmup_fraction)
        if not tail:
            return float("nan")
        return float(np.mean([r.mean_efficiency for r in tail]))

    def total_rewirings(self) -> int:
        """Total re-wirings over the whole run."""
        return int(sum(r.rewirings for r in self.records))


class EgoistEngine:
    """Epoch-driven simulation of an EGOIST deployment.

    Parameters
    ----------
    provider:
        Metric provider (delay, load, or bandwidth).
    policy:
        Neighbour-selection policy shared by all nodes.
    k:
        Per-node neighbour budget.
    epoch_length:
        Wiring epoch ``T`` in seconds (60 in the paper).
    announce_interval:
        Link-state announcement period ``T_announce`` (20 s in the paper).
    churn:
        Optional churn schedule; without it, all nodes stay ON.
    cheating:
        Optional cheating model distorting announced costs.
    failures:
        Optional failure-injection schedule (see
        :class:`~repro.core.failures.FailureSpec`).  Applied at the start
        of each epoch: down nodes leave the active set, down links are
        dropped from the wiring (through the ordinary changelog/repair
        path) and masked to the disconnection value in both metrics, and
        announcement loss is routed through the link-state protocol.
    epsilon:
        BR(ε) threshold applied by every node.
    rewire_mode:
        Immediate or delayed reaction to dropped links.
    preferences:
        Preference matrix (uniform by default).
    compute_efficiency:
        Whether to compute the efficiency metric each epoch (slightly
        expensive; mainly needed for churn experiments).
    route_cache_size:
        Entry budget for the residual route-value cache shared by every
        re-wiring opportunity: within an opportunity the node's cost
        evaluation and its best-response computation reuse one sweep, and
        across quiescent epochs (no re-wiring, unchanged announced metric
        and membership) a node's matrices are reused verbatim.  ``None``
        (default) sizes the cache to the deployment (one entry per node);
        ``0`` disables caching entirely.
    seed:
        Master seed.
    """

    def __init__(
        self,
        provider: MetricProvider,
        policy: NeighborSelectionPolicy,
        k: int,
        *,
        epoch_length: float = 60.0,
        announce_interval: float = 20.0,
        churn: Optional[ChurnSchedule] = None,
        cheating: Optional[CheatingModel] = None,
        failures: Optional[FailureSpec] = None,
        epsilon: float = 0.0,
        rewire_mode: RewireMode = RewireMode.DELAYED,
        preferences: Optional[np.ndarray] = None,
        compute_efficiency: bool = False,
        route_cache_size: Optional[int] = None,
        seed: SeedLike = None,
    ):
        self.provider = provider
        self.policy = policy
        self.k = int(k)
        self.n = provider.size
        if churn is not None and churn.n != self.n:
            raise ValidationError("churn schedule size does not match provider")
        self.churn = churn
        self.cheating = cheating
        self.preferences = (
            preferences if preferences is not None else uniform_preferences(self.n)
        )
        self.compute_efficiency = bool(compute_efficiency)
        self.clock = SimClock(epoch_length=epoch_length)
        self.protocol = LinkStateProtocol(self.n, announce_interval_s=announce_interval)
        self.bootstrap = BootstrapServer(seed=seed)
        self._rng = as_generator(seed)
        node_rngs = spawn_generators(self._rng, self.n)
        self.failures = failures
        self._failure_state = (
            FailureState(failures, self.n) if failures is not None else None
        )
        if failures is not None and failures.message_loss > 0.0:
            # Spawned (not drawn) from the master stream, so enabling loss
            # leaves every other random decision — node seeds, epoch
            # orders — bit-identical to a loss-free run.
            self.protocol.configure_loss(
                failures.message_loss, spawn_generators(self._rng, 1)[0]
            )
        self.nodes: List[EgoistNode] = [
            EgoistNode(
                i,
                policy,
                k,
                epsilon=epsilon,
                rewire_mode=rewire_mode,
                seed=node_rngs[i],
            )
            for i in range(self.n)
        ]
        self.wiring = GlobalWiring(self.n)
        self.history = EngineHistory()
        self._previous_active: Set[int] = set()
        #: Membership overrides from the live session-control API.  A
        #: forced-online node stays in the active set regardless of the
        #: churn schedule (a forced-offline one stays out) until the
        #: opposite request countermands it; failures still win, so an
        #: injected node-down kills even a forced joiner.
        self._forced_online: Set[int] = set()
        self._forced_offline: Set[int] = set()
        #: Live view of the last committed epoch (see :class:`EpochView`);
        #: None until the first epoch finishes.
        self.last_epoch_view: Optional[EpochView] = None
        if route_cache_size is None:
            route_cache_size = self.n
        self.route_cache: Optional[ResidualRouteCache] = (
            ResidualRouteCache(max_entries=int(route_cache_size))
            if route_cache_size
            else None
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _announced_metric(self) -> Metric:
        metric = self.provider.announced_metric()
        if self.cheating is not None:
            metric = CheatingModel(
                metric, self.cheating.free_riders, self.cheating.inflation_factor
            ).announced_metric()
        if self._failure_state is not None:
            # Down links — plus restored links still inside the
            # re-announce window — measure as disconnected.
            metric = mask_metric(
                metric, self._failure_state.announced_masked_links(self.clock.epoch)
            )
        return metric

    def _true_metric(self) -> Metric:
        metric = self.provider.true_metric()
        if self._failure_state is not None:
            # Ground truth unmasks the moment a link is restored.
            metric = mask_metric(metric, self._failure_state.truth_masked_links())
        return metric

    def _active_nodes(self) -> Set[int]:
        if self.churn is None:
            active = set(range(self.n))
        else:
            active = set(self.churn.active_at(self.clock.now))
        active |= self._forced_online
        active -= self._forced_offline
        if self._failure_state is not None:
            active -= self._failure_state.down_nodes
        return active

    def _handle_membership_change(self, active: Set[int]) -> None:
        departed = self._previous_active - active
        joined = active - self._previous_active
        for node_id in departed:
            self.nodes[node_id].go_offline()
            self.wiring.remove_wiring(node_id)
            self.bootstrap.deregister(node_id)
            self.protocol.purge(node_id)
        for node_id in joined:
            self.nodes[node_id].go_online()
            self.bootstrap.register(node_id)
        if departed:
            # Survivors holding links to departed nodes notice the drops.
            for node_id in active:
                node = self.nodes[node_id]
                if node.drop_neighbors(departed) and node.wiring is not None:
                    weights = self.wiring.weights_of(node_id)
                    for gone in departed:
                        weights.pop(gone, None)
                    self.wiring.set_wiring(node.wiring, weights)
        self._previous_active = set(active)

    def _enforce_link_failures(self, active: Set[int]) -> None:
        """Drop every currently-failed link from the overlay wiring.

        Mirrors the survivor-drop path of membership changes: each
        endpoint forgets the dead neighbour and its global wiring entry
        is rewritten through :meth:`GlobalWiring.set_wiring`, so the
        removal lands in the changelog and the dynamic-SSSP repair path
        exactly like a churn departure.  Re-applied every epoch because a
        structural policy (k-random) may re-adopt a masked link mid-epoch
        — the adoption costs the disconnection value and is dropped again
        here at the next epoch boundary.
        """
        state = self._failure_state
        if state is None or not state.down_links:
            return
        for u, v in sorted(state.down_links):
            for src, gone in ((u, v), (v, u)):
                if src not in active:
                    continue
                node = self.nodes[src]
                if node.wiring is None or gone not in node.wiring.neighbors:
                    continue
                if node.drop_neighbors({gone}) and node.wiring is not None:
                    weights = self.wiring.weights_of(src)
                    weights.pop(gone, None)
                    self.wiring.set_wiring(node.wiring, weights)

    def _install_wiring(self, node_id: int, metric: Metric) -> None:
        node = self.nodes[node_id]
        if node.wiring is None:
            return
        weights = {
            v: metric.link_weight(node_id, v) for v in node.wiring.neighbors
        }
        self.wiring.set_wiring(node.wiring, weights)

    # ------------------------------------------------------------------ #
    # Session-control mutations (the `repro serve` API)
    # ------------------------------------------------------------------ #
    # All of these only record intent; the overlay itself changes inside
    # the next begin_epoch, which the sequential and fused paths share —
    # so any mutation sequence is byte-identical on both, and a replay
    # that re-issues the same mutations before the same epochs reproduces
    # the served records exactly.

    def _check_node_ids(self, nodes) -> Set[int]:
        checked = set()
        for node in nodes:
            node = int(node)
            if not 0 <= node < self.n:
                raise ValidationError(f"node {node} out of range for n={self.n}")
            checked.add(node)
        return checked

    def request_join(self, nodes) -> None:
        """Force ``nodes`` into the active set from the next epoch on."""
        nodes = self._check_node_ids(nodes)
        self._forced_online |= nodes
        self._forced_offline -= nodes

    def request_leave(self, nodes) -> None:
        """Force ``nodes`` out of the active set from the next epoch on."""
        nodes = self._check_node_ids(nodes)
        self._forced_offline |= nodes
        self._forced_online -= nodes

    def reset_wiring(self, nodes) -> None:
        """Tear down ``nodes``'s overlay links (a re-wire request).

        The nodes stay online but forget their wiring, so each rebuilds
        from scratch at its next re-wiring opportunity.  The removals go
        through :meth:`GlobalWiring.remove_wiring`, feeding the changelog
        and the dynamic-SSSP repair path like any ordinary re-wire.
        """
        for node_id in sorted(self._check_node_ids(nodes)):
            node = self.nodes[node_id]
            if node.wiring is None:
                continue
            node.go_offline()
            node.go_online()
            self.wiring.remove_wiring(node_id)

    def inject_failure(self, event) -> None:
        """Schedule a :class:`FailureEvent` on the running engine.

        Engines without a configured failure schedule grow an empty one
        lazily, so live failure injection works on any deployment.
        """
        if self._failure_state is None:
            self._failure_state = FailureState(FailureSpec(), self.n)
        self._failure_state.schedule(event)

    def advance_provider(self, steps: int) -> None:
        """Advance substrate dynamics by ``steps`` extra drift steps."""
        steps = int(steps)
        if steps < 0:
            raise ValidationError("drift steps must be >= 0")
        if steps:
            self.provider.advance(steps)

    # ------------------------------------------------------------------ #
    # Simulation
    # ------------------------------------------------------------------ #
    def begin_epoch(self) -> EpochPlan:
        """Start a wiring epoch: membership, metrics, and re-wiring order.

        Handles churn-driven membership changes, snapshots the announced
        and true metrics, and shuffles the active nodes into this epoch's
        re-wiring order.  The returned :class:`EpochPlan` is consumed by
        :meth:`step_node` / :meth:`finish_epoch`.
        """
        epoch = self.clock.epoch
        with telemetry.span("epoch.begin", epoch=epoch):
            if self._failure_state is not None:
                self._failure_state.advance_to(epoch)
            active = self._active_nodes()
            self._handle_membership_change(active)
            self._enforce_link_failures(active)
            announced = self._announced_metric()
            truth = self._true_metric()

            active_list = sorted(active)
            order = list(active_list)
            self._rng.shuffle(order)
            bits_before = self.protocol.stats.announcement_bits
            # Residual route values depend on the announced metric, the global
            # wiring, and the active membership; a token of the three keeps
            # cache entries valid exactly as long as nothing re-wires.
            metric_fp = (
                metric_fingerprint(announced) if self.route_cache is not None else None
            )
        return EpochPlan(
            epoch=epoch,
            active_list=active_list,
            active_key=tuple(active_list),
            announced=announced,
            truth=truth,
            order=order,
            bits_before=bits_before,
            metric_fp=metric_fp,
        )

    def repair_route_entry(
        self,
        plan: EpochPlan,
        node_id: int,
        hops: Optional[Tuple[int, ...]] = None,
        *,
        tables=None,
        max_fraction: Optional[float] = None,
    ) -> bool:
        """Try to bring ``node_id``'s cached residual matrix up to date.

        The route cache's *re-wired* case: an entry stamped with an older
        wiring version — but the same announced metric and membership —
        can be repaired through the incremental dynamic-SSSP kernels when
        the :class:`GlobalWiring` changelog still covers the re-wires in
        between, instead of being recomputed by a fresh sweep.  Repaired
        matrices are bit-identical to the fresh sweep, so decisions never
        change; only wall-clock does.

        ``tables`` optionally supplies shared repair tables over the full
        active wiring (or a zero-argument factory for them — they are
        only materialised once a repairable entry is actually found), in
        which case the kernels exclude ``node_id``'s out-links
        themselves; without it the engine builds the node's dense
        residual directly.  ``max_fraction`` forwards the repair-vs-
        recompute bound of :meth:`ResidualRouteCache.repair`: every
        caller has *some* fresh path (the batch's stacked sweeps, the
        evaluator's own sweep) that wins once most of the matrix is
        suspect anyway.

        Returns True when the cache holds a currently-valid entry for the
        node after the call (whether it was already valid, re-stamped, or
        repaired).
        """
        cache = self.route_cache
        if cache is None or plan.metric_fp is None:
            return False
        repaired = self._repair_route_entry(
            plan, node_id, hops, tables=tables, max_fraction=max_fraction
        )
        # The repair-vs-sweep decision ledger: a False here means the
        # caller takes its fresh-sweep path for this node.  The cache's
        # own repairs/restamps/drops counters say *how* a hit was kept.
        telemetry.count("engine.repair.hit" if repaired else "engine.repair.sweep")
        return repaired

    def _repair_route_entry(
        self,
        plan: EpochPlan,
        node_id: int,
        hops: Optional[Tuple[int, ...]] = None,
        *,
        tables=None,
        max_fraction: Optional[float] = None,
    ) -> bool:
        cache = self.route_cache
        if hops is None:
            hops = tuple(c for c in plan.active_list if c != node_id)
        token = (self.wiring.version, plan.metric_fp, plan.active_key)
        info = cache.entry_info(node_id)
        if info is None:
            return False
        entry_token, entry_hops = info
        if entry_token == token and entry_hops == hops:
            return True
        if not (isinstance(entry_token, tuple) and len(entry_token) == 3):
            return False
        old_version, old_fp, _old_key = entry_token
        if old_fp != plan.metric_fp or not isinstance(old_version, int):
            return False
        if self.wiring.version - old_version > self.n:
            # More bumps than nodes since the entry was stored: close to
            # everything re-wired at least once, so the suspect screen
            # would refuse anyway — skip the changelog walk entirely.
            return False
        # A membership change needs no special case: the departures'
        # link removals (and the survivors' dropped links) all went
        # through set_wiring/remove_wiring, so the changelog *is* the
        # delta, and the cache re-slices the rows to the new hop tuple.
        changed = self.wiring.changed_since(old_version)
        if changed is None:
            return False
        changed.discard(node_id)
        if len(changed) > _REPAIR_CHANGED_CAP:
            return False
        if max_fraction is not None and len(changed) > max(3, max_fraction * self.n):
            # With this many distinct re-wired nodes the suspect screen
            # is all but certain to refuse; skip straight to the fresh
            # path without paying for the screen.
            return False
        cache.set_token(token)
        adjacency = None
        exclude = None
        if changed:
            if tables is not None:
                exclude = node_id
            else:
                # Deferred like the shared tables: only a repair that
                # survives the refusal screen pays for the dense build.
                adjacency = lambda: self.wiring.dense_residual(  # noqa: E731
                    node_id, plan.active_list
                )
        return (
            cache.repair(
                node_id,
                changed,
                adjacency,
                maximize=plan.announced.maximize,
                exclude=exclude,
                tables=tables if changed else None,
                max_fraction=max_fraction,
                new_hops=hops,
            )
            is not None
        )

    def step_node(self, plan: EpochPlan) -> bool:
        """Run the next node's re-wiring opportunity of ``plan``.

        Returns whether the node actually re-wired.  The residual graph is
        lazy: on a route-cache hit (quiescent epochs, matrices injected by
        :class:`~repro.core.engine_batch.EngineBatch`, or a stale entry
        repaired via :meth:`repair_route_entry`) it is never built.
        """
        node_id = plan.order[plan.pos]
        plan.pos += 1
        node = self.nodes[node_id]
        residual = _LazyResidualGraph(self.wiring, node_id, plan.active_list)
        candidates = [c for c in plan.active_list if c != node_id]
        if self.route_cache is not None:
            self.route_cache.set_token(
                (self.wiring.version, plan.metric_fp, plan.active_key)
            )
            self.repair_route_entry(
                plan,
                node_id,
                hops=tuple(candidates),
                max_fraction=_STEP_REPAIR_MAX_SUSPECT,
            )
        evaluator = WiringEvaluator(
            node=node_id,
            metric=plan.announced,
            residual_graph=residual,
            candidates=candidates,
            preferences=self.preferences,
            destinations=candidates,
            route_cache=self.route_cache,
        )
        decision = node.consider_rewiring(
            plan.announced,
            residual,
            plan.active_list,
            preferences=self.preferences,
            evaluator=evaluator,
        )
        if node.wiring is not None:
            self._install_wiring(node_id, plan.announced)
            self.protocol.broadcast(
                node_id,
                self.wiring.weights_of(node_id),
                active=plan.active_list,
                timestamp=self.clock.now,
            )
        if decision.rewired:
            plan.rewirings += 1
        return decision.rewired

    def finish_epoch(
        self,
        plan: EpochPlan,
        *,
        route_values: Optional[np.ndarray] = None,
        distances: Optional[np.ndarray] = None,
    ) -> EpochRecord:
        """Score the finished epoch and advance the clock and substrate.

        ``route_values`` (per-active-node routing values over the built
        overlay, in ``active_list`` order) and ``distances`` (the
        all-pairs shortest-cost matrix the efficiency metric reduces)
        are optional precomputed inputs — the lockstep batch scores all
        its deployments' epochs through stacked sweeps and hands the
        slices in, bit-identical to the sweeps below.  Running
        sequentially, an additive-metric epoch that needs the efficiency
        metric derives both from a single sweep instead of two.
        """
        with telemetry.span("epoch.finish", epoch=plan.epoch):
            graph = None
            if route_values is None or (self.compute_efficiency and distances is None):
                graph = self.wiring.to_graph(active=plan.active_list)
            if (
                self.compute_efficiency
                and distances is None
                and not plan.truth.maximize
            ):
                # One all-pairs sweep serves both the cost objective (its
                # active rows are exactly the multi-source sweep's rows) and
                # the efficiency reduction.
                distances = all_pairs_shortest_costs(graph)
                if route_values is None:
                    route_values = distances[np.asarray(plan.active_list, dtype=int)]
            if route_values is None:
                route_values = plan.truth.route_values_rows(graph, plan.active_list)
            costs = plan.truth.all_node_costs(
                graph,
                self.preferences,
                nodes=plan.active_list,
                destinations=plan.active_list,
                route_values=route_values,
            )
            mean_cost = float(np.mean(list(costs.values()))) if costs else float("nan")
            social = float(np.sum(list(costs.values()))) if costs else float("nan")
            efficiency = (
                overlay_efficiency(graph, active=plan.active_list, distances=distances)
                if self.compute_efficiency
                else float("nan")
            )
            routes_stuck = self._count_stuck_routes(plan, route_values)
            record = EpochRecord(
                epoch=plan.epoch,
                time=self.clock.now,
                active_nodes=len(plan.active_list),
                rewirings=plan.rewirings,
                mean_cost=mean_cost,
                mean_efficiency=efficiency,
                social_cost=social,
                linkstate_bits=self.protocol.stats.announcement_bits - plan.bits_before,
                routes_stuck=routes_stuck,
            )
            self.history.records.append(record)
            self.last_epoch_view = EpochView(
                epoch=plan.epoch,
                version=self.wiring.version,
                active_list=list(plan.active_list),
                active_key=plan.active_key,
                announced=plan.announced,
                metric_fp=plan.metric_fp,
            )
            self.clock.advance(self.clock.epoch_length)
            self.provider.advance(1)
        telemetry.count("engine.epochs")
        return record

    def _count_stuck_routes(
        self, plan: EpochPlan, route_values: Optional[np.ndarray]
    ) -> int:
        """Ordered active pairs whose route is dead at epoch end.

        A pure (vectorised) reduction of the same route-value matrix the
        cost scoring consumes, so the fused and sequential paths agree
        bit for bit.  "Dead" means non-finite (unreachable) or at/beyond
        the disconnection value — any path crossing a masked failed link
        sums past :data:`~repro.core.cost.DISCONNECTION_COST` (minimised
        metrics) or bottlenecks at zero bandwidth (maximised ones).  The
        diagonal is excluded explicitly: self-routes are not routes (and
        the bandwidth metric prices them at infinity).
        """
        if route_values is None or len(plan.active_list) < 2:
            return 0
        cols = np.asarray(plan.active_list, dtype=int)
        values = np.asarray(route_values)[:, cols]
        offdiag = np.ones(values.shape, dtype=bool)
        np.fill_diagonal(offdiag, False)
        if plan.truth.maximize:
            stuck = offdiag & (~np.isfinite(values) | (values <= 0.0))
        else:
            stuck = offdiag & (
                ~np.isfinite(values) | (values >= DISCONNECTION_COST)
            )
        return int(stuck.sum())

    def step_span(self, plan: EpochPlan, count: Optional[int] = None) -> int:
        """Consume up to ``count`` re-wiring opportunities of ``plan``.

        The shardable unit of an epoch: a worker holding the engine can
        run a contiguous span of the plan's opportunity order and hand
        the plan back (``plan.pos`` tracks progress), so an epoch can be
        cut into spans without changing a single decision —
        ``step_span(plan)`` with no count drains the epoch exactly as
        ``run_epoch`` does.  Returns the number of re-wirings the span
        performed.
        """
        if count is not None and count < 0:
            raise ValidationError("span count must be >= 0")
        before = plan.rewirings
        pos_before = plan.pos
        remaining = len(plan.order) - plan.pos if count is None else count
        with telemetry.span("epoch.steps", epoch=plan.epoch):
            while remaining > 0 and not plan.done:
                self.step_node(plan)
                remaining -= 1
        telemetry.count("engine.steps", plan.pos - pos_before)
        telemetry.count("engine.rewirings", plan.rewirings - before)
        return plan.rewirings - before

    def run_epoch(self) -> EpochRecord:
        """Simulate one wiring epoch and return its summary record."""
        plan = self.begin_epoch()
        self.step_span(plan)
        return self.finish_epoch(plan)

    def run(self, epochs: int) -> EngineHistory:
        """Simulate ``epochs`` wiring epochs and return the history."""
        for _ in range(int(epochs)):
            self.run_epoch()
        return self.history

    # ------------------------------------------------------------------ #
    # Evaluation helpers
    # ------------------------------------------------------------------ #
    def current_graph(self, *, active_only: bool = True):
        """The overlay graph induced by the current wiring."""
        active = sorted(self._active_nodes()) if active_only else None
        return self.wiring.to_graph(active=active)

    def node_costs(self, *, use_true_metric: bool = True) -> Dict[int, float]:
        """Per-node costs of the current overlay."""
        metric = self._true_metric() if use_true_metric else self._announced_metric()
        active = sorted(self._active_nodes())
        graph = self.wiring.to_graph(active=active)
        return metric.all_node_costs(
            graph, self.preferences, nodes=active, destinations=active
        )
