"""Per-node state and re-wiring behaviour.

An :class:`EgoistNode` owns one overlay node's neighbour-selection policy,
its current wiring, and its re-wiring mode.  The engine drives nodes by
offering them a chance to re-wire once per wiring epoch (delayed mode) or
immediately upon detecting a dropped link (immediate mode), and the node
decides — per its policy and its BR(ε) threshold — whether to adopt a new
wiring.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence, Set

import numpy as np

from repro.core.best_response import WiringEvaluator, should_rewire
from repro.core.cost import Metric
from repro.core.hybrid import HybridBRPolicy
from repro.core.policies import BestResponsePolicy, NeighborSelectionPolicy
from repro.core.wiring import Wiring
from repro.routing.graph import OverlayGraph
from repro.util.rng import SeedLike, as_generator


class RewireMode(enum.Enum):
    """When a node reacts to a dropped link (Section 3.3)."""

    #: Re-wire as soon as the drop is detected.
    IMMEDIATE = "immediate"
    #: Re-wire only at the preset wiring epoch (the paper's default).
    DELAYED = "delayed"


@dataclass
class RewireDecision:
    """What a node decided during one re-wiring opportunity."""

    node: int
    rewired: bool
    old_neighbors: frozenset
    new_neighbors: frozenset
    old_cost: float
    new_cost: float


class EgoistNode:
    """One overlay node: policy, wiring, and re-wiring behaviour.

    Parameters
    ----------
    node_id:
        The node's identifier (0-based).
    policy:
        Its neighbour-selection policy.
    k:
        Its neighbour budget.
    epsilon:
        BR(ε) threshold for adopting a new wiring (0 = adopt any strict
        improvement; only meaningful for cost-driven policies).
    rewire_mode:
        Immediate or delayed reaction to dropped links.
    seed:
        Per-node randomness.
    """

    def __init__(
        self,
        node_id: int,
        policy: NeighborSelectionPolicy,
        k: int,
        *,
        epsilon: float = 0.0,
        rewire_mode: RewireMode = RewireMode.DELAYED,
        seed: SeedLike = None,
    ):
        self.node_id = int(node_id)
        self.policy = policy
        self.k = int(k)
        self.epsilon = float(epsilon)
        self.rewire_mode = rewire_mode
        self.rng = as_generator(seed)
        self.wiring: Optional[Wiring] = None
        self.online: bool = True
        self.rewire_count: int = 0

    # ------------------------------------------------------------------ #
    # State transitions
    # ------------------------------------------------------------------ #
    def go_offline(self) -> None:
        """The node churns OFF: it drops its wiring and all participation."""
        self.online = False
        self.wiring = None

    def go_online(self) -> None:
        """The node churns back ON (it will wire at its next opportunity)."""
        self.online = True

    def drop_neighbors(self, departed: Set[int]) -> bool:
        """Remove departed nodes from the current wiring.

        Returns True if the wiring lost at least one link (which, in
        immediate mode, triggers a re-wire at the engine level).
        """
        if self.wiring is None:
            return False
        remaining = set(self.wiring.neighbors) - set(departed)
        if remaining == set(self.wiring.neighbors):
            return False
        donated = set(self.wiring.donated) & remaining
        self.wiring = Wiring.of(self.node_id, remaining, donated)
        return True

    # ------------------------------------------------------------------ #
    # Re-wiring
    # ------------------------------------------------------------------ #
    def consider_rewiring(
        self,
        metric: Metric,
        residual_graph: OverlayGraph,
        active_nodes: Sequence[int],
        *,
        preferences: Optional[np.ndarray] = None,
        evaluator: Optional[WiringEvaluator] = None,
    ) -> RewireDecision:
        """Evaluate a new wiring and adopt it if it is worth it.

        The candidate wiring comes from the node's policy.  For
        cost-driven policies the node compares the candidate's cost with
        its current cost and applies the BR(ε) rule; purely structural
        policies (k-Random, k-Regular) only re-wire if their prescribed
        neighbour set changed (e.g. due to membership change).

        ``evaluator`` optionally supplies a pre-built
        :class:`WiringEvaluator` over ``residual_graph`` with candidates
        and destinations equal to the other active nodes (the engine
        builds one, route-cache-backed, per re-wiring opportunity); the
        same evaluator then scores the current wiring *and* drives the
        policy's best-response computation, so the residual route-value
        sweep runs at most once per opportunity.
        """
        candidates = [c for c in active_nodes if c != self.node_id]
        destinations = candidates
        old_neighbors = (
            frozenset(self.wiring.neighbors) if self.wiring is not None else frozenset()
        )
        if evaluator is None:
            evaluator = WiringEvaluator(
                node=self.node_id,
                metric=metric,
                residual_graph=residual_graph,
                candidates=candidates,
                preferences=preferences,
                destinations=destinations,
            )
        old_cost = evaluator.evaluate(old_neighbors) if old_neighbors else evaluator.evaluate(())

        if isinstance(self.policy, HybridBRPolicy):
            new_wiring = self.policy.select_wiring(
                self.node_id,
                self.k,
                metric,
                residual_graph,
                candidates=candidates,
                rng=self.rng,
                preferences=preferences,
                destinations=destinations,
                evaluator=evaluator,
            )
            new_neighbors = frozenset(new_wiring.neighbors)
            donated = new_wiring.donated
        else:
            new_neighbors = frozenset(
                self.policy.select(
                    self.node_id,
                    self.k,
                    metric,
                    residual_graph,
                    candidates=candidates,
                    rng=self.rng,
                    preferences=preferences,
                    destinations=destinations,
                    evaluator=evaluator,
                )
            )
            donated = frozenset()
        new_cost = evaluator.evaluate(new_neighbors) if new_neighbors else old_cost

        cost_driven = isinstance(self.policy, (BestResponsePolicy, HybridBRPolicy))
        if old_neighbors and cost_driven:
            adopt = should_rewire(metric, old_cost, new_cost, self.epsilon)
        else:
            adopt = new_neighbors != old_neighbors
        rewired = bool(adopt and new_neighbors != old_neighbors)
        if rewired:
            self.wiring = Wiring.of(self.node_id, new_neighbors, donated)
            self.rewire_count += 1
        return RewireDecision(
            node=self.node_id,
            rewired=rewired,
            old_neighbors=old_neighbors,
            new_neighbors=frozenset(self.wiring.neighbors) if self.wiring else frozenset(),
            old_cost=float(old_cost),
            new_cost=float(new_cost if rewired else old_cost),
        )
