"""Scalability via sampling (Section 5).

For very large overlays, computing a best response over the full residual
graph is too expensive (local search is a high-order polynomial in ``n``).
EGOIST therefore scales the *input* down: a newcomer computes its BR over a
sample of ``m`` nodes only.

Two samplers are provided:

* **Unbiased random sampling** — ``m`` uniform random nodes.
* **Topology-based biased random sampling (BRtp)** — draw ``m' > m``
  random candidates, rank each candidate ``v_j`` by

      ``b_ij = |F(v_j)| / sum_{u in F(v_j)} d(v_i, u)``

  where ``F(v_j)`` is ``v_j``'s neighbourhood of radius ``r`` in the
  residual overlay graph, and keep the ``m`` highest-ranked candidates.
  The intuition: a good neighbour has a large neighbourhood whose members
  are close to the newcomer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from repro.core.best_response import BestResponseResult, WiringEvaluator, best_response
from repro.core.cost import Metric
from repro.routing.graph import OverlayGraph
from repro.util.rng import SeedLike, as_generator
from repro.util.validation import ValidationError


def random_sample(
    candidates: Sequence[int], m: int, *, rng: SeedLike = None
) -> List[int]:
    """Unbiased random sample of ``m`` distinct candidates."""
    rng = as_generator(rng)
    pool = list(candidates)
    m = min(m, len(pool))
    if m <= 0:
        return []
    idx = rng.choice(len(pool), size=m, replace=False)
    return [pool[i] for i in np.atleast_1d(idx)]


def neighborhood(
    graph: OverlayGraph, node: int, radius: int
) -> Set[int]:
    """``F(v_j)``: distinct nodes reachable from ``node`` within ``radius`` hops.

    The node itself is excluded (the paper counts reachable *other* nodes).
    """
    if radius < 0:
        raise ValidationError("radius must be non-negative")
    frontier = {node}
    seen = {node}
    for _ in range(radius):
        next_frontier: Set[int] = set()
        for u in frontier:
            for v in graph.successors(u):
                if v not in seen:
                    seen.add(v)
                    next_frontier.add(v)
        frontier = next_frontier
        if not frontier:
            break
    seen.discard(node)
    return seen


def bias_rank(
    newcomer: int,
    candidate: int,
    metric: Metric,
    residual_graph: OverlayGraph,
    radius: int,
) -> float:
    """The ranking function ``b_ij`` of topology-biased sampling.

    Larger is better.  Distances from the newcomer to neighbourhood members
    use the metric's direct-link estimates (the newcomer has no overlay
    routes yet).  An empty neighbourhood ranks zero.
    """
    members = neighborhood(residual_graph, candidate, radius)
    return _bias_rank_from_row(
        metric.link_weight_row(newcomer), members, maximize=metric.maximize
    )


def _bias_rank_from_row(
    weight_row: np.ndarray, members: Set[int], *, maximize: bool
) -> float:
    """``b_ij`` from a precomputed direct-weight row (vectorised sum)."""
    if not members:
        return 0.0
    total = float(weight_row[np.fromiter(members, dtype=int, count=len(members))].sum())
    if maximize:
        # Bandwidth analogue: prefer candidates whose neighbourhood offers
        # high direct bandwidth from the newcomer.
        return total
    if total <= 0:
        return float("inf")
    return len(members) / total


def topology_biased_sample(
    newcomer: int,
    metric: Metric,
    residual_graph: OverlayGraph,
    m: int,
    *,
    oversample: int = 3,
    radius: int = 2,
    candidates: Optional[Sequence[int]] = None,
    rng: SeedLike = None,
) -> List[int]:
    """Topology-based biased random sampling (BRtp).

    Draw ``oversample * m`` random candidates (``m'`` in the paper), rank
    them by :func:`bias_rank`, and keep the top ``m``.
    """
    rng = as_generator(rng)
    if candidates is None:
        candidates = [j for j in range(metric.size) if j != newcomer]
    m = min(m, len(candidates))
    if m <= 0:
        return []
    m_prime = min(len(candidates), max(m, int(oversample) * m))
    pool = random_sample(candidates, m_prime, rng=rng)
    # One direct-weight row lookup shared across every candidate's ranking
    # instead of a link_weight call per neighbourhood member.
    weight_row = metric.link_weight_row(newcomer)
    ranked = sorted(
        pool,
        key=lambda c: _bias_rank_from_row(
            weight_row,
            neighborhood(residual_graph, c, radius),
            maximize=metric.maximize,
        ),
        reverse=True,
    )
    return ranked[:m]


@dataclass(frozen=True)
class SampledJoinResult:
    """Outcome of a newcomer joining via sampling."""

    newcomer: int
    sample: tuple
    neighbors: frozenset
    sampled_cost: float
    method: str


def sampled_best_response(
    newcomer: int,
    metric: Metric,
    residual_graph: OverlayGraph,
    k: int,
    sample: Sequence[int],
    *,
    preferences: Optional[np.ndarray] = None,
    rng: SeedLike = None,
    max_iterations: int = 100,
    vectorized: bool = True,
) -> SampledJoinResult:
    """Compute a newcomer's BR restricted to the sampled nodes.

    Both the candidate neighbours and the destinations entering the
    objective are limited to the sample, mirroring the paper's description
    ("limit the input to the parts of the distance function that involve
    pairs in the chosen sample").
    """
    sample = [int(s) for s in sample if int(s) != newcomer]
    if not sample:
        raise ValidationError("sample must contain at least one node")
    evaluator = WiringEvaluator(
        node=newcomer,
        metric=metric,
        residual_graph=residual_graph,
        candidates=sample,
        preferences=preferences,
        destinations=sample,
    )
    result = best_response(
        evaluator, k, rng=rng, max_iterations=max_iterations, vectorized=vectorized
    )
    return SampledJoinResult(
        newcomer=newcomer,
        sample=tuple(sample),
        neighbors=frozenset(result.neighbors),
        sampled_cost=result.cost,
        method="sampled-" + result.method,
    )


def sampling_message_cost(m_prime: int, n: int, k: int) -> float:
    """Messages needed to query ``m'`` pseudorandom nodes via random walks.

    The paper cites ``O(m' log n / log k)`` messages on a k-regular
    expander; this helper returns that estimate (used in overhead
    accounting and scalability discussion).
    """
    if m_prime < 0 or n < 2 or k < 2:
        raise ValidationError("need m' >= 0, n >= 2, k >= 2")
    return float(m_prime) * np.log(n) / np.log(k)
