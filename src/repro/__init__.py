"""repro — a reproduction of "EGOIST: Overlay Routing using Selfish Neighbor Selection".

The package is organised around the systems the paper builds on:

* :mod:`repro.core` — the EGOIST contribution: selfish (Best-Response)
  neighbour selection, the comparison policies, HybridBR, sampling,
  cheating, and the epoch-driven overlay engine.
* :mod:`repro.netsim` — the substrate that replaces PlanetLab: synthetic
  delay spaces, bandwidth and load models, virtual coordinates, probers,
  and the AS/multihoming model.
* :mod:`repro.routing` — the overlay routing layer: link-state protocol,
  shortest/widest/disjoint paths.
* :mod:`repro.churn` — ON/OFF churn models and the efficiency metric.
* :mod:`repro.game` — SNS game analysis: equilibria and social cost.
* :mod:`repro.apps` — the applications of Section 6: multipath transfer
  and real-time redirection.
* :mod:`repro.experiments` — figure-level experiment drivers shared by the
  examples and the benchmark harness.

Quickstart::

    from repro import quick_overlay

    result = quick_overlay(n=20, k=3, seed=1)
    print(result["mean_cost_by_policy"])
"""

from repro.version import __version__


def quick_overlay(n: int = 20, k: int = 3, seed=0):
    """Build a small synthetic overlay under every standard policy.

    Returns a dictionary with the generated delay space and the mean
    routing cost achieved by each neighbour-selection policy — a one-call
    demonstration of the paper's headline comparison.
    """
    from repro.core.cost import DelayMetric
    from repro.core.policies import STANDARD_POLICIES, build_overlay
    from repro.netsim.planetlab import synthetic_planetlab

    space, _nodes = synthetic_planetlab(n, seed=seed)
    metric = DelayMetric(space.matrix)
    results = {}
    for name, policy in STANDARD_POLICIES.items():
        wiring = build_overlay(policy, metric, k, rng=seed)
        graph = wiring.to_graph()
        costs = metric.all_node_costs(graph)
        results[name] = sum(costs.values()) / len(costs)
    return {
        "n": n,
        "k": k,
        "delay_space": space,
        "mean_cost_by_policy": results,
    }


__all__ = [
    "__version__",
    "quick_overlay",
]
