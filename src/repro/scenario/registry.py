"""The scenario registry: experiment names -> default specs + runners.

Every figure-level experiment registers itself here (the modules in
:mod:`repro.experiments` call :func:`register_scenario` at import time),
which gives the CLI and the :class:`~repro.scenario.session.SimulationSession`
one shared catalogue:

* ``repro list`` prints the registered names and help lines,
* ``repro run <name>`` starts from the registered default spec and applies
  command-line overrides,
* ``SimulationSession.run()`` resolves the spec's ``experiment`` field to
  the registered runner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Tuple

from repro.scenario.spec import ScenarioSpec
from repro.util.validation import ValidationError

#: Runner signature: takes the running session, returns an ExperimentResult.
Runner = Callable[["SimulationSession"], "ExperimentResult"]  # noqa: F821


@dataclass(frozen=True)
class ScenarioDefinition:
    """One registered experiment shape."""

    name: str
    help: str
    default_spec: Callable[[], ScenarioSpec]
    runner: Runner
    #: Extra CLI arguments that make a smoke run of this experiment tiny
    #: and fast (used by the CLI test suite).
    smoke_args: Tuple[str, ...] = field(default_factory=tuple)


_REGISTRY: Dict[str, ScenarioDefinition] = {}


def register_scenario(
    name: str,
    *,
    help: str,
    default_spec: Callable[[], ScenarioSpec],
    runner: Runner,
    smoke_args: Tuple[str, ...] = (),
) -> None:
    """Register (or re-register, e.g. on module reload) an experiment."""
    _REGISTRY[name] = ScenarioDefinition(
        name=name,
        help=help,
        default_spec=default_spec,
        runner=runner,
        smoke_args=tuple(smoke_args),
    )


def _ensure_loaded() -> None:
    """Import the experiment modules so their registrations run."""
    import repro.experiments  # noqa: F401  (registration side effect)


def resolve(name: str) -> ScenarioDefinition:
    """The registered definition for ``name`` (ValidationError if absent)."""
    _ensure_loaded()
    definition = _REGISTRY.get(name)
    if definition is None:
        raise ValidationError(
            f"unknown experiment {name!r}; known: {', '.join(scenario_names())}"
        )
    return definition


def scenario_names() -> Tuple[str, ...]:
    """All registered experiment names, sorted."""
    _ensure_loaded()
    return tuple(sorted(_REGISTRY))


def default_spec(name: str) -> ScenarioSpec:
    """A fresh copy of the registered default spec for ``name``."""
    return resolve(name).default_spec()
