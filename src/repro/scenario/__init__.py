"""Unified scenario API: declarative specs, a session facade, a registry.

The three pieces:

* :class:`~repro.scenario.spec.ScenarioSpec` — a declarative,
  JSON-round-trippable description of one workload (topology/metric
  family, n, k-grid, policy set, churn, cheating, preference skew,
  epochs, seed);
* :class:`~repro.scenario.session.SimulationSession` — the ``run()``
  facade that plans execution, dispatching build-only sweeps to
  :class:`~repro.core.deployment_batch.DeploymentBatch` and epoch-loop
  scenarios to :class:`~repro.core.engine_batch.EngineBatch`;
* the registry (:mod:`repro.scenario.registry`) — experiment names to
  default specs and runners, shared by the CLI and the drivers.

Quick use::

    from repro.scenario import ScenarioSpec, SimulationSession

    spec = ScenarioSpec(experiment="fig1-delay-ping", n=30, k_grid=(2, 4))
    result = SimulationSession(spec).run()
    print(result.table())
"""

from repro.scenario.spec import (
    METRIC_FAMILIES,
    CheatingSpec,
    ChurnSpec,
    ScenarioSpec,
    parse_policy,
    policy_label,
)
from repro.scenario.lifecycle import MUTATION_KINDS, Mutation, Session
from repro.scenario.session import SimulationSession, run_spec
from repro.scenario.registry import (
    ScenarioDefinition,
    default_spec,
    register_scenario,
    resolve,
    scenario_names,
)

__all__ = [
    "METRIC_FAMILIES",
    "MUTATION_KINDS",
    "CheatingSpec",
    "ChurnSpec",
    "Mutation",
    "ScenarioSpec",
    "ScenarioDefinition",
    "Session",
    "SimulationSession",
    "default_spec",
    "parse_policy",
    "policy_label",
    "register_scenario",
    "resolve",
    "run_spec",
    "scenario_names",
]
