"""The simulation front door: plan and run one declarative scenario.

:class:`SimulationSession` realises a :class:`~repro.scenario.spec.ScenarioSpec`:

* it resolves the spec's ``experiment`` against the scenario registry and
  drives the registered runner,
* it offers the planning facade the runners are built on — substrate and
  metric-provider construction per metric family, policy construction
  from descriptors, preference matrices, churn schedules, cheating
  models — and dispatches the heavy lifting to the batched kernels:
  build-only sweeps to :class:`~repro.core.deployment_batch.DeploymentBatch`
  and epoch-loop scenarios to :class:`~repro.core.engine_batch.EngineBatch`,
* it stamps the produced :class:`~repro.experiments.harness.ExperimentResult`
  with the scenario's canonical dictionary as provenance metadata, so a
  result always names the spec that can regenerate it.

``batched`` is a session (execution) choice, not part of the spec: both
kernel paths produce bit-identical results, so the provenance of a result
is the same either way.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.churn.models import ChurnSchedule, parametrized_churn, trace_driven_churn
from repro.core.cheating import CheatingModel
from repro.core.cost import Metric, zipf_preferences
from repro.core.deployment_batch import DeploymentBatch, DeploymentSpec
from repro.core.engine_batch import EngineBatch, EngineSpec
from repro.core.policies import NeighborSelectionPolicy
from repro.core.providers import (
    BandwidthMetricProvider,
    DelayMetricProvider,
    LoadMetricProvider,
    MetricProvider,
)
from repro.netsim.bandwidth import BandwidthModel
from repro.netsim.load import NodeLoadModel
from repro.netsim.planetlab import synthetic_planetlab
from repro.scenario import registry
from repro.scenario.spec import ScenarioSpec, parse_policy, policy_label
from repro.telemetry.diagnostics import merge_cache_stats
from repro.util.rng import SeedLike, as_generator, spawn_generators
from repro.util.validation import ValidationError


class SimulationSession:
    """Plan and execute one scenario.

    Parameters
    ----------
    spec:
        The declarative scenario (validated on construction).
    batched:
        Use the stacked kernels (default) or the bit-identical sequential
        reference paths — an execution detail, deliberately *not* part of
        the spec.
    """

    def __init__(self, spec: ScenarioSpec, *, batched: bool = True):
        spec.validate()
        self.spec = spec
        self.batched = bool(batched)
        self._engine_batches: List[EngineBatch] = []

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(self):
        """Run the scenario's registered experiment and stamp provenance.

        Epoch-loop scenarios also carry their aggregated residual
        route-cache statistics (hits, misses, repairs, hit rate — summed
        over every engine batch the run dispatched) as
        ``metadata["cache"]``, so cache effectiveness under churn is
        observable from any stored result (and printed by
        ``repro run --verbose``).
        """
        from repro.core.codec import cache_stats_to_json

        definition = registry.resolve(self.spec.experiment)
        result = definition.runner(self)
        result.metadata["scenario"] = self.spec.to_dict()
        cache_stats = self.cache_stats()
        if cache_stats is not None:
            # One schema for every consumer of the diagnostics dict —
            # stored sweep cells, --verbose, and the serve stream.
            result.metadata["cache"] = cache_stats_to_json(cache_stats)
        return result

    def cache_stats(self) -> Optional[Dict[str, float]]:
        """Aggregated route-cache counters of the engine batches run so
        far (None when the scenario dispatched no epoch loops).

        Deprecation shim over
        :func:`repro.telemetry.diagnostics.merge_cache_stats` — the
        registry's ``cache.*`` snapshot is the forward-looking surface.
        """
        if not self._engine_batches:
            return None
        return merge_cache_stats(
            batch.cache_stats() for batch in self._engine_batches
        )

    # ------------------------------------------------------------------ #
    # Facade: substrate + configuration builders
    # ------------------------------------------------------------------ #
    def rng(self) -> np.random.Generator:
        """A fresh master generator for the scenario seed."""
        return as_generator(self.spec.seed)

    def make_provider(self, rng: SeedLike) -> MetricProvider:
        """A metric provider of the spec's family, drawing from ``rng``."""
        spec = self.spec
        if spec.metric in ("delay-ping", "delay-pyxida", "delay-true"):
            space, _nodes = synthetic_planetlab(spec.n, seed=rng)
            estimator = {
                "delay-ping": "ping",
                "delay-pyxida": "pyxida",
                "delay-true": "true",
            }[spec.metric]
            kwargs = {}
            if estimator == "pyxida":
                kwargs["coordinate_rounds"] = int(spec.param("coordinate_rounds", 30))
            return DelayMetricProvider(
                space,
                estimator=estimator,
                drift_relative_std=spec.drift_relative_std,
                seed=rng,
                **kwargs,
            )
        if spec.metric == "load":
            load_model = NodeLoadModel(spec.n, seed=rng)
            load_model.advance(int(spec.param("load_warmup", 5)))
            return LoadMetricProvider(load_model)
        bw_model = BandwidthModel(spec.n, seed=rng)
        return BandwidthMetricProvider(bw_model, seed=rng)

    def policy_map(self) -> Dict[str, NeighborSelectionPolicy]:
        """Policies keyed by series label, in spec order."""
        policies: Dict[str, NeighborSelectionPolicy] = {}
        for descriptor in self.spec.policies:
            policies[policy_label(descriptor)] = parse_policy(descriptor)
        return policies

    def preferences(self, rng: SeedLike) -> Optional[np.ndarray]:
        """The preference matrix (None for the paper's uniform setting)."""
        if self.spec.preference_skew == 0.0:
            return None
        return zipf_preferences(
            self.spec.n, exponent=self.spec.preference_skew, seed=rng
        )

    def churn_schedule(self, rng: SeedLike, *, rate: Optional[float] = None) -> Optional[ChurnSchedule]:
        """The churn schedule described by the spec (None without churn).

        ``rate`` overrides the spec's parametrized rate — the churn-rate
        sweep generates one schedule per swept rate.
        """
        churn = self.spec.churn
        if churn is None:
            return None
        horizon = churn.horizon
        if horizon is None:
            horizon = max(1, self.spec.epochs) * self.spec.epoch_length
        if churn.kind == "parametrized" or rate is not None:
            effective = rate if rate is not None else churn.rate
            if effective is None:
                raise ValidationError(
                    "parametrized churn needs a rate (in the spec or per call)"
                )
            return parametrized_churn(
                self.spec.n,
                horizon,
                effective,
                duty_cycle=churn.duty_cycle,
                seed=rng,
            )
        return trace_driven_churn(
            self.spec.n,
            horizon,
            mean_on=churn.mean_on,
            mean_off=churn.mean_off,
            seed=rng,
        )

    def cheating_model(self, truth: Metric) -> Optional[CheatingModel]:
        """The cheating model over ``truth`` (None without cheaters)."""
        cheating = self.spec.cheating
        if cheating is None or not cheating.free_riders:
            return None
        return CheatingModel(truth, cheating.free_riders, cheating.inflation)

    # ------------------------------------------------------------------ #
    # Facade: grid construction
    # ------------------------------------------------------------------ #
    # Every sweep runner follows one RNG discipline: spawn exactly one
    # child stream per grid cell from the master generator (after all
    # master-stream draws — substrates, schedules, preference matrices —
    # have happened), and give the cell's provider and engine that same
    # stream.  The batched and sequential kernel paths then consume
    # identical draws per deployment regardless of interleaving.  These
    # helpers are the single home of that contract.

    def engine_grid(self, cells: Sequence, rng: SeedLike, build) -> List[EngineSpec]:
        """One :class:`EngineSpec` per cell; ``build(cell, stream)`` makes it.

        ``build`` must seed both the cell's provider and the spec with the
        given stream.
        """
        streams = spawn_generators(rng, len(cells))
        return [build(cell, stream) for cell, stream in zip(cells, streams)]

    def deployment_grid(
        self, cells: Sequence, rng: SeedLike, build
    ) -> List[DeploymentSpec]:
        """One :class:`DeploymentSpec` per cell; the helper assigns streams."""
        streams = spawn_generators(rng, len(cells))
        specs = []
        for cell, stream in zip(cells, streams):
            spec = build(cell)
            spec.rng = stream
            specs.append(spec)
        return specs

    # ------------------------------------------------------------------ #
    # Facade: batched execution planners
    # ------------------------------------------------------------------ #
    def deployment_batch(self, specs: Sequence[DeploymentSpec]) -> DeploymentBatch:
        """A build-only sweep over ``specs`` on the session's kernel path."""
        return DeploymentBatch(specs, batched=self.batched)

    def build_deployments(self, specs: Sequence[DeploymentSpec]):
        """Build every deployment's overlay wiring."""
        return self.deployment_batch(specs).build()

    def deployment_means(self, specs: Sequence[DeploymentSpec]) -> np.ndarray:
        """Mean true-metric cost per deployment (one fused sweep)."""
        return self.deployment_batch(specs).run()

    def engine_batch(self, specs: Sequence[EngineSpec]) -> EngineBatch:
        """An epoch-loop sweep over ``specs`` on the session's kernel path."""
        batch = EngineBatch(specs, batched=self.batched)
        self._engine_batches.append(batch)
        return batch

    def engine_sweep(self, specs: Sequence[EngineSpec], epochs: Optional[int] = None) -> List:
        """Run the engines for ``epochs`` (default: the spec's) in lockstep.

        A thin loop over the lifecycle API: every batch run steps the
        same :meth:`repro.scenario.lifecycle.Session.step` the serve
        scheduler does, so there is exactly one execution planner.
        """
        from repro.scenario.lifecycle import Session

        if epochs is None:
            epochs = self.spec.epochs
        session = Session(self.spec, self.engine_batch(specs))
        for _ in range(int(epochs)):
            session.step()
        return session.close()


def run_spec(spec: ScenarioSpec, *, batched: bool = True):
    """Convenience: run a spec through a fresh session."""
    return SimulationSession(spec, batched=batched).run()
