"""Declarative scenario descriptions.

A :class:`ScenarioSpec` is the single front door to the repository's
workloads: one JSON-serialisable dataclass naming the topology/metric
family, the overlay size, the k-grid, the policy set, the churn schedule,
the cheating model, the preference skew, the epoch count, and the seed.
:class:`~repro.scenario.session.SimulationSession` plans its execution —
build-only sweeps through :class:`~repro.core.deployment_batch.DeploymentBatch`,
epoch-loop scenarios through :class:`~repro.core.engine_batch.EngineBatch`
— and every experiment driver in :mod:`repro.experiments` is a thin
construction of one of these specs.

The spec is *descriptive*, not executional: knobs that only change how a
scenario is computed (the ``batched`` kernel switch) live on the session,
so a spec's JSON form identifies the scenario regardless of which code
path realises it.
"""

from __future__ import annotations

import json
import re
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.failures import FailureSpec
from repro.core.hybrid import HybridBRPolicy
from repro.core.policies import (
    BestResponsePolicy,
    FullMeshPolicy,
    KClosestPolicy,
    KRandomPolicy,
    KRegularPolicy,
    NeighborSelectionPolicy,
)
from repro.util.validation import ValidationError

#: Metric/topology families a scenario can name.
METRIC_FAMILIES = (
    "delay-ping",
    "delay-pyxida",
    "delay-true",
    "load",
    "bandwidth",
)

_POLICY_PATTERN = re.compile(r"^(?P<name>[a-z-]+)(?:\((?P<args>[^)]*)\))?$")

_POLICY_BUILDERS = {
    "k-random": KRandomPolicy,
    "k-regular": KRegularPolicy,
    "k-closest": KClosestPolicy,
    "full-mesh": FullMeshPolicy,
    "best-response": BestResponsePolicy,
    "hybrid-br": HybridBRPolicy,
}

_POLICY_KWARGS = {
    "k-random": (),
    "k-regular": (),
    "k-closest": (),
    "full-mesh": (),
    "best-response": ("eps",),
    "hybrid-br": ("k2", "eps"),
}


def parse_policy(descriptor: str) -> NeighborSelectionPolicy:
    """Build a policy object from its descriptor string.

    Descriptors are the figure labels, optionally parameterised:
    ``"k-random"``, ``"best-response"``, ``"best-response(eps=0.1)"``,
    ``"hybrid-br(k2=2)"``.
    """
    match = _POLICY_PATTERN.match(descriptor.strip())
    if not match:
        raise ValidationError(f"malformed policy descriptor {descriptor!r}")
    name = match.group("name")
    builder = _POLICY_BUILDERS.get(name)
    if builder is None:
        raise ValidationError(
            f"unknown policy {name!r}; expected one of {sorted(_POLICY_BUILDERS)}"
        )
    kwargs = {}
    args_text = match.group("args")
    if args_text:
        allowed = _POLICY_KWARGS[name]
        for part in args_text.split(","):
            if "=" not in part:
                raise ValidationError(
                    f"policy argument {part!r} in {descriptor!r} must be key=value"
                )
            key, value = (piece.strip() for piece in part.split("=", 1))
            if key not in allowed:
                raise ValidationError(
                    f"policy {name!r} does not accept argument {key!r}"
                )
            kwargs[key] = float(value)
    if name == "best-response":
        return builder(epsilon=kwargs.get("eps", 0.0))
    if name == "hybrid-br":
        return builder(k2=int(kwargs.get("k2", 2)), epsilon=kwargs.get("eps", 0.0))
    return builder()


def policy_label(descriptor: str) -> str:
    """Series label of a policy descriptor (the part before ``(``)."""
    return descriptor.split("(", 1)[0].strip()


def coerce_seed(seed) -> Optional[int]:
    """Normalise a driver seed into spec form (int or None).

    Scenario specs must serialise, so generator objects — accepted by the
    lower-level library APIs — are rejected here with a pointer at the
    reproducible alternative.
    """
    if seed is None:
        return None
    if isinstance(seed, (int, np.integer)):
        return int(seed)
    raise ValidationError(
        "experiment drivers route through ScenarioSpec and need an integer "
        "seed (or None); pass a seed instead of a Generator for a "
        "reproducible, serialisable scenario"
    )


@dataclass(frozen=True)
class ChurnSpec:
    """Declarative churn schedule.

    ``kind`` selects the generator: ``"trace"`` for the PlanetLab-like
    heavy-tailed sessions (:func:`repro.churn.models.trace_driven_churn`)
    or ``"parametrized"`` for schedules calibrated to ``rate``
    (:func:`repro.churn.models.parametrized_churn`).  ``horizon`` defaults
    to the scenario's ``epochs * epoch_length`` when omitted.
    """

    kind: str = "trace"
    rate: Optional[float] = None
    horizon: Optional[float] = None
    mean_on: float = 1500.0
    mean_off: float = 300.0
    duty_cycle: float = 0.8

    def validate(self) -> None:
        if self.kind not in ("trace", "parametrized"):
            raise ValidationError(f"unknown churn kind {self.kind!r}")
        # rate may stay None for parametrized schedules whose experiment
        # sweeps the rate (fig2-churn-rate passes it per point).
        if self.kind == "parametrized" and self.rate is not None and self.rate <= 0:
            raise ValidationError("parametrized churn needs a positive rate")


@dataclass(frozen=True)
class CheatingSpec:
    """Declarative free-rider model (see :class:`repro.core.cheating.CheatingModel`)."""

    free_riders: Tuple[int, ...] = ()
    inflation: float = 2.0

    def validate(self) -> None:
        if self.inflation <= 0:
            raise ValidationError("inflation must be positive")


@dataclass
class ScenarioSpec:
    """One declarative scenario: everything a run needs except code paths.

    Parameters
    ----------
    experiment:
        Registry key of the experiment shape (``"fig1-delay-ping"``,
        ``"fig2-churn-rate"``, ...) — see :mod:`repro.scenario.registry`.
    n, k_grid, policies, metric:
        Overlay size, neighbour budgets swept, policy descriptors (see
        :func:`parse_policy`), and metric family.
    epochs:
        Engine epochs for epoch-loop scenarios; 0 means build-only.
    br_rounds, epsilon, drift_relative_std, preference_skew:
        Best-response dynamics rounds, engine-level BR(ε) threshold,
        per-epoch substrate drift, and Zipf preference exponent
        (0 = the paper's uniform preferences).
    churn, cheating:
        Optional churn schedule and free-rider model.
    failures:
        Optional failure-injection schedule (link/node outages, delayed
        re-announce, announcement loss) — see
        :class:`repro.core.failures.FailureSpec`.
    seed:
        Master seed (must be an integer, or None, so the spec serialises).
    params:
        Experiment-specific extras (sample sizes, trials, churn-rate
        sweeps, ...), restricted to JSON-representable values.
    """

    experiment: str
    n: int = 50
    k_grid: Tuple[int, ...] = (2, 3, 4, 5, 6, 7, 8)
    policies: Tuple[str, ...] = (
        "k-random",
        "k-regular",
        "k-closest",
        "best-response",
    )
    metric: str = "delay-ping"
    epochs: int = 0
    br_rounds: int = 3
    epsilon: float = 0.0
    drift_relative_std: float = 0.0
    preference_skew: float = 0.0
    churn: Optional[ChurnSpec] = None
    cheating: Optional[CheatingSpec] = None
    failures: Optional[FailureSpec] = None
    epoch_length: float = 60.0
    announce_interval: float = 20.0
    compute_efficiency: bool = False
    seed: Optional[int] = 0
    params: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def _field_errors(self) -> list:
        """``(field, message)`` pairs for every invalid field of the spec.

        Checks never abort each other: a wrong *type* (which would make
        the comparison itself raise) is reported as that field's error,
        and all failing fields are collected so one round-trip through
        the error message fixes the whole file.
        """
        errors = []

        def require(name: str, predicate, message: str) -> None:
            try:
                ok = bool(predicate())
            except (TypeError, ValueError):
                value = getattr(self, name)
                ok = False
                message = f"has the wrong type ({type(value).__name__}: {value!r})"
            if not ok:
                errors.append((name, message))

        require("experiment", lambda: self.experiment, "a scenario needs an experiment name")
        require("n", lambda: self.n >= 2, "must be >= 2")
        require(
            "k_grid",
            lambda: self.k_grid and all(int(k) >= 0 for k in self.k_grid),
            "must be a non-empty tuple of k >= 0",
        )
        require(
            "metric",
            lambda: self.metric in METRIC_FAMILIES,
            f"unknown metric family {self.metric!r}; expected one of {METRIC_FAMILIES}",
        )
        require("epochs", lambda: self.epochs >= 0, "must be >= 0")
        require("br_rounds", lambda: self.br_rounds >= 0, "must be >= 0")
        require("epsilon", lambda: self.epsilon >= 0, "must be non-negative")
        require(
            "preference_skew", lambda: self.preference_skew >= 0, "must be non-negative"
        )
        require(
            "seed",
            lambda: self.seed is None or isinstance(self.seed, int),
            "must be a plain integer (or None) so specs serialise",
        )
        for descriptor in self.policies:
            try:
                parse_policy(descriptor)
            except ValidationError as error:
                errors.append(("policies", str(error)))
        if self.churn is not None:
            try:
                self.churn.validate()
            except ValidationError as error:
                errors.append(("churn", str(error)))
        if self.cheating is not None:
            try:
                self.cheating.validate()
                for rider in self.cheating.free_riders:
                    if not 0 <= int(rider) < self.n:
                        errors.append(("cheating", f"free rider {rider} out of range"))
            except ValidationError as error:
                errors.append(("cheating", str(error)))
            except (TypeError, ValueError):
                errors.append(
                    ("cheating", f"free riders must be integers, got {self.cheating.free_riders!r}")
                )
        if self.failures is not None:
            try:
                self.failures.validate()
                for event in self.failures.events:
                    for node in event.nodes:
                        if not 0 <= int(node) < self.n:
                            errors.append(
                                ("failures", f"event node {node} out of range")
                            )
                    for u, v in event.links:
                        if not (0 <= int(u) < self.n and 0 <= int(v) < self.n):
                            errors.append(
                                ("failures", f"event link ({u}, {v}) out of range")
                            )
            except ValidationError as error:
                errors.append(("failures", str(error)))
            except (TypeError, ValueError):
                errors.append(
                    ("failures", f"malformed failure events: {self.failures.events!r}")
                )
        try:
            json.dumps(self.params)
        except TypeError as error:
            errors.append(("params", f"must be JSON-representable: {error}"))
        return errors

    def validate(self) -> "ScenarioSpec":
        """Check the spec is well-formed; returns self for chaining.

        Every invalid field is reported, each tagged with its field name
        — ``invalid scenario field 'n': must be >= 2`` — so a rejected
        ``--spec`` file says exactly what to fix.
        """
        errors = self._field_errors()
        if errors:
            if len(errors) == 1:
                name, message = errors[0]
                raise ValidationError(f"invalid scenario field {name!r}: {message}")
            joined = "; ".join(f"{name!r}: {message}" for name, message in errors)
            raise ValidationError(f"invalid scenario fields: {joined}")
        return self

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        """Canonical (JSON-ready) dictionary form: tuples become lists."""
        self.validate()
        data = asdict(self)
        data["k_grid"] = [int(k) for k in self.k_grid]
        data["policies"] = list(self.policies)
        if self.churn is not None:
            data["churn"] = asdict(self.churn)
        if self.cheating is not None:
            data["cheating"] = asdict(self.cheating)
            data["cheating"]["free_riders"] = [int(v) for v in self.cheating.free_riders]
        if self.failures is not None:
            data["failures"] = self.failures.to_dict()
        data["params"] = json.loads(json.dumps(self.params))
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ScenarioSpec":
        """Inverse of :meth:`to_dict` (lists back to tuples)."""
        data = dict(data)
        unknown = set(data) - {f.name for f in cls.__dataclass_fields__.values()}
        if unknown:
            raise ValidationError(f"unknown scenario fields {sorted(unknown)}")
        if "experiment" not in data:
            raise ValidationError("invalid scenario field 'experiment': missing")
        if "k_grid" in data:
            try:
                data["k_grid"] = tuple(int(k) for k in data["k_grid"])
            except (TypeError, ValueError) as error:
                raise ValidationError(f"invalid scenario field 'k_grid': {error}")
        if "policies" in data:
            try:
                data["policies"] = tuple(str(p) for p in data["policies"])
            except TypeError as error:
                raise ValidationError(f"invalid scenario field 'policies': {error}")
        if data.get("churn") is not None:
            try:
                data["churn"] = ChurnSpec(**data["churn"])
            except TypeError as error:
                raise ValidationError(f"invalid scenario field 'churn': {error}")
        if data.get("cheating") is not None:
            try:
                cheating = dict(data["cheating"])
                cheating["free_riders"] = tuple(
                    int(v) for v in cheating.get("free_riders", ())
                )
                data["cheating"] = CheatingSpec(**cheating)
            except (TypeError, ValueError) as error:
                raise ValidationError(f"invalid scenario field 'cheating': {error}")
        if data.get("failures") is not None:
            try:
                data["failures"] = FailureSpec.from_dict(data["failures"])
            except ValidationError as error:
                raise ValidationError(f"invalid scenario field 'failures': {error}")
        spec = cls(**data)
        spec.validate()
        return spec

    def to_json(self, *, indent: int = 2) -> str:
        """JSON text of the spec (round-trips via :meth:`from_json`)."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        """Parse a spec from JSON text."""
        return cls.from_dict(json.loads(text))

    def save(self, path: str) -> None:
        """Write the spec as JSON to ``path``."""
        with open(path, "w") as handle:
            handle.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "ScenarioSpec":
        """Read a spec from a JSON file."""
        with open(path) as handle:
            return cls.from_json(handle.read())

    # ------------------------------------------------------------------ #
    # Convenience
    # ------------------------------------------------------------------ #
    def override(self, **changes) -> "ScenarioSpec":
        """A copy with the given fields replaced (``params`` is merged)."""
        params = changes.pop("params", None)
        spec = replace(self, **changes)
        if params:
            spec.params = {**self.params, **params}
        return spec

    def param(self, key: str, default=None):
        """Experiment-specific parameter lookup."""
        return self.params.get(key, default)
