"""Explicit lifecycle of one live epoch-loop scenario.

:class:`Session` is the single execution planner of epoch-driven runs:
``open`` a spec into an :class:`~repro.core.engine_batch.EngineBatch`
(one deployment per (policy, k) cell, built with the same RNG discipline
as every registered runner), ``step`` it one epoch at a time, ``mutate``
it between epochs, ``snapshot`` its live state, and ``close`` it.

Batch execution — :meth:`SimulationSession.engine_sweep`, and through it
every registered epoch-loop experiment — is a thin loop over
:meth:`Session.step`, and ``repro serve`` schedules the same method on a
cadence, so there is exactly one code path that advances engines.  A
mutation enqueued via :meth:`Session.mutate` is applied at the next step
boundary, *before* ``begin_epoch`` runs — which is where the engines
commit membership, metric, and failure changes on both the fused and
sequential kernels — so a recorded (mutation, step) sequence replayed
through a fresh ``Session`` reproduces the original epoch records byte
for byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.engine import EgoistEngine, EngineHistory, EpochRecord
from repro.core.engine_batch import EngineBatch, EngineSpec
from repro.core.failures import FailureEvent
from repro.scenario.spec import ScenarioSpec, parse_policy, policy_label
from repro.util.validation import ValidationError

#: Mutation kinds the session-control API accepts.
MUTATION_KINDS = ("join", "leave", "rewire", "drift", "failure")


@dataclass(frozen=True)
class Mutation:
    """One declarative session mutation, applied at the next step boundary.

    Parameters
    ----------
    kind:
        ``"join"``/``"leave"`` force nodes into/out of the active set,
        ``"rewire"`` tears down the named nodes' overlay links so they
        rebuild from scratch, ``"drift"`` advances substrate dynamics by
        ``steps`` extra steps, ``"failure"`` schedules a
        :class:`~repro.core.failures.FailureEvent`.
    nodes:
        Target node ids (join/leave/rewire).
    steps:
        Extra drift steps (drift only).
    event:
        The failure event (failure only).
    engines:
        Deployment labels the mutation targets; empty means all.
    """

    kind: str
    nodes: Tuple[int, ...] = ()
    steps: int = 1
    event: Optional[FailureEvent] = None
    engines: Tuple[str, ...] = ()

    def validate(self) -> "Mutation":
        """Check the mutation is well-formed; returns self for chaining."""
        if self.kind not in MUTATION_KINDS:
            raise ValidationError(
                f"unknown mutation kind {self.kind!r}; expected one of {MUTATION_KINDS}"
            )
        if self.kind in ("join", "leave", "rewire") and not self.nodes:
            raise ValidationError(f"{self.kind!r} mutations need at least one node")
        if self.kind == "drift" and int(self.steps) < 1:
            raise ValidationError("drift mutations need steps >= 1")
        if self.kind == "failure":
            if self.event is None:
                raise ValidationError("failure mutations need an event")
            self.event.validate()
        return self

    def to_dict(self) -> Dict[str, object]:
        """Canonical (JSON-ready, log-line) form."""
        self.validate()
        data: Dict[str, object] = {"kind": self.kind}
        if self.nodes:
            data["nodes"] = [int(v) for v in self.nodes]
        if self.kind == "drift":
            data["steps"] = int(self.steps)
        if self.event is not None:
            data["event"] = {
                "epoch": int(self.event.epoch),
                "action": self.event.action,
                "nodes": [int(v) for v in self.event.nodes],
                "links": [[int(u), int(v)] for u, v in self.event.links],
            }
        if self.engines:
            data["engines"] = list(self.engines)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Mutation":
        """Inverse of :meth:`to_dict` (validated)."""
        if not isinstance(data, dict):
            raise ValidationError(f"a mutation must be an object, got {type(data).__name__}")
        unknown = set(data) - {"kind", "nodes", "steps", "event", "engines"}
        if unknown:
            raise ValidationError(f"unknown mutation fields {sorted(unknown)}")
        event = None
        if data.get("event") is not None:
            entry = data["event"]
            try:
                event = FailureEvent(
                    epoch=int(entry["epoch"]),
                    action=str(entry["action"]),
                    nodes=tuple(int(v) for v in entry.get("nodes", ())),
                    links=tuple((int(u), int(v)) for u, v in entry.get("links", ())),
                )
            except (KeyError, TypeError, ValueError) as error:
                raise ValidationError(f"malformed mutation event: {error}")
        try:
            mutation = cls(
                kind=str(data.get("kind", "")),
                nodes=tuple(int(v) for v in data.get("nodes", ())),
                steps=int(data.get("steps", 1)),
                event=event,
                engines=tuple(str(label) for label in data.get("engines", ())),
            )
        except (TypeError, ValueError) as error:
            raise ValidationError(f"malformed mutation: {error}")
        return mutation.validate()


def _engine_specs(sim) -> List[EngineSpec]:
    """One :class:`EngineSpec` per (policy, k) cell of ``sim``'s spec.

    Follows the runners' RNG discipline: every master-stream draw
    (preferences, the shared churn schedule) happens before the per-cell
    streams are spawned, and each cell's provider and engine consume the
    same stream — so the batched and sequential paths, and any replay,
    see identical draws per deployment.
    """
    spec = sim.spec
    rng = sim.rng()
    preferences = sim.preferences(rng)
    churn = sim.churn_schedule(rng)
    cells = list(
        enumerate(
            (descriptor, int(k))
            for descriptor in spec.policies
            for k in spec.k_grid
        )
    )
    labels = [f"{policy_label(descriptor)}@k={k}" for _, (descriptor, k) in cells]
    if len(set(labels)) != len(labels):
        labels = [f"{label}#{index}" for index, label in enumerate(labels)]

    def build(cell, stream):
        index, (descriptor, k) = cell
        provider = sim.make_provider(stream)
        return EngineSpec(
            label=labels[index],
            provider=provider,
            policy=parse_policy(descriptor),
            k=k,
            epoch_length=spec.epoch_length,
            announce_interval=spec.announce_interval,
            churn=churn,
            cheating=sim.cheating_model(provider.true_metric()),
            failures=spec.failures,
            epsilon=spec.epsilon,
            preferences=preferences,
            compute_efficiency=spec.compute_efficiency,
            seed=stream,
        )

    return sim.engine_grid(cells, rng, build)


class Session:
    """The open/step/mutate/snapshot/close lifecycle over one EngineBatch."""

    def __init__(self, spec: ScenarioSpec, batch: EngineBatch):
        self.spec = spec
        self.batch = batch
        self.labels: List[str] = [engine_spec.label for engine_spec in batch.specs]
        self._by_label: Dict[str, EgoistEngine] = {
            label: engine for label, engine in zip(self.labels, batch.engines)
        }
        self._pending: List[Mutation] = []
        self._epochs = 0
        self._closed = False

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def open(cls, spec: ScenarioSpec, *, batched: bool = True) -> "Session":
        """Open ``spec`` as a live session (one engine per (policy, k))."""
        from repro.scenario.session import SimulationSession

        return cls.from_session(SimulationSession(spec, batched=batched))

    @classmethod
    def from_session(cls, sim) -> "Session":
        """Open a session over ``sim``'s spec, registered with its batches.

        The engine batch is created through ``sim.engine_batch`` so the
        simulation session's aggregated cache diagnostics include it.
        """
        return cls(sim.spec, sim.engine_batch(_engine_specs(sim)))

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def engines(self) -> List[EgoistEngine]:
        """The live engines, in deployment (label) order."""
        return self.batch.engines

    @property
    def epochs_completed(self) -> int:
        """Number of epochs stepped so far."""
        return self._epochs

    def engine(self, label: Optional[str] = None) -> EgoistEngine:
        """The engine for ``label`` (default: the first deployment)."""
        self._check_open()
        if label is None:
            return self.batch.engines[0]
        engine = self._by_label.get(label)
        if engine is None:
            raise ValidationError(
                f"unknown deployment {label!r}; expected one of {self.labels}"
            )
        return engine

    def mutate(self, mutation: Mutation) -> int:
        """Enqueue ``mutation``; returns the epoch index it applies before.

        Mutations accumulate in arrival order and all apply at the next
        :meth:`step` boundary, before the epoch begins.
        """
        self._check_open()
        mutation.validate()
        for label in mutation.engines:
            if label not in self._by_label:
                raise ValidationError(
                    f"unknown deployment {label!r}; expected one of {self.labels}"
                )
        if mutation.nodes:
            max_node = max(int(v) for v in mutation.nodes)
            if max_node >= self.spec.n or min(int(v) for v in mutation.nodes) < 0:
                raise ValidationError(
                    f"mutation node out of range for n={self.spec.n}"
                )
        self._pending.append(mutation)
        return self._epochs

    def _targets(self, mutation: Mutation) -> Sequence[EgoistEngine]:
        if not mutation.engines:
            return self.batch.engines
        return [self._by_label[label] for label in mutation.engines]

    def _apply(self, mutation: Mutation) -> None:
        for engine in self._targets(mutation):
            if mutation.kind == "join":
                engine.request_join(mutation.nodes)
            elif mutation.kind == "leave":
                engine.request_leave(mutation.nodes)
            elif mutation.kind == "rewire":
                engine.reset_wiring(mutation.nodes)
            elif mutation.kind == "drift":
                engine.advance_provider(mutation.steps)
            else:  # failure
                engine.inject_failure(mutation.event)

    def step(self) -> List[EpochRecord]:
        """Apply pending mutations, then advance every engine one epoch."""
        self._check_open()
        pending, self._pending = self._pending, []
        for mutation in pending:
            self._apply(mutation)
        records = self.batch.step_epoch()
        self._epochs += 1
        return records

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready summary of the live session state."""
        self._check_open()
        deployments = []
        for label, engine in zip(self.labels, self.batch.engines):
            view = engine.last_epoch_view
            deployments.append(
                {
                    "label": label,
                    "k": engine.k,
                    "wiring_version": engine.wiring.version,
                    "epoch": view.epoch if view is not None else None,
                    "active_nodes": len(view.active_list) if view is not None else None,
                }
            )
        return {
            "scenario": self.spec.to_dict(),
            "epochs_completed": self._epochs,
            "pending_mutations": len(self._pending),
            "deployments": deployments,
        }

    def close(self) -> List[EngineHistory]:
        """End the session; returns the per-deployment histories."""
        self._check_open()
        self._closed = True
        return [engine.history for engine in self.batch.engines]

    def _check_open(self) -> None:
        if self._closed:
            raise ValidationError("the session is closed")

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if not self._closed:
            self.close()


__all__ = ["MUTATION_KINDS", "Mutation", "Session"]
