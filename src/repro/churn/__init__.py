"""Node churn: ON/OFF session models and churn/efficiency metrics.

The churn experiments of Section 4.4 drive each overlay node through ON
and OFF periods derived from PlanetLab availability traces, rescaled in
time to sweep the churn intensity.  Because churn can disconnect the
overlay, the paper switches from routing cost to the *Efficiency* metric
(inverse shortest distance, zero when disconnected) and defines a churn
rate as the time-normalised fraction of membership change per event.
"""

from repro.churn.models import (
    ChurnEvent,
    ChurnSchedule,
    OnOffSession,
    parametrized_churn,
    trace_driven_churn,
)
from repro.churn.metrics import (
    churn_rate,
    efficiency_matrix,
    node_efficiency,
    overlay_efficiency,
)

__all__ = [
    "ChurnEvent",
    "ChurnSchedule",
    "OnOffSession",
    "parametrized_churn",
    "trace_driven_churn",
    "churn_rate",
    "efficiency_matrix",
    "node_efficiency",
    "overlay_efficiency",
]
