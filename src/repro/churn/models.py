"""ON/OFF churn models.

Each node alternates between ON periods (participating in the overlay) and
OFF periods (dropped out).  The paper derives its ON/OFF periods "from real
data sets of the churn observed for PlanetLab nodes, with adjustments to
the timescale to control the intensity of churn".  PlanetLab session and
downtime durations are well described by heavy-tailed (Pareto-like)
distributions with long mean uptimes; :func:`trace_driven_churn` generates
such sessions, and :func:`parametrized_churn` rescales the timescale to hit
a target churn intensity, mirroring the paper's Fig. 2 (right) sweep.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.util.rng import SeedLike, as_generator
from repro.util.validation import ValidationError, check_positive


@dataclass(frozen=True)
class OnOffSession:
    """One ON interval of a node: ``[start, end)`` in seconds."""

    node: int
    start: float
    end: float

    def __post_init__(self):
        if self.end <= self.start:
            raise ValidationError("session end must be after start")

    @property
    def duration(self) -> float:
        """Length of the session in seconds."""
        return self.end - self.start


@dataclass(frozen=True)
class ChurnEvent:
    """A membership-change event: a node turning ON or OFF."""

    time: float
    node: int
    joins: bool


class ChurnSchedule:
    """A full churn schedule: per-node ON sessions over a horizon.

    Provides point-in-time queries ("which nodes are ON at time t?"),
    event iteration, and the paper's churn-rate metric.
    """

    def __init__(self, n: int, horizon: float, sessions: Sequence[OnOffSession]):
        if n < 1:
            raise ValidationError("n must be >= 1")
        self.n = int(n)
        self.horizon = check_positive(horizon, "horizon")
        self.sessions: List[OnOffSession] = sorted(sessions, key=lambda s: (s.node, s.start))
        for session in self.sessions:
            if not 0 <= session.node < self.n:
                raise ValidationError(f"session node {session.node} out of range")
        self._events = self._build_events()
        self._event_times = [e.time for e in self._events]

    def _build_events(self) -> List[ChurnEvent]:
        events: List[ChurnEvent] = []
        for session in self.sessions:
            if session.start > 0:
                events.append(ChurnEvent(time=session.start, node=session.node, joins=True))
            if session.end < self.horizon:
                events.append(ChurnEvent(time=session.end, node=session.node, joins=False))
        events.sort(key=lambda e: (e.time, e.node))
        return events

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def events(self) -> List[ChurnEvent]:
        """All join/leave events in time order."""
        return list(self._events)

    def active_at(self, time: float) -> Set[int]:
        """Set of nodes that are ON at simulated time ``time``."""
        active: Set[int] = set()
        for session in self.sessions:
            if session.start <= time < session.end:
                active.add(session.node)
        return active

    def events_between(self, start: float, end: float) -> List[ChurnEvent]:
        """Events with ``start < time <= end`` (epoch-aligned accounting)."""
        lo = bisect.bisect_right(self._event_times, start)
        hi = bisect.bisect_right(self._event_times, end)
        return self._events[lo:hi]

    def membership_series(self, times: Sequence[float]) -> List[Set[int]]:
        """Active sets sampled at each time in ``times``."""
        return [self.active_at(t) for t in times]

    def mean_availability(self) -> float:
        """Average fraction of time a node spends ON."""
        total_on = sum(
            min(s.end, self.horizon) - max(s.start, 0.0) for s in self.sessions
        )
        return total_on / (self.n * self.horizon)

    def churn_rate(self) -> float:
        """The paper's churn metric over the full horizon.

        ``Churn = (1/T) * sum_i |U_{i-1} symdiff U_i| / max(|U_{i-1}|, |U_i|)``
        where the sum runs over membership-change events and T is the
        horizon.  A churn of 0.01 means on average 1% of the nodes join or
        leave per second.
        """
        from repro.churn.metrics import churn_rate as _churn_rate

        memberships = [self.active_at(0.0)]
        for event in self._events:
            current = set(memberships[-1])
            if event.joins:
                current.add(event.node)
            else:
                current.discard(event.node)
            memberships.append(current)
        return _churn_rate(memberships, self.horizon)


# ---------------------------------------------------------------------- #
# Generators
# ---------------------------------------------------------------------- #
def _pareto_duration(rng: np.random.Generator, mean: float, shape: float) -> float:
    """Sample a Pareto (lomax) duration with the given mean and tail shape."""
    if shape <= 1.0:
        raise ValidationError("pareto shape must be > 1 for a finite mean")
    scale = mean * (shape - 1.0)
    return float(scale * (rng.pareto(shape) + 1.0) / shape * shape / (shape))


def _lomax_duration(rng: np.random.Generator, mean: float, shape: float) -> float:
    """Sample from a lomax distribution with the requested mean."""
    if shape <= 1.0:
        raise ValidationError("shape must be > 1 for a finite mean")
    scale = mean * (shape - 1.0)
    return float(rng.pareto(shape) * scale)


def trace_driven_churn(
    n: int,
    horizon: float,
    *,
    mean_on: float = 3000.0,
    mean_off: float = 600.0,
    on_shape: float = 1.8,
    off_shape: float = 1.8,
    initial_on_probability: float = 0.9,
    seed: SeedLike = None,
) -> ChurnSchedule:
    """Generate a PlanetLab-like trace-driven churn schedule.

    Session (ON) and downtime (OFF) durations are heavy-tailed with the
    given means; most nodes are up most of the time, with occasional long
    outages — the qualitative behaviour of PlanetLab hosts that the paper's
    trace exhibits.

    Parameters
    ----------
    n:
        Number of nodes.
    horizon:
        Schedule length in seconds.
    mean_on, mean_off:
        Mean ON and OFF durations in seconds.
    on_shape, off_shape:
        Pareto tail indices (must exceed 1).
    initial_on_probability:
        Probability that a node starts the horizon in the ON state.
    seed:
        Seed or generator.
    """
    if n < 1:
        raise ValidationError("n must be >= 1")
    horizon = check_positive(horizon, "horizon")
    check_positive(mean_on, "mean_on")
    check_positive(mean_off, "mean_off")
    rng = as_generator(seed)
    sessions: List[OnOffSession] = []
    for node in range(n):
        time = 0.0
        is_on = bool(rng.random() < initial_on_probability)
        # If starting OFF, the first OFF period is a residual draw.
        while time < horizon:
            if is_on:
                duration = max(1.0, _lomax_duration(rng, mean_on, on_shape))
                end = min(horizon, time + duration)
                if end > time:
                    sessions.append(OnOffSession(node=node, start=time, end=end))
                time += duration
            else:
                duration = max(1.0, _lomax_duration(rng, mean_off, off_shape))
                time += duration
            is_on = not is_on
    return ChurnSchedule(n, horizon, sessions)


def parametrized_churn(
    n: int,
    horizon: float,
    target_churn: float,
    *,
    duty_cycle: float = 0.8,
    seed: SeedLike = None,
    max_iterations: int = 25,
) -> ChurnSchedule:
    """Generate a churn schedule calibrated to a target churn rate.

    The paper sweeps churn by rescaling the timescale of its trace-driven
    ON/OFF processes; we do the same: generate exponential ON/OFF sessions
    with the requested ``duty_cycle`` and iteratively rescale the mean
    session length until the realised churn rate (per the paper's
    definition) is within 15% of ``target_churn``.

    Parameters
    ----------
    n:
        Number of nodes.
    horizon:
        Schedule length in seconds.
    target_churn:
        Desired churn rate (fraction of membership changing per second),
        e.g. 1e-3.
    duty_cycle:
        Long-run fraction of time each node spends ON.
    seed:
        Seed or generator.
    max_iterations:
        Calibration iterations before giving up and returning the closest
        schedule found.
    """
    if not 0 < duty_cycle < 1:
        raise ValidationError("duty_cycle must be in (0, 1)")
    check_positive(target_churn, "target_churn")
    rng = as_generator(seed)

    # Initial guess: each join/leave event flips ~1/n of the membership, and
    # a node produces one event pair per (on+off) cycle, so
    # churn ~= 2 / (cycle_length * n) summed over n nodes = 2 / cycle_length.
    cycle_length = 2.0 / target_churn

    def _generate(cycle: float) -> ChurnSchedule:
        mean_on = cycle * duty_cycle
        mean_off = cycle * (1.0 - duty_cycle)
        sessions: List[OnOffSession] = []
        for node in range(n):
            time = float(rng.uniform(0, mean_on))  # desynchronise starts
            sessions.append(OnOffSession(node=node, start=0.0, end=max(1e-3, time)))
            is_on = False
            while time < horizon:
                if is_on:
                    duration = max(1e-3, float(rng.exponential(mean_on)))
                    end = min(horizon, time + duration)
                    if end > time:
                        sessions.append(OnOffSession(node=node, start=time, end=end))
                    time += duration
                else:
                    duration = max(1e-3, float(rng.exponential(mean_off)))
                    time += duration
                is_on = not is_on
        return ChurnSchedule(n, horizon, sessions)

    best: Optional[Tuple[float, ChurnSchedule]] = None
    for _ in range(max_iterations):
        schedule = _generate(cycle_length)
        realised = schedule.churn_rate()
        error = abs(realised - target_churn) / target_churn if target_churn else 0.0
        if best is None or error < best[0]:
            best = (error, schedule)
        if error < 0.15:
            return schedule
        # Scale the cycle length toward the target (more churn -> shorter cycles).
        if realised > 0:
            cycle_length *= realised / target_churn
        else:
            cycle_length /= 2.0
    return best[1]
